#include "common.h"

#include "sim/pipeline.h"
#include "util/assert.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace lad::bench {

BenchOptions parse_common_flags(const Flags& flags) {
  BenchOptions opts;
  opts.csv = flags.get_bool("csv", false);
  opts.quick = flags.get_bool("quick", false);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 20050404));

  PipelineConfig& p = opts.pipeline;
  p.seed = opts.seed;
  p.deploy.nodes_per_group = static_cast<int>(flags.get_int("m", 300));
  p.deploy.radio_range = flags.get_double("r", 50.0);
  p.deploy.sigma = flags.get_double("sigma", 50.0);
  p.threads = static_cast<int>(flags.get_int("threads", 0));
  // Paper-scale default: 10 networks x 200 victims = 2000 samples per pass.
  p.networks = static_cast<int>(flags.get_int("networks", opts.quick ? 3 : 10));
  p.victims_per_network =
      static_cast<int>(flags.get_int("victims", opts.quick ? 60 : 200));
  return opts;
}

void emit(const BenchOptions& opts, const std::string& title,
          const Table& table) {
  std::cout << "\n== " << title << " ==\n";
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

void banner(const std::string& figure, const std::string& params) {
  std::cout << "LAD reproduction - " << figure << "\n" << params << "\n";
}

void check_unused(const Flags& flags) {
  const auto unused = flags.unused();
  LAD_REQUIRE_MSG(unused.empty(),
                  "unknown flag(s): --" << join(unused, ", --"));
}

}  // namespace lad::bench
