// Shared plumbing for the figure-reproduction benches: flag parsing into
// the paper's experiment configuration, and uniform output formatting.
#pragma once

#include <iostream>
#include <string>

#include "sim/pipeline.h"
#include "util/csv.h"
#include "util/flags.h"

namespace lad::bench {

struct BenchOptions {
  PipelineConfig pipeline;
  bool csv = false;     ///< emit CSV instead of aligned tables
  bool quick = false;   ///< reduced sample counts (CI smoke mode)
  std::uint64_t seed = 20050404;  ///< IPDPS 2005 began April 4, 2005
};

/// Parses the common flags (--quick, --csv, --seed, --networks, --victims,
/// --m, --r, --sigma, --threads) into the paper-default configuration.
BenchOptions parse_common_flags(const Flags& flags);

/// Prints a section banner followed by the table in the selected format.
void emit(const BenchOptions& opts, const std::string& title,
          const Table& table);

/// Prints the experiment header (figure id, fixed parameters).
void banner(const std::string& figure, const std::string& params);

/// Rejects unknown flags so typos in sweeps fail fast.
void check_unused(const Flags& flags);

}  // namespace lad::bench
