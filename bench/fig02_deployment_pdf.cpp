// Figure 2: the deployment distribution for one group - the 2-D Gaussian
// pdf centered at deployment point (150, 150) with sigma = 50.
//
// Emits the pdf surface sampled on a grid over [0, 300]^2 (the figure's
// axes) plus radial cross-section values, and checks the normalization.
#include <iostream>

#include "common.h"
#include "util/string_util.h"
#include "deploy/deployment_model.h"
#include "stats/special.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bench::BenchOptions opts = bench::parse_common_flags(flags);
  const int grid = static_cast<int>(flags.get_int("grid", 13));
  bench::check_unused(flags);

  bench::banner("Figure 2 - deployment distribution for one group",
                "pdf f(x - 150, y - 150), sigma = " +
                    format_double(opts.pipeline.deploy.sigma, 0));

  const double sigma = opts.pipeline.deploy.sigma;
  const Vec2 dp{150.0, 150.0};

  // Surface samples (the figure's 3-D plot data).
  Table surface({"x", "y", "pdf"});
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      const Vec2 p{300.0 * i / (grid - 1), 300.0 * j / (grid - 1)};
      surface.new_row()
          .add(p.x, 1)
          .add(p.y, 1)
          .add(gaussian2d_pdf_radial(distance(p, dp), sigma), 9);
    }
  }
  bench::emit(opts, "pdf surface over [0,300]^2", surface);

  // Radial cross-section: the quantity the paper's colorbar encodes.
  Table radial({"distance_from_deployment_point", "pdf",
                "fraction_within_distance"});
  for (double r = 0.0; r <= 250.0; r += 25.0) {
    radial.new_row()
        .add(r, 0)
        .add(gaussian2d_pdf_radial(r, sigma), 9)
        .add(rayleigh_cdf(r, sigma), 6);
  }
  bench::emit(opts, "radial cross-section", radial);

  // Qualitative checks against the published figure.
  const double peak = gaussian2d_pdf_radial(0.0, sigma);
  std::cout << "\npeak pdf value: " << format_double(peak * 1e5, 3)
            << "e-5 (paper's Figure 2 peaks between 6e-5 and 7e-5)\n";
  std::cout << "mass within 2 sigma: "
            << format_double(rayleigh_cdf(2 * sigma, sigma), 4)
            << " (expected 1 - e^{-2} = 0.8647)\n";
  return 0;
}
