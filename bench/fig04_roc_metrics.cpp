// Figure 4 (DR-FP-M-D): ROC curves for the three detection metrics at
// damage D in {80, 120, 160}, with x = 10% compromised neighbors, m = 300,
// Dec-Bounded attacks, beaconless-MLE localization.
//
// Paper's qualitative findings this bench must reproduce:
//   * higher D => better ROC for every metric;
//   * at D = 120 the Diff metric reaches ~100% DR below 5% FP;
//   * at D = 160 the Diff metric reaches 100% DR at ~0 FP;
//   * "in general, the Diff metric performs the best".
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages = flags.get_double_list("d", {80, 120, 160});
  const double x = flags.get_double("x", 0.10);
  bench::check_unused(flags);

  bench::banner("Figure 4 - ROC curves per metric (DR-FP-M-D)",
                "x = 10%, m = " +
                    std::to_string(opts.pipeline.deploy.nodes_per_group) +
                    ", T = Dec-Bounded, localization = beaconless MLE");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());

  const auto results = run_roc_experiment(
      pipeline, factory,
      {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb},
      {AttackClass::kDecBounded}, damages, x);

  // The paper plots full curves; we emit DR at a grid of FP budgets plus
  // the AUC, which captures the same ordering information.
  const std::vector<double> fp_grid = {0.0,  0.01, 0.02, 0.05, 0.1,
                                       0.2,  0.3,  0.5};
  Table table({"metric", "D", "AUC", "DR@FP=0", "DR@1%", "DR@2%", "DR@5%",
               "DR@10%", "DR@20%", "DR@30%", "DR@50%"});
  for (const auto& r : results) {
    table.new_row()
        .add(metric_name(r.metric))
        .add(r.damage, 0)
        .add(r.curve.auc(), 4);
    for (double fp : fp_grid) table.add(r.curve.detection_rate_at_fp(fp), 4);
  }
  bench::emit(opts, "ROC summary (DR at FP budgets)", table);

  // Full curve points for plotting.
  Table curves({"metric", "D", "FP", "DR"});
  for (const auto& r : results) {
    // Thin the curve to <= 60 points for readability.
    const auto& pts = r.curve.points();
    const std::size_t stride = std::max<std::size_t>(1, pts.size() / 60);
    for (std::size_t i = 0; i < pts.size(); i += stride) {
      curves.new_row()
          .add(metric_name(r.metric))
          .add(r.damage, 0)
          .add(pts[i].false_positive_rate, 5)
          .add(pts[i].detection_rate, 5);
    }
  }
  bench::emit(opts, "ROC curve points", curves);

  // Qualitative assertions the paper states.
  std::cout << "\nchecks:\n";
  for (const auto& r : results) {
    if (r.metric == MetricKind::kDiff && r.damage >= 120.0) {
      std::cout << "  diff @ D=" << r.damage
                << ": DR at 5% FP = " << r.curve.detection_rate_at_fp(0.05)
                << " (paper: ~1.0)\n";
    }
  }
  return 0;
}
