// Figure 5 (DR-FP-T-D): ROC curves for Dec-Bounded vs Dec-Only attacks at
// small damage D in {40, 80}, x = 10%, m = 300, Diff metric.
//
// Paper's qualitative finding: "the Dec-Bounded attack is the most
// powerful ... especially when D is small.  For instance, when D = 40, the
// detection rates for the Dec-Only attack are high with small false alarm
// rates, but the detection rate for the Dec-Bounded attack is still very
// low."
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages = flags.get_double_list("d", {40, 80});
  const double x = flags.get_double("x", 0.10);
  bench::check_unused(flags);

  bench::banner("Figure 5 - ROC per attack class, small D (DR-FP-T-D)",
                "x = 10%, m = " +
                    std::to_string(opts.pipeline.deploy.nodes_per_group) +
                    ", M = Diff");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const auto results = run_roc_experiment(
      pipeline, factory, {MetricKind::kDiff},
      {AttackClass::kDecBounded, AttackClass::kDecOnly}, damages, x);

  Table table({"attack", "D", "AUC", "DR@1%", "DR@5%", "DR@10%", "DR@20%",
               "DR@40%", "DR@60%"});
  for (const auto& r : results) {
    table.new_row()
        .add(attack_class_name(r.attack_class))
        .add(r.damage, 0)
        .add(r.curve.auc(), 4);
    for (double fp : {0.01, 0.05, 0.1, 0.2, 0.4, 0.6}) {
      table.add(r.curve.detection_rate_at_fp(fp), 4);
    }
  }
  bench::emit(opts, "ROC summary", table);

  Table curves({"attack", "D", "FP", "DR"});
  for (const auto& r : results) {
    const auto& pts = r.curve.points();
    const std::size_t stride = std::max<std::size_t>(1, pts.size() / 60);
    for (std::size_t i = 0; i < pts.size(); i += stride) {
      curves.new_row()
          .add(attack_class_name(r.attack_class))
          .add(r.damage, 0)
          .add(pts[i].false_positive_rate, 5)
          .add(pts[i].detection_rate, 5);
    }
  }
  bench::emit(opts, "ROC curve points", curves);

  std::cout << "\nchecks (paper: Dec-Only much easier to detect at D=40):\n";
  for (const auto& r : results) {
    std::cout << "  " << attack_class_name(r.attack_class) << " @ D="
              << r.damage << ": AUC = " << r.curve.auc() << "\n";
  }
  return 0;
}
