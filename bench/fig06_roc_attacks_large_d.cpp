// Figure 6 (DR-FP-T-D): ROC curves for Dec-Bounded vs Dec-Only at large
// damage D in {120, 160}, x = 10%, m = 300, Diff metric.
//
// Paper's qualitative finding: "when D = 120 and the false positive is
// below 2%, the detection rate for the Dec-Bounded attacks is already over
// 99.5%, close to the detection rates (100%) achieved by the Dec-Only
// attacks" - i.e. expensive authentication + wormhole defenses stop paying
// off once the attacker needs large damage.
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages = flags.get_double_list("d", {120, 160});
  const double x = flags.get_double("x", 0.10);
  bench::check_unused(flags);

  bench::banner("Figure 6 - ROC per attack class, large D (DR-FP-T-D)",
                "x = 10%, m = " +
                    std::to_string(opts.pipeline.deploy.nodes_per_group) +
                    ", M = Diff");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const auto results = run_roc_experiment(
      pipeline, factory, {MetricKind::kDiff},
      {AttackClass::kDecBounded, AttackClass::kDecOnly}, damages, x);

  Table table({"attack", "D", "AUC", "DR@0.5%", "DR@1%", "DR@2%", "DR@5%",
               "DR@10%"});
  for (const auto& r : results) {
    table.new_row()
        .add(attack_class_name(r.attack_class))
        .add(r.damage, 0)
        .add(r.curve.auc(), 5);
    for (double fp : {0.005, 0.01, 0.02, 0.05, 0.1}) {
      table.add(r.curve.detection_rate_at_fp(fp), 4);
    }
  }
  bench::emit(opts, "ROC summary", table);

  std::cout << "\nchecks (paper: at large D the attack classes converge):\n";
  double gap = 0.0;
  for (std::size_t d = 0; d < damages.size(); ++d) {
    const double bounded = results[d].curve.detection_rate_at_fp(0.02);
    const double only =
        results[damages.size() + d].curve.detection_rate_at_fp(0.02);
    gap = std::max(gap, only - bounded);
    std::cout << "  D=" << damages[d] << ": DR@2%FP dec-bounded=" << bounded
              << " dec-only=" << only << " (gap " << only - bounded << ")\n";
  }
  std::cout << "  max gap at large D: " << gap << " (paper: < 0.005)\n";
  return 0;
}
