// Figure 7 (DR-D-x): detection rate vs the degree of damage D, at trained
// false-positive rate 1%, m = 300, Diff metric, Dec-Bounded attacks, for
// compromise fractions x in {10%, 20%, 30%}.
//
// Paper's qualitative findings:
//   * DR is low for small D (indistinguishable from localization error);
//   * DR approaches 100% as D grows, for every x;
//   * "a successful attack's damage is always limited to a small distance".
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages =
      flags.get_double_list("d", {40, 60, 80, 100, 120, 140, 160});
  const std::vector<double> xs = flags.get_double_list("x", {0.10, 0.20, 0.30});
  const double fp = flags.get_double("fp", 0.01);
  bench::check_unused(flags);

  bench::banner("Figure 7 - detection rate vs degree of damage (DR-D-x)",
                "FP = 1%, m = " +
                    std::to_string(opts.pipeline.deploy.nodes_per_group) +
                    ", M = Diff, T = Dec-Bounded");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const auto points = run_dr_sweep(pipeline, factory, MetricKind::kDiff,
                                   AttackClass::kDecBounded, damages, xs, fp);

  Table table({"x", "D", "DR", "trained_FP", "threshold"});
  for (const auto& p : points) {
    table.new_row()
        .add(p.compromised_frac, 2)
        .add(p.damage, 0)
        .add(p.detection_rate, 4)
        .add(p.trained_fp, 4)
        .add(p.threshold, 2);
  }
  bench::emit(opts, "DR vs D per compromise fraction", table);

  std::cout << "\nchecks (paper: DR -> 1 as D grows; larger x lowers DR):\n";
  for (double x : xs) {
    double first = -1, last = -1;
    for (const auto& p : points) {
      if (p.compromised_frac != x) continue;
      if (first < 0) first = p.detection_rate;
      last = p.detection_rate;
    }
    std::cout << "  x=" << x << ": DR(D=" << damages.front() << ")=" << first
              << " -> DR(D=" << damages.back() << ")=" << last << "\n";
  }
  return 0;
}
