// Figure 8 (DR-x-D): detection rate vs the fraction of compromised
// neighbors x, at trained FP = 1%, m = 300, Diff metric, Dec-Bounded,
// for damage D in {80, 120, 160}.
//
// Paper's qualitative findings:
//   * higher D tolerates more compromise: at D = 160 LAD keeps its
//     detection rate up to ~50% compromised neighbors;
//   * at D = 80 the detection rate drops rapidly beyond ~15%.
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages = flags.get_double_list("d", {80, 120, 160});
  const std::vector<double> xs =
      flags.get_double_list("x", {0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40,
                                  0.50, 0.60});
  const double fp = flags.get_double("fp", 0.01);
  bench::check_unused(flags);

  bench::banner(
      "Figure 8 - detection rate vs compromised fraction (DR-x-D)",
      "FP = 1%, m = " + std::to_string(opts.pipeline.deploy.nodes_per_group) +
          ", M = Diff, T = Dec-Bounded");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const auto points = run_dr_sweep(pipeline, factory, MetricKind::kDiff,
                                   AttackClass::kDecBounded, damages, xs, fp);

  Table table({"D", "x", "DR"});
  for (double d : damages) {
    for (const auto& p : points) {
      if (p.damage == d) {
        table.new_row().add(d, 0).add(p.compromised_frac, 2).add(
            p.detection_rate, 4);
      }
    }
  }
  bench::emit(opts, "DR vs x per damage level", table);

  std::cout << "\nchecks (paper: D=160 tolerates ~50% compromise):\n";
  for (double d : damages) {
    double dr_at_half = -1;
    for (const auto& p : points) {
      if (p.damage == d && p.compromised_frac == 0.50) {
        dr_at_half = p.detection_rate;
      }
    }
    if (dr_at_half >= 0) {
      std::cout << "  D=" << d << ": DR at x=50% is " << dr_at_half << "\n";
    }
  }
  return 0;
}
