// Figure 9 (DR-m-x-D): detection rate vs network density m (nodes per
// deployment group), FP = 1%, Diff metric, Dec-Bounded, for D in
// {80, 100, 160} x compromise in {10%, 20%, 30%}.
//
// Paper's qualitative finding: DR increases with m, and the mechanism is
// the localization scheme, not LAD itself - "when m increases, the
// localization becomes more accurate ... the detection threshold can be
// made smaller while still maintaining the same false positive rate."
// The bench therefore also reports the MLE's mean localization error and
// the trained threshold per density so the mechanism is visible.
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  std::vector<long long> densities =
      flags.get_int_list("densities", {100, 200, 300, 500, 700, 1000});
  if (opts.quick) densities = {100, 300};
  const std::vector<double> damages = flags.get_double_list("d", {80, 100, 160});
  const std::vector<double> xs = flags.get_double_list("x", {0.10, 0.20, 0.30});
  const double fp = flags.get_double("fp", 0.01);
  bench::check_unused(flags);

  bench::banner("Figure 9 - detection rate vs network density (DR-m-x-D)",
                "FP = 1%, M = Diff, T = Dec-Bounded, localization = MLE");

  std::vector<int> ms(densities.begin(), densities.end());
  const auto points =
      run_density_sweep(opts.pipeline, ms, MetricKind::kDiff,
                        AttackClass::kDecBounded, damages, xs, fp);

  Table table({"D", "x", "m", "DR", "mle_loc_error", "threshold"});
  for (double d : damages) {
    for (double x : xs) {
      for (const auto& p : points) {
        if (p.damage == d && p.compromised_frac == x) {
          table.new_row()
              .add(d, 0)
              .add(x, 2)
              .add(p.nodes_per_group)
              .add(p.detection_rate, 4)
              .add(p.mean_loc_error, 2)
              .add(p.threshold, 2);
        }
      }
    }
  }
  bench::emit(opts, "DR vs density", table);

  std::cout << "\nchecks (paper: localization error shrinks with m, DR "
               "grows):\n";
  for (const auto& p : points) {
    if (p.damage == damages.front() && p.compromised_frac == xs.front()) {
      std::cout << "  m=" << p.nodes_per_group
                << ": loc_err=" << p.mean_loc_error << " DR=" << p.detection_rate
                << "\n";
    }
  }
  return 0;
}
