// Micro-benchmarks (google-benchmark) for the performance claims that
// matter on sensor-class hardware:
//   * Section 3.3: the g(z) table lookup is constant-time and cheap,
//     versus the "quite complicated" exact integral;
//   * metric evaluation cost per detection decision;
//   * expected-observation computation (n table lookups);
//   * neighbor-query throughput of the spatial index, single
//     (BM_NeighborQuery) and batched (BM_ObserveMany/BM_ObserveGrid) —
//     the docs/PERFORMANCE.md before/after surface;
//   * end-to-end Detector::check and MLE localization.
#include <benchmark/benchmark.h>

#include "core/detector.h"
#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"

namespace lad {
namespace {

const DeploymentConfig& bench_config() {
  static const DeploymentConfig cfg = [] {
    DeploymentConfig c;  // paper defaults: 10x10 grid, m=300, sigma=50, R=50
    return c;
  }();
  return cfg;
}

const DeploymentModel& bench_model() {
  static const DeploymentModel model(bench_config());
  return model;
}

const GzTable& bench_gz() {
  static const GzTable gz(
      {bench_config().radio_range, bench_config().sigma}, 256);
  return gz;
}

const Network& bench_network() {
  static const Network* net = [] {
    Rng rng(42);
    return new Network(bench_model(), rng);
  }();
  return *net;
}

void BM_GzExactIntegral(benchmark::State& state) {
  const GzParams params{50.0, 50.0};
  double z = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gz_exact(z, params));
    z += 1.7;
    if (z > 400.0) z = 0.0;
  }
}
BENCHMARK(BM_GzExactIntegral);

void BM_GzTableLookup(benchmark::State& state) {
  const GzTable& gz = bench_gz();
  double z = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gz(z));
    z += 1.7;
    if (z > 400.0) z = 0.0;
  }
}
BENCHMARK(BM_GzTableLookup);

void BM_ExpectedObservation(benchmark::State& state) {
  const DeploymentModel& model = bench_model();
  const GzTable& gz = bench_gz();
  Rng rng(7);
  for (auto _ : state) {
    const Vec2 le{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    benchmark::DoNotOptimize(model.expected_observation(le, gz));
  }
}
BENCHMARK(BM_ExpectedObservation);

void BM_NeighborQuery(benchmark::State& state) {
  const Network& net = bench_network();
  Rng rng(8);
  for (auto _ : state) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    benchmark::DoNotOptimize(net.observe(node));
  }
}
BENCHMARK(BM_NeighborQuery);

/// Batched observation kernel over a reused ObservationBatch.  The Time/CPU
/// columns are per *batch* (one observe_many call); items_per_second is the
/// per-observation rate — invert it to compare against BM_NeighborQuery.
void BM_ObserveMany(benchmark::State& state) {
  const Network& net = bench_network();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<std::size_t> nodes(batch_size);
  for (std::size_t& n : nodes) {
    n = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
  }
  ObservationBatch batch;
  for (auto _ : state) {
    net.observe_many(nodes, batch);
    benchmark::DoNotOptimize(batch.row(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_ObserveMany)->Arg(64)->Arg(256);

/// Batched observe_at over a probe grid (the sampling-path analogue).
void BM_ObserveGrid(benchmark::State& state) {
  const Network& net = bench_network();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<Vec2> points(batch_size);
  for (Vec2& p : points) {
    p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
  }
  ObservationBatch batch;
  for (auto _ : state) {
    net.observe_grid(points, batch);
    benchmark::DoNotOptimize(batch.row(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_ObserveGrid)->Arg(256);

void BM_MetricScore(benchmark::State& state) {
  const DeploymentModel& model = bench_model();
  const GzTable& gz = bench_gz();
  const Network& net = bench_network();
  const MetricKind kind = static_cast<MetricKind>(state.range(0));
  const auto metric = make_metric(kind);
  const Observation obs = net.observe(1234);
  const ExpectedObservation mu =
      model.expected_observation(net.position(1234), gz);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metric->score(obs, mu, bench_config().nodes_per_group));
  }
}
BENCHMARK(BM_MetricScore)->Arg(0)->Arg(1)->Arg(2);  // Diff, Add-all, Prob

/// Pre-sampled (observation, location) pairs so the timed region contains
/// only the operation under test (Pause/ResumeTiming costs more than the
/// detector check itself).
struct SampledInputs {
  std::vector<Observation> observations;
  std::vector<Vec2> locations;
};

const SampledInputs& bench_inputs() {
  static const SampledInputs inputs = [] {
    SampledInputs in;
    const Network& net = bench_network();
    Rng rng(9);
    for (int i = 0; i < 256; ++i) {
      const std::size_t node =
          static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
      in.observations.push_back(net.observe(node));
      in.locations.push_back(net.position(node));
    }
    return in;
  }();
  return inputs;
}

void BM_DetectorCheck(benchmark::State& state) {
  const Detector detector(bench_model(), bench_gz(), MetricKind::kDiff, 100.0);
  const SampledInputs& in = bench_inputs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector.check(in.observations[i], in.locations[i]));
    i = (i + 1) % in.observations.size();
  }
}
BENCHMARK(BM_DetectorCheck);

void BM_MleLocalize(benchmark::State& state) {
  const BeaconlessMleLocalizer mle(bench_model(), bench_gz());
  const SampledInputs& in = bench_inputs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mle.estimate(in.observations[i]));
    i = (i + 1) % in.observations.size();
  }
}
BENCHMARK(BM_MleLocalize);

void BM_NetworkDeployment(benchmark::State& state) {
  const DeploymentModel& model = bench_model();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const Network net(model, rng);
    benchmark::DoNotOptimize(net.num_nodes());
  }
}
BENCHMARK(BM_NetworkDeployment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lad

BENCHMARK_MAIN();
