// Scaling bench for the observation kernels: 10^4 -> 10^6 nodes through
// the batched observe_many / observe_grid paths, per compiled-in kernel
// variant (scalar reference vs AVX2), single-threaded and fanned out
// over victim chunks with parallel_for_items.  Also times the deployment
// and GridIndex build paths, which dominate setup cost at scale.
//
// Density is held at the paper's default (m = 300 nodes per 100 m grid
// square) by growing the field with the node count, so per-observation
// cost reflects kernel throughput, not a denser radio neighborhood.
//
// Every run writes BENCH_scale_observe.json (see util/bench_json.h) so
// the perf trajectory is trackable across PRs:
//
//   bench/scale_observe                  # full sweep, JSON in cwd
//   bench/scale_observe --quick          # CI smoke: small sizes, 1 rep
//   bench/scale_observe --nodes 1000000 --threads 4 --out bench
//
// Pin thread counts reproducibly with --threads or the LAD_THREADS
// environment override (both reject garbage by name).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "deploy/observe_kernel.h"
#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "sim/parallel.h"
#include "util/assert.h"
#include "util/bench_json.h"
#include "util/flags.h"

namespace lad::bench {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::nano>(b - a).count();
}

/// Paper-density config scaled to roughly `target_nodes` total nodes.
DeploymentConfig scaled_config(long long target_nodes) {
  DeploymentConfig cfg;  // paper defaults: 100 m grid, m=300, sigma=R=50
  const int side = std::max(
      1, static_cast<int>(std::lround(std::sqrt(
             static_cast<double>(target_nodes) / cfg.nodes_per_group))));
  cfg.grid_nx = cfg.grid_ny = side;
  cfg.field_side = side * 100.0;
  cfg.nodes_per_group = static_cast<int>(
      target_nodes / (static_cast<long long>(side) * side));
  return cfg;
}

/// Best-of-reps wall time for fn(), in ns.
template <class Fn>
double best_ns(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    const double ns = elapsed_ns(t0, t1);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

void add_result(BenchReport& report, const std::string& name,
                long long nodes, double ns_per_op, long long ops) {
  report.results.push_back({name, nodes, ns_per_op, ops});
  std::printf("  %-28s %12.1f ns/op  (%lld ops)\n", name.c_str(), ns_per_op,
              ops);
}

}  // namespace
}  // namespace lad::bench

int main(int argc, char** argv) {
  using namespace lad;
  using namespace lad::bench;

  const Flags flags = Flags::parse(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const std::vector<long long> default_nodes =
      quick ? std::vector<long long>{10000, 30000}
            : std::vector<long long>{10000, 30000, 100000, 300000, 1000000};
  const std::vector<long long> node_counts =
      flags.get_int_list("nodes", default_nodes);
  const long long victims_flag =
      flags.get_int("victims", quick ? 2000 : 20000);
  const int reps = static_cast<int>(flags.get_int("reps", quick ? 1 : 3));
  const int threads_flag = static_cast<int>(flags.get_int("threads", 0));
  const std::string out_dir = flags.get_string("out", "");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20050404));
  const std::string only_kernel = flags.get_string("kernel", "");
  const std::vector<std::string> leftovers = flags.unused();
  if (!leftovers.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", leftovers.front().c_str());
    return 2;
  }

  const int threads = threads_flag > 0 ? threads_flag : default_parallelism();
  BenchReport report;
  report.name = "scale_observe";
  report.threads = threads;
  fill_bench_environment(report);

  std::printf("scale_observe: dispatch=%s threads=%d reps=%d\n",
              observe_kernel_name(), threads, reps);

  for (const long long target : node_counts) {
    const DeploymentConfig cfg = scaled_config(target);
    const DeploymentModel model(cfg);
    Rng rng(seed);

    const auto d0 = Clock::now();
    const Network net(model, rng);
    const auto d1 = Clock::now();
    const long long n = static_cast<long long>(net.num_nodes());
    std::printf("nodes=%lld (field %.0f m, %d groups x m=%d)\n", n,
                cfg.field_side, cfg.num_groups(), cfg.nodes_per_group);
    add_result(report, "deploy", n, elapsed_ns(d0, d1), 1);

    const double grid_ns = best_ns(reps, [&] {
      GridIndex rebuild(net.positions(), cfg.field(), cfg.radio_range / 2.0);
    });
    add_result(report, "grid_build", n, grid_ns, 1);

    // Victim list + probe grid, fixed per node count so every kernel and
    // thread configuration times identical work.
    const std::size_t nv = static_cast<std::size_t>(
        std::min<long long>(victims_flag, n));
    std::vector<std::size_t> victims(nv);
    std::vector<Vec2> probes(nv);
    Rng pick(seed + 1);
    for (std::size_t j = 0; j < nv; ++j) {
      victims[j] = static_cast<std::size_t>(
          pick.uniform(0, static_cast<double>(n - 1)));
      probes[j] = {pick.uniform(0, cfg.field_side),
                   pick.uniform(0, cfg.field_side)};
    }

    for (const ObserveKernelInfo& kernel : observe_kernels()) {
      if (!kernel.runtime_ok) continue;
      if (!only_kernel.empty() && only_kernel != kernel.name) continue;
      LAD_REQUIRE_MSG(force_observe_kernel(kernel.name),
                      "cannot force kernel " << kernel.name);
      ObservationBatch batch;
      net.observe_many(victims, batch);  // warm caches + batch buffer
      const double many_ns = best_ns(reps, [&] {
        net.observe_many(victims, batch);
      });
      add_result(report, std::string("observe_many/") + kernel.name, n,
                 many_ns / static_cast<double>(nv),
                 static_cast<long long>(nv));

      const double grid_obs_ns = best_ns(reps, [&] {
        net.observe_grid(probes, batch);
      });
      add_result(report, std::string("observe_grid/") + kernel.name, n,
                 grid_obs_ns / static_cast<double>(nv),
                 static_cast<long long>(nv));

      // Thread fan-out over victim chunks (the embarrassingly parallel
      // shape the Pipeline passes use): each chunk owns its batch, so
      // results are schedule-independent by construction.
      if (threads > 1) {
        const std::size_t nchunks = static_cast<std::size_t>(threads) * 4;
        const std::size_t chunk = (nv + nchunks - 1) / nchunks;
        std::vector<ObservationBatch> batches(nchunks);
        const double fan_ns = best_ns(reps, [&] {
          parallel_for_items(
              nchunks,
              [&](std::size_t c) {
                const std::size_t lo = c * chunk;
                const std::size_t hi = std::min(nv, lo + chunk);
                if (lo >= hi) return;
                net.observe_many(
                    std::span<const std::size_t>(victims.data() + lo, hi - lo),
                    batches[c]);
              },
              threads);
        });
        add_result(report,
                   std::string("observe_many/") + kernel.name + "/t" +
                       std::to_string(threads),
                   n, fan_ns / static_cast<double>(nv),
                   static_cast<long long>(nv));
      }
    }
    force_observe_kernel(nullptr);
  }

  const std::string path = write_bench_json(report, out_dir);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
