// Scaling bench for the scoring passes and the scenario work-item
// scheduler: times the benign/attack Monte-Carlo passes per thread count
// (the flat per-victim fan-out), then a Figure-7-shaped dr-sweep scenario
// across threads x jobs combinations (concurrent work items on top of the
// per-pass fan-out, sharing one process-wide pool).  Results are
// byte-identical at every combination by construction, so the sweep
// measures scheduling only.
//
// Every run writes BENCH_scale_pipeline.json (see util/bench_json.h) so
// the perf trajectory is trackable across PRs:
//
//   bench/scale_pipeline                   # full sweep, JSON in cwd
//   bench/scale_pipeline --quick           # CI smoke: tiny sizes, 1 rep
//   bench/scale_pipeline --threads 1,8 --jobs 1,4 --out bench
//
// The "threads" JSON header field records the largest thread count the
// sweep touched; each result row carries its own t<threads>_j<jobs> tag.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/adversary.h"
#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "sim/pipeline.h"
#include "sim/scenario.h"
#include "util/bench_json.h"
#include "util/flags.h"

namespace lad::bench {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::nano>(b - a).count();
}

/// Best-of-reps wall time for fn(), in ns.
template <class Fn>
double best_ns(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    const double ns = elapsed_ns(t0, t1);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

void add_result(BenchReport& report, const std::string& name,
                long long size, double ns_per_op, long long ops) {
  report.results.push_back({name, size, ns_per_op, ops});
  std::printf("  %-28s %14.1f ns/op  (%lld ops)\n", name.c_str(), ns_per_op,
              ops);
}

/// The Figure 7 workload (DR vs damage at three compromise fractions) on
/// the bench's pipeline sizes - the shape whose wall time the jobs knob
/// is meant to cut.
ScenarioSpec fig07_shaped_spec(const PipelineConfig& pipeline, bool quick) {
  ScenarioSpec spec;
  spec.name = "scale_pipeline_fig07";
  spec.kind = ExperimentKind::kDrSweep;
  spec.pipeline = pipeline;
  spec.shapes = {DeploymentShape::kGrid};
  spec.localizers = {"beaconless-mle"};
  spec.metrics = {MetricKind::kDiff};
  spec.attacks = {AttackClass::kDecBounded};
  spec.actual_sigmas = {0.0};
  spec.jitters = {0.0};
  spec.compromised = quick ? std::vector<double>{0.10, 0.30}
                           : std::vector<double>{0.10, 0.20, 0.30};
  spec.damages.clear();
  for (double d = 40.0; d <= 160.0; d += quick ? 60.0 : 20.0) {
    spec.damages.push_back(d);
  }
  spec.fp_budget = 0.01;
  return spec;
}

}  // namespace
}  // namespace lad::bench

int main(int argc, char** argv) {
  using namespace lad;
  using namespace lad::bench;

  const Flags flags = Flags::parse(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const std::vector<long long> thread_counts = flags.get_int_list(
      "threads", quick ? std::vector<long long>{1, 2}
                       : std::vector<long long>{1, 2, 4, 8});
  const std::vector<long long> job_counts = flags.get_int_list(
      "jobs", quick ? std::vector<long long>{1, 2}
                    : std::vector<long long>{1, 2, 4});
  const int reps = static_cast<int>(flags.get_int("reps", quick ? 1 : 3));
  const int networks =
      static_cast<int>(flags.get_int("networks", quick ? 4 : 10));
  const int victims =
      static_cast<int>(flags.get_int("victims", quick ? 50 : 200));
  const std::string out_dir = flags.get_string("out", "");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20050404));
  const std::vector<std::string> leftovers = flags.unused();
  if (!leftovers.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", leftovers.front().c_str());
    return 2;
  }

  PipelineConfig cfg;
  cfg.networks = networks;
  cfg.victims_per_network = victims;
  cfg.seed = seed;

  BenchReport report;
  report.name = "scale_pipeline";
  report.threads = static_cast<int>(
      *std::max_element(thread_counts.begin(), thread_counts.end()));
  fill_bench_environment(report);

  const long long samples =
      static_cast<long long>(networks) * victims;
  std::printf("scale_pipeline: networks=%d victims=%d reps=%d\n", networks,
              victims, reps);

  // --- per-pass thread fan-out (one pipeline, repeated passes) ----------
  for (const long long t : thread_counts) {
    cfg.threads = static_cast<int>(t);
    Pipeline pipeline(cfg);
    const LocalizerFactory factory =
        beaconless_mle_factory(pipeline.model(), pipeline.gz());
    const std::vector<MetricKind> metrics = {MetricKind::kDiff};

    const double benign_ns = best_ns(reps, [&] {
      pipeline.benign_scores(factory, metrics);
    });
    add_result(report, "benign_scores/t" + std::to_string(t), samples,
               benign_ns / static_cast<double>(samples), samples);

    AttackSpec attack;  // defaults: Diff / Dec-Bounded / D=120 / x=0.1
    const double attack_ns = best_ns(reps, [&] {
      pipeline.attack_scores(attack);
    });
    add_result(report, "attack_scores/t" + std::to_string(t), samples,
               attack_ns / static_cast<double>(samples), samples);
  }

  // --- scenario work items: threads x jobs ------------------------------
  // Fresh runner per rep so the shared-state caches (pipelines, benign
  // passes, group fits) are rebuilt - the timed quantity is a cold
  // end-to-end scenario run, which is what the CLI user experiences.
  for (const long long t : thread_counts) {
    for (const long long j : job_counts) {
      ScenarioSpec spec = fig07_shaped_spec(cfg, quick);
      spec.pipeline.threads = static_cast<int>(t);
      spec.jobs = static_cast<int>(j);
      const long long items = ScenarioRunner(spec).num_items();
      const double run_ns = best_ns(reps, [&] {
        ScenarioRunner runner(spec);
        runner.run();
      });
      add_result(report,
                 "dr_sweep/t" + std::to_string(t) + "_j" + std::to_string(j),
                 items, run_ns / static_cast<double>(items), items);
    }
  }

  const std::string path = write_bench_json(report, out_dir);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
