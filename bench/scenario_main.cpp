#include "scenario_main.h"

#include <iostream>

#include "common.h"
#include "sim/scenario.h"
#include "util/assert.h"
#include "util/flags.h"

// Compile-time default location of the checked-in specs; the build points
// this at <source>/bench/scenarios so the binaries run from anywhere.
#ifndef LAD_SCENARIO_DIR
#define LAD_SCENARIO_DIR "bench/scenarios"
#endif

namespace lad::bench {

int scenario_main(int argc, char** argv, const std::string& scn_filename) {
  try {
    const Flags flags = Flags::parse(argc, argv);
    const std::string path = flags.get_string(
        "scenario", std::string(LAD_SCENARIO_DIR) + "/" + scn_filename);

    const ScenarioOverrides overrides = overrides_from_flags(flags);
    const bool csv = flags.get_bool("csv", false);
    check_unused(flags);

    const ScenarioSpec spec =
        apply_overrides(ScenarioSpec::load(path), overrides);
    banner(spec.title, "scenario: " + path);

    ScenarioRunner runner(spec);
    const ScenarioResult result = runner.run();

    BenchOptions emit_opts;
    emit_opts.csv = csv;
    for (const ResultTable& t : result.tables) {
      emit(emit_opts, t.id, t.table);
    }
    if (!spec.note.empty()) std::cout << "\n" << spec.note << "\n";
    return 0;
  } catch (const AssertionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace lad::bench
