// Shared main() body for the thin figure/table wrappers: every bench
// binary is now `return scenario_main(argc, argv, "<spec>.scn")` over a
// checked-in spec in bench/scenarios/.
#pragma once

#include <string>

namespace lad::bench {

/// Loads the named spec from bench/scenarios (path overridable with
/// --scenario <file>), applies the common flags (--quick, --csv, --seed,
/// --m, --r, --sigma, --networks, --victims, --threads), runs the
/// scenario, and prints its result tables plus the spec's note.
int scenario_main(int argc, char** argv, const std::string& scn_filename);

}  // namespace lad::bench
