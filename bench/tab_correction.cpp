// Section 8's ultimate goal: "not only to detect the anomalies, but also
// to correct the errors caused by the anomalies."  The paper leaves
// correction open; this bench measures how far trimmed-ML re-estimation
// (core/corrector.h) gets.
//
// Per (attack class, D): the attacker plants Le at distance D and taints
// the observation with the greedy Diff-minimizing procedure (x = 10%).
// We report the residual error of accepting Le (= D by construction), the
// error of the corrector's re-estimate, and the benign-MLE floor.
//
// Expected outcome: Dec-Only taints are corrected down to near the benign
// floor (silences cannot move the surviving evidence), while Dec-Bounded
// taints - which forge a convincing second bump - are only partially
// correctable, confirming why the paper treats correction as open.
#include <iostream>

#include "attack/displacement.h"
#include "attack/greedy.h"
#include "common.h"
#include "util/string_util.h"
#include "core/corrector.h"
#include "loc/beaconless_mle.h"
#include "stats/running_stats.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages =
      flags.get_double_list("d", {80, 120, 160, 240});
  const double x = flags.get_double("x", 0.10);
  const int trials = static_cast<int>(flags.get_int("trials", opts.quick ? 60 : 300));
  bench::check_unused(flags);

  bench::banner("Table - location correction (Section 8 future work)",
                "capped-likelihood re-estimation; M(greedy target) = Diff, x = " +
                    format_double(x * 100, 0) + "%");

  const DeploymentConfig& dcfg = opts.pipeline.deploy;
  const DeploymentModel model(dcfg);
  const GzTable gz({dcfg.radio_range, dcfg.sigma});
  Rng rng(opts.seed);
  const Network net(model, rng);
  const BeaconlessMleLocalizer mle(model, gz);
  const LocationCorrector corrector(model, gz);

  // Benign floor: corrector error on untainted observations.
  RunningStats benign_floor;
  for (int t = 0; t < trials; ++t) {
    std::size_t node;
    do {
      node = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    } while (!dcfg.field().contains(net.position(node)));
    benign_floor.add(distance(corrector.correct(net.observe(node)).corrected,
                              net.position(node)));
  }

  Table table({"attack", "D", "err_accepting_Le", "err_corrected_mean",
               "err_corrected_p90", "recovered_frac"});
  for (AttackClass cls : {AttackClass::kDecOnly, AttackClass::kDecBounded}) {
    for (double d : damages) {
      RunningStats err;
      std::vector<double> errs;
      Rng trial_rng(opts.seed + static_cast<std::uint64_t>(d) * 7 +
                    (cls == AttackClass::kDecOnly ? 1 : 2));
      for (int t = 0; t < trials; ++t) {
        std::size_t node;
        do {
          node = static_cast<std::size_t>(
              trial_rng.uniform_int(net.num_nodes()));
        } while (!dcfg.field().contains(net.position(node)));
        const Observation a = net.observe(node);
        const Vec2 la = net.position(node);
        const Vec2 le = displaced_location(la, d, dcfg.field(), trial_rng);
        const ExpectedObservation mu = model.expected_observation(le, gz);
        const TaintResult taint =
            greedy_taint(a, mu, dcfg.nodes_per_group, MetricKind::kDiff, cls,
                         static_cast<int>(x * a.total()));
        const Vec2 corrected = corrector.correct(taint.tainted).corrected;
        const double e = distance(corrected, la);
        err.add(e);
        errs.push_back(e);
      }
      std::sort(errs.begin(), errs.end());
      const double p90 = errs[static_cast<std::size_t>(0.9 * (errs.size() - 1))];
      // "Recovered": corrected error below half the planted damage.
      int recovered = 0;
      for (double e : errs) {
        if (e < d / 2.0) ++recovered;
      }
      table.new_row()
          .add(attack_class_name(cls))
          .add(d, 0)
          .add(d, 0)
          .add(err.mean(), 1)
          .add(p90, 1)
          .add(static_cast<double>(recovered) / trials, 3);
    }
  }
  bench::emit(opts, "corrected location error", table);
  std::cout << "\nbenign corrector floor: mean "
            << format_double(benign_floor.mean(), 1) << " m (p-max "
            << format_double(benign_floor.max(), 1) << " m) over " << trials
            << " sensors\n";
  std::cout << "\nchecks: Dec-Only errors collapse to near the benign floor; "
               "Dec-Bounded correction\nis partial and degrades with D - "
               "consistent with the paper leaving correction as\nan open "
               "problem under the strongest adversary.\n";
  return 0;
}
