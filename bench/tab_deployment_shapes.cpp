// Section 3.1 extension: "the scheme we developed for grid-based
// deployment can be easily extended to other deployment strategies, such
// as deployments where the deployment points form hexagon shapes, or
// deployments where the deployment points are random (as long as their
// locations are given to all sensors)."
//
// This table runs the Fig-7-style experiment under the three layouts.  The
// claim to verify: LAD's behaviour (FP-controlled thresholds, DR rising
// with D) carries over unchanged, because nothing in the detector depends
// on the layout - only g(z) and the per-group deployment points do.
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  opts.pipeline.networks = opts.quick ? 2 : 6;
  opts.pipeline.victims_per_network = opts.quick ? 50 : 150;
  const std::vector<double> damages = flags.get_double_list("d", {80, 120, 160});
  bench::check_unused(flags);

  bench::banner("Table - deployment-point layouts (Section 3.1 extension)",
                "M = Diff, T = Dec-Bounded, x = 10%, FP = 1%");

  Table table({"layout", "groups", "mle_loc_error", "threshold", "DR@D=80",
               "DR@D=120", "DR@D=160"});
  for (const auto& [label, shape] :
       std::vector<std::pair<std::string, DeploymentShape>>{
           {"grid (paper)", DeploymentShape::kGrid},
           {"hexagonal", DeploymentShape::kHex},
           {"random-known", DeploymentShape::kRandom}}) {
    PipelineConfig cfg = opts.pipeline;
    cfg.shape = shape;
    Pipeline pipeline(cfg);
    const LocalizerFactory factory =
        beaconless_mle_factory(pipeline.model(), pipeline.gz());
    const double loc_err = pipeline.mean_localization_error(factory);
    const auto points =
        run_dr_sweep(pipeline, factory, MetricKind::kDiff,
                     AttackClass::kDecBounded, damages, {0.10}, 0.01);
    table.new_row()
        .add(label)
        .add(pipeline.model().num_groups())
        .add(loc_err, 2)
        .add(points[0].threshold, 2);
    for (const auto& p : points) table.add(p.detection_rate, 4);
  }
  bench::emit(opts, "LAD across deployment layouts", table);

  std::cout << "\nchecks: detection quality is layout-independent up to the "
               "layout's effect on\nlocalization accuracy (random layouts "
               "have uneven coverage, hence slightly noisier\nbenign scores) "
               "- the generality Section 3.1 asserts.\n";
  return 0;
}
