// Section 2.2 comparison: LAD vs the Echo location-verification protocol
// (ref. [34]).  The paper's contrasts, quantified:
//   1. "the Echo protocol only verifies whether a node is inside a region"
//      - and only against claims *closer* to a verifier than the prover
//      really is; outward displacement passes.
//   2. "our approach does not need those special signals" - Echo's
//      detection is gated on verifier coverage; LAD works everywhere the
//      deployment knowledge does.
//
// Experiment: sensors claim locations displaced by D (the D-anomaly, with
// the Dec-Bounded greedy taint for LAD's observation); Echo verifies the
// claim by timing (the attacker delays optimally - it can always stretch
// the echo, never shrink it); LAD checks observation consistency.
#include <iostream>

#include "attack/displacement.h"
#include "attack/greedy.h"
#include "common.h"
#include "core/lad.h"
#include "loc/beaconless_mle.h"
#include "loc/echo.h"
#include "util/string_util.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages = flags.get_double_list("d", {80, 160, 240});
  const int trials = static_cast<int>(flags.get_int("trials", opts.quick ? 80 : 400));
  bench::check_unused(flags);

  bench::banner("Table - LAD vs the Echo protocol (Section 2.2)",
                "Echo: 4x4 ultrasound verifiers, 200 m range; attacker "
                "delays the echo optimally.  LAD: Diff metric, tau = 99%.");

  const DeploymentConfig& dcfg = opts.pipeline.deploy;
  const DeploymentModel model(dcfg);
  const GzTable gz({dcfg.radio_range, dcfg.sigma});
  Rng rng(opts.seed);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);
  const EchoProtocol echo = EchoProtocol::grid(dcfg.field(), 4, 4, 200.0);

  // Train LAD.
  const DiffMetric diff;
  std::vector<double> benign;
  for (int i = 0; i < 400; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    benign.push_back(diff.score(obs,
                                model.expected_observation(
                                    localizer.estimate(obs), gz),
                                dcfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(MetricKind::kDiff, benign, 0.99).threshold;
  const Detector detector(model, gz, MetricKind::kDiff, threshold);

  std::cout << "Echo field coverage: "
            << format_double(echo.coverage(dcfg.field()), 3) << "\n";

  Table table({"D", "echo_rejected", "echo_accepted", "echo_uncovered",
               "echo_DR", "lad_DR"});
  for (double d : damages) {
    int rejected = 0, accepted = 0, uncovered = 0, lad_detected = 0;
    Rng trial_rng(opts.seed + static_cast<std::uint64_t>(d));
    for (int t = 0; t < trials; ++t) {
      std::size_t node;
      do {
        node = static_cast<std::size_t>(trial_rng.uniform_int(net.num_nodes()));
      } while (!dcfg.field().contains(net.position(node)));
      const Vec2 la = net.position(node);
      const Vec2 claimed = displaced_location(la, d, dcfg.field(), trial_rng);

      // Echo: the attacker stretches the echo so the prover looks exactly
      // as far as claimed whenever that helps (delay >= 0 only).
      // Optimal delay per verifier is handled inside verify(): delay can
      // only help when the claim is farther than reality, so passing the
      // best-case large delay is equivalent to delay = max(0, needed).
      // We give the attacker the most favorable single choice by testing
      // with the exact delay that matches the *nearest covering verifier*.
      int verdict = echo.verify(claimed, la, 0.0);
      if (verdict == -1) {
        // Try an arbitrarily stretched echo: only changes outcomes where
        // reality is closer than the claim (then it was accepted anyway),
        // so a rejected claim stays rejected; modeled explicitly:
        verdict = echo.verify(claimed, la, 10.0) == 1 ? 1 : -1;
      }
      if (verdict == 0) ++uncovered;
      else if (verdict == 1) ++accepted;
      else ++rejected;

      // LAD on the tainted observation at the claimed location.
      const Observation a = net.observe(node);
      const ExpectedObservation mu = model.expected_observation(claimed, gz);
      const TaintResult taint = greedy_taint(
          a, mu, dcfg.nodes_per_group, MetricKind::kDiff,
          AttackClass::kDecBounded, static_cast<int>(0.10 * a.total()));
      if (detector.check(taint.tainted, claimed).anomaly) ++lad_detected;
    }
    table.new_row()
        .add(d, 0)
        .add(rejected)
        .add(accepted)
        .add(uncovered)
        .add(static_cast<double>(rejected) / trials, 3)
        .add(static_cast<double>(lad_detected) / trials, 3);
  }
  bench::emit(opts, "spoofed-claim detection: Echo vs LAD", table);

  std::cout << "\nchecks: Echo only rejects the ~half of displacements that "
               "move the claim closer to\na covering verifier (and nothing "
               "outside coverage); LAD's consistency check has no\n"
               "directional blind spot and needs no ultrasound hardware - "
               "the Section 2.2 contrast.\n";
  return 0;
}
