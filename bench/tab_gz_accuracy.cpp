// Section 3.3 ablation: g(z) lookup-table resolution.
//
// The paper claims "to gain satisfactory level of accuracy, omega does not
// need to be very large."  This table quantifies that: max interpolation
// error and the induced worst-case error on mu_i = m * g(z), per omega.
#include <iostream>

#include "common.h"
#include "util/string_util.h"
#include "deploy/gz_table.h"
#include "util/timer.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bench::BenchOptions opts = bench::parse_common_flags(flags);
  bench::check_unused(flags);

  bench::banner("Table - g(z) lookup-table accuracy vs omega (Section 3.3)",
                "R = " + format_double(opts.pipeline.deploy.radio_range, 0) +
                    ", sigma = " + format_double(opts.pipeline.deploy.sigma, 0) +
                    ", m = " +
                    std::to_string(opts.pipeline.deploy.nodes_per_group));

  const GzParams params{opts.pipeline.deploy.radio_range,
                        opts.pipeline.deploy.sigma};
  const int m = opts.pipeline.deploy.nodes_per_group;

  Table table({"omega", "max_abs_error", "max_mu_error(nodes)",
               "build_time_ms", "table_bytes"});
  for (int omega : {8, 16, 32, 64, 128, 256, 512, 1024, 4096}) {
    Timer t;
    const GzTable table_omega(params, omega);
    const double build_ms = t.millis();
    const double err = table_omega.max_abs_error(2000);
    table.new_row()
        .add(omega)
        .add(err, 8)
        .add(err * m, 5)
        .add(build_ms, 2)
        .add(static_cast<long long>((omega + 1) * sizeof(double)));
  }
  bench::emit(opts, "interpolation error vs omega", table);

  std::cout << "\nchecks: at omega = 256 the worst-case expected-neighbor "
               "error is far below one node,\nconfirming the paper's claim "
               "that omega need not be large (a 2 KB table suffices).\n";
  return 0;
}
