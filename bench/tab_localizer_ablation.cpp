// Section 7.2 ablation: LAD is independent of the localization scheme.
//
// The paper evaluates LAD only on the beaconless scheme [8] and argues the
// methodology carries over.  This table runs the identical Fig-7-style
// experiment under five localization schemes and reports per-scheme
// localization error, trained threshold, and detection rates - the
// paper-level claim is that detection at large D stays high for all of
// them, while the threshold tracks each scheme's error.
#include <iostream>

#include "common.h"
#include "loc/amorphous.h"
#include "loc/beaconless_mle.h"
#include "loc/dvhop.h"
#include "loc/truth_noise.h"
#include "loc/weighted_centroid.h"
#include "sim/experiment.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  // Hop-flooding schemes are expensive at m = 300; a 150-per-group network
  // keeps this table fast while preserving the comparison.
  opts.pipeline.deploy.nodes_per_group =
      static_cast<int>(flags.get_int("m_ablation", opts.quick ? 60 : 150));
  opts.pipeline.networks = opts.quick ? 2 : 4;
  opts.pipeline.victims_per_network = opts.quick ? 40 : 120;
  const std::vector<double> damages = flags.get_double_list("d", {80, 160});
  const double x = flags.get_double("x", 0.10);
  const double fp = flags.get_double("fp", 0.01);
  bench::check_unused(flags);

  bench::banner("Table - LAD x localization scheme (Section 7.2)",
                "m = " + std::to_string(opts.pipeline.deploy.nodes_per_group) +
                    ", M = Diff, T = Dec-Bounded, FP = 1%");

  Pipeline pipeline(opts.pipeline);

  struct Scheme {
    std::string label;
    LocalizerFactory factory;
  };
  std::vector<Scheme> schemes;
  schemes.push_back(
      {"beaconless-mle",
       beaconless_mle_factory(pipeline.model(), pipeline.gz())});
  schemes.push_back({"weighted-centroid", [&](std::uint64_t) {
                       return std::make_unique<WeightedCentroidLocalizer>(
                           pipeline.model());
                     }});
  schemes.push_back({"dv-hop", [](std::uint64_t) {
                       return std::make_unique<DvHopLocalizer>(4, 4);
                     }});
  schemes.push_back({"amorphous", [](std::uint64_t) {
                       return std::make_unique<AmorphousLocalizer>(4, 4);
                     }});
  schemes.push_back({"truth+noise(10m)", [](std::uint64_t seed) {
                       return std::make_unique<TruthNoiseLocalizer>(10.0, seed);
                     }});

  Table table({"scheme", "mean_loc_error", "threshold", "DR@D=80",
               "DR@D=160"});
  for (const Scheme& s : schemes) {
    const double loc_err = pipeline.mean_localization_error(s.factory);
    const auto points = run_dr_sweep(pipeline, s.factory, MetricKind::kDiff,
                                     AttackClass::kDecBounded, damages, {x},
                                     fp);
    table.new_row().add(s.label).add(loc_err, 2).add(points[0].threshold, 2);
    for (const auto& p : points) table.add(p.detection_rate, 4);
  }
  bench::emit(opts, "detection under different localization schemes", table);

  std::cout << "\nchecks: the trained threshold tracks each scheme's benign "
               "error; less accurate schemes\nsacrifice detection at small "
               "D first - exactly the scheme-dependence of Section 7.2\n"
               "(\"for different schemes, the detection threshold derived "
               "from training will be\ndifferent; thus the false positive "
               "and the detection rate will be different\").\n";
  return 0;
}
