// Metric-fusion ablation (extension beyond the paper).
//
// Each metric is trained at the same tau; the fusion detector alarms when
// ANY metric exceeds its threshold.  The interesting adversarial case: the
// greedy attacker optimizes its taint against ONE metric (it must commit -
// the taints conflict), so a fused detector can catch what the targeted
// metric misses.  For each "attacker targets metric X" scenario we report
// the DR of every single-metric detector and of the fusion.
#include <iostream>

#include "common.h"
#include "util/string_util.h"
#include "core/fusion.h"
#include "core/trainer.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const double d = flags.get_double("d", 100.0);
  const double x = flags.get_double("x", 0.10);
  const double tau = flags.get_double("tau", 0.99);
  bench::check_unused(flags);

  bench::banner("Table - metric fusion (extension)",
                "D = " + format_double(d, 0) + ", x = " +
                    format_double(x * 100, 0) + "%, tau = " +
                    format_double(tau, 3) + ", T = Dec-Bounded");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const std::vector<MetricKind> kinds = {
      MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb};
  auto benign = pipeline.benign_scores(factory, kinds);

  // Train each metric at the same tau.
  std::map<MetricKind, double> thresholds;
  for (MetricKind k : kinds) {
    thresholds[k] = train_threshold(k, benign.at(k), tau).threshold;
  }

  // Benign FP of the fusion: fraction of samples where any ratio > 1
  // (computed sample-wise: the per-metric benign vectors share victims).
  const std::size_t n = benign.at(MetricKind::kDiff).size();
  int fused_fp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (MetricKind k : kinds) {
      if (benign.at(k)[i] > thresholds[k]) any = true;
    }
    if (any) ++fused_fp;
  }

  Table table({"attacker_targets", "DR_diff", "DR_add-all", "DR_prob",
               "DR_fusion"});
  for (MetricKind target : kinds) {
    // The attacker commits to minimizing `target`; every detector then
    // scores the same tainted observations.  Pipeline scores are computed
    // per metric, so we regenerate the taint per (target, scorer) pair via
    // AttackSpec: the greedy uses spec.metric for BOTH taint and scoring.
    // For cross-scoring we need taint(target) scored by scorer - done via
    // the fusion-specific evaluation below.
    AttackSpec spec;
    spec.metric = target;
    spec.attack_class = AttackClass::kDecBounded;
    spec.damage = d;
    spec.compromised_frac = x;
    const auto cross = pipeline.attack_scores_cross(spec, kinds);

    table.new_row().add(metric_name(target));
    std::vector<char> fused_hit(cross.begin()->second.size(), 0);
    for (MetricKind scorer : kinds) {
      const auto& scores = cross.at(scorer);
      table.add(fraction_above(scores, thresholds[scorer]), 4);
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] > thresholds[scorer]) fused_hit[i] = 1;
      }
    }
    int hits = 0;
    for (char h : fused_hit) hits += h;
    table.add(static_cast<double>(hits) / static_cast<double>(fused_hit.size()),
              4);
  }
  bench::emit(opts, "attacker-vs-detector matrix", table);

  std::cout << "\nfusion benign FP at per-metric tau=" << tau << ": "
            << format_double(static_cast<double>(fused_fp) / n, 4)
            << " (union bound of the three " << format_double(1 - tau, 3)
            << " rates)\n";
  std::cout << "\nchecks: the fusion column dominates each row's targeted "
               "metric - an attacker that\nevades its targeted metric is "
               "caught by another, at the cost of a fused FP about\nthe sum "
               "of the single-metric FPs.\n";
  return 0;
}
