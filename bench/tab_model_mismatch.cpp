// Section 8 future work: "the accuracy of the deployment knowledge model.
// If this model cannot accurately model the actual deployment, there will
// be extra errors (both on false positive and detection rate)."
//
// Two mismatch axes, measured against the paper's Fig-7-style experiment:
//  * sigma mismatch: sensors scatter with sigma_actual while the knowledge
//    model (training, g(z), MLE) keeps sigma = 50;
//  * deployment-point jitter: the actual release points are offset by a
//    Gaussian of the given std-dev (off-target airdrop) while the
//    knowledge keeps the nominal grid.
// Reported: realized FP of a threshold trained *on the mismatched world*
// at nominal 1%, the threshold inflation, and DR at D in {80, 160}.
#include <iostream>

#include "common.h"
#include "sim/experiment.h"

using namespace lad;

namespace {

void run_axis(const bench::BenchOptions& base, const std::string& label,
              const std::vector<double>& values,
              void (*apply)(PipelineConfig&, double)) {
  Table table({label, "mle_loc_error", "threshold", "DR@D=80", "DR@D=160"});
  for (double v : values) {
    PipelineConfig cfg = base.pipeline;
    apply(cfg, v);
    Pipeline pipeline(cfg);
    const LocalizerFactory factory =
        beaconless_mle_factory(pipeline.model(), pipeline.gz());
    const double loc_err = pipeline.mean_localization_error(factory);
    const auto points =
        run_dr_sweep(pipeline, factory, MetricKind::kDiff,
                     AttackClass::kDecBounded, {80.0, 160.0}, {0.10}, 0.01);
    table.new_row().add(v, 1).add(loc_err, 2).add(points[0].threshold, 2);
    for (const auto& p : points) table.add(p.detection_rate, 4);
  }
  bench::emit(base, label + " mismatch", table);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  opts.pipeline.networks = opts.quick ? 2 : 6;
  opts.pipeline.victims_per_network = opts.quick ? 50 : 150;
  bench::check_unused(flags);

  bench::banner("Table - deployment-knowledge mismatch (Section 8)",
                "knowledge sigma = 50, grid points; reality deviates; "
                "M = Diff, T = Dec-Bounded, x = 10%, FP = 1%");

  run_axis(opts, "actual_sigma", {50.0, 60.0, 75.0, 100.0},
           [](PipelineConfig& cfg, double v) { cfg.actual_sigma = v; });
  run_axis(opts, "deployment_jitter_m", {0.0, 10.0, 25.0, 50.0},
           [](PipelineConfig& cfg, double v) { cfg.deployment_jitter = v; });

  std::cout << "\nchecks: mismatch widens the benign score distribution, so "
               "the trained threshold\ninflates and detection of small-D "
               "attacks erodes first - the error structure the\npaper "
               "anticipated for inaccurate deployment knowledge.\n";
  return 0;
}
