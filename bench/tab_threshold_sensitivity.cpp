// Section 5.5's robustness claim: "our method has a high detection rate
// and low false positive rate for large localization errors introduced by
// attacks, even if the anomaly detection thresholds are not optimally
// selected."
//
// Two sweeps quantify that:
//  * tau sweep: thresholds trained at tau in {90%, 95%, 99%, 99.9%};
//  * fudge sweep: the tau = 99% threshold scaled by 0.5x ... 2x
//    (simulating badly calibrated training).
// For each setting: realized FP on held-out benign samples and DR at
// D in {60, 120, 200}.
#include <iostream>

#include "common.h"
#include "core/trainer.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"

using namespace lad;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  bench::BenchOptions opts = bench::parse_common_flags(flags);
  const std::vector<double> damages = flags.get_double_list("d", {60, 120, 200});
  bench::check_unused(flags);

  bench::banner("Table - threshold sensitivity (Section 5.5)",
                "m = " + std::to_string(opts.pipeline.deploy.nodes_per_group) +
                    ", M = Diff, T = Dec-Bounded, x = 10%");

  Pipeline pipeline(opts.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  auto benign = pipeline.benign_scores(factory, {MetricKind::kDiff});
  const std::vector<double>& scores = benign.at(MetricKind::kDiff);

  std::vector<std::vector<double>> attack_scores;
  for (double d : damages) {
    AttackSpec spec;
    spec.metric = MetricKind::kDiff;
    spec.attack_class = AttackClass::kDecBounded;
    spec.damage = d;
    spec.compromised_frac = 0.10;
    attack_scores.push_back(pipeline.attack_scores(spec));
  }

  auto emit_row = [&](Table& t, double threshold) {
    t.add(threshold, 2).add(fraction_above(scores, threshold), 4);
    for (const auto& att : attack_scores) {
      t.add(fraction_above(att, threshold), 4);
    }
  };

  Table tau_table({"tau", "threshold", "FP", "DR@D=60", "DR@D=120",
                   "DR@D=200"});
  for (double tau : {0.90, 0.95, 0.99, 0.999}) {
    const TrainingResult r =
        train_threshold(MetricKind::kDiff, scores, tau);
    tau_table.new_row().add(tau, 3);
    emit_row(tau_table, r.threshold);
  }
  bench::emit(opts, "tau sweep", tau_table);

  const double t99 = train_threshold(MetricKind::kDiff, scores, 0.99).threshold;
  Table fudge_table({"fudge", "threshold", "FP", "DR@D=60", "DR@D=120",
                     "DR@D=200"});
  for (double fudge : {0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
    fudge_table.new_row().add(fudge, 2);
    emit_row(fudge_table, t99 * fudge);
  }
  bench::emit(opts, "miscalibration sweep (tau=99% threshold scaled)",
              fudge_table);

  std::cout << "\nchecks: at D = 200 the detection rate stays ~1 across the "
               "whole 0.5x..2x threshold\nrange - the paper's claim that "
               "high-impact anomalies are insensitive to threshold\n"
               "quality; small-D detection is what miscalibration costs.\n";
  return 0;
}
