// Thin wrapper over the checked-in spec bench/scenarios/tab_time_evolving.scn -
// the round/budget schedule, sample counts, and context live in the spec,
// and the scenario engine (sim/scenario.h) does the rest.
#include "scenario_main.h"

int main(int argc, char** argv) {
  return lad::bench::scenario_main(argc, argv, "tab_time_evolving.scn");
}
