# Resolves GoogleTest: prefer an installed copy (config or find-module),
# fall back to FetchContent for networked environments without one.
find_package(GTest QUIET)

if(NOT TARGET GTest::gtest_main)
  message(STATUS "lad: no system GoogleTest; fetching v1.14.0 via FetchContent")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
  # Match the parent project's runtime on MSVC; never install gtest with us.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

include(GoogleTest)
