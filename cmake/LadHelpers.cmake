# Helper functions shared by every per-layer CMakeLists.

# Applies the LAD_WERROR gate to one project target.  Only targets created
# through these helpers (plus lad_lint_core) opt in, so third-party code
# (FetchContent gtest) never breaks the -Werror build.
function(lad_apply_werror name)
  if(LAD_WERROR)
    target_compile_options(${name} PRIVATE
      $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Werror>)
  endif()
endfunction()

# Applies the project warning set to one target.  The whole tree — every
# layer, test, tool, and bench — compiles under -Wall -Wextra -Wshadow
# -Wconversion, so numeric narrowing and shadowed names must be spelled
# out everywhere, not just in the hot-path layers where the set started.
function(lad_apply_warnings name)
  if(LAD_WARNINGS)
    target_compile_options(${name} PRIVATE
      $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall;-Wextra;-Wshadow;-Wconversion>)
  endif()
endfunction()

# lad_add_library(<name> SOURCES <cpp...> [DEPS <targets...>])
#
# Declares one static layer library rooted at src/.  Include paths and the
# C++ standard propagate PUBLIC-ly, so test/bench/example targets only need
# to link the layers they use and get the rest transitively.
function(lad_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(${name} STATIC ${ARG_SOURCES})
  add_library(lad::${name} ALIAS ${name})
  target_include_directories(${name} PUBLIC "${PROJECT_SOURCE_DIR}/src")
  target_compile_features(${name} PUBLIC cxx_std_20)
  if(ARG_DEPS)
    target_link_libraries(${name} PUBLIC ${ARG_DEPS})
  endif()
  lad_apply_warnings(${name})
  lad_apply_werror(${name})
endfunction()

# lad_add_test(<name> [LABEL <unit|e2e>] SOURCES <cpp...> [DEPS <targets...>])
#
# One gtest binary per layer.  Individual TEST() cases are discovered and
# registered with CTest, all carrying the given label so `ctest -L unit`
# and `ctest -L e2e` select disjoint subsets.
function(lad_add_test name)
  cmake_parse_arguments(ARG "" "LABEL" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_LABEL)
    set(ARG_LABEL unit)
  endif()
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE
    lad_test_support ${ARG_DEPS} GTest::gtest GTest::gtest_main)
  lad_apply_warnings(${name})
  lad_apply_werror(${name})
  gtest_discover_tests(${name}
    PROPERTIES LABELS ${ARG_LABEL}
    DISCOVERY_TIMEOUT 120)
endfunction()

# lad_add_program(<name> SOURCES <cpp...> [DEPS <targets...>] [IN_ALL])
#
# Bench/example binaries stay out of the default build; umbrella targets
# (`benches`, `examples`) build them on demand.  IN_ALL opts a binary into
# the default build (used for the ones exercised by CTest smoke tests).
function(lad_add_program name)
  cmake_parse_arguments(ARG "IN_ALL" "" "SOURCES;DEPS" ${ARGN})
  if(ARG_IN_ALL)
    add_executable(${name} ${ARG_SOURCES})
  else()
    add_executable(${name} EXCLUDE_FROM_ALL ${ARG_SOURCES})
  endif()
  target_link_libraries(${name} PRIVATE ${ARG_DEPS})
  lad_apply_warnings(${name})
  lad_apply_werror(${name})
endfunction()
