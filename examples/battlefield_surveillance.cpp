// Battlefield surveillance (the paper's motivating scenario, Section 1):
// "when sensor networks are used for battle field surveillance, if sensors
// are misled by enemies, such that their derived locations are far off,
// then when sensors report that their regions are safe, this wrong
// information can cause significant damage."
//
// The simulation: the field is divided into report regions; each sensor
// reports (its derived location, whether it senses an intrusion within its
// sensing radius).  The command post aggregates reports per region.  The
// adversary compromises the localization of sensors near the intrusion so
// their reports land in distant regions - the intruded region then looks
// quiet.  Running LAD on each report discards the inconsistent ones and
// restores the alarm.
#include <iostream>
#include <vector>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "geom/aabb.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"
#include "util/csv.h"

using namespace lad;

namespace {

constexpr double kSensingRadius = 80.0;
constexpr int kRegionsPerAxis = 5;  // 200 m x 200 m report regions

int region_of(Vec2 p, const Aabb& field) {
  const int cx = std::clamp(
      static_cast<int>(p.x / (field.width() / kRegionsPerAxis)), 0,
      kRegionsPerAxis - 1);
  const int cy = std::clamp(
      static_cast<int>(p.y / (field.height() / kRegionsPerAxis)), 0,
      kRegionsPerAxis - 1);
  return cy * kRegionsPerAxis + cx;
}

struct Report {
  Vec2 claimed_location;
  bool intrusion_sensed;
  Observation observation;  // attached for LAD verification
};

}  // namespace

int main() {
  DeploymentConfig cfg;
  cfg.nodes_per_group = 150;  // lighter density keeps the demo snappy
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma});
  Rng rng(1944);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);

  // Train LAD's Diff threshold at 99%.
  const DiffMetric diff;
  std::vector<double> benign;
  for (int i = 0; i < 300; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    benign.push_back(diff.score(obs,
                                model.expected_observation(
                                    localizer.estimate(obs), gz),
                                cfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(MetricKind::kDiff, benign, 0.99).threshold;
  const Detector detector(model, gz, MetricKind::kDiff, threshold);

  // The intrusion happens in region (2, 2) - the field center.
  const Vec2 intrusion{500.0, 500.0};
  const int hot_region = region_of(intrusion, cfg.field());
  std::cout << "intrusion at (500, 500), report region " << hot_region
            << "; LAD threshold " << threshold << "\n\n";

  // Sensors near the intrusion sense it; the adversary attacks exactly
  // those sensors' localization so their reports scatter elsewhere.
  std::vector<Report> reports;
  int attacked_count = 0;
  for (std::size_t node = 0; node < net.num_nodes(); node += 7) {
    const Vec2 truth = net.position(node);
    const bool senses = distance(truth, intrusion) <= kSensingRadius;
    const Observation a = net.observe(node);
    if (senses) {
      // Attack: plant a location 300 m away, taint with Dec-Bounded
      // greedy at 15% compromised neighbors.
      ++attacked_count;
      const Vec2 fake = displaced_location(truth, 300.0, cfg.field(), rng);
      const ExpectedObservation mu = model.expected_observation(fake, gz);
      const TaintResult taint = greedy_taint(
          a, mu, cfg.nodes_per_group, MetricKind::kDiff,
          AttackClass::kDecBounded, static_cast<int>(0.15 * a.total()));
      reports.push_back({fake, true, taint.tainted});
    } else {
      reports.push_back({localizer.estimate(a), false, a});
    }
  }
  std::cout << "sensors reporting: " << reports.size() << " (" << attacked_count
            << " intrusion witnesses, all with attacked localization)\n";

  // Aggregation without LAD: trust every claimed location.
  std::vector<int> naive_alarms(kRegionsPerAxis * kRegionsPerAxis, 0);
  for (const Report& r : reports) {
    if (r.intrusion_sensed) ++naive_alarms[region_of(r.claimed_location, cfg.field())];
  }

  // Aggregation with LAD: drop reports whose location is inconsistent.
  std::vector<int> lad_alarms(kRegionsPerAxis * kRegionsPerAxis, 0);
  int rejected = 0;
  for (const Report& r : reports) {
    if (detector.check(r.observation, r.claimed_location).anomaly) {
      ++rejected;
      continue;
    }
    if (r.intrusion_sensed) ++lad_alarms[region_of(r.claimed_location, cfg.field())];
  }

  Table table({"aggregation", "alarms_in_hot_region", "alarms_elsewhere",
               "reports_rejected"});
  auto elsewhere = [&](const std::vector<int>& alarms) {
    int total = 0;
    for (int reg = 0; reg < static_cast<int>(alarms.size()); ++reg) {
      if (reg != hot_region) total += alarms[static_cast<std::size_t>(reg)];
    }
    return total;
  };
  table.new_row()
      .add("naive (no LAD)")
      .add(naive_alarms[static_cast<std::size_t>(hot_region)])
      .add(elsewhere(naive_alarms))
      .add(0);
  table.new_row()
      .add("with LAD")
      .add(lad_alarms[static_cast<std::size_t>(hot_region)])
      .add(elsewhere(lad_alarms))
      .add(rejected);
  table.print(std::cout);

  std::cout << "\nWithout LAD the intrusion reports land in the wrong "
               "regions (the hot region looks safe);\nwith LAD the forged "
               "locations are rejected, so no region reports a phantom "
               "intrusion.\n";

  const bool misdirected = elsewhere(naive_alarms) > 0;
  const bool cleaned = elsewhere(lad_alarms) == 0;
  return misdirected && cleaned ? 0 : 1;
}
