// Detect-then-correct (the paper's Section 8 roadmap in one program):
// "Our ultimate goal is not only to detect the anomalies, but also to
// correct the errors caused by the anomalies."
//
// A sensor runs localization, LAD flags the result, and instead of just
// discarding the location the node re-estimates it with the robust
// corrector - restoring a usable position under Dec-Only attacks and
// reducing the damage under Dec-Bounded ones.
#include <iostream>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"
#include "util/csv.h"

using namespace lad;

int main() {
  DeploymentConfig cfg;
  cfg.nodes_per_group = 150;
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma});
  Rng rng(8);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);
  const LocationCorrector corrector(model, gz);

  // Train the detector.
  const DiffMetric diff;
  std::vector<double> benign;
  for (int i = 0; i < 300; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    benign.push_back(diff.score(obs,
                                model.expected_observation(
                                    localizer.estimate(obs), gz),
                                cfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(MetricKind::kDiff, benign, 0.99).threshold;
  const Detector detector(model, gz, MetricKind::kDiff, threshold);
  std::cout << "trained Diff threshold: " << threshold << "\n\n";

  // Attack a set of victims under both adversary classes and run the
  // detect -> correct pipeline on each.
  Table table({"attack", "victims", "detected", "mean_err_planted",
               "mean_err_corrected"});
  for (AttackClass cls : {AttackClass::kDecOnly, AttackClass::kDecBounded}) {
    int detected = 0;
    double err_planted = 0.0, err_corrected = 0.0;
    constexpr int kVictims = 40;
    constexpr double kDamage = 180.0;
    for (int i = 0; i < kVictims; ++i) {
      std::size_t node;
      do {
        node = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
      } while (!cfg.field().contains(net.position(node)));
      const Observation a = net.observe(node);
      const Vec2 la = net.position(node);
      const Vec2 fake = displaced_location(la, kDamage, cfg.field(), rng);
      const TaintResult taint = greedy_taint(
          a, model.expected_observation(fake, gz), cfg.nodes_per_group,
          MetricKind::kDiff, cls, static_cast<int>(0.10 * a.total()));

      // Step 1: LAD verdict on the claimed location.
      const Verdict v = detector.check(taint.tainted, fake);
      if (v.anomaly) ++detected;
      err_planted += distance(fake, la);

      // Step 2: if flagged, re-estimate from the observation instead of
      // accepting the planted location.
      const Vec2 usable =
          v.anomaly ? corrector.correct(taint.tainted).corrected : fake;
      err_corrected += distance(usable, la);
    }
    table.new_row()
        .add(attack_class_name(cls))
        .add(kVictims)
        .add(detected)
        .add(err_planted / kVictims, 1)
        .add(err_corrected / kVictims, 1);
  }
  table.print(std::cout);
  std::cout << "\nDetection turns a silent 180 m error into a known-bad "
               "location; correction then\nrecovers a usable position - "
               "fully under Dec-Only, partially under Dec-Bounded.\n";
  return 0;
}
