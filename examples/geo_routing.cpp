// Geographic routing (Section 1: "Location information is also important
// for geographic routing protocols ... used to select the next forwarding
// host among the sender's neighbors").
//
// The simulation implements greedy geographic forwarding (GPSR's greedy
// mode): each hop forwards to the neighbor whose *claimed* location is
// closest to the destination.  An adversary feeds a subset of nodes fake
// locations (the classic sinkhole setup: victims believe they sit next to
// everything).  We measure packet delivery with
//   (a) honest locations,
//   (b) attacked locations, trusted blindly,
//   (c) attacked locations with LAD: nodes that fail verification are
//       excluded from forwarding decisions.
#include <iostream>
#include <optional>
// lad-lint: allow(unordered-output) -- visited-set membership only; the
// set is never iterated, so its order cannot leak into the CSV.
#include <unordered_set>
#include <vector>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"
#include "util/csv.h"

using namespace lad;

namespace {

struct RoutingWorld {
  const Network* net;
  std::vector<Vec2> claimed;        // what each node advertises
  std::vector<bool> lad_rejected;   // nodes whose claim failed LAD
};

/// Greedy forwarding using claimed positions; returns hops or nullopt on
/// failure (loop/local-minimum/dead end).  `use_lad` skips rejected nodes.
std::optional<int> route(const RoutingWorld& world, std::size_t src,
                         std::size_t dst, bool use_lad) {
  const Network& net = *world.net;
  const Vec2 target = world.claimed[dst];
  std::size_t current = src;
  // lad-lint: allow(unordered-output) -- membership queries only, never
  // iterated; routing output depends on node ids, not set order.
  std::unordered_set<std::size_t> visited;
  for (int hops = 0; hops < 200; ++hops) {
    if (current == dst) return hops;
    visited.insert(current);
    // Forward to the neighbor whose claimed position is closest to the
    // destination (strictly closer than ours: greedy mode).
    const double here = distance(world.claimed[current], target);
    std::size_t best = current;
    double best_d = here;
    for (std::size_t nb : net.neighbors_of(current)) {
      if (visited.count(nb)) continue;
      if (use_lad && world.lad_rejected[nb]) continue;
      const double d = distance(world.claimed[nb], target);
      if (d < best_d) {
        best_d = d;
        best = nb;
      }
    }
    if (best == current) return std::nullopt;  // greedy local minimum
    current = best;
  }
  return std::nullopt;
}

}  // namespace

int main() {
  DeploymentConfig cfg;
  cfg.nodes_per_group = 150;
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma});
  Rng rng(1997);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);

  // Train the detector.
  const DiffMetric diff;
  std::vector<double> benign;
  for (int i = 0; i < 300; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    benign.push_back(diff.score(obs,
                                model.expected_observation(
                                    localizer.estimate(obs), gz),
                                cfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(MetricKind::kDiff, benign, 0.99).threshold;
  const Detector detector(model, gz, MetricKind::kDiff, threshold);

  // Build the three routing worlds.
  RoutingWorld honest{&net, {}, std::vector<bool>(net.num_nodes(), false)};
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    honest.claimed.push_back(net.position(i));
  }

  // Attack 8% of nodes: their claimed location is pushed 250 m off.
  RoutingWorld attacked = honest;
  RoutingWorld defended = honest;
  int attacked_nodes = 0, rejected_attacked = 0, rejected_honest = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    const Observation a = net.observe(i);
    bool is_attacked = rng.bernoulli(0.08);
    Observation obs_for_check = a;
    if (is_attacked) {
      ++attacked_nodes;
      const Vec2 fake =
          displaced_location(net.position(i), 250.0, cfg.field(), rng);
      const ExpectedObservation mu = model.expected_observation(fake, gz);
      const TaintResult taint = greedy_taint(
          a, mu, cfg.nodes_per_group, MetricKind::kDiff,
          AttackClass::kDecBounded, static_cast<int>(0.10 * a.total()));
      attacked.claimed[i] = fake;
      defended.claimed[i] = fake;
      obs_for_check = taint.tainted;
    }
    const bool rejected =
        detector.check(obs_for_check, defended.claimed[i]).anomaly;
    defended.lad_rejected[i] = rejected;
    if (rejected) (is_attacked ? rejected_attacked : rejected_honest)++;
  }
  std::cout << "attacked nodes: " << attacked_nodes << " of "
            << net.num_nodes() << "; LAD rejected " << rejected_attacked
            << " attacked + " << rejected_honest << " honest claims\n\n";

  // Route random source/destination pairs across each world.
  constexpr int kFlows = 300;
  Table table({"world", "delivered", "delivery_rate", "mean_hops"});
  for (const auto& [label, world] :
       std::vector<std::pair<std::string, const RoutingWorld*>>{
           {"honest locations", &honest},
           {"attacked, trusted", &attacked},
           {"attacked + LAD filter", &defended}}) {
    Rng flow_rng(555);  // identical flows across worlds
    int delivered = 0;
    double total_hops = 0;
    const bool use_lad = world == &defended;
    for (int f = 0; f < kFlows; ++f) {
      const std::size_t src =
          static_cast<std::size_t>(flow_rng.uniform_int(net.num_nodes()));
      const std::size_t dst =
          static_cast<std::size_t>(flow_rng.uniform_int(net.num_nodes()));
      if (const auto hops = route(*world, src, dst, use_lad)) {
        ++delivered;
        total_hops += *hops;
      }
    }
    table.new_row()
        .add(label)
        .add(delivered)
        .add(static_cast<double>(delivered) / kFlows, 3)
        .add(delivered ? total_hops / delivered : 0.0, 1);
  }
  table.print(std::cout);
  std::cout << "\nForged locations break greedy forwarding (packets chase "
               "phantom positions);\nfiltering LAD-rejected nodes restores "
               "most of the delivery rate.\n";
  return 0;
}
