// Quickstart: the complete LAD lifecycle in one file.
//
//  1. model the deployment knowledge (Section 3),
//  2. deploy a network and train the detection threshold (Section 5.5),
//  3. run detection on a benign sensor,
//  4. attack a sensor's localization and watch LAD catch it.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"

int main() {
  using namespace lad;

  // 1. Deployment knowledge: the paper's setup - a 1000 m x 1000 m field,
  //    10 x 10 deployment points, m = 300 nodes per group scattered with a
  //    2-D Gaussian (sigma = 50 m), radio range R = 50 m.
  DeploymentConfig cfg;
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma});  // Theorem 1, tabulated

  // 2. Deploy a network and train the Diff-metric threshold at tau = 99%.
  Rng rng(2005);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);
  const DiffMetric diff;

  std::vector<double> benign_scores;
  for (int i = 0; i < 400; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    const Vec2 le = localizer.estimate(obs);  // the scheme's own estimate
    benign_scores.push_back(diff.score(
        obs, model.expected_observation(le, gz), cfg.nodes_per_group));
  }
  const TrainingResult trained =
      train_threshold(MetricKind::kDiff, benign_scores, 0.99);
  std::cout << "trained Diff threshold (tau = 99%): " << trained.threshold
            << "  [benign score mean " << trained.score_stats.mean() << "]\n";

  Detector detector(model, gz, MetricKind::kDiff, trained.threshold);

  // 3. A benign sensor: the detector should stay quiet.
  const std::size_t honest = 4242;
  const Observation honest_obs = net.observe(honest);
  const Verdict honest_verdict =
      detector.check(honest_obs, localizer.estimate(honest_obs));
  std::cout << "benign sensor:  score = " << honest_verdict.score
            << (honest_verdict.anomaly ? "  -> ANOMALY (false positive)"
                                       : "  -> ok")
            << "\n";

  // 4. Attack: the adversary convinces a victim it sits 150 m away and
  //    taints its observation with the strongest (Dec-Bounded) attack,
  //    compromising 10% of its neighbors.
  const std::size_t victim = 17171;
  const Observation a = net.observe(victim);
  const Vec2 la = net.position(victim);
  const Vec2 fake_le = displaced_location(la, 150.0, cfg.field(), rng);
  const ExpectedObservation mu = model.expected_observation(fake_le, gz);
  const TaintResult taint =
      greedy_taint(a, mu, cfg.nodes_per_group, MetricKind::kDiff,
                   AttackClass::kDecBounded,
                   static_cast<int>(0.10 * a.total()));
  const Verdict attack_verdict = detector.check(taint.tainted, fake_le);
  std::cout << "attacked sensor (D = 150 m, 10% compromised): score = "
            << attack_verdict.score
            << (attack_verdict.anomaly ? "  -> ANOMALY detected" : "  -> missed")
            << "\n";
  return attack_verdict.anomaly && !honest_verdict.anomaly ? 0 : 1;
}
