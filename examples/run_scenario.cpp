// Runs a declarative scenario file through the ScenarioRunner - the
// library-level equivalent of `lad_cli run`.  With no argument it runs
// the checked-in quickstart spec (bench/scenarios/quickstart.scn); pass a
// path to run any other .scn (see the README's "Scenario files" section
// for the schema).
#include <iostream>
#include <string>

#include "sim/scenario.h"
#include "util/assert.h"

#ifndef LAD_SCENARIO_DIR
#define LAD_SCENARIO_DIR "bench/scenarios"
#endif

int main(int argc, char** argv) {
  using namespace lad;
  const std::string path =
      argc > 1 ? argv[1] : std::string(LAD_SCENARIO_DIR) + "/quickstart.scn";
  try {
    const ScenarioSpec spec = ScenarioSpec::load(path);
    ScenarioRunner runner(spec);
    std::cout << spec.title << "\n"
              << "(" << experiment_kind_name(spec.kind) << ", "
              << runner.num_items() << " work items, seed "
              << spec.pipeline.seed << ")\n";
    const ScenarioResult result = runner.run();
    for (const ResultTable& t : result.tables) {
      std::cout << "\n== " << t.id << " ==\n";
      t.table.print(std::cout);
    }
    if (!spec.note.empty()) std::cout << "\n" << spec.note << "\n";
    return 0;
  } catch (const AssertionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
