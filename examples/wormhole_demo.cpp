// Wormhole / range-change attack demo (Section 6, Figure 3d).
//
// An attacker tunnels radio traffic between two distant points.  The
// victim suddenly "hears" a far-away deployment group, which both corrupts
// beacon-less localization and distorts the observation LAD checks.  The
// demo shows:
//   1. the observation distortion a wormhole causes,
//   2. how the MLE location estimate is dragged toward the far endpoint,
//   3. LAD flagging the resulting (observation, location) inconsistency,
//   4. packet leashes (wormhole detection) restoring the Dec-Only world.
#include <iostream>

#include "core/lad.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "net/broadcast.h"
#include "rng/rng.h"
#include "util/csv.h"
#include "util/string_util.h"

using namespace lad;

int main() {
  DeploymentConfig cfg;
  cfg.nodes_per_group = 150;
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma});
  Rng rng(2003);  // packet leashes were published in 2003
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);

  // Train the Diff detector.
  const DiffMetric diff;
  std::vector<double> benign;
  for (int i = 0; i < 300; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    benign.push_back(diff.score(obs,
                                model.expected_observation(
                                    localizer.estimate(obs), gz),
                                cfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(MetricKind::kDiff, benign, 0.99).threshold;
  const Detector detector(model, gz, MetricKind::kDiff, threshold);
  std::cout << "trained Diff threshold: " << threshold << "\n";

  // Victim near (250, 250); wormhole endpoint planted there, far end at
  // (750, 750) - diagonally across the field.
  std::size_t victim = 0;
  double best = 1e18;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    const double d = distance(net.position(i), {250, 250});
    if (d < best) {
      best = d;
      victim = i;
    }
  }
  const Vec2 vp = net.position(victim);
  std::cout << "victim node " << victim << " at (" << vp.x << ", " << vp.y
            << ")\n\n";

  BroadcastSim sim(net);
  const Observation clean = sim.observe(victim);
  sim.add_wormhole({{750, 750}, vp, 60.0, true});
  const Observation tunneled = sim.observe(victim);

  // 1. Observation distortion.
  Table obs_table({"group(dp_x,dp_y)", "clean", "wormholed"});
  for (int g = 0; g < model.num_groups(); ++g) {
    const std::size_t gi = static_cast<std::size_t>(g);
    if (clean.counts[gi] == 0 && tunneled.counts[gi] == 0) continue;
    const Vec2 dp = model.deployment_point(g);
    // Built with += rather than a const char* + std::string&& chain, which
    // trips a GCC 12 -Wrestrict false positive (GCC PR105651) under -Werror.
    std::string label = "G";
    label += std::to_string(g);
    label += '(';
    label += format_double(dp.x, 0);
    label += ',';
    label += format_double(dp.y, 0);
    label += ')';
    obs_table.new_row()
        .add(label)
        .add(clean.counts[gi])
        .add(tunneled.counts[gi]);
  }
  obs_table.print(std::cout);
  std::cout << "total neighbors: " << clean.total() << " -> "
            << tunneled.total() << " (phantom neighbors from the far end)\n\n";

  // 2. Localization drag.
  const Vec2 le_clean = localizer.estimate(clean);
  const Vec2 le_tunneled = localizer.estimate(tunneled);
  std::cout << "MLE estimate clean:     (" << le_clean.x << ", " << le_clean.y
            << "), error " << distance(le_clean, vp) << " m\n";
  std::cout << "MLE estimate wormholed: (" << le_tunneled.x << ", "
            << le_tunneled.y << "), error " << distance(le_tunneled, vp)
            << " m\n\n";

  // 3. LAD verdicts.
  const Verdict v_clean = detector.check(clean, le_clean);
  const Verdict v_attacked = detector.check(tunneled, le_tunneled);
  std::cout << "LAD on clean observation:    score " << v_clean.score
            << (v_clean.anomaly ? " -> ANOMALY" : " -> ok") << "\n";
  std::cout << "LAD on wormholed observation: score " << v_attacked.score
            << (v_attacked.anomaly ? " -> ANOMALY detected" : " -> missed")
            << "\n\n";

  // 4. Packet leashes (ref. [15]) close the tunnel: Dec-Only world.
  sim.set_defenses({.authentication = true, .wormhole_detection = true});
  const Observation leashed = sim.observe(victim);
  std::cout << "with packet leashes: observation restored = "
            << (leashed == clean ? "yes" : "no") << ", LAD score "
            << detector.check(leashed, localizer.estimate(leashed)).score
            << "\n";

  return v_attacked.anomaly && !v_clean.anomaly && leashed == clean ? 0 : 1;
}
