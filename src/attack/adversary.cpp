#include "attack/adversary.h"

#include "deploy/observation.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

const char* attack_class_name(AttackClass c) {
  switch (c) {
    case AttackClass::kDecBounded: return "dec-bounded";
    case AttackClass::kDecOnly: return "dec-only";
  }
  return "?";
}

AttackClass attack_class_from_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "dec-bounded" || n == "decbounded") return AttackClass::kDecBounded;
  if (n == "dec-only" || n == "deconly") return AttackClass::kDecOnly;
  LAD_REQUIRE_MSG(false, "unknown attack class: " << name);
  return AttackClass::kDecBounded;  // unreachable
}

namespace {
void check_pair(const Observation& a, const Observation& o) {
  LAD_REQUIRE_MSG(a.num_groups() == o.num_groups(),
                  "observation group-count mismatch");
  a.require_valid();
  o.require_valid();
}
}  // namespace

int decrement_mass(const Observation& a, const Observation& o) {
  check_pair(a, o);
  int mass = 0;
  for (std::size_t i = 0; i < a.num_groups(); ++i) {
    if (a.counts[i] > o.counts[i]) mass += a.counts[i] - o.counts[i];
  }
  return mass;
}

bool is_feasible_dec_bounded(const Observation& a, const Observation& o,
                             int x) {
  LAD_REQUIRE_MSG(x >= 0, "negative compromise budget");
  return decrement_mass(a, o) <= x;
}

bool is_feasible_dec_only(const Observation& a, const Observation& o, int x) {
  LAD_REQUIRE_MSG(x >= 0, "negative compromise budget");
  check_pair(a, o);
  int total = 0;
  for (std::size_t i = 0; i < a.num_groups(); ++i) {
    if (o.counts[i] > a.counts[i]) return false;  // increases forbidden
    total += a.counts[i] - o.counts[i];
  }
  return total <= x;
}

bool is_feasible(AttackClass cls, const Observation& a, const Observation& o,
                 int x) {
  return cls == AttackClass::kDecBounded ? is_feasible_dec_bounded(a, o, x)
                                         : is_feasible_dec_only(a, o, x);
}

}  // namespace lad
