// The unified attack framework of Section 6: Dec-Bounded and Dec-Only
// attack classes over observations, with feasibility predicates matching
// Definitions 4 and 5 exactly.
//
//   Dec-Bounded (Def. 4):  sum_{i : a_i > o_i} (a_i - o_i) <= x
//                          (increases unbounded: multi-impersonation etc.)
//   Dec-Only    (Def. 5):  o_i <= a_i for all i,
//                          sum_i (a_i - o_i) <= x
//                          (authentication + packet leashes deployed)
#pragma once

#include <string>

#include "deploy/observation.h"

namespace lad {

enum class AttackClass { kDecBounded, kDecOnly };

const char* attack_class_name(AttackClass c);
AttackClass attack_class_from_name(const std::string& name);

/// Total decrement mass sum_{i : a_i > o_i} (a_i - o_i).
int decrement_mass(const Observation& a, const Observation& o);

/// Definition 4 feasibility: o results from a Dec-Bounded attack with at
/// most `x` compromised neighbors.  Counts must be non-negative.
bool is_feasible_dec_bounded(const Observation& a, const Observation& o,
                             int x);

/// Definition 5 feasibility.
bool is_feasible_dec_only(const Observation& a, const Observation& o, int x);

bool is_feasible(AttackClass cls, const Observation& a, const Observation& o,
                 int x);

}  // namespace lad
