#include "attack/displacement.h"

#include <cmath>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {

Vec2 displaced_location(Vec2 la, double d, const Aabb& field, Rng& rng,
                        int max_tries) {
  LAD_REQUIRE_MSG(d >= 0, "displacement distance must be non-negative");
  if (d == 0.0) return la;
  for (int t = 0; t < max_tries; ++t) {
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    const Vec2 cand = polar_offset(la, d, theta);
    if (field.contains(cand)) return cand;
  }
  // Fall back: displace toward the field center, clamped.
  const Vec2 dir = (field.center() - la).normalized();
  const Vec2 cand = la + dir * d;
  return field.clamp(cand);
}

}  // namespace lad
