// D-anomaly location displacement (Section 7.1, step 2): "We simulate an
// attack against the localization of node v by letting v's estimated
// location be a random location Le, where |Le - La| = D".
#pragma once

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {

/// A uniformly random direction at exact distance `d` from `la`, kept
/// inside `field` by rejection over the direction (up to `max_tries`
/// angles); if no direction fits - possible when d exceeds the distance to
/// every boundary - the direction toward the field center is used and the
/// point clamped, which only shortens the displacement in that corner case.
Vec2 displaced_location(Vec2 la, double d, const Aabb& field, Rng& rng,
                        int max_tries = 64);

}  // namespace lad
