#include "attack/greedy.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "attack/adversary.h"
#include "core/metric.h"
#include "deploy/observation.h"
#include "util/assert.h"

namespace lad {
namespace {

/// Mode of Binom(m, p): the count with the highest pmf.
int binomial_mode(int m, double p) {
  const int mode = static_cast<int>(std::floor((m + 1) * p));
  return std::clamp(mode, 0, m);
}

/// Per-group metric term t_i(v) for the separable metrics.
double group_term(MetricKind metric, int v, double mu_i, int m) {
  switch (metric) {
    case MetricKind::kDiff:
      return std::abs(static_cast<double>(v) - mu_i);
    case MetricKind::kAddAll:
      return std::max(static_cast<double>(v), mu_i);
    case MetricKind::kProb:
      return prob_metric_group_score(v, mu_i, m);
  }
  LAD_REQUIRE_MSG(false, "invalid metric");
  return 0.0;  // unreachable
}

/// Best integer value >= lo for group i (the free-increase target).
int best_value_at_least(MetricKind metric, int lo, double mu_i, int m) {
  switch (metric) {
    case MetricKind::kDiff: {
      const int target = static_cast<int>(std::lround(mu_i));
      return std::max(lo, target);
    }
    case MetricKind::kAddAll:
      // Increasing o_i never lowers max(o_i, mu_i); keep it where it is.
      return lo;
    case MetricKind::kProb: {
      const double p = std::clamp(mu_i / static_cast<double>(m), 0.0, 1.0);
      return std::max(lo, binomial_mode(m, p));
    }
  }
  LAD_REQUIRE_MSG(false, "invalid metric");
  return lo;  // unreachable
}

/// Greedy budgeted decrements for the separable metrics (Diff, Add-all):
/// repeatedly take the decrement with the largest marginal reduction.
/// Group terms are convex in v, so marginal gains are non-increasing and
/// the exchange argument makes this optimal.
int decrement_separable(MetricKind metric, Observation& o,
                        const ExpectedObservation& mu, int m, int x) {
  struct Cand {
    double gain;
    std::size_t group;
    bool operator<(const Cand& other) const { return gain < other.gain; }
  };
  auto gain_of = [&](std::size_t i) {
    if (o.counts[i] <= 0) return -1.0;
    return group_term(metric, o.counts[i], mu[i], m) -
           group_term(metric, o.counts[i] - 1, mu[i], m);
  };
  std::priority_queue<Cand> heap;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double g = gain_of(i);
    if (g > 0) heap.push({g, i});
  }
  int spent = 0;
  while (spent < x && !heap.empty()) {
    const Cand top = heap.top();
    heap.pop();
    // Re-validate: the stored gain may be stale after earlier decrements.
    const double g = gain_of(top.group);
    if (g <= 0) continue;
    if (g < top.gain) {
      heap.push({g, top.group});
      continue;
    }
    --o.counts[top.group];
    ++spent;
    const double next = gain_of(top.group);
    if (next > 0) heap.push({next, top.group});
  }
  return spent;
}

/// Greedy budgeted decrements for the Prob metric (a max over unimodal
/// group terms): lower the current arg-max while a decrement helps.
int decrement_prob(Observation& o, const ExpectedObservation& mu, int m,
                   int x) {
  const std::size_t n = mu.size();
  std::vector<double> term(n);
  for (std::size_t i = 0; i < n; ++i) {
    term[i] = prob_metric_group_score(o.counts[i], mu[i], m);
  }
  int spent = 0;
  while (spent < x) {
    // Current arg-max group.
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (term[i] > term[j]) j = i;
    }
    if (o.counts[j] == 0) break;  // cannot decrement the worst group
    const double lower = prob_metric_group_score(o.counts[j] - 1, mu[j], m);
    if (lower >= term[j]) break;  // decrementing would not reduce the max
    --o.counts[j];
    term[j] = lower;
    ++spent;
  }
  return spent;
}

}  // namespace

TaintResult greedy_taint(const Observation& a, const ExpectedObservation& mu,
                         int m, MetricKind metric, AttackClass cls, int x) {
  LAD_REQUIRE_MSG(a.num_groups() == mu.size(),
                  "observation/expectation size mismatch");
  LAD_REQUIRE_MSG(x >= 0, "negative budget");
  a.require_valid();

  Observation o = a;

  // Step 1: free increases (multi-impersonation and friends) - only in the
  // Dec-Bounded class.
  if (cls == AttackClass::kDecBounded) {
    for (std::size_t i = 0; i < mu.size(); ++i) {
      o.counts[i] = best_value_at_least(metric, a.counts[i], mu[i], m);
    }
  }

  // Step 2: budgeted decrements (silence attacks).  After optimal step 1
  // every beneficial decrement goes below a_i and costs exactly one
  // compromised neighbor.
  int spent = 0;
  if (metric == MetricKind::kProb) {
    spent = decrement_prob(o, mu, m, x);
  } else {
    spent = decrement_separable(metric, o, mu, m, x);
  }

  LAD_ASSERT(is_feasible(cls, a, o, x));
  return {std::move(o), spent};
}

}  // namespace lad
