// The greedy metric-minimizing taint procedures of Section 7.1.
//
// The attacker knows the victim's untainted observation `a`, the expected
// observation `mu` at the fake location Le it planted, and the detection
// metric; it crafts a tainted observation `o` that minimizes the metric
// while staying feasible for its attack class and budget x.
//
// The paper spells out Dec-Bounded x Diff: "make oi as close to mu_i as
// possible" - free increases up to mu_i, budgeted unit decrements toward
// mu_i.  We implement all 2 x 3 combinations with the same structure:
//
//   1. free increases (Dec-Bounded only) move o_i *upward* to the value
//      minimizing the metric's group term,
//   2. unit decrements are applied greedily by marginal metric reduction
//      (a max-heap of gains) until the budget is spent or no decrement
//      helps.
//
// For the separable metrics (Diff, Add-all) greedy-by-gain is exactly
// optimal: group terms are independent and each term is convex in o_i, so
// marginal gains are non-increasing and the greedy exchange argument
// applies.  For the Prob metric (a max over group terms, each unimodal in
// o_i) the procedure lowers the current arg-max while a decrement helps,
// which mirrors the paper's minimize-the-indicator intent.
#pragma once

#include "attack/adversary.h"
#include "core/metric.h"
#include "deploy/observation.h"

namespace lad {

struct TaintResult {
  Observation tainted;  ///< the crafted observation o
  int budget_spent;     ///< decrements consumed (<= x)
};

/// Crafts the metric-minimizing tainted observation.  `mu` is the expected
/// observation at the planted location, `m` the nodes-per-group.
TaintResult greedy_taint(const Observation& a, const ExpectedObservation& mu,
                         int m, MetricKind metric, AttackClass cls, int x);

}  // namespace lad
