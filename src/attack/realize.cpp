#include "attack/realize.h"

#include <algorithm>

#include "deploy/network.h"
#include "deploy/observation.h"
#include "net/broadcast.h"
#include "util/assert.h"

namespace lad {

RealizationPlan realize_taint(BroadcastSim& sim, const Network& net,
                              std::size_t victim,
                              const std::vector<std::size_t>& compromised,
                              const Observation& target) {
  RealizationPlan plan;
  const Observation baseline = sim.observe(victim);
  LAD_REQUIRE_MSG(baseline.num_groups() == target.num_groups(),
                  "target observation size mismatch");

  const std::size_t n = target.num_groups();
  std::vector<int> delta(n);
  for (std::size_t i = 0; i < n; ++i) {
    delta[i] = target.counts[i] - baseline.counts[i];
  }

  // Partition the compromised neighbors by group for silence assignment.
  std::vector<std::vector<std::size_t>> by_group(n);
  for (std::size_t node : compromised) {
    LAD_REQUIRE_MSG(node != victim, "the victim cannot be compromised here");
    by_group[static_cast<std::size_t>(net.group_of(node))].push_back(node);
  }

  const bool need_increase =
      std::any_of(delta.begin(), delta.end(), [](int d) { return d > 0; });

  // Choose the speaker: prefer a compromised node from a group that needs
  // no decrement, so silencing never conflicts with speaking.
  if (need_increase) {
    for (std::size_t node : compromised) {
      const std::size_t g = static_cast<std::size_t>(net.group_of(node));
      if (delta[g] >= 0) {
        plan.speaker = node;
        break;
      }
    }
    if (plan.speaker == SIZE_MAX && !compromised.empty()) {
      plan.speaker = compromised.front();
    }
  }

  // If the speaker's own group must shrink, reassign its primary claim via
  // impersonation: one decrement of its group and one increment of a
  // deficient group for free, before any silences are allocated.
  NodeBehavior speaker_behavior;
  if (plan.speaker != SIZE_MAX) {
    const std::size_t sg = static_cast<std::size_t>(net.group_of(plan.speaker));
    if (delta[sg] < 0) {
      for (std::size_t g = 0; g < n; ++g) {
        if (delta[g] > 0) {
          speaker_behavior.impersonate_group = static_cast<int>(g);
          --delta[g];   // one forged claim delivered by the primary message
          ++delta[sg];  // one fewer silence needed in the speaker's group
          break;
        }
      }
    }
  }

  // Decrements: silence compromised neighbors of the deficient groups.
  for (std::size_t g = 0; g < n; ++g) {
    int need = -delta[g];
    if (need <= 0) continue;
    for (std::size_t node : by_group[g]) {
      if (need == 0) break;
      if (node == plan.speaker) continue;  // the speaker must transmit
      plan.silenced.push_back(node);
      --need;
    }
    // Any remaining `need` is physically unrealizable (not enough
    // compromised neighbors in this group) - reported via `exact=false`.
  }

  // Increases: the speaker floods forged claims (multi-impersonation).
  if (plan.speaker != SIZE_MAX) {
    for (std::size_t g = 0; g < n; ++g) {
      if (delta[g] > 0) {
        plan.claims.emplace_back(static_cast<int>(g), delta[g]);
      }
    }
    speaker_behavior.extra_claims = plan.claims;
    sim.set_behavior(plan.speaker, speaker_behavior);
  }

  for (std::size_t node : plan.silenced) {
    NodeBehavior b;
    b.silent = true;
    sim.set_behavior(node, b);
  }

  plan.achieved = sim.observe(victim);
  plan.exact = (plan.achieved == target);
  return plan;
}

}  // namespace lad
