// Realizes a formal taint (a -> o) as concrete message-level behaviour on a
// BroadcastSim: silence attacks supply the decrements, multi-impersonation
// by a single compromised speaker supplies the increases.
//
// This bridges the two layers of the paper's attack story: Definitions 4/5
// reason about observation vectors, Figure 3 shows the concrete message
// attacks.  Integration tests use this to check that the formal taints the
// greedy procedures emit are actually achievable over the radio - up to
// physical limits: a decrement of group i requires a compromised *neighbor
// of the victim from group i* (the formal model's global budget is an
// over-approximation of attacker power, as the paper notes).
#pragma once

#include <vector>

#include "deploy/network.h"
#include "deploy/observation.h"
#include "net/broadcast.h"

namespace lad {

struct RealizationPlan {
  std::vector<std::size_t> silenced;  ///< nodes put into silence attack
  std::size_t speaker = SIZE_MAX;     ///< node carrying the forged claims
  std::vector<std::pair<int, int>> claims;  ///< (group, copies) injected
  Observation achieved;               ///< what the victim actually observes
  bool exact = false;                 ///< achieved == target?
};

/// Configures behaviours on `sim` (which must wrap `net`) so that `victim`'s
/// observation approaches `target`.  `compromised` lists the attacker's
/// nodes among the victim's neighbors.  Returns what was achieved.
RealizationPlan realize_taint(BroadcastSim& sim, const Network& net,
                              std::size_t victim,
                              const std::vector<std::size_t>& compromised,
                              const Observation& target);

}  // namespace lad
