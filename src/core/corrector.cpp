#include "core/corrector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "stats/special.h"
#include "util/assert.h"

namespace lad {

LocationCorrector::LocationCorrector(const DeploymentModel& model,
                                     const GzTable& gz, double penalty_cap,
                                     int seeds, double tol_meters)
    : model_(&model), gz_(&gz), penalty_cap_(penalty_cap), seeds_(seeds),
      tol_meters_(tol_meters) {
  LAD_REQUIRE_MSG(penalty_cap > 0, "penalty cap must be positive");
  LAD_REQUIRE_MSG(seeds >= 1, "need at least one search seed");
  LAD_REQUIRE_MSG(tol_meters > 0, "tolerance must be positive");
}

namespace {
constexpr double kPFloor = 1e-300;  // see BeaconlessMleLocalizer
}

double LocationCorrector::group_term(int count, Vec2 theta, int group) const {
  const int m = model_->config().nodes_per_group;
  double p = gz_->at(theta, model_->deployment_point(group));
  if (p < kPFloor) p = kPFloor;
  const double term = log_binomial_pmf(count, m, p);
  return std::max(term, -penalty_cap_);
}

double LocationCorrector::robust_log_likelihood(const Observation& obs,
                                                Vec2 theta) const {
  double ll = 0.0;
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    ll += group_term(obs.counts[g], theta, static_cast<int>(g));
  }
  return ll;
}

Vec2 LocationCorrector::pattern_search(const Observation& obs,
                                       Vec2 seed) const {
  const Aabb field = model_->config().field();
  Vec2 best = field.clamp(seed);
  double best_ll = robust_log_likelihood(obs, best);
  double pitch = model_->config().field_side /
                 (2.0 * std::max(model_->config().grid_nx,
                                 model_->config().grid_ny));
  static constexpr std::array<Vec2, 8> kDirs = {
      Vec2{1, 0},  Vec2{-1, 0}, Vec2{0, 1},  Vec2{0, -1},
      Vec2{1, 1},  Vec2{1, -1}, Vec2{-1, 1}, Vec2{-1, -1}};
  while (pitch >= tol_meters_) {
    bool improved = false;
    for (const Vec2& d : kDirs) {
      const Vec2 cand = field.clamp(best + d * pitch);
      const double ll = robust_log_likelihood(obs, cand);
      if (ll > best_ll) {
        best_ll = ll;
        best = cand;
        improved = true;
      }
    }
    if (!improved) pitch /= 2.0;
  }
  return best;
}

CorrectionResult LocationCorrector::correct(const Observation& obs) const {
  LAD_REQUIRE_MSG(obs.num_groups() ==
                      static_cast<std::size_t>(model_->num_groups()),
                  "observation size mismatch");

  // Multi-start seeds: weighted centroid + deployment points of the
  // highest-count groups (one of them sits near the true bump).
  std::vector<Vec2> starts;
  double wx = 0, wy = 0, wt = 0;
  std::vector<std::pair<int, int>> by_count;  // (count, group)
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    const Vec2 dp = model_->deployment_point(static_cast<int>(g));
    wx += obs.counts[g] * dp.x;
    wy += obs.counts[g] * dp.y;
    wt += obs.counts[g];
    if (obs.counts[g] > 0) {
      by_count.emplace_back(obs.counts[g], static_cast<int>(g));
    }
  }
  starts.push_back(wt > 0 ? Vec2{wx / wt, wy / wt}
                          : model_->config().field().center());
  std::sort(by_count.rbegin(), by_count.rend());
  for (int s = 0; s < seeds_ && s < static_cast<int>(by_count.size()); ++s) {
    starts.push_back(
        model_->deployment_point(by_count[static_cast<std::size_t>(s)].second));
  }

  Vec2 best{};
  double best_ll = -std::numeric_limits<double>::infinity();
  for (const Vec2& seed : starts) {
    const Vec2 cand = pattern_search(obs, seed);
    const double ll = robust_log_likelihood(obs, cand);
    if (ll > best_ll) {
      best_ll = ll;
      best = cand;
    }
  }

  CorrectionResult result;
  result.corrected = best;
  result.robust_ll = best_ll;
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    if (group_term(obs.counts[g], best, static_cast<int>(g)) <=
        -penalty_cap_) {
      result.capped_groups.push_back(static_cast<int>(g));
    }
  }
  return result;
}

}  // namespace lad
