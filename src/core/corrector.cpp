#include "core/corrector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "core/serialize.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/aabb.h"
#include "geom/vec2.h"
#include "stats/special.h"
#include "util/assert.h"

namespace lad {

LocationCorrector::LocationCorrector(const DeploymentModel& model,
                                     const GzTable& gz, double penalty_cap,
                                     int seeds, double tol_meters)
    : model_(&model), gz_(&gz), penalty_cap_(penalty_cap), seeds_(seeds),
      tol_meters_(tol_meters) {
  LAD_REQUIRE_MSG(penalty_cap > 0, "penalty cap must be positive");
  LAD_REQUIRE_MSG(seeds >= 1, "need at least one search seed");
  LAD_REQUIRE_MSG(tol_meters > 0, "tolerance must be positive");
}

namespace {
constexpr double kPFloor = 1e-300;  // see BeaconlessMleLocalizer
}

void LocationCorrector::apply_group_spread(const DetectorBundle& bundle) {
  LAD_REQUIRE_MSG(static_cast<int>(bundle.deployment_points.size()) ==
                      model_->num_groups(),
                  "bundle group count " << bundle.deployment_points.size()
                                        << " does not match the corrector's "
                                        << model_->num_groups() << " groups");
  const DetectorSpec& primary = bundle.primary();
  LAD_REQUIRE_MSG(primary.threshold > 0,
                  "per-group cap conditioning needs a positive global "
                  "threshold, got " << primary.threshold);
  group_caps_.assign(static_cast<std::size_t>(model_->num_groups()),
                     penalty_cap_);
  for (const GroupThreshold& g : primary.group_overrides) {
    LAD_REQUIRE_MSG(g.group >= 0 && g.group < model_->num_groups(),
                    "group override " << g.group << " out of range [0, "
                                      << model_->num_groups() << ")");
    LAD_REQUIRE_MSG(g.threshold > 0,
                    "per-group cap conditioning needs positive group "
                    "thresholds; group " << g.group << " has "
                                         << g.threshold);
    group_caps_[static_cast<std::size_t>(g.group)] =
        penalty_cap_ * (g.threshold / primary.threshold);
  }
}

double LocationCorrector::cap_for_group(int group) const {
  LAD_REQUIRE_MSG(group >= 0 && group < model_->num_groups(),
                  "group " << group << " out of range [0, "
                           << model_->num_groups() << ")");
  return group_caps_.empty() ? penalty_cap_
                             : group_caps_[static_cast<std::size_t>(group)];
}

double LocationCorrector::group_term(int count, Vec2 theta, int group) const {
  const int m = model_->config().nodes_per_group;
  double p = gz_->at(theta, model_->deployment_point(group));
  if (p < kPFloor) p = kPFloor;
  const double term = log_binomial_pmf(count, m, p);
  return std::max(term, -cap_for_group(group));
}

double LocationCorrector::robust_log_likelihood(const Observation& obs,
                                                Vec2 theta) const {
  double ll = 0.0;
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    ll += group_term(obs.counts[g], theta, static_cast<int>(g));
  }
  return ll;
}

Vec2 LocationCorrector::pattern_search(const Observation& obs,
                                       Vec2 seed) const {
  const Aabb field = model_->config().field();
  Vec2 best = field.clamp(seed);
  double best_ll = robust_log_likelihood(obs, best);
  double pitch = model_->config().field_side /
                 (2.0 * std::max(model_->config().grid_nx,
                                 model_->config().grid_ny));
  static constexpr std::array<Vec2, 8> kDirs = {
      Vec2{1, 0},  Vec2{-1, 0}, Vec2{0, 1},  Vec2{0, -1},
      Vec2{1, 1},  Vec2{1, -1}, Vec2{-1, 1}, Vec2{-1, -1}};
  while (pitch >= tol_meters_) {
    bool improved = false;
    for (const Vec2& d : kDirs) {
      const Vec2 cand = field.clamp(best + d * pitch);
      const double ll = robust_log_likelihood(obs, cand);
      if (ll > best_ll) {
        best_ll = ll;
        best = cand;
        improved = true;
      }
    }
    if (!improved) pitch /= 2.0;
  }
  return best;
}

Vec2 LocationCorrector::max_prior_deployment_point() const {
  int best_group = 0;
  double best_density = -1.0;
  for (int g = 0; g < model_->num_groups(); ++g) {
    const Vec2 dp = model_->deployment_point(g);
    double density = 0.0;
    for (int k = 0; k < model_->num_groups(); ++k) {
      density += model_->pdf(k, dp);
    }
    if (density > best_density) {
      best_density = density;
      best_group = g;
    }
  }
  return model_->deployment_point(best_group);
}

CorrectionResult LocationCorrector::correct(const Observation& obs) const {
  LAD_REQUIRE_MSG(obs.num_groups() ==
                      static_cast<std::size_t>(model_->num_groups()),
                  "observation size mismatch");

  // Every group silenced: the observation carries no location evidence, so
  // a likelihood search is meaningless (and the observation-weighted
  // centroid seed is degenerate).  Defined behavior instead: fall back to
  // the deployment prior's densest point and flag every group as capped -
  // an all-silent neighborhood is exactly the all-groups-implausible case
  // the diagnostics describe.
  if (obs.total() == 0) {
    CorrectionResult result;
    result.corrected = max_prior_deployment_point();
    result.robust_ll = robust_log_likelihood(obs, result.corrected);
    result.capped_groups.resize(obs.num_groups());
    for (std::size_t g = 0; g < obs.num_groups(); ++g) {
      result.capped_groups[g] = static_cast<int>(g);
    }
    return result;
  }

  // Multi-start seeds: weighted centroid + deployment points of the
  // highest-count groups (one of them sits near the true bump).
  std::vector<Vec2> starts;
  double wx = 0, wy = 0, wt = 0;
  std::vector<std::pair<int, int>> by_count;  // (count, group)
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    const Vec2 dp = model_->deployment_point(static_cast<int>(g));
    wx += obs.counts[g] * dp.x;
    wy += obs.counts[g] * dp.y;
    wt += obs.counts[g];
    if (obs.counts[g] > 0) {
      by_count.emplace_back(obs.counts[g], static_cast<int>(g));
    }
  }
  starts.push_back({wx / wt, wy / wt});
  std::sort(by_count.rbegin(), by_count.rend());
  for (int s = 0; s < seeds_ && s < static_cast<int>(by_count.size()); ++s) {
    starts.push_back(
        model_->deployment_point(by_count[static_cast<std::size_t>(s)].second));
  }

  Vec2 best{};
  double best_ll = -std::numeric_limits<double>::infinity();
  for (const Vec2& seed : starts) {
    const Vec2 cand = pattern_search(obs, seed);
    const double ll = robust_log_likelihood(obs, cand);
    if (ll > best_ll) {
      best_ll = ll;
      best = cand;
    }
  }

  CorrectionResult result;
  result.corrected = best;
  result.robust_ll = best_ll;
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    if (group_term(obs.counts[g], best, static_cast<int>(g)) <=
        -cap_for_group(static_cast<int>(g))) {
      result.capped_groups.push_back(static_cast<int>(g));
    }
  }
  return result;
}

}  // namespace lad
