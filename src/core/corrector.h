// Location correction - the paper's stated ultimate goal (Section 8):
// "Our ultimate goal is not only to detect the anomalies, but also to
// correct the errors caused by the anomalies."  The paper leaves this as
// future work; this module implements a best-effort corrector and the
// correction bench measures honestly where it succeeds and where the
// Dec-Bounded adversary defeats it.
//
// Approach: robust (winsorized) maximum-likelihood re-estimation from the
// (possibly tainted) observation.  At a candidate location theta each
// group contributes log Binom(o_i; m, g_i(theta)), but the contribution is
// capped from below at -penalty_cap: a group the attacker forged or
// silenced can cost at most the cap, so the optimum is decided by how MANY
// groups are implausible rather than by how extreme the worst one is.
// (A hard trim of the k worst terms fails here: a concentrated observation
// has only ~10 informative groups, and trimming them all makes every
// location look perfect.)  The search is multi-start (the observation-
// weighted centroid plus the deployment points of the highest-count
// groups) because a tainted observation is bimodal: one bump of surviving
// truth around La, one forged bump around the planted Le.
//
// Expected behaviour (measured in bench/tab_correction):
//  * Dec-Only attacks only silence, so the surviving bump dominates and
//    correction recovers La to within the scheme's benign error;
//  * Dec-Bounded attacks can forge an arbitrarily convincing bump at Le,
//    so correction degrades as x grows - consistent with the paper
//    calling correction an open problem.
#pragma once

#include <vector>

#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"

namespace lad {

struct CorrectionResult {
  Vec2 corrected;     ///< the re-estimated location
  double robust_ll;   ///< capped log-likelihood at the estimate
  /// Groups whose penalty hit the cap at the optimum - under attack these
  /// are typically the forged / silenced ones (diagnostics).
  std::vector<int> capped_groups;
};

class LocationCorrector {
 public:
  /// penalty_cap: lower bound (in -log-likelihood units) on any single
  /// group's contribution.  Benign per-group terms stay below ~10 even in
  /// 4-sigma tails, so the default 25 never caps honest evidence.
  /// seeds: number of highest-count groups whose deployment points seed
  /// the multi-start search (in addition to the weighted centroid).
  LocationCorrector(const DeploymentModel& model, const GzTable& gz,
                    double penalty_cap = 25.0, int seeds = 5,
                    double tol_meters = 0.5);

  CorrectionResult correct(const Observation& obs) const;

  /// Capped log-likelihood of obs at theta (exposed for tests).
  double robust_log_likelihood(const Observation& obs, Vec2 theta) const;

 private:
  Vec2 pattern_search(const Observation& obs, Vec2 seed) const;
  double group_term(int count, Vec2 theta, int group) const;

  const DeploymentModel* model_;
  const GzTable* gz_;
  double penalty_cap_;
  int seeds_;
  double tol_meters_;
};

}  // namespace lad
