// Location correction - the paper's stated ultimate goal (Section 8):
// "Our ultimate goal is not only to detect the anomalies, but also to
// correct the errors caused by the anomalies."  The paper leaves this as
// future work; this module implements a best-effort corrector and the
// correction bench measures honestly where it succeeds and where the
// Dec-Bounded adversary defeats it.
//
// Approach: robust (winsorized) maximum-likelihood re-estimation from the
// (possibly tainted) observation.  At a candidate location theta each
// group contributes log Binom(o_i; m, g_i(theta)), but the contribution is
// capped from below at -penalty_cap: a group the attacker forged or
// silenced can cost at most the cap, so the optimum is decided by how MANY
// groups are implausible rather than by how extreme the worst one is.
// (A hard trim of the k worst terms fails here: a concentrated observation
// has only ~10 informative groups, and trimming them all makes every
// location look perfect.)  The search is multi-start (the observation-
// weighted centroid plus the deployment points of the highest-count
// groups) because a tainted observation is bimodal: one bump of surviving
// truth around La, one forged bump around the planted Le.
//
// Expected behaviour (measured in bench/tab_correction):
//  * Dec-Only attacks only silence, so the surviving bump dominates and
//    correction recovers La to within the scheme's benign error;
//  * Dec-Bounded attacks can forge an arbitrarily convincing bump at Le,
//    so correction degrades as x grows - consistent with the paper
//    calling correction an open problem.
//
// A per-group-trained detector bundle (core/serialize.h) can additionally
// condition the cap per group: boundary groups whose benign score spread
// is legitimately wider get a proportionally looser cap, so the
// capped_groups diagnostic stops mistaking edge-truncated neighborhoods
// for tainted ones (apply_group_spread).
#pragma once

#include <vector>

#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"

namespace lad {

struct DetectorBundle;

struct CorrectionResult {
  Vec2 corrected;     ///< the re-estimated location
  double robust_ll;   ///< capped log-likelihood at the estimate
  /// Groups whose penalty hit the cap at the optimum - under attack these
  /// are typically the forged / silenced ones (diagnostics).
  std::vector<int> capped_groups;
};

class LocationCorrector {
 public:
  /// penalty_cap: lower bound (in -log-likelihood units) on any single
  /// group's contribution.  Benign per-group terms stay below ~10 even in
  /// 4-sigma tails, so the default 25 never caps honest evidence.
  /// seeds: number of highest-count groups whose deployment points seed
  /// the multi-start search (in addition to the weighted centroid).
  LocationCorrector(const DeploymentModel& model, const GzTable& gz,
                    double penalty_cap = 25.0, int seeds = 5,
                    double tol_meters = 0.5);

  /// Conditions the penalty cap on the bundle's per-group benign spread: a
  /// group override row in the primary section scales that group's cap by
  /// threshold_g / threshold_global, so boundary groups whose benign
  /// scores legitimately run wider (truncated neighborhoods) get
  /// proportionally more slack before they read as forged/silenced in
  /// `capped_groups`.  Groups without an override keep the base cap.
  /// Requires positive global and per-group thresholds.
  void apply_group_spread(const DetectorBundle& bundle);

  /// The penalty cap in force for `group` (base, or bundle-conditioned).
  double cap_for_group(int group) const;

  CorrectionResult correct(const Observation& obs) const;

  /// Capped log-likelihood of obs at theta (exposed for tests).
  double robust_log_likelihood(const Observation& obs, Vec2 theta) const;

  /// The deployment point where the deployment-density prior is highest -
  /// what correct() returns for an observation with every group silenced
  /// (ties break toward the lowest group id).
  Vec2 max_prior_deployment_point() const;

 private:
  Vec2 pattern_search(const Observation& obs, Vec2 seed) const;
  double group_term(int count, Vec2 theta, int group) const;

  const DeploymentModel* model_;
  const GzTable* gz_;
  double penalty_cap_;
  int seeds_;
  double tol_meters_;
  /// Per-group caps; empty until apply_group_spread installs them.
  std::vector<double> group_caps_;
};

}  // namespace lad
