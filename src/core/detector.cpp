#include "core/detector.h"

#include <sstream>

#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"

namespace lad {

Detector::Detector(const DeploymentModel& model, const GzTable& gz,
                   MetricKind metric, double threshold)
    : model_(&model), gz_(&gz), metric_(make_metric(metric)),
      threshold_(threshold) {}

double Detector::score(const Observation& o, Vec2 le) const {
  const ExpectedObservation mu = model_->expected_observation(le, *gz_);
  return metric_->score(o, mu, model_->config().nodes_per_group);
}

Verdict Detector::check(const Observation& o, Vec2 le) const {
  const double s = score(o, le);
  return {s > threshold_, s, threshold_};
}

std::string Detector::describe() const {
  std::ostringstream os;
  os << metric_->name() << " metric, threshold " << threshold_;
  return os.str();
}

}  // namespace lad
