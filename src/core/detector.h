// The LAD detection API.
//
// `AnomalyDetector` is the one interface every detector variant
// implements: score an (observation, estimated location) pair, turn the
// score into a Verdict, and describe itself for inspection surfaces.
// `Detector` is the paper's single-metric instance (Section 4): compute
// mu from the deployment knowledge (constant-time g(z) table lookups),
// evaluate the metric, compare with the trained threshold.  FusionDetector
// (core/fusion.h) is the multi-metric instance.  Bundles materialize
// either kind behind the interface (core/serialize.h), so shipping a new
// detector variant to sensors is a serialization non-event.
#pragma once

#include <memory>
#include <string>

#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"

namespace lad {

struct Verdict {
  bool anomaly;      ///< true => raise the alarm, reject Le
  double score;      ///< the metric value that was compared
  double threshold;  ///< the trained detection threshold
};

/// What runs on a sensor node after the localization phase, whatever the
/// number of metrics behind it.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Anomaly score of observation `o` against estimated location `le`.
  /// Higher = more anomalous; the scale is detector-specific.
  virtual double score(const Observation& o, Vec2 le) const = 0;

  /// Full decision.
  virtual Verdict check(const Observation& o, Vec2 le) const = 0;

  /// One-line human-readable summary (metric(s) + threshold(s)).
  virtual std::string describe() const = 0;
};

class Detector final : public AnomalyDetector {
 public:
  /// The model and gz table must outlive the detector.
  Detector(const DeploymentModel& model, const GzTable& gz, MetricKind metric,
           double threshold);

  MetricKind metric() const { return metric_->kind(); }
  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  double score(const Observation& o, Vec2 le) const override;
  Verdict check(const Observation& o, Vec2 le) const override;
  std::string describe() const override;

 private:
  const DeploymentModel* model_;
  const GzTable* gz_;
  std::unique_ptr<Metric> metric_;
  double threshold_;
};

}  // namespace lad
