// The LAD detector: given a trained threshold, classify (observation,
// estimated location) pairs as normal or anomalous.
//
// This is what would run on a sensor node after the localization phase
// (Section 4): compute mu from the deployment knowledge (constant-time
// g(z) table lookups), evaluate the metric, compare with the threshold.
#pragma once

#include <memory>

#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"

namespace lad {

struct Verdict {
  bool anomaly;      ///< true => raise the alarm, reject Le
  double score;      ///< the metric value that was compared
  double threshold;  ///< the trained detection threshold
};

class Detector {
 public:
  /// The model and gz table must outlive the detector.
  Detector(const DeploymentModel& model, const GzTable& gz, MetricKind metric,
           double threshold);

  MetricKind metric() const { return metric_->kind(); }
  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  /// Anomaly score of observation `o` against estimated location `le`.
  double score(const Observation& o, Vec2 le) const;

  /// Full decision.
  Verdict check(const Observation& o, Vec2 le) const;

 private:
  const DeploymentModel* model_;
  const GzTable* gz_;
  std::unique_ptr<Metric> metric_;
  double threshold_;
};

}  // namespace lad
