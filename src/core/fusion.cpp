#include "core/fusion.h"

#include <algorithm>

#include "util/assert.h"

namespace lad {

FusionDetector::FusionDetector(const DeploymentModel& model, const GzTable& gz,
                               double diff_threshold, double addall_threshold,
                               double prob_threshold)
    : model_(&model), gz_(&gz),
      metrics_{make_metric(MetricKind::kDiff),
               make_metric(MetricKind::kAddAll),
               make_metric(MetricKind::kProb)},
      thresholds_{diff_threshold, addall_threshold, prob_threshold} {
  for (double t : thresholds_) {
    LAD_REQUIRE_MSG(t > 0, "fusion thresholds must be positive");
  }
}

std::array<double, 3> FusionDetector::normalized_scores(const Observation& o,
                                                        Vec2 le) const {
  const ExpectedObservation mu = model_->expected_observation(le, *gz_);
  const int m = model_->config().nodes_per_group;
  std::array<double, 3> out{};
  for (std::size_t i = 0; i < 3; ++i) {
    out[i] = metrics_[i]->score(o, mu, m) / thresholds_[i];
  }
  return out;
}

double FusionDetector::fused_score(const Observation& o, Vec2 le) const {
  const auto s = normalized_scores(o, le);
  return *std::max_element(s.begin(), s.end());
}

Verdict FusionDetector::check(const Observation& o, Vec2 le) const {
  const double s = fused_score(o, le);
  return {s > 1.0, s, 1.0};
}

MetricKind FusionDetector::dominant_metric(const Observation& o,
                                           Vec2 le) const {
  const auto s = normalized_scores(o, le);
  const std::size_t idx = static_cast<std::size_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
  static constexpr std::array<MetricKind, 3> kKinds = {
      MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb};
  return kKinds[idx];
}

}  // namespace lad
