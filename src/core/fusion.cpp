#include "core/fusion.h"

#include <algorithm>
#include <sstream>

#include "core/detector.h"
#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

FusionDetector::FusionDetector(const DeploymentModel& model, const GzTable& gz,
                               std::vector<Component> components)
    : model_(&model), gz_(&gz), components_(std::move(components)) {
  LAD_REQUIRE_MSG(!components_.empty(),
                  "fusion needs at least one (metric, threshold) component");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    LAD_REQUIRE_MSG(components_[i].second > 0,
                    "fusion thresholds must be positive");
    for (std::size_t j = 0; j < i; ++j) {
      LAD_REQUIRE_MSG(components_[j].first != components_[i].first,
                      "duplicate fusion metric '"
                          << metric_name(components_[i].first) << "'");
    }
    metrics_.push_back(make_metric(components_[i].first));
  }
}

FusionDetector::FusionDetector(const DeploymentModel& model, const GzTable& gz,
                               double diff_threshold, double addall_threshold,
                               double prob_threshold)
    : FusionDetector(model, gz,
                     {{MetricKind::kDiff, diff_threshold},
                      {MetricKind::kAddAll, addall_threshold},
                      {MetricKind::kProb, prob_threshold}}) {}

std::vector<double> FusionDetector::normalized_scores(const Observation& o,
                                                      Vec2 le) const {
  const ExpectedObservation mu = model_->expected_observation(le, *gz_);
  const int m = model_->config().nodes_per_group;
  std::vector<double> out(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    out[i] = metrics_[i]->score(o, mu, m) / components_[i].second;
  }
  return out;
}

double FusionDetector::fused_score(const Observation& o, Vec2 le) const {
  const auto s = normalized_scores(o, le);
  return *std::max_element(s.begin(), s.end());
}

Verdict FusionDetector::check(const Observation& o, Vec2 le) const {
  const double s = fused_score(o, le);
  return {s > 1.0, s, 1.0};
}

MetricKind FusionDetector::dominant_metric(const Observation& o,
                                           Vec2 le) const {
  const auto s = normalized_scores(o, le);
  const std::size_t idx = static_cast<std::size_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
  return components_[idx].first;
}

std::string FusionDetector::describe() const {
  std::ostringstream os;
  os << "fusion of " << components_.size() << " metrics (";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) os << ", ";
    os << metric_name(components_[i].first) << " @ "
       << components_[i].second;
  }
  os << "), alarm when any normalized score > 1";
  return os.str();
}

}  // namespace lad
