// Metric fusion - an extension beyond the paper.
//
// Section 5 proposes three metrics and evaluates them separately (Fig. 4).
// A natural next step is to run them together: each metric is trained to
// its own threshold, and the fused score of a sample is
//
//   max_i  score_i / threshold_i      (ratio > 1 <=> metric i alarms)
//
// so the OR-combination "any metric alarms" corresponds to fused > 1, and
// the fused quantity is still a single scalar that supports ROC analysis.
// The ablation bench (tab_metric_fusion) measures whether fusing buys
// detection at equal false-positive cost - the interesting case is the
// attacker that optimizes against ONE metric and gets caught by another.
//
// FusionDetector implements the AnomalyDetector interface, so a fused
// detector ships in a v2 bundle and runs behind the same API as the
// single-metric Detector (core/serialize.h).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"

namespace lad {

class FusionDetector final : public AnomalyDetector {
 public:
  /// One (metric, trained threshold) pair per fused component.
  using Component = std::pair<MetricKind, double>;

  /// Components must be non-empty with positive thresholds (scores are
  /// normalized by them) and pairwise-distinct metric kinds.
  FusionDetector(const DeploymentModel& model, const GzTable& gz,
                 std::vector<Component> components);

  /// The classic three-metric fusion with per-metric thresholds, typically
  /// each trained at the same tau.
  FusionDetector(const DeploymentModel& model, const GzTable& gz,
                 double diff_threshold, double addall_threshold,
                 double prob_threshold);

  const std::vector<Component>& components() const { return components_; }

  /// max_i score_i / threshold_i; alarm when > 1.
  double fused_score(const Observation& o, Vec2 le) const;

  double score(const Observation& o, Vec2 le) const override {
    return fused_score(o, le);
  }
  Verdict check(const Observation& o, Vec2 le) const override;
  std::string describe() const override;

  /// Which metric dominated the fused score (diagnostics).
  MetricKind dominant_metric(const Observation& o, Vec2 le) const;

 private:
  std::vector<double> normalized_scores(const Observation& o, Vec2 le) const;

  const DeploymentModel* model_;
  const GzTable* gz_;
  std::vector<Component> components_;
  std::vector<std::unique_ptr<Metric>> metrics_;
};

}  // namespace lad
