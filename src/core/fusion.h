// Metric fusion - an extension beyond the paper.
//
// Section 5 proposes three metrics and evaluates them separately (Fig. 4).
// A natural next step is to run them together: each metric is trained to
// its own threshold, and the fused score of a sample is
//
//   max_i  score_i / threshold_i      (ratio > 1 <=> metric i alarms)
//
// so the OR-combination "any metric alarms" corresponds to fused > 1, and
// the fused quantity is still a single scalar that supports ROC analysis.
// The ablation bench (tab_metric_fusion) measures whether fusing buys
// detection at equal false-positive cost - the interesting case is the
// attacker that optimizes against ONE metric and gets caught by another.
#pragma once

#include <array>
#include <memory>

#include "core/detector.h"
#include "core/metric.h"

namespace lad {

class FusionDetector {
 public:
  /// Per-metric thresholds, typically each trained at the same tau.
  /// Thresholds must be positive (scores are normalized by them).
  FusionDetector(const DeploymentModel& model, const GzTable& gz,
                 double diff_threshold, double addall_threshold,
                 double prob_threshold);

  /// max_i score_i / threshold_i; alarm when > 1.
  double fused_score(const Observation& o, Vec2 le) const;

  Verdict check(const Observation& o, Vec2 le) const;

  /// Which metric dominated the fused score (diagnostics).
  MetricKind dominant_metric(const Observation& o, Vec2 le) const;

 private:
  std::array<double, 3> normalized_scores(const Observation& o, Vec2 le) const;

  const DeploymentModel* model_;
  const GzTable* gz_;
  std::array<std::unique_ptr<Metric>, 3> metrics_;
  std::array<double, 3> thresholds_;
};

}  // namespace lad
