// Umbrella header for the LAD public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   lad::DeploymentConfig cfg;                    // Section 7.1 defaults
//   lad::DeploymentModel model(cfg);
//   lad::GzTable gz({cfg.radio_range, cfg.sigma});  // Theorem 1, tabulated
//   ... simulate benign deployments, collect metric scores ...
//   auto trained = lad::train_threshold(lad::MetricKind::kDiff, scores, 0.99);
//   lad::Detector detector(model, gz, trained.metric, trained.threshold);
//   lad::Verdict v = detector.check(observation, estimated_location);
#pragma once

#include "core/corrector.h"  // IWYU pragma: export
#include "core/detector.h"   // IWYU pragma: export
#include "core/fusion.h"     // IWYU pragma: export
#include "core/serialize.h"  // IWYU pragma: export
#include "core/metric.h"     // IWYU pragma: export
#include "core/trainer.h"    // IWYU pragma: export
#include "deploy/config.h"   // IWYU pragma: export
#include "deploy/deployment_model.h"  // IWYU pragma: export
#include "deploy/gz.h"       // IWYU pragma: export
#include "deploy/gz_table.h" // IWYU pragma: export
#include "deploy/network.h"  // IWYU pragma: export
#include "deploy/observation.h"  // IWYU pragma: export
