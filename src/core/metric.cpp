#include "core/metric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "deploy/observation.h"
#include "stats/special.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

const char* metric_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kDiff: return "diff";
    case MetricKind::kAddAll: return "add-all";
    case MetricKind::kProb: return "prob";
  }
  return "?";
}

MetricKind metric_from_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "diff" || n == "dm") return MetricKind::kDiff;
  if (n == "add-all" || n == "addall" || n == "am") return MetricKind::kAddAll;
  if (n == "prob" || n == "probability" || n == "pm") return MetricKind::kProb;
  LAD_REQUIRE_MSG(false, "unknown metric name: " << name);
  return MetricKind::kDiff;  // unreachable
}

namespace {
void check_sizes(const Observation& o, const ExpectedObservation& mu) {
  LAD_REQUIRE_MSG(o.num_groups() == mu.size(),
                  "observation has " << o.num_groups()
                                     << " groups but expectation has "
                                     << mu.size());
}
}  // namespace

double DiffMetric::score(const Observation& o, const ExpectedObservation& mu,
                         int /*m*/) const {
  check_sizes(o, mu);
  double dm = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    dm += std::abs(static_cast<double>(o.counts[i]) - mu[i]);
  }
  return dm;
}

double AddAllMetric::score(const Observation& o, const ExpectedObservation& mu,
                           int /*m*/) const {
  check_sizes(o, mu);
  double am = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    am += std::max(static_cast<double>(o.counts[i]), mu[i]);
  }
  return am;
}

double prob_metric_group_score(int count, double mu_i, int m) {
  LAD_REQUIRE_MSG(m > 0, "m must be positive");
  double p = mu_i / static_cast<double>(m);
  p = std::clamp(p, 0.0, 1.0);
  const double lp = log_binomial_pmf(count, m, p);
  if (std::isinf(lp)) {
    // Impossible count (e.g. o_i > 0 where p == 0): maximally anomalous,
    // but kept finite so scores stay orderable and trainable.
    return 1e12;
  }
  return -lp;
}

double ProbMetric::score(const Observation& o, const ExpectedObservation& mu,
                         int m) const {
  check_sizes(o, mu);
  // Alarm when min_i Pr(X_i = o_i) is small  <=>  max_i -log Pr is large.
  double worst = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    worst = std::max(worst, prob_metric_group_score(o.counts[i], mu[i], m));
  }
  return worst;
}

double ProbMetric::min_probability(const Observation& o,
                                   const ExpectedObservation& mu, int m) {
  check_sizes(o, mu);
  double min_p = 1.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double p = std::clamp(mu[i] / static_cast<double>(m), 0.0, 1.0);
    min_p = std::min(min_p, binomial_pmf(o.counts[i], m, p));
  }
  return min_p;
}

std::unique_ptr<Metric> make_metric(MetricKind kind) {
  switch (kind) {
    case MetricKind::kDiff: return std::make_unique<DiffMetric>();
    case MetricKind::kAddAll: return std::make_unique<AddAllMetric>();
    case MetricKind::kProb: return std::make_unique<ProbMetric>();
  }
  LAD_REQUIRE_MSG(false, "invalid metric kind");
  return nullptr;  // unreachable
}

}  // namespace lad
