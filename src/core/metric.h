// The three anomaly-detection metrics of Section 5.
//
// All metrics are exposed through one convention: score(o, mu, m) returns a
// real number where HIGHER means MORE ANOMALOUS.  This lets the detector,
// trainer, ROC builder and greedy attack procedures treat metrics
// uniformly.
//
//  * Diff    (5.2):  DM = sum_i |o_i - mu_i|                (higher = worse)
//  * Add-all (5.3):  AM = sum_i max(o_i, mu_i)              (higher = worse)
//  * Prob    (5.4):  PM = min_i Binom(o_i; m, g_i(Le)); the paper alarms
//                    when PM < threshold, so the score is -log PM
//                    (higher = worse), computed in log space because the
//                    pmf underflows for m = 1000.
#pragma once

#include <memory>
#include <string>

#include "deploy/observation.h"

namespace lad {

enum class MetricKind { kDiff, kAddAll, kProb };

const char* metric_name(MetricKind kind);
MetricKind metric_from_name(const std::string& name);

class Metric {
 public:
  virtual ~Metric() = default;

  virtual MetricKind kind() const = 0;
  std::string name() const { return metric_name(kind()); }

  /// Anomaly score of actual observation `o` against expected observation
  /// `mu` (Eq. 2) with `m` nodes per group.  Higher = more anomalous.
  virtual double score(const Observation& o, const ExpectedObservation& mu,
                       int m) const = 0;
};

class DiffMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::kDiff; }
  double score(const Observation& o, const ExpectedObservation& mu,
               int m) const override;
};

class AddAllMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::kAddAll; }
  double score(const Observation& o, const ExpectedObservation& mu,
               int m) const override;
};

class ProbMetric final : public Metric {
 public:
  MetricKind kind() const override { return MetricKind::kProb; }
  double score(const Observation& o, const ExpectedObservation& mu,
               int m) const override;

  /// min_i Binom(o_i; m, p_i) in linear space (may underflow; tests only).
  static double min_probability(const Observation& o,
                                const ExpectedObservation& mu, int m);
};

std::unique_ptr<Metric> make_metric(MetricKind kind);

/// -log pmf of one group's count: the Prob metric's per-group term; shared
/// with the greedy attack procedures.
double prob_metric_group_score(int count, double mu_i, int m);

}  // namespace lad
