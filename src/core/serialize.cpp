#include "core/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

DetectorBundle make_bundle(const DeploymentModel& model, int gz_omega,
                           MetricKind metric, double threshold) {
  DetectorBundle b;
  b.config = model.config();
  b.deployment_points = model.deployment_points();
  b.gz_omega = gz_omega;
  b.metric = metric;
  b.threshold = threshold;
  return b;
}

namespace {
constexpr const char* kHeader = "lad-detector v1";

/// %.17g round-trips doubles exactly.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

void save_bundle(std::ostream& os, const DetectorBundle& bundle) {
  os << kHeader << "\n";
  os << "field_side " << num(bundle.config.field_side) << "\n";
  os << "grid_nx " << bundle.config.grid_nx << "\n";
  os << "grid_ny " << bundle.config.grid_ny << "\n";
  os << "nodes_per_group " << bundle.config.nodes_per_group << "\n";
  os << "sigma " << num(bundle.config.sigma) << "\n";
  os << "radio_range " << num(bundle.config.radio_range) << "\n";
  os << "clamp_to_field " << (bundle.config.clamp_to_field ? 1 : 0) << "\n";
  os << "gz_omega " << bundle.gz_omega << "\n";
  os << "metric " << metric_name(bundle.metric) << "\n";
  os << "threshold " << num(bundle.threshold) << "\n";
  os << "points " << bundle.deployment_points.size() << "\n";
  for (const Vec2& p : bundle.deployment_points) {
    os << num(p.x) << " " << num(p.y) << "\n";
  }
}

namespace {

std::string read_line(std::istream& is, const char* what) {
  std::string line;
  LAD_REQUIRE_MSG(static_cast<bool>(std::getline(is, line)),
                  "truncated detector bundle: missing " << what);
  return line;
}

std::pair<std::string, std::string> read_kv(std::istream& is,
                                            const std::string& expect_key) {
  const std::string line = read_line(is, expect_key.c_str());
  const std::size_t sp = line.find(' ');
  LAD_REQUIRE_MSG(sp != std::string::npos,
                  "malformed bundle line: '" << line << "'");
  const std::string key = line.substr(0, sp);
  LAD_REQUIRE_MSG(key == expect_key, "expected key '" << expect_key
                                                      << "' but found '"
                                                      << key << "'");
  return {key, line.substr(sp + 1)};
}

}  // namespace

DetectorBundle load_bundle(std::istream& is) {
  const std::string header = read_line(is, "header");
  LAD_REQUIRE_MSG(header == kHeader,
                  "unsupported bundle header: '" << header << "'");
  DetectorBundle b;
  b.config.field_side = parse_double(read_kv(is, "field_side").second);
  b.config.grid_nx = static_cast<int>(parse_int(read_kv(is, "grid_nx").second));
  b.config.grid_ny = static_cast<int>(parse_int(read_kv(is, "grid_ny").second));
  b.config.nodes_per_group =
      static_cast<int>(parse_int(read_kv(is, "nodes_per_group").second));
  b.config.sigma = parse_double(read_kv(is, "sigma").second);
  b.config.radio_range = parse_double(read_kv(is, "radio_range").second);
  b.config.clamp_to_field =
      parse_int(read_kv(is, "clamp_to_field").second) != 0;
  b.gz_omega = static_cast<int>(parse_int(read_kv(is, "gz_omega").second));
  b.metric = metric_from_name(read_kv(is, "metric").second);
  b.threshold = parse_double(read_kv(is, "threshold").second);
  const long long npoints = parse_int(read_kv(is, "points").second);
  LAD_REQUIRE_MSG(npoints > 0 && npoints < 1000000,
                  "implausible deployment point count " << npoints);
  for (long long i = 0; i < npoints; ++i) {
    const std::string line = read_line(is, "deployment point");
    const std::size_t sp = line.find(' ');
    LAD_REQUIRE_MSG(sp != std::string::npos,
                    "malformed point line: '" << line << "'");
    b.deployment_points.push_back(
        {parse_double(line.substr(0, sp)), parse_double(line.substr(sp + 1))});
  }
  b.config.validate();
  return b;
}

RuntimeDetector::RuntimeDetector(const DetectorBundle& bundle) {
  model_ = std::make_unique<DeploymentModel>(bundle.config,
                                             bundle.deployment_points);
  gz_ = std::make_unique<GzTable>(
      GzParams{bundle.config.radio_range, bundle.config.sigma},
      bundle.gz_omega);
  detector_ = std::make_unique<Detector>(*model_, *gz_, bundle.metric,
                                         bundle.threshold);
}

}  // namespace lad
