#include "core/serialize.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/detector.h"
#include "core/fusion.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "deploy/deployment_model.h"
#include "deploy/gz.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

namespace {

constexpr const char* kHeaderV1 = "lad-detector v1";
constexpr const char* kHeaderV2 = "lad-detector v2";

/// %.17g round-trips doubles exactly.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Line-oriented reader tracking line numbers (for error context) with a
/// one-line pushback, so the section loop can peek at headers.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  bool next(std::string* line) {
    if (pushed_) {
      *line = std::move(buffer_);
      pushed_ = false;
      ++line_no_;
      return true;
    }
    if (!std::getline(is_, *line)) return false;
    ++line_no_;
    return true;
  }

  std::string require(const char* what) {
    std::string line;
    LAD_REQUIRE_MSG(next(&line), "truncated detector bundle after line "
                                     << line_no_ << ": missing " << what);
    return line;
  }

  void push_back(std::string line) {
    buffer_ = std::move(line);
    pushed_ = true;
    --line_no_;
  }

  int line_no() const { return line_no_; }

 private:
  std::istream& is_;
  int line_no_ = 0;
  bool pushed_ = false;
  std::string buffer_;
};

/// Every value parsed out of a bundle line goes through these wrappers so
/// malformed input always rejects with the offending line number.
[[noreturn]] void fail_at(const LineReader& r, const std::string& what) {
  throw AssertionError("detector bundle line " + std::to_string(r.line_no()) +
                       ": " + what);
}

double parse_double_at(const LineReader& r, std::string_view s) {
  try {
    return parse_double(s);
  } catch (const AssertionError& e) {
    fail_at(r, e.what());
  }
}

long long parse_int_at(const LineReader& r, std::string_view s) {
  try {
    return parse_int(s);
  } catch (const AssertionError& e) {
    fail_at(r, e.what());
  }
}

MetricKind metric_at(const LineReader& r, const std::string& s) {
  try {
    return metric_from_name(s);
  } catch (const AssertionError& e) {
    fail_at(r, e.what());
  }
}

/// Reads one "key value" line whose key must be `expect_key`.
std::string expect_kv(LineReader& r, const char* expect_key) {
  const std::string line = r.require(expect_key);
  const std::size_t sp = line.find(' ');
  LAD_REQUIRE_MSG(sp != std::string::npos, "bundle line "
                                               << r.line_no()
                                               << ": malformed line '" << line
                                               << "' (expected '" << expect_key
                                               << " <value>')");
  const std::string key = line.substr(0, sp);
  LAD_REQUIRE_MSG(key == expect_key, "bundle line "
                                         << r.line_no() << ": expected key '"
                                         << expect_key << "' but found '"
                                         << key << "'");
  return line.substr(sp + 1);
}

void expect_line(LineReader& r, const char* text) {
  const std::string line = r.require(text);
  LAD_REQUIRE_MSG(line == text, "bundle line " << r.line_no()
                                               << ": expected '" << text
                                               << "' but found '" << line
                                               << "'");
}

/// The deployment fields shared (in this order) by v1 bodies and the v2
/// [deployment] section.
void read_deployment_fields(LineReader& r, DetectorBundle& b) {
  b.config.field_side = parse_double_at(r, expect_kv(r, "field_side"));
  b.config.grid_nx = static_cast<int>(parse_int_at(r, expect_kv(r, "grid_nx")));
  b.config.grid_ny = static_cast<int>(parse_int_at(r, expect_kv(r, "grid_ny")));
  b.config.nodes_per_group =
      static_cast<int>(parse_int_at(r, expect_kv(r, "nodes_per_group")));
  b.config.sigma = parse_double_at(r, expect_kv(r, "sigma"));
  b.config.radio_range = parse_double_at(r, expect_kv(r, "radio_range"));
  b.config.clamp_to_field =
      parse_int_at(r, expect_kv(r, "clamp_to_field")) != 0;
}

void read_deployment_points(LineReader& r, DetectorBundle& b) {
  const long long npoints = parse_int_at(r, expect_kv(r, "points"));
  LAD_REQUIRE_MSG(npoints > 0 && npoints < 1000000,
                  "bundle line " << r.line_no()
                                 << ": implausible deployment point count "
                                 << npoints);
  b.deployment_points.reserve(static_cast<std::size_t>(npoints));
  for (long long i = 0; i < npoints; ++i) {
    const std::string line = r.require("deployment point");
    const std::size_t sp = line.find(' ');
    LAD_REQUIRE_MSG(sp != std::string::npos,
                    "bundle line " << r.line_no() << ": malformed point line '"
                                   << line << "'");
    b.deployment_points.push_back({parse_double_at(r, line.substr(0, sp)),
                                   parse_double_at(r, line.substr(sp + 1))});
  }
}

DetectorBundle load_v1(LineReader& r) {
  DetectorBundle b;
  read_deployment_fields(r, b);
  b.gz_omega = static_cast<int>(parse_int_at(r, expect_kv(r, "gz_omega")));
  DetectorSpec spec;
  spec.metric = metric_at(r, expect_kv(r, "metric"));
  spec.threshold = parse_double_at(r, expect_kv(r, "threshold"));
  read_deployment_points(r, b);
  b.detectors.push_back(std::move(spec));
  return b;
}

/// One `tau <tau> <threshold> <samples> <mean> <stddev> <min> <max>` row.
ThresholdEntry parse_tau_row(const std::vector<std::string>& tokens,
                             const LineReader& r) {
  LAD_REQUIRE_MSG(tokens.size() == 8,
                  "bundle line "
                      << r.line_no()
                      << ": tau row needs 7 fields (tau threshold samples "
                         "mean stddev min max), got "
                      << tokens.size() - 1);
  ThresholdEntry e;
  e.tau = parse_double_at(r, tokens[1]);
  e.threshold = parse_double_at(r, tokens[2]);
  const long long samples = parse_int_at(r, tokens[3]);
  LAD_REQUIRE_MSG(samples >= 0, "bundle line " << r.line_no()
                                               << ": negative sample count");
  e.samples = static_cast<std::uint64_t>(samples);
  e.score_mean = parse_double_at(r, tokens[4]);
  e.score_stddev = parse_double_at(r, tokens[5]);
  e.score_min = parse_double_at(r, tokens[6]);
  e.score_max = parse_double_at(r, tokens[7]);
  return e;
}

DetectorBundle load_v2(LineReader& r) {
  DetectorBundle b;
  expect_line(r, "[deployment]");
  read_deployment_fields(r, b);
  read_deployment_points(r, b);
  expect_line(r, "[gz]");
  b.gz_omega = static_cast<int>(parse_int_at(r, expect_kv(r, "omega")));

  std::string line = r.require("a [detector.<name>] section");
  std::vector<std::string> labels;
  for (;;) {
    LAD_REQUIRE_MSG(
        starts_with(line, "[detector.") && line.size() > 11 &&
            line.back() == ']',
        "bundle line " << r.line_no()
                       << ": expected a [detector.<name>] section, found '"
                       << line << "'");
    const std::string label = line.substr(10, line.size() - 11);
    LAD_REQUIRE_MSG(std::find(labels.begin(), labels.end(), label) ==
                        labels.end(),
                    "bundle line " << r.line_no()
                                   << ": duplicate section [detector." << label
                                   << "]");
    labels.push_back(label);

    DetectorSpec spec;
    spec.metric = metric_at(r, expect_kv(r, "metric"));
    spec.threshold = parse_double_at(r, expect_kv(r, "threshold"));

    // Tail rows: tau table, group overrides, x- extension keys - in any
    // order on read (the writer emits them canonically), anything else is
    // an unknown key and rejects like kvconfig.
    bool more_sections = false;
    while (r.next(&line)) {
      if (!line.empty() && line.front() == '[') {
        more_sections = true;
        break;
      }
      const std::vector<std::string> tokens = split(line, ' ');
      const std::string& key = tokens.empty() ? line : tokens.front();
      if (key == "tau") {
        spec.taus.push_back(parse_tau_row(tokens, r));
      } else if (key == "group") {
        // Two forms: the bare hand-written override `group <id> <threshold>`
        // and the trained row `group <id> <threshold> <samples> <mean>
        // <stddev> <trained|fallback>` per-group training emits.
        LAD_REQUIRE_MSG(tokens.size() == 3 || tokens.size() == 7,
                        "bundle line "
                            << r.line_no()
                            << ": group row needs 2 fields (group threshold) "
                               "or 6 (group threshold samples mean stddev "
                               "trained|fallback), got "
                            << tokens.size() - 1);
        GroupThreshold g;
        g.group = static_cast<int>(parse_int_at(r, tokens[1]));
        g.threshold = parse_double_at(r, tokens[2]);
        if (tokens.size() == 7) {
          const long long samples = parse_int_at(r, tokens[3]);
          LAD_REQUIRE_MSG(samples >= 0, "bundle line "
                                            << r.line_no()
                                            << ": negative sample count");
          g.samples = static_cast<std::uint64_t>(samples);
          g.score_mean = parse_double_at(r, tokens[4]);
          g.score_stddev = parse_double_at(r, tokens[5]);
          if (tokens[6] == "trained") {
            g.source = GroupOverrideSource::kTrained;
          } else if (tokens[6] == "fallback") {
            g.source = GroupOverrideSource::kFallback;
          } else {
            LAD_REQUIRE_MSG(false, "bundle line "
                                       << r.line_no()
                                       << ": group row provenance must be "
                                          "'trained' or 'fallback', got '"
                                       << tokens[6] << "'");
          }
        }
        spec.group_overrides.push_back(g);
      } else if (starts_with(key, "x-") && key.size() > 2) {
        const std::size_t sp = line.find(' ');
        LAD_REQUIRE_MSG(sp != std::string::npos,
                        "bundle line " << r.line_no()
                                       << ": extension line '" << line
                                       << "' has no value");
        spec.extensions.emplace_back(key.substr(2), line.substr(sp + 1));
      } else {
        LAD_REQUIRE_MSG(false, "bundle line "
                                   << r.line_no() << ": unknown key '" << key
                                   << "' in [detector." << label << "]");
      }
    }
    b.detectors.push_back(std::move(spec));
    if (!more_sections) break;
  }
  return b;
}

}  // namespace

const char* group_override_source_name(GroupOverrideSource source) {
  switch (source) {
    case GroupOverrideSource::kManual: return "manual";
    case GroupOverrideSource::kTrained: return "trained";
    case GroupOverrideSource::kFallback: return "fallback";
  }
  return "?";
}

double DetectorSpec::threshold_for_group(int group) const {
  for (const GroupThreshold& g : group_overrides) {
    if (g.group == group) return g.threshold;
  }
  return threshold;
}

DetectorSpec detector_spec_from_training(
    const std::vector<TrainingResult>& table, double active_tau) {
  LAD_REQUIRE_MSG(!table.empty(), "cannot build a detector section from an "
                                  "empty training table");
  std::vector<TrainingResult> rows = table;
  std::sort(rows.begin(), rows.end(),
            [](const TrainingResult& a, const TrainingResult& b) {
              return a.tau < b.tau;
            });
  DetectorSpec spec;
  spec.metric = rows.front().metric;
  bool found_active = false;
  for (const TrainingResult& r : rows) {
    LAD_REQUIRE_MSG(r.metric == spec.metric,
                    "training table mixes metrics ("
                        << metric_name(spec.metric) << " and "
                        << metric_name(r.metric) << ")");
    spec.taus.push_back({r.tau, r.threshold, r.num_samples,
                         r.score_stats.mean(), r.score_stats.stddev(),
                         r.score_stats.min(), r.score_stats.max()});
    if (r.tau == active_tau) {
      spec.threshold = r.threshold;
      found_active = true;
    }
  }
  LAD_REQUIRE_MSG(found_active, "active tau " << active_tau
                                              << " is not in the training "
                                                 "table");
  return spec;
}

const DetectorSpec* find_detector(const DetectorBundle& bundle,
                                  MetricKind metric) {
  for (const DetectorSpec& spec : bundle.detectors) {
    if (spec.metric == metric) return &spec;
  }
  return nullptr;
}

const DetectorSpec& DetectorBundle::primary() const {
  LAD_REQUIRE_MSG(!detectors.empty(), "bundle has no detector section");
  return detectors.front();
}

void DetectorBundle::validate() const {
  config.validate();
  LAD_REQUIRE_MSG(!deployment_points.empty(),
                  "bundle has no deployment points");
  LAD_REQUIRE_MSG(gz_omega > 0, "gz omega must be positive");
  LAD_REQUIRE_MSG(!detectors.empty(), "bundle has no detector section");
  const int num_groups = static_cast<int>(deployment_points.size());
  for (std::size_t i = 0; i < detectors.size(); ++i) {
    const DetectorSpec& spec = detectors[i];
    for (std::size_t j = 0; j < i; ++j) {
      LAD_REQUIRE_MSG(detectors[j].metric != spec.metric,
                      "duplicate detector section for metric '"
                          << metric_name(spec.metric) << "'");
    }
    // Fused bundles normalize scores by thresholds, so every threshold
    // (including group overrides) must be positive.
    if (fused()) {
      LAD_REQUIRE_MSG(spec.threshold > 0,
                      "fused bundle threshold for '"
                          << metric_name(spec.metric)
                          << "' must be positive, got " << spec.threshold);
    }
    double prev_tau = 0.0;
    for (const ThresholdEntry& e : spec.taus) {
      LAD_REQUIRE_MSG(e.tau > 0.0 && e.tau <= 1.0,
                      "tau " << e.tau << " must be in (0,1]");
      LAD_REQUIRE_MSG(e.tau > prev_tau,
                      "tau table must be strictly increasing (tau " << e.tau
                          << " follows " << prev_tau << ")");
      prev_tau = e.tau;
    }
    int prev_group = -1;
    for (const GroupThreshold& g : spec.group_overrides) {
      LAD_REQUIRE_MSG(g.group >= 0 && g.group < num_groups,
                      "group override " << g.group << " out of range [0, "
                                        << num_groups << ")");
      LAD_REQUIRE_MSG(g.group > prev_group,
                      "group overrides must be strictly increasing (group "
                          << g.group << " follows " << prev_group << ")");
      if (fused()) {
        LAD_REQUIRE_MSG(g.threshold > 0,
                        "fused bundle group override for group " << g.group
                            << " must be positive, got " << g.threshold);
      }
      // A trained row with zero samples is a contradiction (the min-samples
      // floor would have recorded it as a fallback instead).
      LAD_REQUIRE_MSG(g.source != GroupOverrideSource::kTrained ||
                          g.samples >= 1,
                      "trained group override for group "
                          << g.group << " has no training samples");
      prev_group = g.group;
    }
    for (const auto& [key, value] : spec.extensions) {
      LAD_REQUIRE_MSG(!key.empty() &&
                          key.find_first_of(" \t\n\r") == std::string::npos,
                      "extension key '" << key << "' must be a non-empty "
                                           "token");
      // A newline in the value would serialize as a stray line the loader
      // rejects - a validated bundle must always round-trip.
      LAD_REQUIRE_MSG(value.find_first_of("\n\r") == std::string::npos,
                      "extension value for '" << key
                                              << "' must be a single line");
    }
  }
}

DetectorBundle make_bundle(const DeploymentModel& model, int gz_omega,
                           MetricKind metric, double threshold) {
  DetectorSpec spec;
  spec.metric = metric;
  spec.threshold = threshold;
  std::vector<DetectorSpec> detectors;
  detectors.push_back(std::move(spec));
  return make_bundle(model, gz_omega, std::move(detectors));
}

DetectorBundle make_bundle(const DeploymentModel& model, int gz_omega,
                           std::vector<DetectorSpec> detectors) {
  DetectorBundle b;
  b.config = model.config();
  b.deployment_points = model.deployment_points();
  b.gz_omega = gz_omega;
  b.detectors = std::move(detectors);
  b.validate();
  return b;
}

void save_bundle(std::ostream& os, const DetectorBundle& bundle) {
  bundle.validate();
  os << kHeaderV2 << "\n";
  os << "[deployment]\n";
  os << "field_side " << num(bundle.config.field_side) << "\n";
  os << "grid_nx " << bundle.config.grid_nx << "\n";
  os << "grid_ny " << bundle.config.grid_ny << "\n";
  os << "nodes_per_group " << bundle.config.nodes_per_group << "\n";
  os << "sigma " << num(bundle.config.sigma) << "\n";
  os << "radio_range " << num(bundle.config.radio_range) << "\n";
  os << "clamp_to_field " << (bundle.config.clamp_to_field ? 1 : 0) << "\n";
  os << "points " << bundle.deployment_points.size() << "\n";
  for (const Vec2& p : bundle.deployment_points) {
    os << num(p.x) << " " << num(p.y) << "\n";
  }
  os << "[gz]\n";
  os << "omega " << bundle.gz_omega << "\n";
  for (const DetectorSpec& spec : bundle.detectors) {
    os << "[detector." << metric_name(spec.metric) << "]\n";
    os << "metric " << metric_name(spec.metric) << "\n";
    os << "threshold " << num(spec.threshold) << "\n";
    for (const ThresholdEntry& e : spec.taus) {
      os << "tau " << num(e.tau) << " " << num(e.threshold) << " "
         << e.samples << " " << num(e.score_mean) << " "
         << num(e.score_stddev) << " " << num(e.score_min) << " "
         << num(e.score_max) << "\n";
    }
    for (const GroupThreshold& g : spec.group_overrides) {
      os << "group " << g.group << " " << num(g.threshold);
      if (g.source != GroupOverrideSource::kManual) {
        os << " " << g.samples << " " << num(g.score_mean) << " "
           << num(g.score_stddev) << " "
           << group_override_source_name(g.source);
      }
      os << "\n";
    }
    for (const auto& [key, value] : spec.extensions) {
      os << "x-" << key << " " << value << "\n";
    }
  }
}

DetectorBundle load_bundle(std::istream& is, int* source_version) {
  LineReader r(is);
  const std::string header = r.require("header");
  DetectorBundle b;
  int version = 0;
  if (header == kHeaderV1) {
    version = 1;
    b = load_v1(r);
  } else if (header == kHeaderV2) {
    version = 2;
    b = load_v2(r);
  } else {
    LAD_REQUIRE_MSG(false, "unsupported bundle header: '" << header << "'");
  }
  b.validate();
  if (source_version != nullptr) *source_version = version;
  return b;
}

DetectorBundle load_bundle_file(const std::string& path,
                                int* source_version) {
  std::ifstream is(path);
  LAD_REQUIRE_MSG(static_cast<bool>(is),
                  "cannot open detector bundle '" << path << "'");
  try {
    return load_bundle(is, source_version);
  } catch (const AssertionError& e) {
    throw AssertionError(path + ": " + e.what());
  }
}

RuntimeDetector::RuntimeDetector(const DetectorBundle& bundle)
    : specs_(bundle.detectors) {
  bundle.validate();
  model_ = std::make_unique<DeploymentModel>(bundle.config,
                                             bundle.deployment_points);
  gz_ = std::make_unique<GzTable>(
      GzParams{bundle.config.radio_range, bundle.config.sigma},
      bundle.gz_omega);
  for (const DetectorSpec& spec : specs_) {
    metrics_.push_back(make_metric(spec.metric));
  }
  if (specs_.size() == 1) {
    detector_ = std::make_unique<Detector>(*model_, *gz_, specs_[0].metric,
                                           specs_[0].threshold);
  } else {
    std::vector<FusionDetector::Component> components;
    components.reserve(specs_.size());
    for (const DetectorSpec& spec : specs_) {
      components.emplace_back(spec.metric, spec.threshold);
    }
    detector_ = std::make_unique<FusionDetector>(*model_, *gz_,
                                                 std::move(components));
  }
}

RuntimeDetector::~RuntimeDetector() = default;

Verdict RuntimeDetector::check_for_group(const Observation& o, Vec2 le,
                                         int group) const {
  LAD_REQUIRE_MSG(group >= 0 && group < model_->num_groups(),
                  "group " << group << " out of range [0, "
                           << model_->num_groups() << ")");
  const ExpectedObservation mu = model_->expected_observation(le, *gz_);
  const int m = model_->config().nodes_per_group;
  if (specs_.size() == 1) {
    const double threshold = specs_[0].threshold_for_group(group);
    const double s = metrics_[0]->score(o, mu, m);
    return {s > threshold, s, threshold};
  }
  double fused = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    fused = std::max(fused, metrics_[i]->score(o, mu, m) /
                                specs_[i].threshold_for_group(group));
  }
  return {fused > 1.0, fused, 1.0};
}

}  // namespace lad
