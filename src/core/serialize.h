// Persistence for trained detectors.
//
// The paper's workflow trains thresholds offline ("through training ...
// we use tau percentile") and ships the deployment knowledge + threshold
// to sensors.  This module serializes exactly that bundle and materializes
// a working AnomalyDetector from it.
//
// Current format: `lad-detector v2`, a line-oriented sectioned text file.
//
//   lad-detector v2
//   [deployment]          deployment config + point list (as in v1)
//   field_side 1000
//   ...
//   points 100
//   50 50
//   ...
//   [gz]                  g(z) lookup-table resolution
//   omega 256
//   [detector.diff]       one section per detector component; a single
//   metric diff           section materializes the paper's Detector, two
//   threshold 12.5        or more a FusionDetector over the sections
//   tau 0.99 12.5 4800 3.41 1.18 0.2 19.7
//   ...                   ^ multi-tau training provenance: tau, threshold,
//   group 17 11.25          samples, score mean/stddev/min/max; `group`
//   group 3 13.5 210 4.1 1.6 trained
//   x-trained-by lad_cli    rows are per-group threshold overrides (bare
//                           2-field rows are hand-written; per-group
//                           *training* appends the bucket's samples, score
//                           mean/stddev, and a trained|fallback marker),
//                           and `x-` keys are an extensible tail.
//
// Unknown sections/keys are rejected with line context (like kvconfig) -
// only `x-<key> <value>` lines pass through, preserved verbatim, so future
// writers can attach provenance without breaking old readers' invariants
// silently.  `load_bundle` still reads the golden-pinned v1 format and
// migrates it in memory; `save_bundle` always writes v2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"

namespace lad {

/// One row of a detector section's multi-tau threshold table - the
/// provenance of a TrainingResult, enough to re-derive the operating
/// point or audit the benign score distribution it came from.
struct ThresholdEntry {
  double tau = 0.0;        ///< percentile level (in (0,1])
  double threshold = 0.0;  ///< trained threshold at that tau
  std::uint64_t samples = 0;
  double score_mean = 0.0;
  double score_stddev = 0.0;
  double score_min = 0.0;
  double score_max = 0.0;

  bool operator==(const ThresholdEntry&) const = default;
};

/// How a per-group threshold override row came to be: written by hand (the
/// bare two-field row), trained on that group's benign score bucket, or a
/// recorded fallback to the global threshold (bucket under the min-samples
/// floor, or a fused-unusable trained value).
enum class GroupOverrideSource { kManual, kTrained, kFallback };

const char* group_override_source_name(GroupOverrideSource source);

/// Per-group threshold override (e.g. boundary groups trained separately
/// for edge-truncated neighborhoods); `group` indexes the deployment point
/// list.  Trained/fallback rows carry their bucket's provenance (sample
/// count, score mean/stddev); manual rows serialize as the bare
/// `group <id> <threshold>` form.
struct GroupThreshold {
  int group = 0;
  double threshold = 0.0;
  GroupOverrideSource source = GroupOverrideSource::kManual;
  std::uint64_t samples = 0;    ///< benign bucket size (trained/fallback)
  double score_mean = 0.0;      ///< bucket score mean (trained/fallback)
  double score_stddev = 0.0;    ///< bucket score stddev (trained/fallback)

  bool operator==(const GroupThreshold&) const = default;
};

/// One `[detector.*]` section: a metric, its active threshold, and the
/// training provenance behind it.
struct DetectorSpec {
  MetricKind metric = MetricKind::kDiff;
  double threshold = 0.0;             ///< the active detection threshold
  std::vector<ThresholdEntry> taus;   ///< multi-tau table (may be empty)
  std::vector<GroupThreshold> group_overrides;  ///< ascending by group
  /// Extensible tail: `x-<key> <value>` lines, preserved in file order.
  std::vector<std::pair<std::string, std::string>> extensions;

  bool operator==(const DetectorSpec&) const = default;

  /// The override for `group` when present, else the active threshold.
  double threshold_for_group(int group) const;
};

/// Builds a section from a multi-tau training sweep (all entries must
/// share one metric); the active threshold is the entry at `active_tau`
/// (exact match required).
DetectorSpec detector_spec_from_training(
    const std::vector<TrainingResult>& table, double active_tau);

/// Everything a sensor needs to run LAD: self-contained and serializable.
/// One detector section => the paper's single-metric Detector; several
/// sections => a FusionDetector over them.
struct DetectorBundle {
  DeploymentConfig config;
  std::vector<Vec2> deployment_points;
  int gz_omega = 256;
  std::vector<DetectorSpec> detectors;

  bool operator==(const DetectorBundle&) const = default;

  bool fused() const { return detectors.size() > 1; }
  /// First detector section; throws when the bundle has none.
  const DetectorSpec& primary() const;
  /// Structural invariants (non-empty sections, unique metrics, tau and
  /// group-override ordering/ranges); throws lad::AssertionError.
  void validate() const;
};

/// The bundle's section for `metric`, or nullptr when it has none.
const DetectorSpec* find_detector(const DetectorBundle& bundle,
                                  MetricKind metric);

/// Captures a single-metric bundle from live objects.
DetectorBundle make_bundle(const DeploymentModel& model, int gz_omega,
                           MetricKind metric, double threshold);

/// Captures a bundle with explicit detector sections (one = single-metric,
/// several = fusion).
DetectorBundle make_bundle(const DeploymentModel& model, int gz_omega,
                           std::vector<DetectorSpec> detectors);

/// Writes the current (v2) format.
void save_bundle(std::ostream& os, const DetectorBundle& bundle);

/// Reads v1 or v2; v1 bundles are migrated in memory to the v2 model.
/// Throws lad::AssertionError with line context on malformed, truncated,
/// or unsupported input.  `source_version` (optional) receives the format
/// version the bytes were in (1 or 2).
DetectorBundle load_bundle(std::istream& is, int* source_version = nullptr);

/// Opens and loads a bundle file; errors name the path.
DetectorBundle load_bundle_file(const std::string& path,
                                int* source_version = nullptr);

/// A detector materialized from a bundle, owning its model, g(z) table and
/// the AnomalyDetector (single-metric Detector or FusionDetector).
class RuntimeDetector {
 public:
  explicit RuntimeDetector(const DetectorBundle& bundle);
  ~RuntimeDetector();

  const DeploymentModel& model() const { return *model_; }
  const GzTable& gz() const { return *gz_; }
  const AnomalyDetector& detector() const { return *detector_; }
  bool fused() const { return specs_.size() > 1; }

  double score(const Observation& o, Vec2 le) const {
    return detector_->score(o, le);
  }

  Verdict check(const Observation& o, Vec2 le) const {
    return detector_->check(o, le);
  }

  /// As check(), but honoring the bundle's per-group threshold overrides
  /// for the sensor's home group.
  Verdict check_for_group(const Observation& o, Vec2 le, int group) const;

 private:
  std::vector<DetectorSpec> specs_;
  std::unique_ptr<DeploymentModel> model_;
  std::unique_ptr<GzTable> gz_;
  std::vector<std::unique_ptr<Metric>> metrics_;  ///< one per spec
  std::unique_ptr<AnomalyDetector> detector_;
};

}  // namespace lad
