// Persistence for trained detectors.
//
// The paper's workflow trains thresholds offline ("through training ...
// we use tau percentile") and ships the deployment knowledge + threshold
// to sensors.  This module serializes exactly that bundle - deployment
// configuration, deployment points, g(z) table resolution, metric and
// threshold - in a line-oriented text format, and materializes a working
// Detector from it.
//
// Format (version header + key/value lines + point list):
//   lad-detector v1
//   field_side 1000
//   ...
//   points 100
//   50 50
//   ...
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/detector.h"

namespace lad {

/// Everything a sensor needs to run LAD: self-contained and serializable.
struct DetectorBundle {
  DeploymentConfig config;
  std::vector<Vec2> deployment_points;
  int gz_omega = 256;
  MetricKind metric = MetricKind::kDiff;
  double threshold = 0.0;

  bool operator==(const DetectorBundle&) const = default;
};

/// Captures a bundle from live objects.
DetectorBundle make_bundle(const DeploymentModel& model, int gz_omega,
                           MetricKind metric, double threshold);

void save_bundle(std::ostream& os, const DetectorBundle& bundle);

/// Throws lad::AssertionError on malformed/truncated/unsupported input.
DetectorBundle load_bundle(std::istream& is);

/// A detector materialized from a bundle, owning its model and g(z) table.
class RuntimeDetector {
 public:
  explicit RuntimeDetector(const DetectorBundle& bundle);

  const DeploymentModel& model() const { return *model_; }
  const GzTable& gz() const { return *gz_; }
  const Detector& detector() const { return *detector_; }

  Verdict check(const Observation& o, Vec2 le) const {
    return detector_->check(o, le);
  }

 private:
  std::unique_ptr<DeploymentModel> model_;
  std::unique_ptr<GzTable> gz_;
  std::unique_ptr<Detector> detector_;
};

}  // namespace lad
