#include "core/trainer.h"

#include "stats/quantile.h"
#include "util/assert.h"

namespace lad {

TrainingResult train_threshold(MetricKind metric, std::vector<double> scores,
                               double tau) {
  LAD_REQUIRE_MSG(!scores.empty(), "cannot train on zero samples");
  LAD_REQUIRE_MSG(tau > 0.0 && tau <= 1.0, "tau must be in (0,1]");
  TrainingResult r;
  r.metric = metric;
  r.tau = tau;
  r.num_samples = scores.size();
  for (double s : scores) r.score_stats.add(s);
  r.threshold = quantile_inplace(scores, tau);
  return r;
}

std::vector<TrainingResult> train_thresholds(MetricKind metric,
                                             std::vector<double> scores,
                                             const std::vector<double>& taus) {
  LAD_REQUIRE_MSG(!scores.empty(), "cannot train on zero samples");
  RunningStats stats;
  for (double s : scores) stats.add(s);
  const std::vector<double> qs = quantiles(std::move(scores), taus);
  std::vector<TrainingResult> out;
  out.reserve(taus.size());
  for (std::size_t i = 0; i < taus.size(); ++i) {
    TrainingResult r;
    r.metric = metric;
    r.tau = taus[i];
    r.threshold = qs[i];
    r.num_samples = stats.count();
    r.score_stats = stats;
    out.push_back(r);
  }
  return out;
}

}  // namespace lad
