#include "core/trainer.h"

#include <algorithm>
#include <utility>

#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "geom/vec2.h"
#include "stats/quantile.h"
#include "stats/running_stats.h"
#include "util/assert.h"

namespace lad {

TrainingResult train_threshold(MetricKind metric, std::vector<double> scores,
                               double tau) {
  LAD_REQUIRE_MSG(!scores.empty(), "cannot train on zero samples");
  LAD_REQUIRE_MSG(tau > 0.0 && tau <= 1.0, "tau must be in (0,1]");
  TrainingResult r;
  r.metric = metric;
  r.tau = tau;
  r.num_samples = scores.size();
  for (double s : scores) r.score_stats.add(s);
  r.threshold = quantile_inplace(scores, tau);
  return r;
}

std::vector<TrainingResult> train_thresholds(MetricKind metric,
                                             std::vector<double> scores,
                                             const std::vector<double>& taus) {
  LAD_REQUIRE_MSG(!scores.empty(), "cannot train on zero samples");
  RunningStats stats;
  for (double s : scores) stats.add(s);
  const std::vector<double> qs = quantiles(std::move(scores), taus);
  std::vector<TrainingResult> out;
  out.reserve(taus.size());
  for (std::size_t i = 0; i < taus.size(); ++i) {
    TrainingResult r;
    r.metric = metric;
    r.tau = taus[i];
    r.threshold = qs[i];
    r.num_samples = stats.count();
    r.score_stats = stats;
    out.push_back(r);
  }
  return out;
}

std::vector<GroupTrainingResult> train_group_thresholds(
    MetricKind metric, const std::vector<double>& scores,
    const std::vector<int>& sample_groups, const GroupTrainingOptions& options,
    double tau, double global_threshold) {
  LAD_REQUIRE_MSG(scores.size() == sample_groups.size(),
                  "per-group training: " << scores.size() << " scores but "
                                         << sample_groups.size()
                                         << " sample groups");
  LAD_REQUIRE_MSG(tau > 0.0 && tau <= 1.0, "tau must be in (0,1]");
  int prev = -1;
  for (int g : options.groups) {
    LAD_REQUIRE_MSG(g >= 0, "per-group training: negative group id " << g);
    LAD_REQUIRE_MSG(g > prev, "per-group training: group list must be "
                              "strictly ascending (group "
                                  << g << " follows " << prev << ")");
    prev = g;
  }

  // One pass over the samples, dispatching into per-group buckets (the
  // group list is ascending, so membership is a binary search).
  std::vector<std::vector<double>> buckets(options.groups.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto it = std::lower_bound(options.groups.begin(),
                                     options.groups.end(), sample_groups[i]);
    if (it != options.groups.end() && *it == sample_groups[i]) {
      buckets[static_cast<std::size_t>(it - options.groups.begin())]
          .push_back(scores[i]);
    }
  }

  std::vector<GroupTrainingResult> out;
  out.reserve(options.groups.size());
  for (std::size_t gi = 0; gi < options.groups.size(); ++gi) {
    std::vector<double>& bucket = buckets[gi];
    GroupTrainingResult r;
    r.group = options.groups[gi];
    r.training.metric = metric;
    r.training.tau = tau;
    r.training.num_samples = bucket.size();
    for (double s : bucket) r.training.score_stats.add(s);
    if (!bucket.empty() && bucket.size() >= options.min_samples) {
      r.training.threshold = quantile_inplace(bucket, tau);
      // A non-positive trained threshold cannot ship (fused bundles
      // normalize scores by it); keep the global one and record why.
      r.fallback = r.training.threshold <= 0.0 && global_threshold > 0.0;
    } else {
      r.fallback = true;
    }
    if (r.fallback) r.training.threshold = global_threshold;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<int> boundary_groups(const DeploymentModel& model) {
  const DeploymentConfig& cfg = model.config();
  const double margin = cfg.sigma + cfg.radio_range;
  std::vector<int> out;
  for (int g = 0; g < model.num_groups(); ++g) {
    const Vec2 dp = model.deployment_point(g);
    const double edge_dist =
        std::min(std::min(dp.x, cfg.field_side - dp.x),
                 std::min(dp.y, cfg.field_side - dp.y));
    if (edge_dist < margin) out.push_back(g);
  }
  return out;
}

}  // namespace lad
