// Threshold training (Section 5.5): simulate benign deployments, compute
// the metric for every sampled sensor using its *scheme-estimated* location
// (so the threshold absorbs the localization scheme's natural error), and
// take the tau-percentile of the resulting sample distribution.
// (1 - tau) is the training false-positive rate.
#pragma once

#include <cstddef>
#include <vector>

#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "stats/running_stats.h"

namespace lad {

struct TrainingResult {
  MetricKind metric;
  double tau;             ///< percentile level used (e.g. 0.99)
  double threshold;       ///< the trained detection threshold
  std::size_t num_samples;
  RunningStats score_stats;  ///< distribution summary of the benign scores
};

/// Derives the threshold from pre-collected benign scores.  The scores are
/// whatever Metric::score produced on benign (non-attacked) samples.
TrainingResult train_threshold(MetricKind metric, std::vector<double> scores,
                               double tau);

/// Thresholds for several tau levels from one sample set (one sort).
std::vector<TrainingResult> train_thresholds(MetricKind metric,
                                             std::vector<double> scores,
                                             const std::vector<double>& taus);

// --- per-group threshold training ----------------------------------------
//
// Benign scores are not identically distributed across the field: boundary
// groups hear truncated neighborhoods, so a single pooled tau over-fires at
// the edge and under-fires in the interior.  The functions below bucket a
// benign pass by the victim's nearest deployment group and fit the selected
// groups separately; groups whose bucket is below a min-samples floor fall
// back to the global threshold (and say so in provenance).

struct GroupTrainingOptions {
  /// Which groups to fit separately (strictly ascending group ids);
  /// typically boundary_groups(model).
  std::vector<int> groups;
  /// Buckets below this floor fall back to the global threshold - a
  /// tau-quantile of a handful of samples is noise, not a threshold.
  std::size_t min_samples = 100;
};

struct GroupTrainingResult {
  int group = 0;
  /// True when the bucket missed the min-samples floor (or a fused-unusable
  /// non-positive threshold came out) and the global threshold was kept.
  bool fallback = false;
  /// Per-group provenance: tau, the group's threshold (the global one when
  /// fallback), bucket size, and the bucket's score distribution.
  TrainingResult training;
};

/// Fits options.groups separately from one benign pass.  `scores` and
/// `sample_groups` are index-aligned (sample i came from a victim whose
/// nearest deployment group is sample_groups[i]); `global_threshold` is the
/// pooled threshold fallback buckets keep.  Results come back in
/// options.groups order.
std::vector<GroupTrainingResult> train_group_thresholds(
    MetricKind metric, const std::vector<double>& scores,
    const std::vector<int>& sample_groups, const GroupTrainingOptions& options,
    double tau, double global_threshold);

/// The groups whose neighborhoods the field edge truncates: deployment
/// point within sigma + radio_range of the field boundary.  Ascending.
std::vector<int> boundary_groups(const DeploymentModel& model);

}  // namespace lad
