// Threshold training (Section 5.5): simulate benign deployments, compute
// the metric for every sampled sensor using its *scheme-estimated* location
// (so the threshold absorbs the localization scheme's natural error), and
// take the tau-percentile of the resulting sample distribution.
// (1 - tau) is the training false-positive rate.
#pragma once

#include <vector>

#include "core/metric.h"
#include "stats/running_stats.h"

namespace lad {

struct TrainingResult {
  MetricKind metric;
  double tau;             ///< percentile level used (e.g. 0.99)
  double threshold;       ///< the trained detection threshold
  std::size_t num_samples;
  RunningStats score_stats;  ///< distribution summary of the benign scores
};

/// Derives the threshold from pre-collected benign scores.  The scores are
/// whatever Metric::score produced on benign (non-attacked) samples.
TrainingResult train_threshold(MetricKind metric, std::vector<double> scores,
                               double tau);

/// Thresholds for several tau levels from one sample set (one sort).
std::vector<TrainingResult> train_thresholds(MetricKind metric,
                                             std::vector<double> scores,
                                             const std::vector<double>& taus);

}  // namespace lad
