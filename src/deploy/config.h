// Deployment configuration (Section 7.1 defaults).
//
// "the deployment area is a square plane of 1000 meters by 1000 meters.
//  The plane is divided into 10 x 10 grids.  Each grid is 100m x 100m.
//  The center of each grid is the deployment point. ... We set the
//  parameter sigma of the Gaussian distribution to 50 in all of the
//  experiments."  m = 300 nodes per group is the paper's default density.
// The paper does not state the radio range; R = 50 m is our documented
// default (see DESIGN.md).
#pragma once

#include "geom/aabb.h"
#include "util/assert.h"

namespace lad {

struct DeploymentConfig {
  double field_side = 1000.0;  ///< square field edge length (meters)
  int grid_nx = 10;            ///< deployment points per row
  int grid_ny = 10;            ///< deployment points per column
  int nodes_per_group = 300;   ///< the paper's m
  double sigma = 50.0;         ///< Gaussian scatter std-dev (meters)
  double radio_range = 50.0;   ///< transmission range R (meters)
  bool clamp_to_field = false; ///< clamp resident points into the field

  bool operator==(const DeploymentConfig&) const = default;

  int num_groups() const { return grid_nx * grid_ny; }
  int total_nodes() const { return num_groups() * nodes_per_group; }
  Aabb field() const { return Aabb::square(field_side); }

  void validate() const {
    LAD_REQUIRE_MSG(field_side > 0, "field side must be positive");
    LAD_REQUIRE_MSG(grid_nx > 0 && grid_ny > 0, "grid must be non-empty");
    LAD_REQUIRE_MSG(nodes_per_group > 0, "m must be positive");
    LAD_REQUIRE_MSG(sigma > 0, "sigma must be positive");
    LAD_REQUIRE_MSG(radio_range > 0, "radio range must be positive");
  }
};

}  // namespace lad
