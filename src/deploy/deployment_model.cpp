#include "deploy/deployment_model.h"

#include <cmath>
#include <limits>

#include "deploy/config.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "stats/special.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

const char* deployment_shape_name(DeploymentShape shape) {
  switch (shape) {
    case DeploymentShape::kGrid: return "grid";
    case DeploymentShape::kHex: return "hex";
    case DeploymentShape::kRandom: return "random";
  }
  return "?";
}

DeploymentShape deployment_shape_from_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "grid") return DeploymentShape::kGrid;
  if (n == "hex" || n == "hexagonal") return DeploymentShape::kHex;
  if (n == "random" || n == "random-known") return DeploymentShape::kRandom;
  LAD_REQUIRE_MSG(false, "unknown deployment shape: " << name);
  return DeploymentShape::kGrid;  // unreachable
}

DeploymentModel::DeploymentModel(const DeploymentConfig& config)
    : config_(config) {
  config_.validate();
  const double dx = config_.field_side / config_.grid_nx;
  const double dy = config_.field_side / config_.grid_ny;
  points_.reserve(static_cast<std::size_t>(config_.num_groups()));
  // Row-major: group index i = row * nx + col, matching Figure 1's layout.
  for (int row = 0; row < config_.grid_ny; ++row) {
    for (int col = 0; col < config_.grid_nx; ++col) {
      points_.push_back({(col + 0.5) * dx, (row + 0.5) * dy});
    }
  }
}

DeploymentModel::DeploymentModel(const DeploymentConfig& config,
                                 std::vector<Vec2> points)
    : config_(config), points_(std::move(points)) {
  config_.validate();
  LAD_REQUIRE_MSG(!points_.empty(), "need at least one deployment point");
}

DeploymentModel DeploymentModel::hex(const DeploymentConfig& config) {
  config.validate();
  const double pitch = config.field_side / config.grid_nx;
  const double row_h = pitch * std::sqrt(3.0) / 2.0;
  std::vector<Vec2> points;
  int row = 0;
  for (double y = row_h / 2.0; y < config.field_side; y += row_h, ++row) {
    const double offset = (row % 2 == 0) ? pitch / 2.0 : pitch;
    for (double x = offset; x < config.field_side; x += pitch) {
      points.push_back({x, y});
    }
  }
  return DeploymentModel(config, std::move(points));
}

DeploymentModel DeploymentModel::random(const DeploymentConfig& config,
                                        Rng& rng) {
  config.validate();
  std::vector<Vec2> points;
  points.reserve(static_cast<std::size_t>(config.num_groups()));
  for (int i = 0; i < config.num_groups(); ++i) {
    points.push_back({rng.uniform(0.0, config.field_side),
                      rng.uniform(0.0, config.field_side)});
  }
  return DeploymentModel(config, std::move(points));
}

DeploymentModel DeploymentModel::make(DeploymentShape shape,
                                      const DeploymentConfig& config,
                                      std::uint64_t seed) {
  switch (shape) {
    case DeploymentShape::kGrid: return DeploymentModel(config);
    case DeploymentShape::kHex: return hex(config);
    case DeploymentShape::kRandom: {
      // lad-lint: allow(rng-construct) -- the deployment's root stream;
      // re-keying through Rng::stream would change every golden CSV.
      Rng rng(seed);
      return random(config, rng);
    }
  }
  LAD_REQUIRE_MSG(false, "invalid deployment shape");
  return DeploymentModel(config);  // unreachable
}

Vec2 DeploymentModel::deployment_point(int group) const {
  LAD_REQUIRE_MSG(group >= 0 && group < num_groups(),
                  "group " << group << " out of range");
  return points_[static_cast<std::size_t>(group)];
}

int DeploymentModel::nearest_group(Vec2 p) const {
  int best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (int g = 0; g < num_groups(); ++g) {
    const double d2 = distance2(p, points_[static_cast<std::size_t>(g)]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = g;
    }
  }
  return best;
}

Vec2 DeploymentModel::sample_resident_point(int group, Rng& rng) const {
  const Vec2 dp = deployment_point(group);
  Vec2 p{dp.x + rng.normal(0.0, config_.sigma),
         dp.y + rng.normal(0.0, config_.sigma)};
  if (config_.clamp_to_field) p = config_.field().clamp(p);
  return p;
}

double DeploymentModel::pdf(int group, Vec2 p) const {
  const Vec2 dp = deployment_point(group);
  return gaussian2d_pdf_radial(distance(p, dp), config_.sigma);
}

ExpectedObservation DeploymentModel::expected_observation(
    Vec2 le, const GzTable& gz) const {
  ExpectedObservation mu(static_cast<std::size_t>(num_groups()), 0.0);
  const double m = static_cast<double>(config_.nodes_per_group);
  for (int g = 0; g < num_groups(); ++g) {
    mu[static_cast<std::size_t>(g)] =
        m * gz.at(le, points_[static_cast<std::size_t>(g)]);
  }
  return mu;
}

double DeploymentModel::expected_neighbors(Vec2 le, const GzTable& gz) const {
  double total = 0.0;
  for (int g = 0; g < num_groups(); ++g) {
    total += gz.at(le, points_[static_cast<std::size_t>(g)]);
  }
  return total * config_.nodes_per_group;
}

}  // namespace lad
