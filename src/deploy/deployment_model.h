// The group-based deployment model of Section 3: n = nx * ny groups, one
// deployment point per grid-cell center, resident points scattered around
// the deployment point by an isotropic 2-D Gaussian with std sigma.
#pragma once

#include <string>
#include <vector>

#include "deploy/config.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {

/// Deployment-point layouts (Section 3.1: "the scheme we developed for
/// grid-based deployment can be easily extended to other deployment
/// strategies, such as deployments where the deployment points form
/// hexagon shapes, or deployments where the deployment points are random
/// (as long as their locations are given to all sensors)").
enum class DeploymentShape { kGrid, kHex, kRandom };

const char* deployment_shape_name(DeploymentShape shape);
DeploymentShape deployment_shape_from_name(const std::string& name);

class DeploymentModel {
 public:
  /// Grid layout (the paper's evaluation setup): one deployment point per
  /// grid-cell center.
  explicit DeploymentModel(const DeploymentConfig& config);

  /// Arbitrary deployment points (num_groups = points.size()); the config's
  /// grid_nx/grid_ny are ignored for layout but sigma/m/R still apply.
  DeploymentModel(const DeploymentConfig& config, std::vector<Vec2> points);

  /// Hexagonal packing with the same point pitch as the grid layout.
  static DeploymentModel hex(const DeploymentConfig& config);

  /// config.num_groups() points uniform in the field (known to all
  /// sensors, per Section 3.1).
  static DeploymentModel random(const DeploymentConfig& config, Rng& rng);

  static DeploymentModel make(DeploymentShape shape,
                              const DeploymentConfig& config,
                              std::uint64_t seed = 0);

  const DeploymentConfig& config() const { return config_; }
  int num_groups() const { return static_cast<int>(points_.size()); }
  int total_nodes() const { return num_groups() * config_.nodes_per_group; }

  /// Deployment point (grid-cell center) of group i.
  Vec2 deployment_point(int group) const;
  const std::vector<Vec2>& deployment_points() const { return points_; }

  /// Group whose deployment point is nearest to p.
  int nearest_group(Vec2 p) const;

  /// Samples a resident point for a node of `group` (Gaussian scatter;
  /// optionally clamped into the field per config).
  Vec2 sample_resident_point(int group, Rng& rng) const;

  /// Deployment pdf f_k^i(x, y | k in G_i) of Section 3.2.
  double pdf(int group, Vec2 p) const;

  /// Expected observation at location le (Eq. 2): mu_i = m * g_i(le).
  ExpectedObservation expected_observation(Vec2 le, const GzTable& gz) const;

  /// Expected total neighborhood size at le: sum_i mu_i.
  double expected_neighbors(Vec2 le, const GzTable& gz) const;

 private:
  DeploymentConfig config_;
  std::vector<Vec2> points_;
};

}  // namespace lad
