#include "deploy/gz.h"

#include <algorithm>
#include <cmath>

#include "geom/geometry.h"
#include "stats/integrate.h"
#include "stats/special.h"
#include "util/assert.h"

namespace lad {

double gz_at_zero(const GzParams& params) {
  return rayleigh_cdf(params.radio_range, params.sigma);
}

double gz_support_radius(const GzParams& params, double tail_sigmas) {
  return params.radio_range + tail_sigmas * params.sigma;
}

double gz_exact(double z, const GzParams& params) {
  LAD_REQUIRE_MSG(z >= 0, "g(z) is defined for z >= 0");
  LAD_REQUIRE_MSG(params.radio_range > 0 && params.sigma > 0,
                  "R and sigma must be positive");
  const double R = params.radio_range;
  const double sigma = params.sigma;

  // Concentric case: closed form, and the integral formula divides by z.
  if (z < 1e-9) return gz_at_zero(params);

  // Term 1: circles around the deployment point that lie entirely inside
  // the query disk (only possible when z < R).
  double result = 0.0;
  if (z < R) result += rayleigh_cdf(R - z, sigma);

  // Term 2: partially-overlapping annulus.  Truncate the upper limit where
  // the Gaussian tail is numerically zero.
  const double lo = std::abs(z - R);
  double hi = z + R;
  const double tail = 12.0 * sigma;
  if (lo >= tail) return result;  // the whole annulus is in the dead tail
  hi = std::min(hi, tail);

  auto integrand = [R, sigma, z](double ell) {
    if (ell <= 0.0) return 0.0;  // removable endpoint when z == R
    const double theta = arc_half_angle(ell, z, R);
    return gaussian2d_pdf_radial(ell, sigma) * 2.0 * ell * theta;
  };
  result += integrate_adaptive_simpson(integrand, lo, hi, params.tol);

  // Clamp tiny negative / >1 excursions from quadrature round-off.
  return std::clamp(result, 0.0, 1.0);
}

}  // namespace lad
