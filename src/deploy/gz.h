// Theorem 1: g(z) - the probability that a node of group Gi resides within
// the radio neighborhood (radius R) of a point at distance z from Gi's
// deployment point, when resident points follow an isotropic 2-D Gaussian
// with std sigma around the deployment point.
//
//   g(z) = 1{z<R} * [1 - exp(-(R-z)^2 / 2 sigma^2)]
//        + Integral_{|z-R|}^{z+R} f(l) * 2 l * acos((l^2+z^2-R^2)/(2 l z)) dl
//   with f(l) = (1 / 2 pi sigma^2) exp(-l^2 / 2 sigma^2).
//
// The paper omits the proof; the derivation is: integrate the radial
// Gaussian over the query disk in polar coordinates about the deployment
// point.  Circles of radius l < R - z lie entirely inside the disk (the
// Rayleigh-CDF first term); circles with |z-R| <= l <= z+R intersect it in
// an arc of half-angle acos(...) (the integral term).  Unit tests validate
// the implementation against brute-force Monte-Carlo and against the exact
// z = 0 closed form.
#pragma once

namespace lad {

struct GzParams {
  double radio_range;  ///< R
  double sigma;        ///< Gaussian scatter std-dev
  double tol = 1e-10;  ///< quadrature tolerance
};

/// Exact g(z) by adaptive quadrature.  z must be >= 0.
double gz_exact(double z, const GzParams& params);

/// Closed form for z = 0: the disk is concentric, so g(0) is the Rayleigh
/// CDF at R: 1 - exp(-R^2 / 2 sigma^2).
double gz_at_zero(const GzParams& params);

/// Distance beyond which g(z) < eps for practical purposes: R + k * sigma
/// with k chosen so the Gaussian tail is negligible (k = 8 covers 1e-14).
double gz_support_radius(const GzParams& params, double tail_sigmas = 8.0);

}  // namespace lad
