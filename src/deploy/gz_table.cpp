#include "deploy/gz_table.h"

#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

GzTable::GzTable(const GzParams& params, int omega)
    : params_(params),
      table_([&params](double z) { return gz_exact(z, params); }, 0.0,
             gz_support_radius(params), omega) {
  LAD_REQUIRE_MSG(omega >= 8, "omega < 8 gives useless accuracy");
}

double GzTable::operator()(double z) const {
  if (z >= table_.hi()) return 0.0;
  return table_(z < 0 ? 0.0 : z);
}

double GzTable::at(Vec2 theta, Vec2 deployment_point) const {
  return (*this)(distance(theta, deployment_point));
}

double GzTable::max_abs_error(int probes) const {
  return table_.max_abs_error(
      [this](double z) { return gz_exact(z, params_); }, probes);
}

}  // namespace lad
