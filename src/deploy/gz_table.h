// Section 3.3's table-lookup for g(z): "we precompute g(z), and store the
// values in a table ... divide the range of z into omega equal-size
// sub-ranges ... uses the interpolation ... takes only constant time."
//
// GzTable precomputes omega+1 points of gz_exact on [0, support_radius] and
// interpolates linearly.  Past the support radius g is numerically zero.
#pragma once

#include <memory>

#include "deploy/gz.h"
#include "geom/vec2.h"
#include "stats/interp.h"

namespace lad {

class GzTable {
 public:
  /// Default omega follows the paper's observation that "omega does not
  /// need to be very large"; 256 gives max abs error ~1e-5 for the paper's
  /// parameters (see bench/tab_gz_accuracy).
  explicit GzTable(const GzParams& params, int omega = 256);

  /// g at scalar distance z (constant-time lookup).
  double operator()(double z) const;

  /// g_i(theta): probability that a node of the group deployed at
  /// `deployment_point` lands in the radio neighborhood of `theta`.
  double at(Vec2 theta, Vec2 deployment_point) const;

  const GzParams& params() const { return params_; }
  int omega() const { return table_.omega(); }
  double support_radius() const { return table_.hi(); }

  /// Max absolute interpolation error vs the exact integral (for tests and
  /// the accuracy ablation).
  double max_abs_error(int probes = 2000) const;

 private:
  GzParams params_;
  InterpTable table_;
};

}  // namespace lad
