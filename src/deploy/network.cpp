#include "deploy/network.h"

#include <cmath>
#include <limits>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/observation.h"
#include "deploy/observe_kernel.h"
#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {

Network::Network(const DeploymentModel& model, Rng& rng) : model_(&model) {
  const DeploymentConfig& cfg = model.config();
  const std::size_t total = static_cast<std::size_t>(model.total_nodes());
  positions_.reserve(total);
  groups_.reserve(total);
  for (int g = 0; g < model.num_groups(); ++g) {
    for (int k = 0; k < cfg.nodes_per_group; ++k) {
      positions_.push_back(model.sample_resident_point(g, rng));
      groups_.push_back(static_cast<std::uint16_t>(g));
    }
  }
  tx_range_override_.assign(total, std::numeric_limits<float>::quiet_NaN());
  max_tx_range_ = cfg.radio_range;
  // Cell size = R/2: with per-row span trimming the scanned area hugs the
  // radius-R disk (~1.3 pi R^2) instead of the 3x3 bounding square (9 R^2)
  // that cell size = R forces.
  index_ = std::make_unique<GridIndex>(positions_, cfg.field(),
                                       cfg.radio_range / 2.0);
  // Gather the payload columns (group id, tx override) straight into cell
  // order and invert the permutation in the same pass.  This replaces the
  // copy-then-permute_in_place route (two node-sized temporaries and three
  // extra passes) that made index construction ~20% of deployment cost.
  cell_groups_.resize(total);
  cell_tx_override_.resize(total);
  slot_of_.resize(total);
  const std::vector<std::uint32_t>& order = index_->permutation();
  for (std::uint32_t slot = 0; slot < order.size(); ++slot) {
    const std::uint32_t node = order[slot];
    cell_groups_[slot] = groups_[node];
    cell_tx_override_[slot] = tx_range_override_[node];
    slot_of_[node] = slot;
  }
}

double Network::tx_range(std::size_t node) const {
  const float o = tx_range_override_[node];
  return std::isnan(o) ? model_->config().radio_range : static_cast<double>(o);
}

void Network::set_tx_range(std::size_t node, double range) {
  LAD_REQUIRE(node < positions_.size());
  LAD_REQUIRE_MSG(range >= 0, "negative tx range");
  if (std::isnan(tx_range_override_[node])) ++num_tx_overrides_;
  tx_range_override_[node] = static_cast<float>(range);
  cell_tx_override_[slot_of_[node]] = static_cast<float>(range);
  if (range > max_tx_range_) max_tx_range_ = range;
}

void Network::reset_tx_ranges() {
  tx_range_override_.assign(positions_.size(),
                            std::numeric_limits<float>::quiet_NaN());
  cell_tx_override_.assign(positions_.size(),
                           std::numeric_limits<float>::quiet_NaN());
  num_tx_overrides_ = 0;
  max_tx_range_ = model_->config().radio_range;
}

std::vector<std::size_t> Network::nodes_within(Vec2 p, double radius,
                                               std::size_t exclude) const {
  std::vector<std::size_t> out;
  index_->for_each_in_radius(p, radius, [&](std::size_t i) {
    if (i != exclude) out.push_back(i);
  });
  return out;
}

std::vector<std::size_t> Network::neighbors_of(std::size_t node) const {
  LAD_REQUIRE(node < positions_.size());
  std::vector<std::size_t> out;
  for_each_audible(positions_[node], [&](std::size_t i, std::uint16_t) {
    if (i != node) out.push_back(i);
  });
  return out;
}

void Network::accumulate_observation(Vec2 p, int* counts) const {
  if (num_tx_overrides_ != 0) {
    for_each_audible(p, [&](std::size_t, std::uint16_t g) { ++counts[g]; });
    return;
  }
  // Batched counting kernel: with no overrides active, audibility is just
  // dist2 <= audible_radius2(R), so the whole observation is a branch-thin
  // scan over the contiguous SoA rows of the covered cells — no self-test,
  // no NaN-check, no per-candidate group indirection beyond one u16 read.
  // The scan body is the runtime-dispatched counting kernel (AVX2 where
  // the CPU has it, the scalar reference otherwise or under LAD_NO_AVX2);
  // every variant is bit-identical by construction — see
  // deploy/observe_kernel.h and tests/deploy/test_observe_kernel.cpp.
  const double R = model_->config().radio_range;
  const double a2 = audible_radius2(R);
  const double* const xs = index_->xs().data();
  const double* const ys = index_->ys().data();
  const std::uint16_t* const grp = cell_groups_.data();
  const ObserveKernelFn kernel = observe_kernel();
  index_->for_each_slot_span(p, R, [&](std::uint32_t begin, std::uint32_t end) {
    kernel(xs, ys, grp, begin, end, p.x, p.y, a2, counts);
  });
}

Observation Network::observe(std::size_t node) const {
  LAD_REQUIRE(node < positions_.size());
  Observation o(static_cast<std::size_t>(num_groups()));
  accumulate_observation(positions_[node], o.counts.data());
  // A node always hears itself: distance 0 is audible at any tx range,
  // including an override of 0 — so remove the self-count once at the end
  // rather than branching on it per candidate.  The guard keeps a future
  // kernel rewrite from silently underflowing the count to -1 if it ever
  // stops counting the observer.
  LAD_REQUIRE_MSG(o.counts[groups_[node]] > 0,
                  "observation kernel dropped the observer's self-count");
  --o.counts[groups_[node]];
  return o;
}

Observation Network::observe_at(Vec2 p) const {
  Observation o(static_cast<std::size_t>(num_groups()));
  accumulate_observation(p, o.counts.data());
  return o;
}

void Network::observe_many(std::span<const std::size_t> nodes,
                           ObservationBatch& out) const {
  const std::size_t groups = static_cast<std::size_t>(num_groups());
  out.reset(nodes.size(), groups);
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    const std::size_t node = nodes[j];
    LAD_REQUIRE(node < positions_.size());
    int* counts = out.row(j);
    accumulate_observation(positions_[node], counts);
    // Same self-exclusion contract (and underflow guard) as observe().
    LAD_REQUIRE_MSG(counts[groups_[node]] > 0,
                    "observation kernel dropped the observer's self-count");
    --counts[groups_[node]];
  }
}

void Network::observe_grid(std::span<const Vec2> points,
                           ObservationBatch& out) const {
  out.reset(points.size(), static_cast<std::size_t>(num_groups()));
  for (std::size_t j = 0; j < points.size(); ++j) {
    accumulate_observation(points[j], out.row(j));
  }
}

}  // namespace lad
