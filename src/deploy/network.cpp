#include "deploy/network.h"

#include <cmath>
#include <limits>

#include "util/assert.h"

namespace lad {

Network::Network(const DeploymentModel& model, Rng& rng) : model_(&model) {
  const DeploymentConfig& cfg = model.config();
  const std::size_t total = static_cast<std::size_t>(model.total_nodes());
  positions_.reserve(total);
  groups_.reserve(total);
  for (int g = 0; g < model.num_groups(); ++g) {
    for (int k = 0; k < cfg.nodes_per_group; ++k) {
      positions_.push_back(model.sample_resident_point(g, rng));
      groups_.push_back(static_cast<std::uint16_t>(g));
    }
  }
  tx_range_override_.assign(total, std::numeric_limits<float>::quiet_NaN());
  max_tx_range_ = cfg.radio_range;
  // Cell size = R keeps radius-R queries within a 3x3 cell neighborhood.
  index_ = std::make_unique<GridIndex>(positions_, cfg.field(), cfg.radio_range);
}

double Network::tx_range(std::size_t node) const {
  const float o = tx_range_override_[node];
  return std::isnan(o) ? model_->config().radio_range : static_cast<double>(o);
}

void Network::set_tx_range(std::size_t node, double range) {
  LAD_REQUIRE_MSG(range >= 0, "negative tx range");
  tx_range_override_[node] = static_cast<float>(range);
  if (range > max_tx_range_) max_tx_range_ = range;
}

void Network::reset_tx_ranges() {
  tx_range_override_.assign(positions_.size(),
                            std::numeric_limits<float>::quiet_NaN());
  max_tx_range_ = model_->config().radio_range;
}

std::vector<std::size_t> Network::nodes_within(Vec2 p, double radius,
                                               std::size_t exclude) const {
  std::vector<std::size_t> out;
  index_->for_each_in_radius(p, radius, [&](std::size_t i) {
    if (i != exclude) out.push_back(i);
  });
  return out;
}

std::vector<std::size_t> Network::neighbors_of(std::size_t node) const {
  LAD_REQUIRE(node < positions_.size());
  const Vec2 p = positions_[node];
  std::vector<std::size_t> out;
  // Query at the widest active range, then filter by each sender's range.
  index_->for_each_in_radius(p, max_tx_range_, [&](std::size_t i) {
    if (i == node) return;
    if (distance(positions_[i], p) <= tx_range(i)) out.push_back(i);
  });
  return out;
}

Observation Network::observe(std::size_t node) const {
  Observation o(static_cast<std::size_t>(num_groups()));
  const Vec2 p = positions_[node];
  index_->for_each_in_radius(p, max_tx_range_, [&](std::size_t i) {
    if (i == node) return;
    if (distance(positions_[i], p) <= tx_range(i)) ++o.counts[groups_[i]];
  });
  return o;
}

Observation Network::observe_at(Vec2 p) const {
  Observation o(static_cast<std::size_t>(num_groups()));
  index_->for_each_in_radius(p, max_tx_range_, [&](std::size_t i) {
    if (distance(positions_[i], p) <= tx_range(i)) ++o.counts[groups_[i]];
  });
  return o;
}

}  // namespace lad
