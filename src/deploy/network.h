// A deployed sensor network: every node's resident point and group id,
// plus a spatial index for radio-neighborhood queries.
//
// Storage is structure-of-arrays (positions[], groups[]) - observation
// computation walks positions linearly within grid cells (Per.16/Per.19).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "deploy/deployment_model.h"
#include "deploy/observation.h"
#include "geom/grid_index.h"
#include "rng/rng.h"

namespace lad {

class Network {
 public:
  /// Deploys all groups of the model: node k of group g resides at a fresh
  /// Gaussian sample around g's deployment point.
  Network(const DeploymentModel& model, Rng& rng);

  const DeploymentModel& model() const { return *model_; }
  std::size_t num_nodes() const { return positions_.size(); }
  int num_groups() const { return model_->num_groups(); }
  double radio_range() const { return model_->config().radio_range; }

  Vec2 position(std::size_t node) const { return positions_[node]; }
  int group_of(std::size_t node) const { return groups_[node]; }
  const std::vector<Vec2>& positions() const { return positions_; }

  /// Per-node transmit range; nodes default to the model's R.  Attacks may
  /// raise a compromised node's range (range-change attack, Section 6).
  double tx_range(std::size_t node) const;
  void set_tx_range(std::size_t node, double range);
  void reset_tx_ranges();

  /// Indices of all nodes within `radius` of p (excluding `exclude`).
  std::vector<std::size_t> nodes_within(Vec2 p, double radius,
                                        std::size_t exclude = SIZE_MAX) const;

  /// Neighbor set of `node` under the symmetric unit-disk model with the
  /// *receiver's* perspective: u hears v iff |u - v| <= tx_range(v).
  std::vector<std::size_t> neighbors_of(std::size_t node) const;

  /// The untainted observation of `node`: counts of heard group ids.
  Observation observe(std::size_t node) const;

  /// Observation a hypothetical node at p would make (no exclusion).
  Observation observe_at(Vec2 p) const;

  const GridIndex& index() const { return *index_; }

 private:
  const DeploymentModel* model_;
  std::vector<Vec2> positions_;
  std::vector<std::uint16_t> groups_;
  std::vector<float> tx_range_override_;  // NaN = default R
  double max_tx_range_;                   // current max for index queries
  std::unique_ptr<GridIndex> index_;
};

}  // namespace lad
