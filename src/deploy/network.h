// A deployed sensor network: every node's resident point and group id,
// plus a spatial index for radio-neighborhood queries.
//
// Storage is structure-of-arrays (positions[], groups[]) - observation
// computation walks positions linearly within grid cells (Per.16/Per.19).
// Alongside the node-indexed arrays, the network keeps cell-ordered copies
// of the payload columns the audibility filter needs (group id, tx-range
// override), gathered through the GridIndex permutation at build time, so
// the hot path reads contiguous rows and never chases a per-candidate
// indirection.  The counting scan itself is the runtime-dispatched SIMD
// kernel in deploy/observe_kernel.h.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "deploy/deployment_model.h"
#include "deploy/observation.h"
#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {

class Network {
 public:
  /// Deploys all groups of the model: node k of group g resides at a fresh
  /// Gaussian sample around g's deployment point.
  Network(const DeploymentModel& model, Rng& rng);

  const DeploymentModel& model() const { return *model_; }
  std::size_t num_nodes() const { return positions_.size(); }
  int num_groups() const { return model_->num_groups(); }
  double radio_range() const { return model_->config().radio_range; }

  Vec2 position(std::size_t node) const { return positions_[node]; }
  int group_of(std::size_t node) const { return groups_[node]; }
  const std::vector<Vec2>& positions() const { return positions_; }

  /// Per-node transmit range; nodes default to the model's R.  Attacks may
  /// raise a compromised node's range (range-change attack, Section 6).
  double tx_range(std::size_t node) const;
  void set_tx_range(std::size_t node, double range);
  void reset_tx_ranges();

  /// Indices of all nodes within `radius` of p (excluding `exclude`).
  std::vector<std::size_t> nodes_within(Vec2 p, double radius,
                                        std::size_t exclude = SIZE_MAX) const;

  /// Neighbor set of `node` under the symmetric unit-disk model with the
  /// *receiver's* perspective: u hears v iff |u - v| <= tx_range(v).
  std::vector<std::size_t> neighbors_of(std::size_t node) const;

  /// The untainted observation of `node`: counts of heard group ids.
  Observation observe(std::size_t node) const;

  /// Observation a hypothetical node at p would make (no exclusion).
  Observation observe_at(Vec2 p) const;

  /// Batched observations: row j of `out` becomes observe(nodes[j])'s
  /// counts.  The batch is reset (resized + zeroed) here, so one batch can
  /// be reused across calls without reallocating.
  void observe_many(std::span<const std::size_t> nodes,
                    ObservationBatch& out) const;

  /// Batched observe_at over arbitrary probe points (sampling paths):
  /// row j of `out` becomes observe_at(points[j])'s counts.
  void observe_grid(std::span<const Vec2> points, ObservationBatch& out) const;

  const GridIndex& index() const { return *index_; }

 private:
  /// The one audibility filter shared by every neighborhood path: calls
  /// fn(node, group) for every node whose transmission reaches p, i.e.
  /// |position(node) - p| <= tx_range(node).  The listener itself is
  /// included when it sits in the index (distance 0 is audible at any
  /// non-negative range); callers wanting "neighbors of i" exclude i.
  ///
  /// When no tx-range override is active every node transmits at R, so a
  /// radius-R slot scan is exact and the per-candidate NaN-check/range
  /// test vanishes; with overrides the scan widens to the largest active
  /// range and filters per sender.  Keeping both paths in this helper is
  /// what stops the fast path and the attack path from drifting.
  template <class AudibleFn>
  void for_each_audible(Vec2 p, AudibleFn&& fn) const {
    const double R = model_->config().radio_range;
    const std::uint32_t* const order = index_->permutation().data();
    if (num_tx_overrides_ == 0) {
      // `dist2 <= audible_radius2(R)` reproduces the historical
      // `sqrt(dist2) <= R` filter bit-for-bit without a per-candidate sqrt.
      index_->for_each_slot_in_disk2(
          p, R, audible_radius2(R), [&](std::uint32_t slot, double /*d2*/) {
            fn(static_cast<std::size_t>(order[slot]), cell_groups_[slot]);
          });
      return;
    }
    index_->for_each_slot_in_radius(
        p, max_tx_range_, [&](std::uint32_t slot, double dist2) {
          const float o = cell_tx_override_[slot];
          const double tx = std::isnan(o) ? R : static_cast<double>(o);
          if (std::sqrt(dist2) <= tx) {
            fn(static_cast<std::size_t>(order[slot]), cell_groups_[slot]);
          }
        });
  }

  /// Largest squared distance <= r*r whose (correctly rounded) square root
  /// also compares <= r.  The historical no-override path was a two-stage
  /// filter: the grid prefilter `dist2 <= r*r` followed by the per-sender
  /// `sqrt(dist2) <= r`; both sets are downward closed, so their
  /// intersection is exactly `dist2 <= audible_radius2(r)` — one compare,
  /// bit-identical to the legacy pipeline.  (Searching only downward from
  /// r*r is deliberate: a dist2 just above fl(r*r) whose sqrt still
  /// rounds to <= r was rejected by the legacy prefilter too, in this
  /// regime.)  The loop runs at most a step or two, only when r*r rounds
  /// upward.
  static double audible_radius2(double r) {
    double t = r * r;
    while (std::sqrt(t) > r) t = std::nextafter(t, 0.0);
    return t;
  }

  /// Accumulates the observation at p into `counts` (one int per group).
  void accumulate_observation(Vec2 p, int* counts) const;

  const DeploymentModel* model_;
  std::vector<Vec2> positions_;
  std::vector<std::uint16_t> groups_;
  std::vector<float> tx_range_override_;  // NaN = default R (node-indexed)
  double max_tx_range_;                   // current max for index queries
  std::size_t num_tx_overrides_ = 0;      // active entries in the override map
  std::unique_ptr<GridIndex> index_;
  // Cell-ordered (slot-indexed) payload columns for the SoA fast path.
  std::vector<std::uint16_t> cell_groups_;
  std::vector<float> cell_tx_override_;
  std::vector<std::uint32_t> slot_of_;  // node -> slot (inverse permutation)
};

}  // namespace lad
