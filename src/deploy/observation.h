// A sensor's observation o = (o1, ..., on): the number of neighbors it
// hears from each deployment group (Section 5.1).  This is the single data
// structure the whole detection pipeline revolves around.
#pragma once

#include <numeric>
#include <vector>

#include "util/assert.h"

namespace lad {

struct Observation {
  std::vector<int> counts;  ///< counts[i] = neighbors heard from group i

  Observation() = default;
  explicit Observation(std::size_t num_groups) : counts(num_groups, 0) {}
  explicit Observation(std::vector<int> c) : counts(std::move(c)) {}

  std::size_t num_groups() const { return counts.size(); }

  int& operator[](std::size_t i) { return counts[i]; }
  int operator[](std::size_t i) const { return counts[i]; }

  /// |o|: total number of neighbors observed.
  int total() const { return std::accumulate(counts.begin(), counts.end(), 0); }

  bool operator==(const Observation&) const = default;

  void require_valid() const {
    for (int c : counts) LAD_REQUIRE_MSG(c >= 0, "negative observation count");
  }
};

/// The expected observation mu = (mu1, ..., mun) is real-valued (Eq. 2).
using ExpectedObservation = std::vector<double>;

}  // namespace lad
