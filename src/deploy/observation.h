// A sensor's observation o = (o1, ..., on): the number of neighbors it
// hears from each deployment group (Section 5.1).  This is the single data
// structure the whole detection pipeline revolves around.
#pragma once

#include <numeric>
#include <vector>

#include "util/assert.h"

namespace lad {

struct Observation {
  std::vector<int> counts;  ///< counts[i] = neighbors heard from group i

  Observation() = default;
  explicit Observation(std::size_t num_groups) : counts(num_groups, 0) {}
  explicit Observation(std::vector<int> c) : counts(std::move(c)) {}

  std::size_t num_groups() const { return counts.size(); }

  int& operator[](std::size_t i) { return counts[i]; }
  int operator[](std::size_t i) const { return counts[i]; }

  /// |o|: total number of neighbors observed.
  int total() const { return std::accumulate(counts.begin(), counts.end(), 0); }

  bool operator==(const Observation&) const = default;

  void require_valid() const {
    for (int c : counts) LAD_REQUIRE_MSG(c >= 0, "negative observation count");
  }
};

/// The expected observation mu = (mu1, ..., mun) is real-valued (Eq. 2).
using ExpectedObservation = std::vector<double>;

/// A reusable batch of observations in one flat counts[row][group] buffer.
/// `Network::observe_many` / `observe_grid` fill one row per queried node
/// or probe point; reusing the batch across calls amortizes the per-call
/// allocation that a vector<Observation> would pay.
class ObservationBatch {
 public:
  /// Resizes to `rows` x `num_groups` and zero-fills every count.
  void reset(std::size_t rows, std::size_t num_groups) {
    rows_ = rows;
    groups_ = num_groups;
    counts_.assign(rows * num_groups, 0);
  }

  std::size_t rows() const { return rows_; }
  std::size_t num_groups() const { return groups_; }

  int* row(std::size_t r) { return counts_.data() + r * groups_; }
  const int* row(std::size_t r) const { return counts_.data() + r * groups_; }

  int count(std::size_t r, std::size_t group) const {
    return counts_[r * groups_ + group];
  }

  /// Copies row r out into a standalone Observation.
  Observation to_observation(std::size_t r) const {
    LAD_REQUIRE_MSG(r < rows_, "batch row out of range");
    return Observation(std::vector<int>(row(r), row(r) + groups_));
  }

 private:
  std::vector<int> counts_;
  std::size_t rows_ = 0;
  std::size_t groups_ = 0;
};

}  // namespace lad
