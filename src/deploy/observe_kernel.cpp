#include "deploy/observe_kernel.h"

#include <string_view>

#include "util/env.h"

namespace lad {

void observe_kernel_scalar(const double* xs, const double* ys,
                           const std::uint16_t* grp, std::uint32_t begin,
                           std::uint32_t end, double px, double py, double a2,
                           int* counts) {
  for (std::uint32_t k = begin; k < end; ++k) {
    const double dx = xs[k] - px;
    const double dy = ys[k] - py;
    if (dx * dx + dy * dy <= a2) ++counts[grp[k]];
  }
}

#if defined(LAD_HAVE_AVX2_KERNEL)
// Defined in observe_kernel_avx2.cpp (that TU alone is compiled with
// -mavx2, so the rest of the library stays runnable on any x86-64).
void observe_kernel_avx2(const double* xs, const double* ys,
                         const std::uint16_t* grp, std::uint32_t begin,
                         std::uint32_t end, double px, double py, double a2,
                         int* counts);
#endif

namespace {

bool cpu_has_avx2() {
#if defined(LAD_HAVE_AVX2_KERNEL) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool no_avx2_env() { return env_flag("LAD_NO_AVX2"); }

ObserveKernelFn resolve_default() {
#if defined(LAD_HAVE_AVX2_KERNEL)
  if (cpu_has_avx2() && !no_avx2_env()) return observe_kernel_avx2;
#endif
  return observe_kernel_scalar;
}

// The force_observe_kernel override, nullptr when dispatch is automatic.
ObserveKernelFn g_forced = nullptr;

}  // namespace

const std::vector<ObserveKernelInfo>& observe_kernels() {
  static const std::vector<ObserveKernelInfo> kernels = [] {
    std::vector<ObserveKernelInfo> v;
    v.push_back({"scalar", observe_kernel_scalar, true});
#if defined(LAD_HAVE_AVX2_KERNEL)
    v.push_back({"avx2", observe_kernel_avx2, cpu_has_avx2()});
#endif
    return v;
  }();
  return kernels;
}

ObserveKernelFn observe_kernel() {
  if (g_forced != nullptr) return g_forced;
  static const ObserveKernelFn resolved = resolve_default();
  return resolved;
}

const char* observe_kernel_name() {
  const ObserveKernelFn active = observe_kernel();
  for (const ObserveKernelInfo& k : observe_kernels()) {
    if (k.fn == active) return k.name;
  }
  return "unknown";
}

bool force_observe_kernel(const char* name) {
  if (name == nullptr) {
    g_forced = nullptr;
    return true;
  }
  for (const ObserveKernelInfo& k : observe_kernels()) {
    if (std::string_view(k.name) == name && k.runtime_ok) {
      g_forced = k.fn;
      return true;
    }
  }
  return false;
}

}  // namespace lad
