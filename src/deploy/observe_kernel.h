// The per-group counting kernel at the bottom of every observation.
//
// `Network::accumulate_observation` reduces each slot span the GridIndex
// yields to "count, per group, the points within the audible disk":
//
//     for k in [begin, end):  counts[grp[k]] += (dx*dx + dy*dy <= a2)
//
// This header names that kernel, provides the always-available scalar
// reference implementation, and dispatches to an AVX2 variant at runtime
// when (a) the binary was built with AVX2 support, (b) the CPU reports
// the feature, and (c) the LAD_NO_AVX2 environment escape hatch is not
// set.  Every variant must produce bit-identical counts to the scalar
// reference — the distance test uses only IEEE mul/add, which round
// identically lane-wise and scalar-wise, and the increments are integer
// adds, so equality is exact, not approximate.  tests/deploy/
// test_observe_kernel.cpp pins this with randomized networks; the
// scenario CSV byte-identity sweep pins it end to end.
#pragma once

#include <cstdint>
#include <vector>

namespace lad {

/// Signature shared by every kernel variant: accumulate into counts[g]
/// the number of slots k in [begin, end) whose point (xs[k], ys[k]) lies
/// within squared distance a2 of (px, py), where g = grp[k].  Rows are
/// the GridIndex's cell-ordered SoA columns; no alignment is assumed.
using ObserveKernelFn = void (*)(const double* xs, const double* ys,
                                 const std::uint16_t* grp,
                                 std::uint32_t begin, std::uint32_t end,
                                 double px, double py, double a2,
                                 int* counts);

/// The scalar reference kernel (always compiled, byte-for-byte the
/// historical loop).  Optimized variants are proven against it.
void observe_kernel_scalar(const double* xs, const double* ys,
                           const std::uint16_t* grp, std::uint32_t begin,
                           std::uint32_t end, double px, double py, double a2,
                           int* counts);

/// One compiled-in kernel variant, for tests/benches that enumerate and
/// cross-check all of them regardless of which one dispatch picked.
struct ObserveKernelInfo {
  const char* name;    ///< "scalar", "avx2", ...
  ObserveKernelFn fn;  ///< callable on this CPU iff runtime_ok
  bool runtime_ok;     ///< CPU supports the variant's ISA
};

/// Every variant compiled into this binary, scalar first.  Entries with
/// runtime_ok == false were built but must not be called on this CPU.
const std::vector<ObserveKernelInfo>& observe_kernels();

/// The active kernel: resolved once per process from the CPU feature set
/// and LAD_NO_AVX2 (set non-empty to pin the scalar reference), unless a
/// force_observe_kernel() override is in effect.
ObserveKernelFn observe_kernel();

/// Name of the kernel observe_kernel() currently returns.
const char* observe_kernel_name();

/// Test/bench seam: pin the active kernel by name ("scalar", "avx2"),
/// or pass nullptr to restore automatic dispatch.  Returns false (and
/// changes nothing) if the name is unknown or the CPU cannot run it.
/// Not thread-safe against concurrent observations; call between runs.
bool force_observe_kernel(const char* name);

}  // namespace lad
