// AVX2 variant of the observation counting kernel.
//
// This is the only translation unit compiled with -mavx2 (see
// src/deploy/CMakeLists.txt); callers reach it through the runtime
// dispatch in observe_kernel.cpp, which verifies the CPU actually
// reports AVX2 before handing out the pointer.
//
// Bit-identity with the scalar reference is by construction, not luck:
// the distance is dx*dx + dy*dy evaluated as two IEEE multiplies and one
// add — vmulpd/vaddpd round each lane exactly like the scalar vmulsd/
// vaddsd, and we never use FMA (a fused dx*dx + dy*dy keeps the product
// unrounded and can flip the <= a2 comparison on borderline candidates).
// The compare uses _CMP_LE_OQ, matching scalar <= (false on NaN, which
// cannot occur here: coordinates and query points are finite).  The
// surviving lanes feed scalar counts[grp[k]] increments in ascending slot
// order — integer adds, so the accumulation order cannot matter either.
#include "deploy/observe_kernel.h"

#if defined(LAD_HAVE_AVX2_KERNEL)

#include <immintrin.h>

#include <cstring>

namespace lad {

void observe_kernel_avx2(const double* xs, const double* ys,
                         const std::uint16_t* grp, std::uint32_t begin,
                         std::uint32_t end, double px, double py, double a2,
                         int* counts) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  const __m256d va2 = _mm256_set1_pd(a2);
  std::uint32_t k = begin;
  // 4-wide main loop over the unaligned span (the cell-sorted rows carry
  // no alignment guarantee, so use unaligned loads throughout).
  for (; k + 4 <= end; k += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + k), vpx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + k), vpy);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, va2, _CMP_LE_OQ));
    // Row-trimmed spans make all-miss vectors rare in the interior but
    // common at the disk fringe; skipping them costs one well-predicted
    // branch.
    if (mask == 0) continue;
    // Group ids are data-dependent, so no vector scatter can express
    // counts[grp[k]] — the increments must go through scalar stores.
    // Two shapes, picked per vector:
    //  * All four lanes share one group id (common: the stable cell sort
    //    keeps each cell's slots in ascending node order, and node order
    //    is group-major, so groups come in runs): one popcount-sized add,
    //    no read-modify-write dependency chain.  The 64-bit compare
    //    checks all four u16 lanes at once; grp[k] == grp[k+3] alone
    //    would NOT imply the middle lanes match when the vector straddles
    //    a cell boundary, where group ids reset.
    //  * Mixed groups: branchless per-lane adds — masked increments of 0
    //    or 1 — which beat a ctz-peel loop because there is no
    //    unpredictable per-hit branch to mispredict.
    std::uint64_t g4;
    std::memcpy(&g4, grp + k, sizeof g4);
    if (g4 == UINT64_C(0x0001000100010001) * grp[k]) {
      counts[grp[k]] += __builtin_popcount(static_cast<unsigned>(mask));
      continue;
    }
    counts[grp[k]] += mask & 1;
    counts[grp[k + 1]] += (mask >> 1) & 1;
    counts[grp[k + 2]] += (mask >> 2) & 1;
    counts[grp[k + 3]] += (mask >> 3) & 1;
  }
  // Scalar tail (span length % 4 != 0), same code as the reference.
  for (; k < end; ++k) {
    const double dx = xs[k] - px;
    const double dy = ys[k] - py;
    if (dx * dx + dy * dy <= a2) ++counts[grp[k]];
  }
}

}  // namespace lad

#endif  // LAD_HAVE_AVX2_KERNEL
