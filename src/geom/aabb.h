// Axis-aligned bounding box; used for the deployment field and for clamping
// displaced locations back into it.
#pragma once

#include <algorithm>

#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

struct Aabb {
  Vec2 lo;
  Vec2 hi;

  constexpr Aabb() = default;
  Aabb(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {
    LAD_REQUIRE_MSG(lo.x <= hi.x && lo.y <= hi.y, "inverted AABB");
  }

  static Aabb square(double side) { return {{0.0, 0.0}, {side, side}}; }

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Vec2 center() const {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }

  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Nearest point inside the box.
  Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }
};

}  // namespace lad
