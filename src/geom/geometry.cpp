#include "geom/geometry.h"

#include <algorithm>
#include <cmath>

#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

double signed_area2(Vec2 a, Vec2 b, Vec2 c) {
  return (b - a).cross(c - a);
}

bool point_in_triangle(Vec2 p, Vec2 a, Vec2 b, Vec2 c) {
  const double d1 = signed_area2(p, a, b);
  const double d2 = signed_area2(p, b, c);
  const double d3 = signed_area2(p, c, a);
  const bool has_neg = (d1 < 0) || (d2 < 0) || (d3 < 0);
  const bool has_pos = (d1 > 0) || (d2 > 0) || (d3 > 0);
  return !(has_neg && has_pos);
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return distance(p, a + ab * t);
}

double circle_intersection_area(double d, double r1, double r2) {
  LAD_REQUIRE_MSG(d >= 0 && r1 >= 0 && r2 >= 0,
                  "negative geometry arguments");
  if (r1 == 0.0 || r2 == 0.0) return 0.0;
  if (d >= r1 + r2) return 0.0;  // disjoint
  const double rmin = std::min(r1, r2);
  if (d <= std::abs(r1 - r2)) return M_PI * rmin * rmin;  // containment
  // Standard lens area.
  const double a1 =
      std::acos(std::clamp((d * d + r1 * r1 - r2 * r2) / (2 * d * r1), -1.0, 1.0));
  const double a2 =
      std::acos(std::clamp((d * d + r2 * r2 - r1 * r1) / (2 * d * r2), -1.0, 1.0));
  const double tri =
      0.5 * std::sqrt(std::max(0.0, (-d + r1 + r2) * (d + r1 - r2) *
                                        (d - r1 + r2) * (d + r1 + r2)));
  return r1 * r1 * a1 + r2 * r2 * a2 - tri;
}

double arc_half_angle(double ell, double z, double R) {
  LAD_REQUIRE_MSG(ell > 0 && z > 0, "arc_half_angle needs positive radii");
  const double c = (ell * ell + z * z - R * R) / (2.0 * ell * z);
  return std::acos(std::clamp(c, -1.0, 1.0));
}

}  // namespace lad
