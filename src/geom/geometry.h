// Geometric predicates used by the localization schemes (APIT's
// point-in-triangle test, MMSE residuals) and by the g(z) validation tests
// (circle-circle intersection area has a closed form we check the Theorem-1
// integral against).
#pragma once

#include "geom/vec2.h"

namespace lad {

/// Signed twice-area of triangle (a, b, c); >0 when counter-clockwise.
double signed_area2(Vec2 a, Vec2 b, Vec2 c);

/// True if p lies inside or on the triangle (a, b, c), any orientation.
bool point_in_triangle(Vec2 p, Vec2 a, Vec2 b, Vec2 c);

/// Distance from point p to segment [a, b].
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

/// Area of the intersection of two disks with centers distance d apart and
/// radii r1, r2.  Handles containment and disjoint cases exactly.
double circle_intersection_area(double d, double r1, double r2);

/// Half-angle subtended at the origin-circle of radius `ell` by a disk of
/// radius R centered at distance z: acos((ell^2 + z^2 - R^2) / (2 ell z)),
/// clamped into [0, pi] against floating-point noise.  This is exactly the
/// cos^{-1} term of the paper's Theorem 1.
double arc_half_angle(double ell, double z, double R);

}  // namespace lad
