#include "geom/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lad {

GridIndex::GridIndex(const std::vector<Vec2>& points, const Aabb& bounds,
                     double cell_size)
    : bounds_(bounds), cell_size_(cell_size), points_(points) {
  LAD_REQUIRE_MSG(cell_size > 0, "cell size must be positive");
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_size_)));

  const std::size_t ncells = static_cast<std::size_t>(nx_) * ny_;
  // Counting sort of points into cells (CSR).
  std::vector<std::uint32_t> counts(ncells + 1, 0);
  std::vector<std::uint32_t> cell_of_point(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t c = cell_of(points_[i]);
    cell_of_point[i] = static_cast<std::uint32_t>(c);
    ++counts[c + 1];
  }
  for (std::size_t c = 0; c < ncells; ++c) counts[c + 1] += counts[c];
  cell_start_ = counts;
  cell_items_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_items_[cursor[cell_of_point[i]]++] = static_cast<std::uint32_t>(i);
  }
}

void GridIndex::cell_coords(Vec2 p, int& cx, int& cy) const {
  cx = static_cast<int>(std::floor((p.x - bounds_.lo.x) / cell_size_));
  cy = static_cast<int>(std::floor((p.y - bounds_.lo.y) / cell_size_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
}

std::size_t GridIndex::cell_of(Vec2 p) const {
  int cx, cy;
  cell_coords(p, cx, cy);
  return static_cast<std::size_t>(cy) * nx_ + cx;
}

void GridIndex::for_each_in_radius(
    Vec2 p, double radius, const std::function<void(std::size_t)>& fn) const {
  LAD_REQUIRE_MSG(radius >= 0, "negative query radius");
  const double r2 = radius * radius;
  // Cell span covering the query disk (clamped to the grid).
  int cx0 = static_cast<int>(std::floor((p.x - radius - bounds_.lo.x) / cell_size_));
  int cy0 = static_cast<int>(std::floor((p.y - radius - bounds_.lo.y) / cell_size_));
  int cx1 = static_cast<int>(std::floor((p.x + radius - bounds_.lo.x) / cell_size_));
  int cy1 = static_cast<int>(std::floor((p.y + radius - bounds_.lo.y) / cell_size_));
  cx0 = std::clamp(cx0, 0, nx_ - 1);
  cy0 = std::clamp(cy0, 0, ny_ - 1);
  cx1 = std::clamp(cx1, 0, nx_ - 1);
  cy1 = std::clamp(cy1, 0, ny_ - 1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = static_cast<std::size_t>(cy) * nx_ + cx;
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const std::uint32_t i = cell_items_[k];
        if (distance2(points_[i], p) <= r2) fn(i);
      }
    }
  }
}

std::vector<std::size_t> GridIndex::query(Vec2 p, double radius) const {
  std::vector<std::size_t> out;
  for_each_in_radius(p, radius, [&](std::size_t i) { out.push_back(i); });
  return out;
}

std::size_t GridIndex::count_in_radius(Vec2 p, double radius,
                                       std::size_t exclude) const {
  std::size_t n = 0;
  for_each_in_radius(p, radius, [&](std::size_t i) {
    if (i != exclude) ++n;
  });
  return n;
}

}  // namespace lad
