#include "geom/grid_index.h"

#include <algorithm>
#include <cmath>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

GridIndex::GridIndex(const std::vector<Vec2>& points, const Aabb& bounds,
                     double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  LAD_REQUIRE_MSG(cell_size > 0, "cell size must be positive");
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_size_)));

  const std::size_t ncells = static_cast<std::size_t>(nx_) * ny_;
  // Stable counting sort of points into cells: within a cell, slots keep
  // ascending original index, so visitation order matches the historical
  // index-list layout exactly.  cell_start_ serves as histogram, running
  // scatter cursor, and final CSR offsets in turn — no separate counts /
  // cursor temporaries (the build path is deployment-cost-critical at
  // 10^5-10^6 nodes; see docs/PERFORMANCE.md).
  cell_start_.assign(ncells + 1, 0);
  std::vector<std::uint32_t> cell_of_point(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = cell_of(points[i]);
    cell_of_point[i] = static_cast<std::uint32_t>(c);
    ++cell_start_[c + 1];
  }
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  order_.resize(points.size());
  xs_.resize(points.size());
  ys_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint32_t k = cell_start_[cell_of_point[i]]++;
    order_[k] = static_cast<std::uint32_t>(i);
    xs_[k] = points[i].x;
    ys_[k] = points[i].y;
  }
  // The scatter advanced cell_start_[c] to end(c) == start(c+1); shift
  // right one slot to restore the starts.
  for (std::size_t c = ncells; c > 0; --c) cell_start_[c] = cell_start_[c - 1];
  cell_start_[0] = 0;
}

void GridIndex::cell_coords(Vec2 p, int& cx, int& cy) const {
  cx = static_cast<int>(std::floor((p.x - bounds_.lo.x) / cell_size_));
  cy = static_cast<int>(std::floor((p.y - bounds_.lo.y) / cell_size_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
}

std::size_t GridIndex::cell_of(Vec2 p) const {
  int cx, cy;
  cell_coords(p, cx, cy);
  return static_cast<std::size_t>(cy) * nx_ + cx;
}

void GridIndex::for_each_in_radius(
    Vec2 p, double radius, const std::function<void(std::size_t)>& fn) const {
  for_each_slot_in_radius(p, radius, [&](std::uint32_t slot, double) {
    fn(static_cast<std::size_t>(order_[slot]));
  });
}

std::vector<std::size_t> GridIndex::query(Vec2 p, double radius) const {
  std::vector<std::size_t> out;
  for_each_in_radius(p, radius, [&](std::size_t i) { out.push_back(i); });
  return out;
}

std::size_t GridIndex::count_in_radius(Vec2 p, double radius,
                                       std::size_t exclude) const {
  std::size_t n = 0;
  for_each_in_radius(p, radius, [&](std::size_t i) {
    if (i != exclude) ++n;
  });
  return n;
}

}  // namespace lad
