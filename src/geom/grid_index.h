// Uniform-grid spatial index over 2-D points.
//
// Neighbor queries (all points within radius r of a query point) are the
// innermost operation of every simulated deployment: a 30k-node network
// computes one observation per sampled sensor, each a radius query.  The
// grid makes that O(points in the 3x3 cell neighborhood).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/aabb.h"
#include "geom/vec2.h"

namespace lad {

class GridIndex {
 public:
  /// Builds an index over `points` covering `bounds` with cells of size
  /// `cell_size` (typically the radio range).  Points outside the bounds are
  /// clamped into the border cells, so queries remain correct for them.
  GridIndex(const std::vector<Vec2>& points, const Aabb& bounds,
            double cell_size);

  std::size_t size() const { return points_.size(); }

  /// Calls fn(index) for every point with distance(p, point) <= radius.
  /// The query point itself is included if it is in the index; callers that
  /// want "neighbors of node i" should skip i in the callback.
  void for_each_in_radius(Vec2 p, double radius,
                          const std::function<void(std::size_t)>& fn) const;

  /// Collects indices within `radius` of p (convenience wrapper).
  std::vector<std::size_t> query(Vec2 p, double radius) const;

  /// Number of points within `radius` of p, excluding `exclude`
  /// (pass SIZE_MAX to exclude nothing).
  std::size_t count_in_radius(Vec2 p, double radius,
                              std::size_t exclude = SIZE_MAX) const;

 private:
  std::size_t cell_of(Vec2 p) const;
  void cell_coords(Vec2 p, int& cx, int& cy) const;

  Aabb bounds_;
  double cell_size_;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<Vec2> points_;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_items_;
};

}  // namespace lad
