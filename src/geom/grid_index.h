// Uniform-grid spatial index over 2-D points, cell-sorted into a
// structure-of-arrays layout.
//
// Neighbor queries (all points within radius r of a query point) are the
// innermost operation of every simulated deployment: a 30k-node network
// computes one observation per sampled sensor, each a radius query.  The
// grid makes that O(points in the 3x3 cell neighborhood); the SoA layout
// makes the per-cell scan a contiguous read of (x, y) rows instead of an
// index indirection per candidate, and the templated visitor lets the
// distance test + callback inline into one tight loop.
//
// Layout: points are permuted into cell order at build time ("slots").
// Slot k holds xs_[k]/ys_[k]; order_[k] maps the slot back to the
// caller's original point index.  cell_start_ is the usual CSR offsets
// array, so cell c owns slots [cell_start_[c], cell_start_[c+1]).  The
// permutation is stable (counting sort), so visitation order is identical
// to the historical index-list layout — callers relying on deterministic
// enumeration order are unaffected.  See docs/PERFORMANCE.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

class GridIndex {
 public:
  /// Builds an index over `points` covering `bounds` with cells of size
  /// `cell_size` (typically the radio range).  Points outside the bounds are
  /// clamped into the border cells, so queries remain correct for them.
  GridIndex(const std::vector<Vec2>& points, const Aabb& bounds,
            double cell_size);

  /// Build overload that additionally permutes per-point payload columns
  /// (group ids, transmit ranges, ...) into cell order, in place, so
  /// slot-level queries can read them contiguously alongside xs()/ys().
  /// Each column must have exactly points.size() entries.
  template <class... Cols>
  GridIndex(const std::vector<Vec2>& points, const Aabb& bounds,
            double cell_size, std::vector<Cols>&... columns)
      : GridIndex(points, bounds, cell_size) {
    (permute_in_place(columns), ...);
  }

  std::size_t size() const { return order_.size(); }

  /// Calls fn(index) for every point with distance(p, point) <= radius,
  /// where `index` is the point's position in the build-time vector.
  /// The query point itself is included if it is in the index; callers that
  /// want "neighbors of node i" should skip i in the callback.  The visitor
  /// is a template parameter so the distance test and callback fuse into
  /// one inlined loop.
  template <class Visitor>
  void for_each_in_radius(Vec2 p, double radius, Visitor&& fn) const {
    for_each_slot_in_radius(p, radius,
                            [&](std::uint32_t slot, double /*dist2*/) {
                              fn(static_cast<std::size_t>(order_[slot]));
                            });
  }

  /// Non-template compatibility shim for callers that hold a type-erased
  /// callback (out of line; one indirect call per visited point).
  void for_each_in_radius(Vec2 p, double radius,
                          const std::function<void(std::size_t)>& fn) const;

  /// Slot-level visitation for batched kernels: calls fn(slot, dist2) for
  /// every slot whose point lies within `radius` of p.  `slot` indexes the
  /// cell-ordered rows — xs()/ys(), permutation(), and any payload column
  /// permuted by the build overload — and `dist2` is the already-computed
  /// squared distance, so hot paths never recompute it.
  template <class SlotVisitor>
  void for_each_slot_in_radius(Vec2 p, double radius, SlotVisitor&& fn) const {
    for_each_slot_in_disk2(p, radius, radius * radius,
                           static_cast<SlotVisitor&&>(fn));
  }

  /// Lowest-level scan, for callers whose acceptance threshold is an exact
  /// squared distance rather than radius*radius (e.g. the network's
  /// audibility filter): visits the cells covering the disk of
  /// `cover_radius` around p and calls fn(slot, dist2) where dist2 <= r2.
  /// Requires r2 <= cover_radius^2 or hits beyond the covered cells are
  /// missed.
  template <class SlotVisitor>
  void for_each_slot_in_disk2(Vec2 p, double cover_radius, double r2,
                              SlotVisitor&& fn) const {
    const double* const xs = xs_.data();
    const double* const ys = ys_.data();
    for_each_slot_span(p, cover_radius,
                       [&](std::uint32_t begin, std::uint32_t end) {
                         for (std::uint32_t k = begin; k < end; ++k) {
                           const double dx = xs[k] - p.x;
                           const double dy = ys[k] - p.y;
                           const double d2 = dx * dx + dy * dy;
                           if (d2 <= r2) fn(k, d2);
                         }
                       });
  }

  /// Yields the contiguous slot ranges [begin, end) covering the disk of
  /// `cover_radius` around p — one span per grid row, since horizontally
  /// adjacent cells are adjacent in slot space.  Batched kernels run their
  /// own tight loop over xs()/ys() and cell-ordered payload columns inside
  /// each span (no per-candidate distance filtering is applied here).
  ///
  /// Each row's span is trimmed to the cells the disk actually reaches at
  /// that row's y-band, so with cells smaller than the radius the scanned
  /// area hugs the disk instead of its bounding square.  Trimming only
  /// skips cells whose nearest point is farther than `cover_radius`; it
  /// never drops a candidate a distance test could accept, and it leaves
  /// the visitation order of surviving candidates untouched.
  template <class SpanVisitor>
  void for_each_slot_span(Vec2 p, double cover_radius,
                          SpanVisitor&& fn) const {
    LAD_REQUIRE_MSG(cover_radius >= 0, "negative query radius");
    const double r2 = cover_radius * cover_radius;
    int cy0 = static_cast<int>(
        std::floor((p.y - cover_radius - bounds_.lo.y) / cell_size_));
    int cy1 = static_cast<int>(
        std::floor((p.y + cover_radius - bounds_.lo.y) / cell_size_));
    cy0 = std::clamp(cy0, 0, ny_ - 1);
    cy1 = std::clamp(cy1, 0, ny_ - 1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      // Lower bound on |q.y - p.y| over every point q stored in this row:
      // the distance to the row's y-band — except at a border row when p
      // itself lies beyond that border, where clamped points share p's
      // side of the field and can be arbitrarily close in y.
      double dy = 0.0;
      if (!(cy == 0 && p.y < bounds_.lo.y) &&
          !(cy == ny_ - 1 && p.y > bounds_.hi.y)) {
        const double band_lo = bounds_.lo.y + cy * cell_size_;
        const double band_hi = band_lo + cell_size_;
        dy = std::max({0.0, band_lo - p.y, p.y - band_hi});
      }
      const double dy2 = dy * dy;
      if (dy2 > r2) continue;
      // Half-extent of the disk at this y-distance bounds the x span.
      // (Clamped-in-x points need no special case: a hit's true x always
      // lies inside [p.x - hx, p.x + hx], and the clamp of cx0/cx1 into
      // the grid pulls the border columns in whenever that interval
      // leaves the field.)
      const double hx = std::sqrt(std::max(0.0, r2 - dy2));
      int cx0 = static_cast<int>(
          std::floor((p.x - hx - bounds_.lo.x) / cell_size_));
      int cx1 = static_cast<int>(
          std::floor((p.x + hx - bounds_.lo.x) / cell_size_));
      cx0 = std::clamp(cx0, 0, nx_ - 1);
      cx1 = std::clamp(cx1, 0, nx_ - 1);
      const std::size_t row = static_cast<std::size_t>(cy) * nx_;
      fn(cell_start_[row + cx0], cell_start_[row + cx1 + 1]);
    }
  }

  /// Collects indices within `radius` of p (convenience wrapper).
  std::vector<std::size_t> query(Vec2 p, double radius) const;

  /// Number of points within `radius` of p, excluding `exclude`
  /// (pass SIZE_MAX to exclude nothing).
  std::size_t count_in_radius(Vec2 p, double radius,
                              std::size_t exclude = SIZE_MAX) const;

  /// Maps slot -> original point index (the cell-sort permutation).
  const std::vector<std::uint32_t>& permutation() const { return order_; }

  /// Cell-ordered coordinate rows (indexed by slot).
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  /// Rewrites `column` so column[slot] = old_column[permutation()[slot]].
  /// This is what the payload build overload applies to each column.
  template <class T>
  void permute_in_place(std::vector<T>& column) const {
    LAD_REQUIRE_MSG(column.size() == order_.size(),
                    "payload column size != point count");
    std::vector<T> sorted(column.size());
    for (std::size_t k = 0; k < order_.size(); ++k) {
      sorted[k] = std::move(column[order_[k]]);
    }
    column = std::move(sorted);
  }

 private:
  std::size_t cell_of(Vec2 p) const;
  void cell_coords(Vec2 p, int& cx, int& cy) const;

  Aabb bounds_;
  double cell_size_;
  int nx_ = 0;
  int ny_ = 0;
  // SoA rows, permuted into cell order (slot-indexed).
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::uint32_t> order_;  // slot -> original index (stable)
  // CSR layout: cell c owns slots [cell_start_[c], cell_start_[c+1]).
  std::vector<std::uint32_t> cell_start_;
};

}  // namespace lad
