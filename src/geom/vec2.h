// 2-D point/vector type.  Locations in the paper are points in a
// 1000 m x 1000 m plane; all coordinates are in meters.
#pragma once

#include <cmath>

namespace lad {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z component of the 3-D cross).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; (0,0) maps to (0,0).
  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance |L1 - L2| (the paper's distance notation).
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Point at distance r and angle theta (radians) from c.
inline Vec2 polar_offset(Vec2 c, double r, double theta) {
  return {c.x + r * std::cos(theta), c.y + r * std::sin(theta)};
}

}  // namespace lad
