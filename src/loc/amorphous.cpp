#include "loc/amorphous.h"

#include <algorithm>
#include <cmath>

#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/dvhop.h"
#include "loc/mmse.h"
#include "net/hopcount.h"
#include "stats/integrate.h"
#include "util/assert.h"

namespace lad {

double kleinrock_silvester_hop_distance(double expected_neighbors, double R) {
  LAD_REQUIRE_MSG(expected_neighbors > 0, "density must be positive");
  LAD_REQUIRE_MSG(R > 0, "radio range must be positive");
  const double n = expected_neighbors;
  const double integral = integrate_adaptive_simpson(
      [n](double t) {
        return std::exp(-(n / M_PI) *
                        (std::acos(t) - t * std::sqrt(1.0 - t * t)));
      },
      -1.0, 1.0, 1e-10);
  return R * (1.0 + std::exp(-n) - integral);
}

AmorphousLocalizer::AmorphousLocalizer(int kx, int ky, int max_anchors_used)
    : kx_(kx), ky_(ky), max_anchors_used_(max_anchors_used) {
  LAD_REQUIRE_MSG(max_anchors_used >= 3, "lateration needs >= 3 anchors");
}

void AmorphousLocalizer::prepare(const Network& net) {
  anchors_ = grid_anchor_nodes(net, kx_, ky_);
  LAD_REQUIRE_MSG(anchors_.size() >= 3, "Amorphous needs >= 3 anchors");
  anchor_positions_.clear();
  for (std::size_t a : anchors_) anchor_positions_.push_back(net.position(a));
  hops_ = hop_counts_from_all(net, anchors_);

  // Offline density estimate: N * pi R^2 / field area.
  const auto& cfg = net.model().config();
  const double density =
      static_cast<double>(net.num_nodes()) / cfg.field().area();
  const double n_local = density * M_PI * cfg.radio_range * cfg.radio_range;
  hop_distance_ = kleinrock_silvester_hop_distance(n_local, cfg.radio_range);
}

Vec2 AmorphousLocalizer::localize(const Network& net, std::size_t node) {
  LAD_REQUIRE_MSG(!hops_.empty(), "call prepare() before localize()");
  std::vector<std::pair<std::uint16_t, std::size_t>> ranked;
  for (std::size_t a = 0; a < anchors_.size(); ++a) {
    const std::uint16_t h = hops_[a][node];
    if (h == kUnreachableHops) continue;
    ranked.emplace_back(h, a);
  }
  if (ranked.size() < 3) return net.position(node);
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > static_cast<std::size_t>(max_anchors_used_)) {
    ranked.resize(static_cast<std::size_t>(max_anchors_used_));
  }
  std::vector<Vec2> refs;
  std::vector<double> dists;
  for (const auto& [h, a] : ranked) {
    refs.push_back(anchor_positions_[a]);
    // Half-hop smoothing: a node h hops away is on average (h - 0.5) d_hop
    // from the anchor (never below half a hop).
    const double eff = std::max(0.5, static_cast<double>(h) - 0.5);
    dists.push_back(hop_distance_ * eff);
  }
  const auto res = mmse_multilaterate(refs, dists);
  if (!res) return net.position(node);
  return net.model().config().field().clamp(res->position);
}

}  // namespace lad
