// Amorphous positioning (Nagpal, Shrobe, Bachrach - ref. [29]).
//
// Like DV-Hop, nodes multilaterate against anchors using hop-count derived
// distances, but the per-hop distance is computed *offline* from the
// expected local density via the Kleinrock-Silvester formula:
//
//   d_hop = R * (1 + e^{-n} - Integral_{-1}^{1}
//                 e^{-(n/pi)(acos t - t sqrt(1-t^2))} dt)
//
// where n is the expected number of neighbors.  Additionally a half-hop
// smoothing (h - 0.5) is applied, as in the original scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/localizer.h"

namespace lad {

/// Kleinrock-Silvester expected distance covered per hop for local density
/// `expected_neighbors` and radio range R.
double kleinrock_silvester_hop_distance(double expected_neighbors, double R);

class AmorphousLocalizer final : public Localizer {
 public:
  AmorphousLocalizer(int kx, int ky, int max_anchors_used = 8);

  std::string name() const override { return "amorphous"; }

  void prepare(const Network& net) override;
  Vec2 localize(const Network& net, std::size_t node) override;

  bool concurrent_localize() const override { return true; }

  double hop_distance() const { return hop_distance_; }

 private:
  int kx_, ky_, max_anchors_used_;
  std::vector<std::size_t> anchors_;
  std::vector<Vec2> anchor_positions_;
  std::vector<std::vector<std::uint16_t>> hops_;
  double hop_distance_ = 0.0;
};

}  // namespace lad
