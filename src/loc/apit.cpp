#include "loc/apit.h"

#include <algorithm>
#include <vector>

#include "deploy/network.h"
#include "geom/aabb.h"
#include "geom/geometry.h"
#include "geom/vec2.h"
#include "loc/beacons.h"
#include "util/assert.h"

namespace lad {

ApitLocalizer::ApitLocalizer(const BeaconField& beacons, int grid_cells,
                             int max_triangles)
    : beacons_(&beacons), grid_cells_(grid_cells),
      max_triangles_(max_triangles) {
  LAD_REQUIRE_MSG(grid_cells > 0, "grid resolution must be positive");
  LAD_REQUIRE_MSG(max_triangles > 0, "need at least one triangle");
}

bool ApitLocalizer::approximate_point_in_triangle(const Network& net,
                                                  std::size_t node, Vec2 a,
                                                  Vec2 b, Vec2 c) const {
  const Vec2 p = net.position(node);
  const double da = distance(p, a);
  const double db = distance(p, b);
  const double dc = distance(p, c);
  for (std::size_t nb : net.neighbors_of(node)) {
    const Vec2 q = net.position(nb);
    const double ea = distance(q, a) - da;
    const double eb = distance(q, b) - db;
    const double ec = distance(q, c) - dc;
    // Departure test: a neighbor simultaneously closer to (or farther
    // from) all three anchors witnesses a direction out of the triangle.
    if ((ea > 0 && eb > 0 && ec > 0) || (ea < 0 && eb < 0 && ec < 0)) {
      return false;
    }
  }
  return true;
}

Vec2 ApitLocalizer::localize(const Network& net, std::size_t node) {
  const Vec2 p = net.position(node);
  const std::vector<std::size_t> heard = beacons_->heard_at(p);
  if (heard.size() < 3) return p;  // not enough anchors: no estimate

  const Aabb field = net.model().config().field();
  const double cw = field.width() / grid_cells_;
  const double ch = field.height() / grid_cells_;
  std::vector<int> votes(static_cast<std::size_t>(grid_cells_) * grid_cells_, 0);

  int tested = 0;
  for (std::size_t i = 0; i < heard.size() && tested < max_triangles_; ++i) {
    for (std::size_t j = i + 1; j < heard.size() && tested < max_triangles_; ++j) {
      for (std::size_t k = j + 1; k < heard.size() && tested < max_triangles_;
           ++k) {
        const Vec2 a = (*beacons_)[heard[i]].declared_position;
        const Vec2 b = (*beacons_)[heard[j]].declared_position;
        const Vec2 c = (*beacons_)[heard[k]].declared_position;
        ++tested;
        const int inside =
            approximate_point_in_triangle(net, node, a, b, c) ? 1 : -1;
        // SCAN: adjust votes of grid cells inside the triangle.
        const double xmin = std::min({a.x, b.x, c.x});
        const double xmax = std::max({a.x, b.x, c.x});
        const double ymin = std::min({a.y, b.y, c.y});
        const double ymax = std::max({a.y, b.y, c.y});
        const int cx0 = std::clamp(static_cast<int>((xmin - field.lo.x) / cw), 0,
                                   grid_cells_ - 1);
        const int cx1 = std::clamp(static_cast<int>((xmax - field.lo.x) / cw), 0,
                                   grid_cells_ - 1);
        const int cy0 = std::clamp(static_cast<int>((ymin - field.lo.y) / ch), 0,
                                   grid_cells_ - 1);
        const int cy1 = std::clamp(static_cast<int>((ymax - field.lo.y) / ch), 0,
                                   grid_cells_ - 1);
        for (int cy = cy0; cy <= cy1; ++cy) {
          for (int cx = cx0; cx <= cx1; ++cx) {
            const Vec2 center{field.lo.x + (cx + 0.5) * cw,
                              field.lo.y + (cy + 0.5) * ch};
            if (point_in_triangle(center, a, b, c)) {
              votes[static_cast<std::size_t>(cy) * grid_cells_ + cx] += inside;
            }
          }
        }
      }
    }
  }

  // Center of gravity of the maximum-vote cells.
  const int best = *std::max_element(votes.begin(), votes.end());
  Vec2 sum{0, 0};
  int count = 0;
  for (int cy = 0; cy < grid_cells_; ++cy) {
    for (int cx = 0; cx < grid_cells_; ++cx) {
      if (votes[static_cast<std::size_t>(cy) * grid_cells_ + cx] == best) {
        sum += Vec2{field.lo.x + (cx + 0.5) * cw, field.lo.y + (cy + 0.5) * ch};
        ++count;
      }
    }
  }
  return count > 0 ? sum / count : p;
}

}  // namespace lad
