// APIT (He, Huang, Blum, Stankovic, Abdelzaher - ref. [12]).
//
// A node tests, for each triangle of heard anchors, whether it lies inside
// (the Approximate Point-In-Triangle test), then SCANs a grid: cells
// covered by every "inside" triangle accumulate votes and the estimate is
// the center of gravity of the max-vote cells.
//
// The approximate PIT test uses neighbor information as the departure
// probe: the node is declared *outside* triangle (A,B,C) if some neighbor
// is simultaneously closer to (or farther from) all three anchors - i.e.
// there is a direction of simultaneous departure.  Signal strength is the
// paper's distance proxy; the simulator uses true distances, which is the
// ideal-RSS case.
#pragma once

#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/beacons.h"
#include "loc/localizer.h"

namespace lad {

class ApitLocalizer final : public Localizer {
 public:
  /// grid_cells: SCAN resolution per axis.  max_triangles bounds the
  /// number of anchor triangles tested per node (the protocol's cost knob).
  ApitLocalizer(const BeaconField& beacons, int grid_cells = 100,
                int max_triangles = 60);

  std::string name() const override { return "apit"; }

  Vec2 localize(const Network& net, std::size_t node) override;

  bool concurrent_localize() const override { return true; }

  /// The approximate PIT test, exposed for unit testing.
  bool approximate_point_in_triangle(const Network& net, std::size_t node,
                                     Vec2 a, Vec2 b, Vec2 c) const;

 private:
  const BeaconField* beacons_;
  int grid_cells_;
  int max_triangles_;
};

}  // namespace lad
