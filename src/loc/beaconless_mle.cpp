#include "loc/beaconless_mle.h"

#include <array>
#include <cmath>

#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/aabb.h"
#include "geom/vec2.h"
#include "loc/weighted_centroid.h"
#include "stats/special.h"
#include "util/assert.h"

namespace lad {

BeaconlessMleLocalizer::BeaconlessMleLocalizer(const DeploymentModel& model,
                                               const GzTable& gz,
                                               double tol_meters)
    : model_(&model), gz_(&gz), tol_meters_(tol_meters) {
  LAD_REQUIRE_MSG(tol_meters > 0, "tolerance must be positive");
}

double BeaconlessMleLocalizer::log_likelihood(const Observation& obs,
                                              Vec2 theta) const {
  const int m = model_->config().nodes_per_group;
  // Floor on g_i: observing a node from a group whose probability at theta
  // is (numerically) zero must make theta very unlikely, but not -inf -
  // tainted observations would otherwise flatten the whole field to -inf
  // and strand the search.  With the floor, locations explaining more of
  // the observation still compare as strictly better.
  constexpr double kPFloor = 1e-300;
  double ll = 0.0;
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    double p = gz_->at(theta, model_->deployment_point(static_cast<int>(g)));
    if (p < kPFloor) p = kPFloor;
    ll += log_binomial_pmf(obs.counts[g], m, p);
  }
  return ll;
}

Vec2 BeaconlessMleLocalizer::estimate(const Observation& obs) const {
  LAD_REQUIRE_MSG(obs.num_groups() ==
                      static_cast<std::size_t>(model_->num_groups()),
                  "observation size mismatch");
  const Aabb field = model_->config().field();
  Vec2 best = weighted_centroid_estimate(*model_, obs);
  double best_ll = log_likelihood(obs, best);

  // Pattern search: 8-neighborhood stencil, halving the pitch on failure.
  // Start at half a grid-cell so the seed can escape a wrong cell.
  double pitch = model_->config().field_side /
                 (2.0 * std::max(model_->config().grid_nx,
                                 model_->config().grid_ny));
  static constexpr std::array<Vec2, 8> kDirs = {
      Vec2{1, 0},  Vec2{-1, 0}, Vec2{0, 1},  Vec2{0, -1},
      Vec2{1, 1},  Vec2{1, -1}, Vec2{-1, 1}, Vec2{-1, -1}};
  while (pitch >= tol_meters_) {
    bool improved = false;
    for (const Vec2& d : kDirs) {
      const Vec2 cand = field.clamp(best + d * pitch);
      const double ll = log_likelihood(obs, cand);
      if (ll > best_ll) {
        best_ll = ll;
        best = cand;
        improved = true;
      }
    }
    if (!improved) pitch /= 2.0;
  }
  return best;
}

}  // namespace lad
