// The beaconless location-discovery scheme of ref. [8] (Fang, Du, Ning,
// INFOCOM 2005): a sensor derives its own location purely from deployment
// knowledge and the group memberships of its neighbors - no beacons.
//
// The estimator is the maximum-likelihood location: each group count
// X_i ~ Binom(m, g_i(theta)) independently, so
//
//   Le = argmax_theta  sum_i log Binom(o_i; m, g_i(theta)).
//
// Search strategy (this is the part ref. [8] leaves to the implementer):
//  1. seed at the observation-weighted centroid of deployment points,
//  2. coarse-to-fine pattern search: evaluate the likelihood on a 5x5
//     stencil around the incumbent, shrink the stencil when no improvement,
//  3. stop when the stencil pitch drops below `tol_meters`.
// The log-likelihood is smooth and unimodal near the truth for realistic
// observations, so this converges in a few dozen evaluations.
#pragma once

#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "loc/localizer.h"

namespace lad {

class BeaconlessMleLocalizer final : public Localizer {
 public:
  /// The model and gz table must outlive the localizer.
  BeaconlessMleLocalizer(const DeploymentModel& model, const GzTable& gz,
                         double tol_meters = 0.5);

  std::string name() const override { return "beaconless-mle"; }

  Vec2 localize(const Network& net, std::size_t node) override {
    return estimate(net.observe(node));
  }

  bool concurrent_localize() const override { return true; }

  /// Estimates a location from an observation alone (no network needed);
  /// this is the entry point the detection pipeline uses.
  Vec2 estimate(const Observation& obs) const;

  /// Log-likelihood of `obs` at location theta (exposed for tests and for
  /// the probability metric's cross-checks).
  double log_likelihood(const Observation& obs, Vec2 theta) const;

 private:
  const DeploymentModel* model_;
  const GzTable* gz_;
  double tol_meters_;
};

}  // namespace lad
