#include "loc/beacons.h"

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {

BeaconField BeaconField::grid(const Aabb& field, int kx, int ky,
                              double tx_range) {
  LAD_REQUIRE_MSG(kx > 0 && ky > 0, "beacon grid must be non-empty");
  LAD_REQUIRE_MSG(tx_range > 0, "beacon range must be positive");
  BeaconField f;
  f.tx_range_ = tx_range;
  const double dx = field.width() / kx;
  const double dy = field.height() / ky;
  for (int row = 0; row < ky; ++row) {
    for (int col = 0; col < kx; ++col) {
      const Vec2 p{field.lo.x + (col + 0.5) * dx, field.lo.y + (row + 0.5) * dy};
      f.beacons_.push_back({p, p, false});
    }
  }
  return f;
}

BeaconField BeaconField::random(const Aabb& field, int count, double tx_range,
                                Rng& rng) {
  LAD_REQUIRE_MSG(count > 0, "need at least one beacon");
  LAD_REQUIRE_MSG(tx_range > 0, "beacon range must be positive");
  BeaconField f;
  f.tx_range_ = tx_range;
  for (int i = 0; i < count; ++i) {
    const Vec2 p{rng.uniform(field.lo.x, field.hi.x),
                 rng.uniform(field.lo.y, field.hi.y)};
    f.beacons_.push_back({p, p, false});
  }
  return f;
}

void BeaconField::compromise(std::size_t i, Vec2 declared) {
  LAD_REQUIRE(i < beacons_.size());
  beacons_[i].declared_position = declared;
  beacons_[i].compromised = true;
}

void BeaconField::reset_compromises() {
  for (Beacon& b : beacons_) {
    b.declared_position = b.true_position;
    b.compromised = false;
  }
}

std::vector<std::size_t> BeaconField::heard_at(Vec2 p) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < beacons_.size(); ++i) {
    if (distance(beacons_[i].true_position, p) <= tx_range_) out.push_back(i);
  }
  return out;
}

}  // namespace lad
