// Beacon (anchor) nodes for the beacon-based schemes.
//
// Beacons know their own location (GPS / manual configuration) and
// broadcast it with a high-power transmitter of range `tx_range`.  A
// compromised beacon keeps its true radio position but *declares* a false
// location - exactly the attack of Section 6.3 ("an adversary can ...
// introduce arbitrarily large location errors by compromising a single
// anchor node and having the compromised anchor node declaring a false
// location").
#pragma once

#include <vector>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {

struct Beacon {
  Vec2 true_position;      ///< where the beacon's radio actually is
  Vec2 declared_position;  ///< what it claims in its broadcasts
  bool compromised = false;
};

class BeaconField {
 public:
  BeaconField() = default;

  /// kx x ky beacons on a regular grid over `field` (cell centers).
  static BeaconField grid(const Aabb& field, int kx, int ky, double tx_range);

  /// `count` beacons uniformly at random in `field`.
  static BeaconField random(const Aabb& field, int count, double tx_range,
                            Rng& rng);

  double tx_range() const { return tx_range_; }
  std::size_t size() const { return beacons_.size(); }
  const Beacon& operator[](std::size_t i) const { return beacons_[i]; }
  const std::vector<Beacon>& beacons() const { return beacons_; }

  /// Marks beacon i compromised with the given declared location.
  void compromise(std::size_t i, Vec2 declared);
  void reset_compromises();

  /// Indices of beacons whose broadcasts reach p (true radio positions).
  std::vector<std::size_t> heard_at(Vec2 p) const;

 private:
  std::vector<Beacon> beacons_;
  double tx_range_ = 0.0;
};

}  // namespace lad
