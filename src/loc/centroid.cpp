#include "loc/centroid.h"

#include "deploy/network.h"
#include "geom/vec2.h"

namespace lad {

Vec2 CentroidLocalizer::estimate_at(Vec2 p) const {
  const std::vector<std::size_t> heard = beacons_->heard_at(p);
  if (heard.empty()) return p;  // no information: a real node keeps nothing;
                                // returning p keeps the API total (documented)
  Vec2 sum{0.0, 0.0};
  for (std::size_t i : heard) sum += (*beacons_)[i].declared_position;
  return sum / static_cast<double>(heard.size());
}

Vec2 CentroidLocalizer::localize(const Network& net, std::size_t node) {
  return estimate_at(net.position(node));
}

}  // namespace lad
