// Centroid localization (Bulusu, Heidemann, Estrin - ref. [4]): a node's
// estimate is the centroid of the *declared* positions of all beacons it
// hears.  "It induces low overhead, but high inaccuracy as compared to
// others" - and a single compromised beacon shifts the centroid by
// lie_magnitude / heard_count.
#pragma once

#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/beacons.h"
#include "loc/localizer.h"

namespace lad {

class CentroidLocalizer final : public Localizer {
 public:
  /// The beacon field must outlive the localizer.
  explicit CentroidLocalizer(const BeaconField& beacons) : beacons_(&beacons) {}

  std::string name() const override { return "centroid"; }

  Vec2 localize(const Network& net, std::size_t node) override;

  bool concurrent_localize() const override { return true; }

  /// Estimate for an arbitrary point (used by tests and examples).
  Vec2 estimate_at(Vec2 p) const;

 private:
  const BeaconField* beacons_;
};

}  // namespace lad
