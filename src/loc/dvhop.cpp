#include "loc/dvhop.h"

#include <algorithm>
#include <limits>

#include "deploy/network.h"
#include "geom/aabb.h"
#include "geom/vec2.h"
#include "loc/mmse.h"
#include "net/hopcount.h"
#include "util/assert.h"

namespace lad {

std::vector<std::size_t> grid_anchor_nodes(const Network& net, int kx, int ky) {
  LAD_REQUIRE_MSG(kx > 0 && ky > 0, "anchor grid must be non-empty");
  const Aabb field = net.model().config().field();
  const double dx = field.width() / kx;
  const double dy = field.height() / ky;
  std::vector<std::size_t> anchors;
  anchors.reserve(static_cast<std::size_t>(kx) * ky);
  for (int row = 0; row < ky; ++row) {
    for (int col = 0; col < kx; ++col) {
      const Vec2 target{field.lo.x + (col + 0.5) * dx,
                        field.lo.y + (row + 0.5) * dy};
      // Nearest node to the grid point (linear scan is fine: once per
      // network, and the grid has few points).
      std::size_t best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < net.num_nodes(); ++i) {
        const double d2 = distance2(net.position(i), target);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = i;
        }
      }
      anchors.push_back(best);
    }
  }
  // Deduplicate (two grid points could select the same node in sparse nets).
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  return anchors;
}

DvHopLocalizer::DvHopLocalizer(int kx, int ky, int max_anchors_used)
    : kx_(kx), ky_(ky), max_anchors_used_(max_anchors_used) {
  LAD_REQUIRE_MSG(max_anchors_used >= 3, "lateration needs >= 3 anchors");
}

void DvHopLocalizer::prepare(const Network& net) {
  anchors_ = grid_anchor_nodes(net, kx_, ky_);
  LAD_REQUIRE_MSG(anchors_.size() >= 3, "DV-Hop needs >= 3 distinct anchors");
  anchor_declared_.clear();
  for (std::size_t a : anchors_) anchor_declared_.push_back(net.position(a));
  hops_ = hop_counts_from_all(net, anchors_);
  avg_hop_distance_ = average_hop_distance(net, anchors_, hops_);
  if (avg_hop_distance_ <= 0) {
    // Disconnected anchor set; fall back to the radio range as the per-hop
    // distance so localize() still returns something sane.
    avg_hop_distance_ = net.radio_range();
  }
}

void DvHopLocalizer::compromise_anchor(std::size_t anchor_idx, Vec2 declared) {
  LAD_REQUIRE(anchor_idx < anchor_declared_.size());
  anchor_declared_[anchor_idx] = declared;
}

void DvHopLocalizer::reset_compromises() {
  // Restored on the next prepare(); callers that want immediate restore
  // re-prepare.  Kept simple because attacks re-prepare per trial anyway.
  anchor_declared_.clear();
}

Vec2 DvHopLocalizer::localize(const Network& net, std::size_t node) {
  LAD_REQUIRE_MSG(!hops_.empty(), "call prepare() before localize()");
  LAD_REQUIRE_MSG(!anchor_declared_.empty(),
                  "anchor declarations missing (reset without prepare?)");

  // Collect (hop count, anchor index), keep the hop-nearest ones.
  std::vector<std::pair<std::uint16_t, std::size_t>> ranked;
  for (std::size_t a = 0; a < anchors_.size(); ++a) {
    const std::uint16_t h = hops_[a][node];
    if (h == kUnreachableHops) continue;
    ranked.emplace_back(h, a);
  }
  if (ranked.size() < 3) return net.position(node);  // disconnected: no info
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > static_cast<std::size_t>(max_anchors_used_)) {
    ranked.resize(static_cast<std::size_t>(max_anchors_used_));
  }

  std::vector<Vec2> refs;
  std::vector<double> dists;
  for (const auto& [h, a] : ranked) {
    refs.push_back(anchor_declared_[a]);
    dists.push_back(avg_hop_distance_ * static_cast<double>(h));
  }
  const auto res = mmse_multilaterate(refs, dists);
  if (!res) return net.position(node);
  // Clamp into the field: hop quantization can push estimates outside.
  return net.model().config().field().clamp(res->position);
}

}  // namespace lad
