// DV-Hop (Niculescu & Nath - ref. [32]).
//
// Anchors flood the network; every node records its minimum hop count to
// each anchor.  Anchors compute the network-wide average distance-per-hop
// from their mutual hop counts; nodes convert hop counts into distance
// estimates and multilaterate (MMSE) against the anchors' declared
// positions.
//
// Anchors here are regular network nodes designated as anchors (closest
// node to each point of a kx x ky grid), which is how DV-Hop deployments
// place them.  A compromised anchor declares a false position.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/localizer.h"

namespace lad {

class DvHopLocalizer final : public Localizer {
 public:
  /// kx * ky anchors on a grid.  max_anchors_used bounds the lateration
  /// inputs to the nearest anchors (hop-wise), as the protocol prescribes.
  DvHopLocalizer(int kx, int ky, int max_anchors_used = 8);

  std::string name() const override { return "dv-hop"; }

  /// Selects anchor nodes and floods hop counts (the expensive step).
  void prepare(const Network& net) override;

  Vec2 localize(const Network& net, std::size_t node) override;

  bool concurrent_localize() const override { return true; }

  /// Declares a false position for anchor `anchor_idx` (attack hook).
  void compromise_anchor(std::size_t anchor_idx, Vec2 declared);
  void reset_compromises();

  const std::vector<std::size_t>& anchor_nodes() const { return anchors_; }
  double avg_hop_distance() const { return avg_hop_distance_; }

 private:
  int kx_, ky_, max_anchors_used_;
  std::vector<std::size_t> anchors_;
  std::vector<Vec2> anchor_declared_;
  std::vector<std::vector<std::uint16_t>> hops_;  // [anchor][node]
  double avg_hop_distance_ = 0.0;
};

/// Picks the network node nearest to each point of a kx x ky grid over the
/// field (shared by DV-Hop, Amorphous, and the attack benches).
std::vector<std::size_t> grid_anchor_nodes(const Network& net, int kx, int ky);

}  // namespace lad
