#include "loc/echo.h"

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

EchoProtocol::EchoProtocol(std::vector<EchoVerifier> verifiers,
                           double processing_slack)
    : verifiers_(std::move(verifiers)), processing_slack_(processing_slack) {
  LAD_REQUIRE_MSG(!verifiers_.empty(), "Echo needs at least one verifier");
  LAD_REQUIRE_MSG(processing_slack >= 0, "negative processing slack");
  for (const EchoVerifier& v : verifiers_) {
    LAD_REQUIRE_MSG(v.range > 0, "verifier range must be positive");
  }
}

EchoProtocol EchoProtocol::grid(const Aabb& field, int kx, int ky,
                                double range, double processing_slack) {
  LAD_REQUIRE_MSG(kx > 0 && ky > 0, "verifier grid must be non-empty");
  std::vector<EchoVerifier> vs;
  const double dx = field.width() / kx;
  const double dy = field.height() / ky;
  for (int row = 0; row < ky; ++row) {
    for (int col = 0; col < kx; ++col) {
      vs.push_back({{field.lo.x + (col + 0.5) * dx,
                     field.lo.y + (row + 0.5) * dy},
                    range});
    }
  }
  return EchoProtocol(std::move(vs), processing_slack);
}

int EchoProtocol::verify(Vec2 claimed, Vec2 actual,
                         double attacker_delay) const {
  LAD_REQUIRE_MSG(attacker_delay >= 0,
                  "a prover cannot reply before receiving the nonce");
  bool covered = false;
  for (const EchoVerifier& v : verifiers_) {
    if (distance(v.position, claimed) > v.range) continue;
    covered = true;
    // RF downlink is ~instant; the echo takes d(actual)/s + delay.  The
    // deadline is the round trip a prover AT the claimed point would need.
    const double elapsed =
        distance(v.position, actual) / kUltrasoundSpeed + attacker_delay;
    const double deadline =
        distance(v.position, claimed) / kUltrasoundSpeed + processing_slack_;
    if (elapsed <= deadline) return +1;
  }
  return covered ? -1 : 0;
}

double EchoProtocol::coverage(const Aabb& field, int samples_per_axis) const {
  LAD_REQUIRE_MSG(samples_per_axis > 0, "need at least one sample");
  int in = 0, total = 0;
  for (int i = 0; i < samples_per_axis; ++i) {
    for (int j = 0; j < samples_per_axis; ++j) {
      const Vec2 p{field.lo.x + field.width() * (i + 0.5) / samples_per_axis,
                   field.lo.y + field.height() * (j + 0.5) / samples_per_axis};
      ++total;
      for (const EchoVerifier& v : verifiers_) {
        if (distance(v.position, p) <= v.range) {
          ++in;
          break;
        }
      }
    }
  }
  return static_cast<double>(in) / total;
}

}  // namespace lad
