// The Echo location-verification protocol (Sastry, Shankar, Wagner - the
// paper's ref. [34]), simulated at the timing level.  Section 2.2 uses it
// as the contrast for LAD: "the Echo protocol only verifies whether a node
// is inside a region ... relies on the existence of a very fast (e.g.
// radio frequency) and a relatively slow (e.g., ultrasound) signal".
//
// Protocol: the verifier sends a nonce over RF (effectively instant) and
// the prover echoes it over ultrasound.  Sound cannot be outrun, so the
// echo's elapsed time lower-bounds the prover's distance: a prover can
// *delay* its reply (appear farther) but never appear closer.  The
// verifier accepts an in-region claim iff the echo returns within the time
// budget of the claimed position (plus a processing allowance).
//
// The comparison bench (tab_echo_comparison) shows the asymmetry the paper
// exploits: Echo rejects claims closer to a verifier than the prover
// really is, but accepts claims farther away, and needs verifier hardware
// coverage - LAD detects displacement in any direction with no ranging
// hardware at all.
#pragma once

#include <vector>

#include "geom/aabb.h"
#include "geom/vec2.h"

namespace lad {

/// Speed of sound used by the simulated ultrasound channel (m/s).
inline constexpr double kUltrasoundSpeed = 343.0;

struct EchoVerifier {
  Vec2 position;
  /// Maximum ultrasound range; claims outside are unverifiable by this
  /// verifier (Echo needs in-range coverage).
  double range;
};

class EchoProtocol {
 public:
  /// processing_slack: receiver-side allowance in seconds added to the
  /// acceptance deadline (the original paper's delta_p).
  EchoProtocol(std::vector<EchoVerifier> verifiers,
               double processing_slack = 1e-4);

  /// kx * ky verifiers on a grid over the field.
  static EchoProtocol grid(const Aabb& field, int kx, int ky, double range,
                           double processing_slack = 1e-4);

  const std::vector<EchoVerifier>& verifiers() const { return verifiers_; }

  /// Simulates one verification round for a prover whose radio actually
  /// sits at `actual`, claiming to be at `claimed`, replying after
  /// `attacker_delay` seconds (0 = honest immediate echo).
  /// Returns:
  ///   +1  accepted  (some in-range verifier's deadline was met)
  ///    0  unverifiable (no verifier covers the claimed position)
  ///   -1  rejected  (every covering verifier timed the echo out)
  int verify(Vec2 claimed, Vec2 actual, double attacker_delay = 0.0) const;

  /// Fraction of the field covered by at least one verifier (sampled).
  double coverage(const Aabb& field, int samples_per_axis = 40) const;

 private:
  std::vector<EchoVerifier> verifiers_;
  double processing_slack_;
};

}  // namespace lad
