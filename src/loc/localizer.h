// Localization-scheme interface.
//
// LAD is independent of the localization scheme (Section 7.2): the detector
// only consumes the estimated location Le.  Every scheme in this directory
// implements this interface so the training pipeline, the evaluator, and
// the localizer-ablation bench can swap them freely.
//
// Protocol: prepare(net) is called once per deployed network (schemes that
// flood hop counts or build beacon tables do their per-network work there);
// localize(net, node) is then called per sensor.
#pragma once

#include <string>

#include "deploy/network.h"
#include "geom/vec2.h"

namespace lad {

class Localizer {
 public:
  virtual ~Localizer() = default;

  virtual std::string name() const = 0;

  /// Per-network precomputation (default: none).
  virtual void prepare(const Network& net) { (void)net; }

  /// Estimated location Le of `node`.
  virtual Vec2 localize(const Network& net, std::size_t node) = 0;

  /// True when localize() on a prepared instance is a pure function of
  /// its arguments: safe to call concurrently and independent of call
  /// order.  The scoring passes then share one prepared instance per
  /// network across their per-victim thread fan-out.  Stateful schemes
  /// (truth+noise advances an internal rng per call, so results depend on
  /// call order) keep the default `false`; the passes fall back to a
  /// per-network fan-out that localizes each network's victims in order.
  virtual bool concurrent_localize() const { return false; }
};

}  // namespace lad
