#include "loc/mmse.h"

#include <algorithm>
#include <cmath>

#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {
namespace {

/// Solves the 2x2 system [[a,b],[c,d]] x = [e,f]; returns false if singular.
bool solve2x2(double a, double b, double c, double d, double e, double f,
              Vec2& out) {
  const double det = a * d - b * c;
  const double scale = std::max({std::abs(a), std::abs(b), std::abs(c),
                                 std::abs(d), 1e-300});
  if (std::abs(det) < 1e-12 * scale * scale) return false;
  out.x = (e * d - b * f) / det;
  out.y = (a * f - e * c) / det;
  return true;
}

}  // namespace

std::optional<MmseResult> mmse_multilaterate(
    const std::vector<Vec2>& references, const std::vector<double>& distances,
    int gauss_newton_iters) {
  LAD_REQUIRE_MSG(references.size() == distances.size(),
                  "references/distances size mismatch");
  const std::size_t n = references.size();
  if (n < 3) return std::nullopt;

  // Linearization: |p - a_i|^2 - |p - a_n|^2 = d_i^2 - d_n^2 gives
  //   2 (a_n - a_i) . p = d_i^2 - d_n^2 - |a_i|^2 + |a_n|^2.
  // Solve the overdetermined linear system by normal equations.
  const Vec2 an = references[n - 1];
  const double dn = distances[n - 1];
  double ata00 = 0, ata01 = 0, ata11 = 0, atb0 = 0, atb1 = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double ax = 2.0 * (an.x - references[i].x);
    const double ay = 2.0 * (an.y - references[i].y);
    const double b = distances[i] * distances[i] - dn * dn -
                     references[i].norm2() + an.norm2();
    ata00 += ax * ax;
    ata01 += ax * ay;
    ata11 += ay * ay;
    atb0 += ax * b;
    atb1 += ay * b;
  }
  Vec2 p;
  if (!solve2x2(ata00, ata01, ata01, ata11, atb0, atb1, p)) return std::nullopt;

  // Gauss-Newton refinement of the nonlinear least squares.
  for (int it = 0; it < gauss_newton_iters; ++it) {
    double jtj00 = 0, jtj01 = 0, jtj11 = 0, jtr0 = 0, jtr1 = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 diff = p - references[i];
      const double dist = diff.norm();
      if (dist < 1e-9) continue;  // at a reference: gradient undefined
      const double r = dist - distances[i];
      const double jx = diff.x / dist;
      const double jy = diff.y / dist;
      jtj00 += jx * jx;
      jtj01 += jx * jy;
      jtj11 += jy * jy;
      jtr0 += jx * r;
      jtr1 += jy * r;
    }
    Vec2 step;
    if (!solve2x2(jtj00, jtj01, jtj01, jtj11, jtr0, jtr1, step)) break;
    p -= step;
    if (step.norm() < 1e-10) break;
  }

  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = distance(p, references[i]) - distances[i];
    ss += r * r;
  }
  return MmseResult{p, std::sqrt(ss / static_cast<double>(n))};
}

}  // namespace lad
