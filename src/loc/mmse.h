// Minimum-mean-square-error multilateration.
//
// "Almost all of the range-based localization schemes and some range-free
// schemes eventually reduce localization to a Minimum Mean Square
// Estimation (MMSE) problem" (Section 6.3).  Given reference points a_i and
// distance estimates d_i, find p minimizing sum_i (|p - a_i| - d_i)^2.
//
// Implementation: the standard linearization (subtracting the last
// equation) solved by 2x2 normal equations, refined by a few Gauss-Newton
// iterations on the true nonlinear residual.
#pragma once

#include <optional>
#include <vector>

#include "geom/vec2.h"

namespace lad {

struct MmseResult {
  Vec2 position;
  double residual_rms;  ///< sqrt(mean((|p-a_i| - d_i)^2)) at the solution
};

/// Requires at least 3 non-collinear references; returns nullopt when the
/// system is degenerate (fewer than 3 references or collinear geometry).
std::optional<MmseResult> mmse_multilaterate(
    const std::vector<Vec2>& references, const std::vector<double>& distances,
    int gauss_newton_iters = 8);

}  // namespace lad
