#include "loc/truth_noise.h"

// Header-only implementation; this translation unit anchors the vtable.
