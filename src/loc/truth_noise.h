// Reference localizer: the true position plus isotropic Gaussian noise.
//
// Not a real protocol - it models "some localization scheme with error
// std-dev sigma_err" and lets experiments separate LAD's behaviour from any
// particular scheme's error structure (used in tests and the localizer
// ablation as the controlled baseline).
#pragma once

#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/localizer.h"
#include "rng/rng.h"

namespace lad {

class TruthNoiseLocalizer final : public Localizer {
 public:
  TruthNoiseLocalizer(double error_sigma, std::uint64_t seed)
      : error_sigma_(error_sigma), rng_(seed) {}

  std::string name() const override { return "truth+noise"; }

  Vec2 localize(const Network& net, std::size_t node) override {
    const Vec2 p = net.position(node);
    if (error_sigma_ <= 0) return p;
    return {p.x + rng_.normal(0.0, error_sigma_),
            p.y + rng_.normal(0.0, error_sigma_)};
  }

 private:
  double error_sigma_;
  Rng rng_;
};

}  // namespace lad
