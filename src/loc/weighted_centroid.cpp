#include "loc/weighted_centroid.h"

#include "deploy/deployment_model.h"
#include "deploy/observation.h"
#include "geom/vec2.h"

namespace lad {

Vec2 weighted_centroid_estimate(const DeploymentModel& model,
                                const Observation& obs) {
  double wx = 0.0, wy = 0.0, wt = 0.0;
  for (std::size_t g = 0; g < obs.num_groups(); ++g) {
    const double w = static_cast<double>(obs.counts[g]);
    if (w <= 0) continue;
    const Vec2 dp = model.deployment_point(static_cast<int>(g));
    wx += w * dp.x;
    wy += w * dp.y;
    wt += w;
  }
  if (wt <= 0) return model.config().field().center();  // heard nobody
  return {wx / wt, wy / wt};
}

}  // namespace lad
