// Observation-weighted centroid of the deployment points: the simplest
// beaconless estimator (Le = sum_i o_i * G_i / sum_i o_i).  It is also the
// seed for the beaconless MLE's search.
#pragma once

#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "loc/localizer.h"

namespace lad {

/// Standalone helper usable without a Network (the MLE seeds from it).
Vec2 weighted_centroid_estimate(const DeploymentModel& model,
                                const Observation& obs);

class WeightedCentroidLocalizer final : public Localizer {
 public:
  explicit WeightedCentroidLocalizer(const DeploymentModel& model)
      : model_(&model) {}

  std::string name() const override { return "weighted-centroid"; }

  Vec2 localize(const Network& net, std::size_t node) override {
    return weighted_centroid_estimate(*model_, net.observe(node));
  }

  bool concurrent_localize() const override { return true; }

 private:
  const DeploymentModel* model_;
};

}  // namespace lad
