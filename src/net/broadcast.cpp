#include "net/broadcast.h"

#include <algorithm>

#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "net/wormhole.h"
#include "util/assert.h"

namespace lad {

BroadcastSim::BroadcastSim(const Network& net) : net_(&net) {}

void BroadcastSim::set_behavior(std::size_t node, NodeBehavior behavior) {
  LAD_REQUIRE(node < net_->num_nodes());
  for (auto& [n, b] : behaviors_) {
    if (n == node) {
      b = std::move(behavior);
      return;
    }
  }
  behaviors_.emplace_back(node, std::move(behavior));
}

void BroadcastSim::clear_behaviors() { behaviors_.clear(); }

const NodeBehavior* BroadcastSim::behavior_of(std::size_t node) const {
  for (const auto& [n, b] : behaviors_) {
    if (n == node) return &b;
  }
  return nullptr;
}

void BroadcastSim::deliver(std::size_t sender, Observation& obs,
                           bool via_wormhole) const {
  if (via_wormhole && defenses_.wormhole_detection) return;

  const int true_group = net_->group_of(sender);
  const NodeBehavior* b = behavior_of(sender);
  if (b == nullptr) {
    ++obs.counts[static_cast<std::size_t>(true_group)];
    return;
  }
  if (b->silent) return;

  int claimed = b->impersonate_group.value_or(true_group);
  if (defenses_.authentication && claimed != true_group) {
    claimed = -1;  // forged primary claim rejected
  }
  if (claimed >= 0) {
    LAD_REQUIRE_MSG(claimed < static_cast<int>(obs.num_groups()),
                    "claimed group out of range");
    ++obs.counts[static_cast<std::size_t>(claimed)];
  }
  if (!defenses_.authentication) {
    for (const auto& [group, copies] : b->extra_claims) {
      LAD_REQUIRE_MSG(group >= 0 && group < static_cast<int>(obs.num_groups()),
                      "extra claim group out of range");
      LAD_REQUIRE_MSG(copies >= 0, "negative claim count");
      obs.counts[static_cast<std::size_t>(group)] += copies;
    }
  }
}

Observation BroadcastSim::observe(std::size_t victim) const {
  LAD_REQUIRE(victim < net_->num_nodes());
  Observation obs(static_cast<std::size_t>(net_->num_groups()));

  // Direct radio deliveries.
  for (std::size_t sender : net_->neighbors_of(victim)) {
    deliver(sender, obs, /*via_wormhole=*/false);
  }

  // Wormhole replays: any transmitter in an endpoint's capture zone whose
  // replica reaches the victim.  Direct neighbors are not double-counted,
  // and a sender reachable through several tunnels/ends is delivered once
  // (receivers de-duplicate identical replayed announcements).
  for (std::size_t sender : wormhole_senders(victim)) {
    deliver(sender, obs, /*via_wormhole=*/true);
  }
  return obs;
}

std::vector<std::size_t> BroadcastSim::wormhole_senders(
    std::size_t victim) const {
  std::vector<std::size_t> out;
  if (wormholes_.empty()) return out;
  const Vec2 vp = net_->position(victim);
  std::vector<std::size_t> direct = net_->neighbors_of(victim);
  std::sort(direct.begin(), direct.end());
  for (const Wormhole& w : wormholes_) {
    for (Vec2 end : {w.end_a, w.end_b}) {
      for (std::size_t sender : net_->nodes_within(end, w.radius, victim)) {
        if (!wormhole_delivers(w, net_->position(sender), vp)) continue;
        if (std::binary_search(direct.begin(), direct.end(), sender)) continue;
        out.push_back(sender);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t BroadcastSim::heard_count(std::size_t victim) const {
  return net_->neighbors_of(victim).size() + wormhole_senders(victim).size();
}

}  // namespace lad
