// The group-membership announcement round of Section 5.1: "each sensor
// broadcasts its group id to its neighbors, and each sensor can count the
// number of neighbors from Gi".
//
// BroadcastSim executes that round at the message level, including the
// concrete attacker behaviours of Section 6 (silence, impersonation,
// multi-impersonation, range change via tx-power or wormholes) and the two
// defense switches that reduce the attacker to Dec-Only:
//   * authentication  - forged group claims are dropped,
//   * packet leashes  - wormhole-replayed messages are dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "deploy/network.h"
#include "deploy/observation.h"
#include "net/wormhole.h"

namespace lad {

/// Per-node transmit behaviour during the announcement round.
struct NodeBehavior {
  /// Silence attack: compromised node sends nothing.
  bool silent = false;
  /// Impersonation attack: claim this group instead of the true one.
  std::optional<int> impersonate_group;
  /// Multi-impersonation: additional (group, copies) claims, only possible
  /// without per-message authentication.
  std::vector<std::pair<int, int>> extra_claims;
};

struct DefenseConfig {
  /// Pairwise authentication: group claims that do not match the sender's
  /// true group are rejected by receivers.
  bool authentication = false;
  /// Wormhole detection (packet leashes): replayed messages are rejected.
  bool wormhole_detection = false;
};

class BroadcastSim {
 public:
  explicit BroadcastSim(const Network& net);

  /// Installs a behaviour override for one node (default: honest).
  void set_behavior(std::size_t node, NodeBehavior behavior);
  void clear_behaviors();

  void add_wormhole(const Wormhole& w) { wormholes_.push_back(w); }
  void clear_wormholes() { wormholes_.clear(); }

  void set_defenses(const DefenseConfig& d) { defenses_ = d; }
  const DefenseConfig& defenses() const { return defenses_; }

  /// Runs the announcement round from the perspective of `victim` and
  /// returns the observation it accumulates.
  Observation observe(std::size_t victim) const;

  /// Number of distinct transmitters the victim hears (including through
  /// wormholes); useful to size attack budgets.
  std::size_t heard_count(std::size_t victim) const;

 private:
  void deliver(std::size_t sender, Observation& obs, bool via_wormhole) const;
  const NodeBehavior* behavior_of(std::size_t node) const;
  /// Distinct non-neighbor transmitters replayed to the victim.
  std::vector<std::size_t> wormhole_senders(std::size_t victim) const;

  const Network* net_;
  std::vector<std::pair<std::size_t, NodeBehavior>> behaviors_;
  std::vector<Wormhole> wormholes_;
  DefenseConfig defenses_;
};

}  // namespace lad
