#include "net/hopcount.h"

#include <deque>

#include "deploy/network.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {

std::vector<std::uint16_t> hop_counts_from(const Network& net,
                                           std::size_t source) {
  LAD_REQUIRE(source < net.num_nodes());
  std::vector<std::uint16_t> hops(net.num_nodes(), kUnreachableHops);
  std::deque<std::size_t> queue;
  hops[source] = 0;
  queue.push_back(source);
  const double r = net.radio_range();
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    const std::uint16_t next = static_cast<std::uint16_t>(hops[u] + 1);
    net.index().for_each_in_radius(net.position(u), r, [&](std::size_t v) {
      if (hops[v] != kUnreachableHops) return;
      hops[v] = next;
      queue.push_back(v);
    });
  }
  hops[source] = 0;  // the source visit above marks it; keep it at 0
  return hops;
}

std::vector<std::vector<std::uint16_t>> hop_counts_from_all(
    const Network& net, const std::vector<std::size_t>& sources) {
  std::vector<std::vector<std::uint16_t>> out;
  out.reserve(sources.size());
  for (std::size_t s : sources) out.push_back(hop_counts_from(net, s));
  return out;
}

double average_hop_distance(
    const Network& net, const std::vector<std::size_t>& sources,
    const std::vector<std::vector<std::uint16_t>>& hops) {
  LAD_REQUIRE(sources.size() == hops.size());
  double total_dist = 0.0;
  double total_hops = 0.0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = i + 1; j < sources.size(); ++j) {
      const std::uint16_t h = hops[i][sources[j]];
      if (h == kUnreachableHops || h == 0) continue;
      total_dist += distance(net.position(sources[i]), net.position(sources[j]));
      total_hops += static_cast<double>(h);
    }
  }
  return total_hops > 0 ? total_dist / total_hops : 0.0;
}

}  // namespace lad
