// Multi-source BFS hop counts over the radio connectivity graph.
//
// DV-Hop and Amorphous (refs. [32], [29]) need, for every node, the minimum
// hop count to each anchor.  The BFS expands over the spatial index without
// materializing the (large) adjacency list.
#pragma once

#include <cstdint>
#include <vector>

#include "deploy/network.h"

namespace lad {

inline constexpr std::uint16_t kUnreachableHops = 0xFFFF;

/// hops[node] = minimum number of radio hops from `source` to node
/// (kUnreachableHops if disconnected).  Uses the model's uniform range R.
std::vector<std::uint16_t> hop_counts_from(const Network& net,
                                           std::size_t source);

/// Hop counts from every source in `sources`; result[s][node].
std::vector<std::vector<std::uint16_t>> hop_counts_from_all(
    const Network& net, const std::vector<std::size_t>& sources);

/// Average over all pairs (s1, s2) of sources of
/// euclidean_distance(s1, s2) / hops(s1, s2); this is DV-Hop's per-hop
/// distance estimate computed at the anchors.  Pairs that are disconnected
/// are skipped; returns 0 if no pair is connected.
double average_hop_distance(const Network& net,
                            const std::vector<std::size_t>& sources,
                            const std::vector<std::vector<std::uint16_t>>& hops);

}  // namespace lad
