#include "net/wormhole.h"

#include "geom/vec2.h"

namespace lad {

bool wormhole_delivers(const Wormhole& w, Vec2 sender, Vec2 receiver) {
  const bool fwd = distance(sender, w.end_a) <= w.radius &&
                   distance(receiver, w.end_b) <= w.radius;
  if (fwd) return true;
  if (!w.bidirectional) return false;
  return distance(sender, w.end_b) <= w.radius &&
         distance(receiver, w.end_a) <= w.radius;
}

}  // namespace lad
