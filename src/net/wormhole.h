// Wormhole links (Hu, Perrig, Johnson's attack model, ref. [15] of the
// paper): an attacker records transmissions near endpoint A and replays
// them near endpoint B (and vice versa for bidirectional tunnels).  In the
// paper's taxonomy this implements the range-change attack: nodes far from
// the victim appear as neighbors.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace lad {

struct Wormhole {
  Vec2 end_a;
  Vec2 end_b;
  /// Capture/replay radius around each endpoint.
  double radius;
  /// If true, traffic flows in both directions; otherwise only A -> B.
  bool bidirectional = true;
};

/// True if a transmission from `sender` is replayed such that `receiver`
/// hears it through `w`: the sender is within the capture radius of one
/// endpoint and the receiver within the replay radius of the other.
bool wormhole_delivers(const Wormhole& w, Vec2 sender, Vec2 receiver);

}  // namespace lad
