#include "rng/philox.h"

namespace lad {
namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  hi = static_cast<std::uint32_t>(p >> 32);
  lo = static_cast<std::uint32_t>(p);
}

inline Philox4x32::Counter round_once(const Philox4x32::Counter& c,
                                      const Philox4x32::Key& k) {
  std::uint32_t hi0, lo0, hi1, lo1;
  mulhilo(kMul0, c[0], hi0, lo0);
  mulhilo(kMul1, c[2], hi1, lo1);
  return {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
}

}  // namespace

Philox4x32::Counter Philox4x32::block(Counter counter, Key key) {
  counter = round_once(counter, key);
  for (int r = 1; r < 10; ++r) {
    key[0] += kWeyl0;
    key[1] += kWeyl1;
    counter = round_once(counter, key);
  }
  return counter;
}

Philox4x32::Philox4x32(std::uint64_t key, std::uint64_t stream) {
  key_ = {static_cast<std::uint32_t>(key), static_cast<std::uint32_t>(key >> 32)};
  // The stream id occupies the top half of the counter; the bottom half is
  // the running block index, giving 2^64 blocks per stream.
  counter_ = {0, 0, static_cast<std::uint32_t>(stream),
              static_cast<std::uint32_t>(stream >> 32)};
}

void Philox4x32::refill() {
  buffer_ = block(counter_, key_);
  have_ = 4;
  // 64-bit increment of the low half of the counter.
  if (++counter_[0] == 0) ++counter_[1];
}

std::uint64_t Philox4x32::next() {
  if (have_ < 2) refill();
  const std::uint32_t lo = buffer_[4 - have_];
  const std::uint32_t hi = buffer_[4 - have_ + 1];
  have_ -= 2;
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

}  // namespace lad
