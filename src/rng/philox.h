// Philox4x32-10 counter-based RNG (Salmon et al., SC'11 / Random123).
//
// Counter-based generation is what makes the Monte-Carlo engine's results
// independent of thread count: trial t of experiment e reads the stream
// keyed by (e, t) regardless of which worker executes it.
#pragma once

#include <array>
#include <cstdint>

namespace lad {

class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  /// One 10-round Philox block: 128 bits of output per counter value.
  static Counter block(Counter counter, Key key);

  /// Convenience: keyed 64-bit stream.  `key` identifies the experiment,
  /// `stream` the trial; consecutive next() calls walk the counter.
  Philox4x32(std::uint64_t key, std::uint64_t stream);

  std::uint64_t next();

  using result_type = std::uint64_t;
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  void refill();

  Counter counter_{};
  Key key_{};
  Counter buffer_{};
  int have_ = 0;  // number of unconsumed 32-bit words in buffer_
};

}  // namespace lad
