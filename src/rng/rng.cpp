#include "rng/rng.h"

#include <cmath>

#include "rng/philox.h"
#include "util/assert.h"

namespace lad {

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // One Philox block mixes (seed, stream_id) into a fresh 64-bit seed; the
  // full 10-round block guarantees adjacent stream ids decorrelate.
  Philox4x32::Counter c = {static_cast<std::uint32_t>(stream_id),
                           static_cast<std::uint32_t>(stream_id >> 32), 0x4c414421u,
                           0x44455443u};  // "LAD!","DETC" domain separators
  Philox4x32::Key k = {static_cast<std::uint32_t>(seed),
                       static_cast<std::uint32_t>(seed >> 32)};
  const auto out = Philox4x32::block(c, k);
  const std::uint64_t mixed =
      (static_cast<std::uint64_t>(out[0]) << 32) | out[1];
  return Rng(mixed ^ (static_cast<std::uint64_t>(out[2]) << 32 | out[3]));
}

double Rng::uniform01() {
  return static_cast<double>(bits() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LAD_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  LAD_REQUIRE_MSG(n > 0, "uniform_int(0) is undefined");
  // Rejection from the top to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v;
  do {
    v = bits();
  } while (v >= limit);
  return v % n;
}

long long Rng::uniform_int(long long lo, long long hi) {
  LAD_REQUIRE_MSG(lo <= hi, "uniform_int range is empty");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<long long>(uniform_int(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * f;
  has_spare_ = true;
  return u * f;
}

double Rng::exponential(double lambda) {
  LAD_REQUIRE_MSG(lambda > 0, "exponential rate must be positive");
  // 1 - uniform01() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform01()) / lambda;
}

int Rng::binomial(int n, double p) {
  LAD_REQUIRE_MSG(n >= 0, "binomial n must be non-negative");
  LAD_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "binomial p must be in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Exploit symmetry so the inversion loop runs over the smaller tail.
  if (p > 0.5) return n - binomial(n, 1.0 - p);

  const double mean = n * p;
  if (mean > 1e4) {
    // Normal approximation with continuity correction; clamped to [0, n].
    const double sd = std::sqrt(mean * (1.0 - p));
    double v = std::floor(normal(mean, sd) + 0.5);
    if (v < 0) v = 0;
    if (v > n) v = n;
    return static_cast<int>(v);
  }

  // Inversion by sequential search over the pmf (exact).
  const double q = 1.0 - p;
  const double s = p / q;
  double pmf = std::pow(q, n);
  double cdf = pmf;
  double u = uniform01();
  int k = 0;
  while (u > cdf && k < n) {
    ++k;
    pmf *= s * (n - k + 1) / k;
    cdf += pmf;
    if (pmf <= 0.0) break;  // underflow guard in the far tail
  }
  return k;
}

int Rng::poisson(double lambda) {
  LAD_REQUIRE_MSG(lambda >= 0, "poisson rate must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda > 30.0) {
    const double v = std::floor(normal(lambda, std::sqrt(lambda)) + 0.5);
    return v < 0 ? 0 : static_cast<int>(v);
  }
  const double limit = std::exp(-lambda);
  int k = 0;
  double prod = uniform01();
  while (prod > limit) {
    ++k;
    prod *= uniform01();
  }
  return k;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  LAD_REQUIRE_MSG(!weights.empty(), "discrete() needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    LAD_REQUIRE_MSG(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  LAD_REQUIRE_MSG(total > 0.0, "discrete() needs a positive total weight");
  double u = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return the last index
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  LAD_REQUIRE_MSG(k <= n, "cannot sample " << k << " items from " << n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace lad
