// Deterministic distribution layer.
//
// We do NOT use <random>'s distribution templates: their algorithms are
// implementation-defined, so results would differ between standard
// libraries.  Every sampler here is specified exactly, which makes the
// experiment outputs reproducible bit-for-bit on any platform.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro.h"

namespace lad {

class Rng {
 public:
  /// Seeds from a single 64-bit value.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent generator for sub-stream `stream` of this seed.
  /// Implemented as a strong 128->64 bit mix, so streams never overlap in
  /// practice.  Used per Monte-Carlo trial: Rng::stream(exp_seed, trial).
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Raw 64 uniform bits.
  std::uint64_t bits() { return engine_.next(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.  Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  long long uniform_int(long long lo, long long hi);

  /// Standard normal via the Marsaglia polar method (cached spare).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Binomial(n, p) by inversion for small means, with a guarded
  /// normal-approximation fallback for very large n*p (n*p > 1e4).
  int binomial(int n, double p);

  /// Poisson(lambda) by inversion (lambda <= 30) or PTRS-free normal
  /// approximation fallback for large lambda.
  int poisson(double lambda);

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform01() < p; }

  /// Samples an index according to (unnormalized, non-negative) weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  using result_type = std::uint64_t;
  std::uint64_t operator()() { return bits(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  Xoshiro256StarStar engine_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace lad
