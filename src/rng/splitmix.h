// SplitMix64 (Steele, Lea, Flood 2014).  Used to expand a single 64-bit seed
// into the larger states of xoshiro256** / Philox, and as a cheap one-shot
// hash for combining (seed, stream-id) pairs.
#pragma once

#include <cstdint>

namespace lad {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit values into one; used to derive independent
/// sub-stream seeds, e.g. mix64(experiment_seed, trial_index).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2)));
  sm.next();
  return sm.next() ^ b;
}

}  // namespace lad
