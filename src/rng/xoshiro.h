// xoshiro256** 1.0 (Blackman & Vigna 2018) - the library's workhorse
// generator: 256-bit state, excellent statistical quality, ~1ns/draw.
#pragma once

#include <cstdint>

#include "rng/splitmix.h"

namespace lad {

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state via SplitMix64, per the authors' guidance.
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Directly sets the 4x64 state (must not be all zero).
  constexpr Xoshiro256StarStar(std::uint64_t s0, std::uint64_t s1,
                               std::uint64_t s2, std::uint64_t s3)
      : s_{s0, s1, s2, s3} {}

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace lad
