#include "sim/experiment.h"

#include "attack/adversary.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"
#include "stats/roc.h"
#include "util/assert.h"

namespace lad {

ThresholdFit fit_threshold(MetricKind metric,
                           const std::vector<double>& benign_scores,
                           double fp_budget) {
  LAD_REQUIRE_MSG(fp_budget > 0 && fp_budget < 1, "FP budget must be in (0,1)");
  ThresholdFit fit{train_threshold(metric, benign_scores, 1.0 - fp_budget),
                   0.0};
  fit.realized_fp = fraction_above(benign_scores, fit.training.threshold);
  return fit;
}

ThresholdFit fit_threshold(Pipeline& pipeline, const LocalizerFactory& factory,
                           MetricKind metric, double fp_budget) {
  auto benign = pipeline.benign_scores(factory, {metric});
  return fit_threshold(metric, benign.at(metric), fp_budget);
}

PipelineConfig density_pipeline_config(const PipelineConfig& base, int m) {
  PipelineConfig cfg = base;
  cfg.deploy.nodes_per_group = m;
  // Decorrelate deployments across densities.
  cfg.seed = base.seed + static_cast<std::uint64_t>(m) * 0x9E37ull;
  return cfg;
}

std::vector<RocExperimentResult> run_roc_experiment(
    Pipeline& pipeline, const LocalizerFactory& factory,
    const std::vector<MetricKind>& metrics,
    const std::vector<AttackClass>& classes,
    const std::vector<double>& damages, double compromised_frac) {
  LAD_REQUIRE_MSG(!metrics.empty() && !classes.empty() && !damages.empty(),
                  "empty experiment grid");
  auto benign = pipeline.benign_scores(factory, metrics);

  std::vector<RocExperimentResult> out;
  for (MetricKind metric : metrics) {
    for (AttackClass cls : classes) {
      for (double d : damages) {
        AttackSpec spec;
        spec.metric = metric;
        spec.attack_class = cls;
        spec.damage = d;
        spec.compromised_frac = compromised_frac;
        const std::vector<double> attack = pipeline.attack_scores(spec);
        out.push_back({metric, cls, d, compromised_frac,
                       RocCurve(benign.at(metric), attack)});
      }
    }
  }
  return out;
}

std::vector<DrPoint> run_dr_sweep(Pipeline& pipeline,
                                  const LocalizerFactory& factory,
                                  MetricKind metric, AttackClass attack_class,
                                  const std::vector<double>& damages,
                                  const std::vector<double>& compromised_fracs,
                                  double fp_budget) {
  const ThresholdFit fit = fit_threshold(pipeline, factory, metric, fp_budget);

  std::vector<DrPoint> out;
  for (double x : compromised_fracs) {
    for (double d : damages) {
      AttackSpec spec;
      spec.metric = metric;
      spec.attack_class = attack_class;
      spec.damage = d;
      spec.compromised_frac = x;
      const std::vector<double> attack = pipeline.attack_scores(spec);
      out.push_back({d, x, fraction_above(attack, fit.threshold()),
                     fit.realized_fp, fit.threshold()});
    }
  }
  return out;
}

std::vector<DensityPoint> run_density_sweep(
    const PipelineConfig& base_config, const std::vector<int>& densities,
    MetricKind metric, AttackClass attack_class,
    const std::vector<double>& damages,
    const std::vector<double>& compromised_fracs, double fp_budget) {
  std::vector<DensityPoint> out;
  for (int m : densities) {
    Pipeline pipeline(density_pipeline_config(base_config, m));
    const LocalizerFactory factory =
        beaconless_mle_factory(pipeline.model(), pipeline.gz());

    const ThresholdFit fit =
        fit_threshold(pipeline, factory, metric, fp_budget);
    const double loc_error = pipeline.mean_localization_error(factory);

    for (double x : compromised_fracs) {
      for (double d : damages) {
        AttackSpec spec;
        spec.metric = metric;
        spec.attack_class = attack_class;
        spec.damage = d;
        spec.compromised_frac = x;
        const std::vector<double> attack = pipeline.attack_scores(spec);
        out.push_back({m, d, x, fraction_above(attack, fit.threshold()),
                       loc_error, fit.threshold()});
      }
    }
  }
  return out;
}

}  // namespace lad
