// Experiment runners for every figure of Section 7.  Each returns
// structured results; the bench binaries render them as the paper's series.
//
//  Fig. 4  run_roc_experiment over metrics x damages (DR-FP-M-D)
//  Figs. 5/6  run_roc_experiment over attack classes x damages (DR-FP-T-D)
//  Fig. 7  run_dr_sweep over damages x compromise fractions (DR-D-x)
//  Fig. 8  run_dr_sweep over compromise fractions x damages (DR-x-D)
//  Fig. 9  run_density_sweep over m x compromise fractions x damages
#pragma once

#include <string>
#include <vector>

#include "attack/adversary.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "sim/pipeline.h"
#include "stats/roc.h"

namespace lad {

/// A threshold trained at the (1 - fp_budget) percentile of benign scores
/// (Section 5.5 with tau = 1 - FP), plus the FP rate it realizes on the
/// training samples.  This is the single trainer path shared by
/// run_dr_sweep, run_density_sweep, and the scenario runner.
struct ThresholdFit {
  TrainingResult training;
  double realized_fp;  ///< FP of the trained threshold on the training set

  double threshold() const { return training.threshold; }
};

/// Trains from pre-collected benign scores.
ThresholdFit fit_threshold(MetricKind metric,
                           const std::vector<double>& benign_scores,
                           double fp_budget);

/// Convenience: runs the benign pass first, then trains.
ThresholdFit fit_threshold(Pipeline& pipeline, const LocalizerFactory& factory,
                           MetricKind metric, double fp_budget);

/// The per-density pipeline configuration run_density_sweep deploys:
/// density m with a seed decorrelated from the base seed.  Exposed so the
/// scenario runner's density work items reproduce the sweep exactly.
PipelineConfig density_pipeline_config(const PipelineConfig& base, int m);

struct RocExperimentResult {
  MetricKind metric;
  AttackClass attack_class;
  double damage;
  double compromised_frac;
  RocCurve curve;
};

/// Shares one benign pass across all (metric, class, damage) combinations,
/// exactly as the paper's training step does.
std::vector<RocExperimentResult> run_roc_experiment(
    Pipeline& pipeline, const LocalizerFactory& factory,
    const std::vector<MetricKind>& metrics,
    const std::vector<AttackClass>& classes,
    const std::vector<double>& damages, double compromised_frac);

struct DrPoint {
  double damage;
  double compromised_frac;
  double detection_rate;
  double trained_fp;   ///< realized FP of the trained threshold (training set)
  double threshold;    ///< the trained threshold
};

/// Trains the threshold at the (1 - fp_budget) percentile of benign scores
/// (Section 5.5 with tau = 1 - FP), then sweeps attacks.
std::vector<DrPoint> run_dr_sweep(Pipeline& pipeline,
                                  const LocalizerFactory& factory,
                                  MetricKind metric, AttackClass attack_class,
                                  const std::vector<double>& damages,
                                  const std::vector<double>& compromised_fracs,
                                  double fp_budget);

struct DensityPoint {
  int nodes_per_group;     ///< m
  double damage;
  double compromised_frac;
  double detection_rate;
  double mean_loc_error;   ///< the localization scheme's benign error at m
  double threshold;
};

/// Fig. 9: re-deploys at each density m (threshold retrained per density,
/// which is the mechanism behind the paper's observed improvement).
std::vector<DensityPoint> run_density_sweep(
    const PipelineConfig& base_config, const std::vector<int>& densities,
    MetricKind metric, AttackClass attack_class,
    const std::vector<double>& damages,
    const std::vector<double>& compromised_fracs, double fp_budget);

}  // namespace lad
