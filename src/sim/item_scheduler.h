// The scenario engine's work-item executor: each kind's run_* builder
// schedules one closure per shard-owned work item; run() executes up to
// `jobs` of them concurrently, then splices each item's buffered rows into
// the shared result tables in schedule order — so every table CSV is
// byte-identical to the sequential run no matter how items interleave.
// jobs = 1 runs the closures serially in schedule order, reproducing the
// historical execution (including the order caches fill in) exactly.
//
// Exception contract: a closure that throws does not abort the batch.
// Rows from every item that completed still land, in schedule order; the
// first error (by schedule order, not wall clock — deterministic at any
// jobs count) is parked and rethrown exactly once at the end of run().
#pragma once

#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "sim/parallel.h"
#include "sim/scenario.h"
#include "util/csv.h"

namespace lad {

/// Starts a row tagged with the work item that produces it.
inline Table& tagged_row(ResultTable& t, long long item) {
  t.row_items.push_back(item);
  return t.table.new_row();
}

/// Where one work item's closure emits its rows: a private fragment table
/// per result table, spliced back by the scheduler.  util/csv.h stores
/// cells pre-formatted, so the splice is byte-exact.
class ItemSink {
 public:
  explicit ItemSink(std::vector<Table>& fragments) : fragments_(&fragments) {}

  /// Starts a row destined for result table `table` (index in the
  /// ScenarioResult's emission-order table list).
  Table& row(std::size_t table) { return (*fragments_)[table].new_row(); }

 private:
  std::vector<Table>* fragments_;
};

class ItemScheduler {
 public:
  ItemScheduler(ScenarioResult& result, int jobs)
      : result_(&result), jobs_(jobs) {}

  /// Schedules `work` for `item`; runs at run() time.  Closures must be
  /// independent across items (keyed rng, latched caches) and emit rows
  /// only through their sink.
  void add(long long item, std::function<void(ItemSink&)> work) {
    Entry entry;
    entry.item = item;
    entry.work = std::move(work);
    entry.fragments.reserve(result_->tables.size());
    for (const ResultTable& t : result_->tables) {
      entry.fragments.emplace_back(t.table.columns());
    }
    entries_.push_back(std::move(entry));
  }

  void run() {
    // Each closure catches into its own entry: an exception must not
    // escape into the parallel region (std::terminate under OpenMP) and
    // must not abort the other items' work.
    parallel_for_items(
        entries_.size(),
        [&](std::size_t i) {
          try {
            ItemSink sink(entries_[i].fragments);
            entries_[i].work(sink);
          } catch (...) {
            entries_[i].error = std::current_exception();
          }
        },
        jobs_);
    std::exception_ptr first_error;
    for (const Entry& entry : entries_) {
      if (entry.error) {
        if (!first_error) first_error = entry.error;
        continue;  // a failed item contributes no rows
      }
      for (std::size_t t = 0; t < entry.fragments.size(); ++t) {
        const Table& fragment = entry.fragments[t];
        for (std::size_t r = 0; r < fragment.num_rows(); ++r) {
          Table& row = tagged_row(result_->tables[t], entry.item);
          for (const std::string& cell : fragment.row(r)) row.add(cell);
        }
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  struct Entry {
    long long item = 0;
    std::function<void(ItemSink&)> work;
    std::vector<Table> fragments;  ///< parallel to the result's tables
    std::exception_ptr error;      ///< set when the closure threw
  };

  ScenarioResult* result_;
  int jobs_;
  std::vector<Entry> entries_;
};

}  // namespace lad
