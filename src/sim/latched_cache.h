// Thread-safe memo map with per-key in-flight latches: the first caller
// for a key builds the value outside the map lock while later callers for
// the same key block on the entry's latch — so two concurrent work items
// wanting the same pipeline build it exactly once, and items wanting
// different pipelines never serialize on each other.  Values are
// deterministic functions of the key (given the spec), so which item ends
// up building changes wall time only, never values.
//
// Exception contract: a builder that throws parks the exception in the
// entry; every caller already waiting on that entry rethrows it.  The
// failed entry is then removed from the map, so the NEXT get() for the
// same key runs the builder again — a transient failure (OOM, I/O) does
// not poison the key for the rest of the run.
#pragma once

#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lad {

template <class V>
class LatchedCache {
 public:
  /// Returns the cached value for `key`, invoking `build` (which must
  /// return std::unique_ptr<V>) on the first call for that key.
  template <class Build>
  V& get(const std::string& key, Build&& build) {
    std::shared_ptr<Entry> entry;
    bool builder = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        it = entries_.emplace(key, std::make_shared<Entry>()).first;
        builder = true;
      }
      entry = it->second;
    }
    if (builder) {
      try {
        entry->value = build();
      } catch (...) {
        entry->error = std::current_exception();
      }
      if (entry->error) {
        // Unpublish the failed entry before waking waiters: anyone who
        // already holds the shared_ptr rethrows below, anyone arriving
        // later re-runs the builder fresh.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == entry) entries_.erase(it);
      }
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        entry->ready = true;
      }
      entry->cv.notify_all();
    } else {
      std::unique_lock<std::mutex> lock(entry->mu);
      entry->cv.wait(lock, [&] { return entry->ready; });
    }
    if (entry->error) std::rethrow_exception(entry->error);
    return *entry->value;
  }

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;  ///< guarded by mu
    std::unique_ptr<V> value;    ///< written by the builder before ready
    std::exception_ptr error;    ///< ditto
  };

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
};

}  // namespace lad
