#include "sim/parallel.h"

#include <thread>

#ifdef LAD_HAVE_OPENMP
#include <omp.h>
#endif

#include "util/thread_pool.h"

namespace lad {

int default_parallelism() {
#ifdef LAD_HAVE_OPENMP
  return omp_get_max_threads();
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#endif
}

void parallel_for_items(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        int max_threads) {
  if (n == 0) return;
  const int threads = max_threads > 0 ? max_threads : default_parallelism();
  if (threads == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#ifdef LAD_HAVE_OPENMP
  // Exceptions must not escape an OpenMP region; capture and rethrow.
  std::exception_ptr first_error = nullptr;
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    try {
      fn(static_cast<std::size_t>(i));
    } catch (...) {
#pragma omp critical(lad_parallel_error)
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
#else
  ThreadPool pool(static_cast<std::size_t>(threads));
  pool.parallel_for(0, n, fn);
#endif
}

}  // namespace lad
