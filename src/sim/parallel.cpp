#include "sim/parallel.h"

#include <thread>

#ifdef LAD_HAVE_OPENMP
#include <omp.h>
#endif

#include "util/assert.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace lad {

namespace {

// Upper bound on any configured thread count: generous for real machines,
// small enough to catch garbage like LAD_THREADS=1e9 before it tries to
// spawn that many workers.
constexpr long kMaxThreads = 4096;

// The LAD_THREADS pin, or -1 when the variable is unset/empty.  Anything
// present but not an integer in [1, kMaxThreads] is a named error (from
// env_int): a mistyped pin silently falling back to all cores would
// defeat the reproducibility the override exists for.
int env_thread_override() {
  return static_cast<int>(env_int("LAD_THREADS", -1, 1, kMaxThreads));
}

}  // namespace

int default_parallelism() {
  const int pinned = env_thread_override();
  if (pinned > 0) return pinned;
#ifdef LAD_HAVE_OPENMP
  return omp_get_max_threads();
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#endif
}

void parallel_for_items(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        int max_threads) {
  // A negative count used to be silently treated as "use all cores" —
  // exactly what a caller computing threads from a subtraction would
  // least expect.  Reject it by name instead.
  LAD_REQUIRE_MSG(max_threads >= 0,
                  "parallel_for_items: max_threads must be >= 0 "
                  "(0 = default parallelism), got "
                      << max_threads);
  if (n == 0) return;
  const int threads = max_threads > 0 ? max_threads : default_parallelism();
  if (threads == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#ifdef LAD_HAVE_OPENMP
  // Exceptions must not escape an OpenMP region; capture and rethrow.
  std::exception_ptr first_error = nullptr;
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    try {
      fn(static_cast<std::size_t>(i));
    } catch (...) {
#pragma omp critical(lad_parallel_error)
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
#else
  // One process-wide pool, grown on demand and reused across calls: a
  // scenario sweep issues thousands of these loops, and spawning/joining
  // a fresh pool per call dominated the small passes.  The caller
  // participates in the loop, so `threads`-wide execution needs only
  // threads-1 pool workers, and nested loops (scenario jobs running
  // pipeline passes) cannot deadlock.
  ThreadPool& pool = ThreadPool::shared();
  pool.ensure_workers(static_cast<std::size_t>(threads) - 1);
  pool.parallel_for(0, n, fn, static_cast<std::size_t>(threads));
#endif
}

}  // namespace lad
