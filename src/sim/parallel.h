// Parallel-for over independent simulation work items.
//
// Uses OpenMP when compiled in (dynamic schedule: network generation and
// MLE search have variable cost per item), otherwise the process-wide
// shared ThreadPool (grown on demand, reused across calls, caller
// participates).  Work items must be independent (CP.2): callers write results into
// pre-sized slots indexed by the item id, so no synchronization is needed,
// and determinism comes from per-item RNG streams, never from scheduling.
#pragma once

#include <cstddef>
#include <functional>

namespace lad {

/// Runs fn(i) for i in [0, n) in parallel; blocks until done.
/// Set max_threads = 1 to force serial execution (tests use this to verify
/// scheduling-independence of results); 0 means default_parallelism().
/// Negative counts are a named error (lad::AssertionError), never a
/// silent "use all cores".
void parallel_for_items(std::size_t n, const std::function<void(std::size_t)>& fn,
                        int max_threads = 0);

/// Number of workers parallel_for_items would use by default: the
/// LAD_THREADS environment pin when set (an integer in [1, 4096]; any
/// other value present is a named error — benches and CI rely on the pin
/// for reproducible thread counts), otherwise the hardware/OpenMP count.
int default_parallelism();

}  // namespace lad
