#include "sim/pipeline.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <sstream>

#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/metric.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/aabb.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "loc/localizer.h"
#include "rng/rng.h"
#include "sim/parallel.h"
#include "util/assert.h"

namespace lad {

namespace {
// Domain separators for sub-stream derivation: every pass uses a distinct
// constant so re-running one pass never perturbs another.
constexpr std::uint64_t kStreamNetworks = 0x4e455457ull;  // "NETW"
constexpr std::uint64_t kStreamBenign = 0x42454e49ull;    // "BENI"
constexpr std::uint64_t kStreamAttack = 0x41545441ull;    // "ATTA"

/// Draws a victim node, optionally restricted to the deployment field.
std::size_t draw_victim(const Network& net, const PipelineConfig& cfg,
                        Rng& rng) {
  const Aabb field = cfg.deploy.field();
  for (int tries = 0; tries < 256; ++tries) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    if (!cfg.victims_in_field_only || field.contains(net.position(node))) {
      return node;
    }
  }
  // Essentially unreachable (>90% of nodes are in-field); fall back to any.
  return static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
}

/// Parallel fan-out over the flat (network, victim) index space: splits
/// [0, nnet*k) into contiguous chunks — several per thread, so uneven
/// greedy-taint/MLE cost load-balances on the pool's dynamic cursor — and
/// hands each chunk to `body` as per-network victim subranges that never
/// span a network boundary (observation batches and localizers are
/// per-network).  All rng consumption must have happened before the call;
/// bodies write results into disjoint flat slots, so any schedule yields
/// identical output.
void for_each_victim_span(
    std::size_t nnet, std::size_t k, int threads,
    const std::function<void(std::size_t ni, std::size_t v_lo,
                             std::size_t v_hi)>& body) {
  const std::size_t total = nnet * k;
  const int width = threads > 0 ? threads : default_parallelism();
  const std::size_t nchunks =
      std::min(total, static_cast<std::size_t>(width) * 4);
  const std::size_t chunk = (total + nchunks - 1) / nchunks;
  parallel_for_items(
      nchunks,
      [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(total, lo + chunk);
        std::size_t f = lo;
        while (f < hi) {
          const std::size_t ni = f / k;
          const std::size_t v_hi = std::min(hi - ni * k, k);
          body(ni, f - ni * k, v_hi);
          f = ni * k + v_hi;
        }
      },
      threads);
}

}  // namespace

LocalizerFactory beaconless_mle_factory(const DeploymentModel& model,
                                        const GzTable& gz) {
  return [&model, &gz](std::uint64_t) {
    return std::make_unique<BeaconlessMleLocalizer>(model, gz);
  };
}

namespace {

/// Builds the deployment reality from the knowledge model and the
/// configured mismatch (Section 8 future work).
DeploymentModel make_actual_model(const DeploymentModel& knowledge,
                                  const PipelineConfig& cfg) {
  DeploymentConfig actual_cfg = cfg.deploy;
  if (cfg.actual_sigma > 0.0) actual_cfg.sigma = cfg.actual_sigma;
  std::vector<Vec2> points = knowledge.deployment_points();
  if (cfg.deployment_jitter > 0.0) {
    Rng rng = Rng::stream(cfg.seed ^ 0x4a495454ull /*"JITT"*/, 0);
    for (Vec2& p : points) {
      p.x += rng.normal(0.0, cfg.deployment_jitter);
      p.y += rng.normal(0.0, cfg.deployment_jitter);
    }
  }
  return DeploymentModel(actual_cfg, std::move(points));
}

}  // namespace

Pipeline::Pipeline(const PipelineConfig& config)
    : config_(config),
      model_(DeploymentModel::make(config.shape, config.deploy,
                                   config.seed ^ 0x53485045ull /*"SHPE"*/)),
      actual_model_(make_actual_model(model_, config)),
      gz_({config.deploy.radio_range, config.deploy.sigma}, config.gz_omega) {
  LAD_REQUIRE_MSG(config.networks > 0, "need at least one network");
  LAD_REQUIRE_MSG(config.victims_per_network > 0,
                  "need at least one victim per network");
  networks_.resize(static_cast<std::size_t>(config.networks));
  parallel_for_items(
      networks_.size(),
      [this](std::size_t i) {
        Rng rng = Rng::stream(config_.seed ^ kStreamNetworks, i);
        networks_[i] = std::make_unique<Network>(actual_model_, rng);
      },
      config_.threads);
}

std::vector<std::unique_ptr<Localizer>> Pipeline::benign_localizers(
    const LocalizerFactory& factory, std::vector<std::size_t>& victims) {
  const std::size_t nnet = networks_.size();
  const std::size_t k = static_cast<std::size_t>(config_.victims_per_network);

  // Sequential rng phase: replay every network's historical stream order
  // — localizer seed first, then the k victim draws — so the fan-out
  // below cannot perturb any stream regardless of schedule.
  std::vector<std::uint64_t> loc_seeds(nnet);
  victims.resize(nnet * k);
  for (std::size_t ni = 0; ni < nnet; ++ni) {
    Rng rng = Rng::stream(config_.seed ^ kStreamBenign, ni);
    loc_seeds[ni] = rng.bits();
    for (std::size_t v = 0; v < k; ++v) {
      victims[ni * k + v] = draw_victim(*networks_[ni], config_, rng);
    }
  }

  // One localizer per network, prepared in parallel (hop-flooding schemes
  // do their per-network heavy lifting in prepare()).
  std::vector<std::unique_ptr<Localizer>> localizers(nnet);
  for (std::size_t ni = 0; ni < nnet; ++ni) {
    localizers[ni] = factory(loc_seeds[ni]);
  }
  parallel_for_items(
      nnet, [&](std::size_t ni) { localizers[ni]->prepare(*networks_[ni]); },
      config_.threads);
  return localizers;
}

std::map<MetricKind, std::vector<double>> Pipeline::benign_scores(
    const LocalizerFactory& factory, const std::vector<MetricKind>& metrics,
    std::vector<int>* victim_groups) {
  const std::size_t nnet = networks_.size();
  const std::size_t k = static_cast<std::size_t>(config_.victims_per_network);
  const int m = config_.deploy.nodes_per_group;

  std::vector<std::unique_ptr<Metric>> metric_impls;
  for (MetricKind kind : metrics) metric_impls.push_back(make_metric(kind));

  // scores[metric][network * k + victim]
  std::vector<std::vector<double>> scores(
      metrics.size(), std::vector<double>(nnet * k, 0.0));
  if (victim_groups != nullptr) victim_groups->assign(nnet * k, 0);

  std::vector<std::size_t> victims;
  std::vector<std::unique_ptr<Localizer>> localizers =
      benign_localizers(factory, victims);

  auto score_span = [&](std::size_t ni, std::size_t v_lo, std::size_t v_hi) {
    const Network& net = *networks_[ni];
    Localizer& localizer = *localizers[ni];
    ObservationBatch batch;
    net.observe_many(std::span<const std::size_t>(
                         victims.data() + ni * k + v_lo, v_hi - v_lo),
                     batch);
    for (std::size_t v = v_lo; v < v_hi; ++v) {
      const Observation obs = batch.to_observation(v - v_lo);
      const Vec2 le = localizer.localize(net, victims[ni * k + v]);
      const ExpectedObservation mu = model_.expected_observation(le, gz_);
      for (std::size_t mi = 0; mi < metric_impls.size(); ++mi) {
        scores[mi][ni * k + v] = metric_impls[mi]->score(obs, mu, m);
      }
      if (victim_groups != nullptr) {
        (*victim_groups)[ni * k + v] =
            model_.nearest_group(net.position(victims[ni * k + v]));
      }
    }
  };

  if (concurrent_localize_all(localizers)) {
    // Flat per-victim fan-out: parallelism scales with nnet*k, not nnet.
    for_each_victim_span(nnet, k, config_.threads, score_span);
  } else {
    // Stateful localize (call-order-dependent): keep the per-network
    // fan-out so each network's victims are localized in order.
    parallel_for_items(
        nnet, [&](std::size_t ni) { score_span(ni, 0, k); }, config_.threads);
  }

  std::map<MetricKind, std::vector<double>> out;
  for (std::size_t mi = 0; mi < metrics.size(); ++mi) {
    out[metrics[mi]] = std::move(scores[mi]);
  }
  return out;
}

bool Pipeline::concurrent_localize_all(
    const std::vector<std::unique_ptr<Localizer>>& localizers) {
  for (const auto& l : localizers) {
    if (!l->concurrent_localize()) return false;
  }
  return true;
}

void Pipeline::draw_attack_victims(const AttackSpec& spec,
                                   std::vector<std::size_t>& victims,
                                   std::vector<Vec2>& les) {
  const std::size_t nnet = networks_.size();
  const std::size_t k = static_cast<std::size_t>(config_.victims_per_network);
  const Aabb field = config_.deploy.field();
  // The attack sub-stream is independent of the benign pass but *also*
  // independent of the spec, so different (D, x) settings see the same
  // victims - variance reduction that matches the paper's sweeps.
  // Historical call order per network: victim then Le, per victim.
  victims.resize(nnet * k);
  les.resize(nnet * k);
  for (std::size_t ni = 0; ni < nnet; ++ni) {
    const Network& net = *networks_[ni];
    Rng rng = Rng::stream(config_.seed ^ kStreamAttack, ni);
    for (std::size_t v = 0; v < k; ++v) {
      // Step 1 (7.1): random victim at La.
      victims[ni * k + v] = draw_victim(net, config_, rng);
      // Step 2: plant Le with |Le - La| = D.
      les[ni * k + v] = displaced_location(net.position(victims[ni * k + v]),
                                           spec.damage, field, rng);
    }
  }
}

std::vector<double> Pipeline::attack_scores(const AttackSpec& spec,
                                            std::vector<int>* victim_groups) {
  LAD_REQUIRE_MSG(spec.damage >= 0, "damage must be non-negative");
  LAD_REQUIRE_MSG(spec.compromised_frac >= 0 && spec.compromised_frac <= 1,
                  "compromised fraction must be in [0,1]");
  const std::size_t nnet = networks_.size();
  const std::size_t k = static_cast<std::size_t>(config_.victims_per_network);
  const int m = config_.deploy.nodes_per_group;
  const std::unique_ptr<Metric> metric = make_metric(spec.metric);

  std::vector<double> scores(nnet * k, 0.0);
  if (victim_groups != nullptr) victim_groups->assign(nnet * k, 0);

  std::vector<std::size_t> victims;
  std::vector<Vec2> les;
  draw_attack_victims(spec, victims, les);

  // No localizer in this pass, so the flat fan-out is unconditional.
  for_each_victim_span(
      nnet, k, config_.threads,
      [&](std::size_t ni, std::size_t v_lo, std::size_t v_hi) {
        const Network& net = *networks_[ni];
        ObservationBatch batch;
        net.observe_many(std::span<const std::size_t>(
                             victims.data() + ni * k + v_lo, v_hi - v_lo),
                         batch);
        for (std::size_t v = v_lo; v < v_hi; ++v) {
          const Observation a = batch.to_observation(v - v_lo);
          const ExpectedObservation mu =
              model_.expected_observation(les[ni * k + v], gz_);
          // Step 3: tainted observation minimizing the metric.
          const int budget = static_cast<int>(
              std::lround(spec.compromised_frac * a.total()));
          const TaintResult taint =
              greedy_taint(a, mu, m, spec.metric, spec.attack_class, budget);
          scores[ni * k + v] = metric->score(taint.tainted, mu, m);
          if (victim_groups != nullptr) {
            (*victim_groups)[ni * k + v] =
                model_.nearest_group(net.position(victims[ni * k + v]));
          }
        }
      });
  return scores;
}

std::map<MetricKind, std::vector<double>> Pipeline::attack_scores_cross(
    const AttackSpec& spec, const std::vector<MetricKind>& scorers) {
  LAD_REQUIRE_MSG(!scorers.empty(), "need at least one scoring metric");
  const std::size_t nnet = networks_.size();
  const std::size_t k = static_cast<std::size_t>(config_.victims_per_network);
  const int m = config_.deploy.nodes_per_group;

  std::vector<std::unique_ptr<Metric>> scorer_impls;
  for (MetricKind kind : scorers) scorer_impls.push_back(make_metric(kind));
  std::vector<std::vector<double>> scores(
      scorers.size(), std::vector<double>(nnet * k, 0.0));

  std::vector<std::size_t> victims;
  std::vector<Vec2> les;
  draw_attack_victims(spec, victims, les);

  for_each_victim_span(
      nnet, k, config_.threads,
      [&](std::size_t ni, std::size_t v_lo, std::size_t v_hi) {
        const Network& net = *networks_[ni];
        ObservationBatch batch;
        net.observe_many(std::span<const std::size_t>(
                             victims.data() + ni * k + v_lo, v_hi - v_lo),
                         batch);
        for (std::size_t v = v_lo; v < v_hi; ++v) {
          const Observation a = batch.to_observation(v - v_lo);
          const ExpectedObservation mu =
              model_.expected_observation(les[ni * k + v], gz_);
          const int budget = static_cast<int>(
              std::lround(spec.compromised_frac * a.total()));
          const TaintResult taint =
              greedy_taint(a, mu, m, spec.metric, spec.attack_class, budget);
          for (std::size_t si = 0; si < scorer_impls.size(); ++si) {
            scores[si][ni * k + v] =
                scorer_impls[si]->score(taint.tainted, mu, m);
          }
        }
      });

  std::map<MetricKind, std::vector<double>> out;
  for (std::size_t si = 0; si < scorers.size(); ++si) {
    out[scorers[si]] = std::move(scores[si]);
  }
  return out;
}

DetectorBundle Pipeline::train_bundle(const LocalizerFactory& factory,
                                      const std::vector<MetricKind>& metrics,
                                      std::vector<double> taus,
                                      double active_tau,
                                      const GroupTrainingSpec& grouped) {
  LAD_REQUIRE_MSG(!metrics.empty(), "need at least one metric to train");
  LAD_REQUIRE_MSG(grouped.min_samples >= 1,
                  "per-group training needs min_samples >= 1");
  taus.push_back(active_tau);
  std::sort(taus.begin(), taus.end());
  taus.erase(std::unique(taus.begin(), taus.end()), taus.end());
  std::vector<int> victim_groups;
  auto benign = benign_scores(factory, metrics,
                              grouped.per_group ? &victim_groups : nullptr);
  GroupTrainingOptions options;
  if (grouped.per_group) {
    options.groups = boundary_groups(model_);
    options.min_samples = static_cast<std::size_t>(grouped.min_samples);
  }
  std::vector<DetectorSpec> specs;
  specs.reserve(metrics.size());
  for (MetricKind metric : metrics) {
    std::vector<double>& scores = benign.at(metric);
    DetectorSpec spec;
    if (grouped.per_group) {
      // The pooled table first (it defines the global fallback threshold),
      // then one override row per boundary group - trained on its bucket,
      // or a recorded fallback when the bucket misses the floor.
      spec = detector_spec_from_training(train_thresholds(metric, scores, taus),
                                         active_tau);
      std::size_t trained = 0;
      for (const GroupTrainingResult& r : train_group_thresholds(
               metric, scores, victim_groups, options, active_tau,
               spec.threshold)) {
        spec.group_overrides.push_back(
            {r.group, r.training.threshold,
             r.fallback ? GroupOverrideSource::kFallback
                        : GroupOverrideSource::kTrained,
             r.training.num_samples, r.training.score_stats.mean(),
             r.training.score_stats.stddev()});
        if (!r.fallback) ++trained;
      }
      std::ostringstream provenance;
      provenance << "boundary=" << options.groups.size() << " trained="
                 << trained << " fallback="
                 << options.groups.size() - trained << " min_samples="
                 << options.min_samples;
      spec.extensions.emplace_back("group-training", provenance.str());
    } else {
      spec = detector_spec_from_training(
          train_thresholds(metric, std::move(scores), taus), active_tau);
    }
    specs.push_back(std::move(spec));
  }
  return make_bundle(model_, config_.gz_omega, std::move(specs));
}

double Pipeline::mean_localization_error(const LocalizerFactory& factory) {
  const std::size_t nnet = networks_.size();
  const std::size_t k = static_cast<std::size_t>(config_.victims_per_network);

  // Same sub-stream as the benign pass, so the measured victims match the
  // scored ones.
  std::vector<std::size_t> victims;
  std::vector<std::unique_ptr<Localizer>> localizers =
      benign_localizers(factory, victims);

  std::vector<double> dists(nnet * k, 0.0);
  auto measure_span = [&](std::size_t ni, std::size_t v_lo, std::size_t v_hi) {
    const Network& net = *networks_[ni];
    Localizer& localizer = *localizers[ni];
    for (std::size_t v = v_lo; v < v_hi; ++v) {
      const std::size_t node = victims[ni * k + v];
      dists[ni * k + v] = distance(localizer.localize(net, node),
                                   net.position(node));
    }
  };
  if (concurrent_localize_all(localizers)) {
    for_each_victim_span(nnet, k, config_.threads, measure_span);
  } else {
    parallel_for_items(
        nnet, [&](std::size_t ni) { measure_span(ni, 0, k); },
        config_.threads);
  }

  // Reduce in the historical order (victims within a network, then
  // networks) so the float-addition order — and hence the reported mean —
  // is bit-identical to the sequential pass.
  double sum = 0.0;
  for (std::size_t ni = 0; ni < nnet; ++ni) {
    double total = 0.0;
    for (std::size_t v = 0; v < k; ++v) total += dists[ni * k + v];
    sum += total / static_cast<double>(k);
  }
  return sum / static_cast<double>(nnet);
}

}  // namespace lad
