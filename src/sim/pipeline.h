// The Monte-Carlo sample pipeline implementing Section 7.1's methodology:
//
//  benign samples:  deploy a network, pick sensors, let the localization
//                   scheme estimate Le, compute the metric score of the
//                   (untainted) observation against Le;
//  attack samples:  pick sensors, plant Le at distance D (the D-anomaly),
//                   craft the tainted observation with the greedy
//                   metric-minimizing procedure for the attack class and
//                   compromise budget, score the tainted observation.
//
// Networks are generated once per pipeline (deterministically from the
// seed) and shared read-only across threads; each sampling pass derives
// per-network Philox sub-streams, so results do not depend on thread count
// or scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "attack/adversary.h"
#include "core/metric.h"
#include "core/serialize.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "geom/vec2.h"
#include "loc/localizer.h"

namespace lad {

struct PipelineConfig {
  DeploymentConfig deploy;
  int networks = 10;             ///< deployed networks in the pool
  int victims_per_network = 200; ///< sensors sampled per network per pass
  std::uint64_t seed = 1;        ///< master seed (everything derives from it)
  int gz_omega = 256;            ///< g(z) lookup-table resolution
  int threads = 0;               ///< 0 = default parallelism
  /// Sample victims among sensors that landed inside the deployment field.
  /// Gaussian scatter puts ~5% of boundary-group nodes outside the
  /// 1000x1000 plane where neighborhoods are sparse and a Dec-Bounded
  /// attacker can mimic any expected observation; the paper's evaluation
  /// (100% DR at D=160) is consistent with in-field victims only.
  bool victims_in_field_only = true;

  /// Deployment-point layout (Section 3.1 extensions): grid (the paper's
  /// evaluation), hexagonal, or random-but-known points.
  DeploymentShape shape = DeploymentShape::kGrid;

  // --- deployment-knowledge mismatch (the paper's Section 8 future work:
  //     "the accuracy of the deployment knowledge model") -----------------
  /// Actual scatter std-dev used when deploying networks; 0 means "equal to
  /// the knowledge model's sigma" (no mismatch).  Detection always uses the
  /// knowledge sigma.
  double actual_sigma = 0.0;
  /// Std-dev of a Gaussian offset applied to the *actual* deployment points
  /// (e.g. the airplane released groups off-target); the knowledge model
  /// keeps the nominal points.
  double deployment_jitter = 0.0;
};

/// Creates a per-network localizer; `seed` varies per network so stochastic
/// localizers (truth+noise) stay deterministic and uncorrelated.
using LocalizerFactory =
    std::function<std::unique_ptr<Localizer>(std::uint64_t seed)>;

/// A factory for the paper's default scheme (beaconless MLE, ref. [8]).
LocalizerFactory beaconless_mle_factory(const DeploymentModel& model,
                                        const GzTable& gz);

struct AttackSpec {
  MetricKind metric = MetricKind::kDiff;
  AttackClass attack_class = AttackClass::kDecBounded;
  double damage = 120.0;          ///< D: |Le - La|
  double compromised_frac = 0.1;  ///< x as a fraction of the neighborhood
};

/// Per-group threshold training knobs for train_bundle.
struct GroupTrainingSpec {
  bool per_group = false;  ///< fit boundary groups separately
  /// Benign-bucket floor below which a group falls back to the global
  /// threshold (recorded as such in the bundle's provenance rows).
  int min_samples = 100;
};

class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config);

  const PipelineConfig& config() const { return config_; }
  /// The knowledge model: what sensors believe about the deployment (and
  /// what the detector/localizer use).
  const DeploymentModel& model() const { return model_; }
  /// The actual model networks were deployed with; differs from model()
  /// only when actual_sigma / deployment_jitter configure a mismatch.
  const DeploymentModel& actual_model() const { return actual_model_; }
  const GzTable& gz() const { return gz_; }
  const std::vector<std::unique_ptr<Network>>& networks() const {
    return networks_;
  }

  /// Benign score samples for each requested metric (one pass: the
  /// localization estimate is shared across metrics, as in training).
  /// `victim_groups` (optional) receives each sample's victim group - the
  /// knowledge model's nearest deployment group to the victim's true
  /// position - index-aligned with every metric's score vector.  Filling
  /// it never perturbs the rng stream, so scores are identical either way.
  std::map<MetricKind, std::vector<double>> benign_scores(
      const LocalizerFactory& factory, const std::vector<MetricKind>& metrics,
      std::vector<int>* victim_groups = nullptr);

  /// Attacked score samples for one attack specification.  As in
  /// benign_scores, `victim_groups` optionally receives the per-sample
  /// victim groups without perturbing the stream.
  std::vector<double> attack_scores(const AttackSpec& spec,
                                    std::vector<int>* victim_groups = nullptr);

  /// Cross-scoring: the taint is crafted to minimize spec.metric, but each
  /// tainted observation is scored by every metric in `scorers` (same
  /// victims, index-aligned vectors).  This is what the fusion ablation
  /// needs: an attacker commits to one metric, the defense runs several.
  std::map<MetricKind, std::vector<double>> attack_scores_cross(
      const AttackSpec& spec, const std::vector<MetricKind>& scorers);

  /// Mean localization error of a scheme over the benign pass (diagnostic;
  /// drives the Fig. 9 density discussion).
  double mean_localization_error(const LocalizerFactory& factory);

  /// Trains one detector section per metric on a single shared benign pass
  /// (the localization estimate is shared across metrics, as in training)
  /// and captures them in a bundle: the unit of deployment the CLI writes
  /// and RuntimeDetector materializes.  `taus` is the threshold table
  /// (deduplicated, sorted; `active_tau` is added when missing) and
  /// `active_tau` selects each section's active threshold.
  ///
  /// With `grouped.per_group`, the same benign pass is additionally
  /// bucketed by victim group and every boundary group (see
  /// boundary_groups) is fitted separately at `active_tau`; the resulting
  /// override rows - trained, or recorded fallbacks to the global
  /// threshold for buckets under `grouped.min_samples` - land in every
  /// section, fusion components included.
  DetectorBundle train_bundle(const LocalizerFactory& factory,
                              const std::vector<MetricKind>& metrics,
                              std::vector<double> taus, double active_tau,
                              const GroupTrainingSpec& grouped = {});

 private:
  /// The shared sequential rng phase of the benign-side passes: replays
  /// every network's historical stream order (localizer seed, then the k
  /// victim draws, filling `victims[ni*k + v]`), builds one localizer per
  /// network, and runs prepare() in parallel.  After this returns, no pass
  /// rng remains to be consumed — the per-victim fan-out is free to run
  /// in any schedule.
  std::vector<std::unique_ptr<Localizer>> benign_localizers(
      const LocalizerFactory& factory, std::vector<std::size_t>& victims);

  /// The attack passes' sequential rng phase: victim and planted-Le draws
  /// in the historical per-network order.
  void draw_attack_victims(const AttackSpec& spec,
                           std::vector<std::size_t>& victims,
                           std::vector<Vec2>& les);

  /// True when every per-network localizer supports order-independent
  /// concurrent localize() — the gate for the flat per-victim fan-out.
  static bool concurrent_localize_all(
      const std::vector<std::unique_ptr<Localizer>>& localizers);

  PipelineConfig config_;
  DeploymentModel model_;         ///< knowledge model
  DeploymentModel actual_model_;  ///< deployment reality
  GzTable gz_;
  std::vector<std::unique_ptr<Network>> networks_;
};

}  // namespace lad
