// ScenarioSpec parsing/validation, overrides, shard syntax, the localizer
// registry, and tagged-CSV persistence.  The work-item expansion and
// execution live in scenario_runner.cpp.
#include "sim/scenario.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "attack/adversary.h"
#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "loc/amorphous.h"
#include "loc/dvhop.h"
#include "loc/truth_noise.h"
#include "loc/weighted_centroid.h"
#include "sim/pipeline.h"
#include "util/assert.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/kvconfig.h"
#include "util/string_util.h"

namespace lad {

namespace {

constexpr std::uint64_t kDefaultScenarioSeed = 20050404;  // IPDPS 2005 opened

const std::vector<std::string>& common_sections() {
  static const std::vector<std::string> sections = {
      "scenario", "pipeline", "quick", "sweep", "detector", "run", "output"};
  return sections;
}

/// The kind-specific section each experiment kind may carry (nullptr =
/// none).  Sections belonging to a different kind are rejected so dead
/// configuration cannot hide in a spec.
const char* kind_section(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kDeploymentPdf: return "pdf";
    case ExperimentKind::kGzAccuracy: return "gz";
    case ExperimentKind::kCorrection: return "correction";
    case ExperimentKind::kEchoComparison: return "echo";
    case ExperimentKind::kMmseVulnerability: return "mmse";
    case ExperimentKind::kThresholdSensitivity: return "threshold";
    case ExperimentKind::kTimeEvolving: return "evolve";
    case ExperimentKind::kInNetwork: return "coop";
    default: return nullptr;
  }
}

int get_positive_int(const KvConfig::Section& s, const std::string& key,
                     long long def) {
  const long long v = s.get_int(key, def);
  LAD_REQUIRE_MSG(v > 0, "[" << s.name() << "] " << key
                             << " must be positive, got " << v);
  return static_cast<int>(v);
}

std::vector<MetricKind> parse_metrics(const KvConfig::Section& s) {
  std::vector<MetricKind> out;
  for (const std::string& name : s.get_string_list("metrics", {"diff"})) {
    out.push_back(metric_from_name(name));
  }
  return out;
}

std::vector<AttackClass> parse_attacks(const KvConfig::Section& s) {
  std::vector<AttackClass> out;
  for (const std::string& name :
       s.get_string_list("attacks", {"dec-bounded"})) {
    out.push_back(attack_class_from_name(name));
  }
  return out;
}

std::vector<int> to_int_vector(const std::vector<long long>& v) {
  return std::vector<int>(v.begin(), v.end());
}

void require_non_empty(const std::vector<double>& v, const char* what) {
  LAD_REQUIRE_MSG(!v.empty(), "sweep list '" << what << "' is empty");
}

}  // namespace

const char* experiment_kind_name(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kRoc: return "roc";
    case ExperimentKind::kDrSweep: return "dr-sweep";
    case ExperimentKind::kDensitySweep: return "density-sweep";
    case ExperimentKind::kDeploymentPdf: return "deployment-pdf";
    case ExperimentKind::kGzAccuracy: return "gz-accuracy";
    case ExperimentKind::kCorrection: return "correction";
    case ExperimentKind::kEchoComparison: return "echo-comparison";
    case ExperimentKind::kMetricFusion: return "metric-fusion";
    case ExperimentKind::kMmseVulnerability: return "mmse-vulnerability";
    case ExperimentKind::kThresholdSensitivity: return "threshold-sensitivity";
    case ExperimentKind::kTimeEvolving: return "time-evolving";
    case ExperimentKind::kInNetwork: return "in-network";
  }
  return "?";
}

ExperimentKind experiment_kind_from_name(const std::string& name) {
  const std::string n = to_lower(name);
  for (ExperimentKind kind :
       {ExperimentKind::kRoc, ExperimentKind::kDrSweep,
        ExperimentKind::kDensitySweep, ExperimentKind::kDeploymentPdf,
        ExperimentKind::kGzAccuracy, ExperimentKind::kCorrection,
        ExperimentKind::kEchoComparison, ExperimentKind::kMetricFusion,
        ExperimentKind::kMmseVulnerability,
        ExperimentKind::kThresholdSensitivity, ExperimentKind::kTimeEvolving,
        ExperimentKind::kInNetwork}) {
    if (n == experiment_kind_name(kind)) return kind;
  }
  LAD_REQUIRE_MSG(false, "unknown experiment kind: '" << name << "'");
  return ExperimentKind::kDrSweep;  // unreachable
}

const char* group_threshold_mode_name(GroupThresholdMode mode) {
  switch (mode) {
    case GroupThresholdMode::kGlobal: return "global";
    case GroupThresholdMode::kPerGroup: return "per_group";
  }
  return "?";
}

GroupThresholdMode group_threshold_mode_from_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "global") return GroupThresholdMode::kGlobal;
  if (n == "per_group") return GroupThresholdMode::kPerGroup;
  LAD_REQUIRE_MSG(false, "unknown group-threshold mode '"
                             << name << "' (known: global, per_group)");
  return GroupThresholdMode::kGlobal;  // unreachable
}

bool is_known_localizer(const std::string& name) {
  if (name == "beaconless-mle" || name == "weighted-centroid" ||
      name == "dv-hop" || name == "amorphous") {
    return true;
  }
  if (name == "truth-noise" || starts_with(name, "truth-noise:")) {
    if (name == "truth-noise") return true;
    try {
      return parse_double(name.substr(std::string("truth-noise:").size())) >=
             0.0;
    } catch (const AssertionError&) {
      return false;
    }
  }
  return false;
}

LocalizerFactory localizer_factory_from_name(const std::string& name,
                                             const Pipeline& pipeline) {
  LAD_REQUIRE_MSG(is_known_localizer(name),
                  "unknown localizer '" << name
                                        << "' (known: beaconless-mle, "
                                           "weighted-centroid, dv-hop, "
                                           "amorphous, truth-noise:<sigma>)");
  if (name == "beaconless-mle") {
    return beaconless_mle_factory(pipeline.model(), pipeline.gz());
  }
  if (name == "weighted-centroid") {
    const DeploymentModel& model = pipeline.model();
    return [&model](std::uint64_t) {
      return std::make_unique<WeightedCentroidLocalizer>(model);
    };
  }
  if (name == "dv-hop") {
    return [](std::uint64_t) { return std::make_unique<DvHopLocalizer>(4, 4); };
  }
  if (name == "amorphous") {
    return [](std::uint64_t) {
      return std::make_unique<AmorphousLocalizer>(4, 4);
    };
  }
  double sigma = 10.0;
  if (starts_with(name, "truth-noise:")) {
    sigma = parse_double(name.substr(std::string("truth-noise:").size()));
  }
  return [sigma](std::uint64_t seed) {
    return std::make_unique<TruthNoiseLocalizer>(sigma, seed);
  };
}

ScenarioSpec ScenarioSpec::from_config(const KvConfig& config) {
  ScenarioSpec spec;
  const KvConfig::Section& sc = config.section("scenario");
  spec.name = sc.get_string("name", "");
  LAD_REQUIRE_MSG(!spec.name.empty(),
                  config.origin() << ": [scenario] name is required");
  spec.title = sc.get_string("title", spec.name);
  spec.note = sc.get_string("note", "");
  const std::string kind_name = sc.get_string("experiment", "");
  LAD_REQUIRE_MSG(!kind_name.empty(),
                  config.origin() << ": [scenario] experiment is required");
  spec.kind = experiment_kind_from_name(kind_name);

  // Section allowlist is kind-aware: a [gz] section in a dr-sweep spec is
  // dead configuration and almost certainly a mistake.
  const char* own_section = kind_section(spec.kind);
  for (const KvConfig::Section& s : config.sections()) {
    const auto& common = common_sections();
    if (std::find(common.begin(), common.end(), s.name()) != common.end()) {
      continue;
    }
    if (own_section != nullptr && s.name() == own_section) continue;
    for (ExperimentKind k :
         {ExperimentKind::kDeploymentPdf, ExperimentKind::kGzAccuracy,
          ExperimentKind::kCorrection, ExperimentKind::kEchoComparison,
          ExperimentKind::kMmseVulnerability,
          ExperimentKind::kThresholdSensitivity,
          ExperimentKind::kTimeEvolving, ExperimentKind::kInNetwork}) {
      LAD_REQUIRE_MSG(s.name() != kind_section(k),
                      config.origin()
                          << ": section [" << s.name()
                          << "] is only valid for experiment = "
                          << experiment_kind_name(k) << " (this is "
                          << experiment_kind_name(spec.kind) << ")");
    }
    LAD_REQUIRE_MSG(false, config.origin() << ": unknown section ["
                                           << s.name() << "]");
  }

  spec.pipeline.seed = kDefaultScenarioSeed;
  if (const KvConfig::Section* p = config.find_section("pipeline")) {
    spec.pipeline.seed = static_cast<std::uint64_t>(
        p->get_int("seed", static_cast<long long>(kDefaultScenarioSeed)));
    spec.pipeline.networks = get_positive_int(*p, "networks", 10);
    spec.pipeline.victims_per_network = get_positive_int(*p, "victims", 200);
    spec.pipeline.deploy.nodes_per_group = get_positive_int(*p, "m", 300);
    spec.pipeline.deploy.radio_range = p->get_double("r", 50.0);
    spec.pipeline.deploy.sigma = p->get_double("sigma", 50.0);
    spec.pipeline.deploy.field_side = p->get_double("field", 1000.0);
    spec.pipeline.deploy.grid_nx = get_positive_int(*p, "grid_nx", 10);
    spec.pipeline.deploy.grid_ny = get_positive_int(*p, "grid_ny", 10);
    spec.pipeline.gz_omega = get_positive_int(*p, "gz_omega", 256);
    spec.pipeline.shape =
        deployment_shape_from_name(p->get_string("shape", "grid"));
    spec.pipeline.victims_in_field_only =
        p->get_bool("in_field_victims", true);
    spec.pipeline.deploy.validate();
  }

  if (const KvConfig::Section* q = config.find_section("quick")) {
    if (q->has("networks")) spec.quick.networks = get_positive_int(*q, "networks", 3);
    if (q->has("victims")) spec.quick.victims = get_positive_int(*q, "victims", 60);
    if (q->has("m")) spec.quick.m = get_positive_int(*q, "m", 60);
    if (q->has("trials")) spec.quick.trials = get_positive_int(*q, "trials", 60);
    if (q->has("dvhop_trials")) {
      spec.quick.dvhop_trials = get_positive_int(*q, "dvhop_trials", 30);
    }
    spec.quick.densities = to_int_vector(q->get_int_list("densities", {}));
  }

  spec.shapes = {spec.pipeline.shape};
  spec.localizers = {"beaconless-mle"};
  spec.metrics = {MetricKind::kDiff};
  spec.attacks = {AttackClass::kDecBounded};
  spec.damages = {120.0};
  spec.compromised = {0.10};
  spec.actual_sigmas = {0.0};
  spec.jitters = {0.0};
  if (const KvConfig::Section* s = config.find_section("sweep")) {
    if (s->has("shapes")) {
      spec.shapes.clear();
      for (const std::string& n : s->get_string_list("shapes", {})) {
        spec.shapes.push_back(deployment_shape_from_name(n));
      }
      LAD_REQUIRE_MSG(!spec.shapes.empty(), "sweep list 'shapes' is empty");
    }
    spec.localizers = s->get_string_list("localizers", spec.localizers);
    LAD_REQUIRE_MSG(!spec.localizers.empty(),
                    "sweep list 'localizers' is empty");
    for (const std::string& n : spec.localizers) {
      LAD_REQUIRE_MSG(is_known_localizer(n), "unknown localizer '" << n << "'");
    }
    if (s->has("metrics")) spec.metrics = parse_metrics(*s);
    LAD_REQUIRE_MSG(!spec.metrics.empty(), "sweep list 'metrics' is empty");
    if (s->has("attacks")) spec.attacks = parse_attacks(*s);
    LAD_REQUIRE_MSG(!spec.attacks.empty(), "sweep list 'attacks' is empty");
    spec.damages = s->get_double_list("damages", spec.damages);
    require_non_empty(spec.damages, "damages");
    spec.compromised = s->get_double_list("compromised", spec.compromised);
    require_non_empty(spec.compromised, "compromised");
    spec.densities = to_int_vector(s->get_int_list("densities", {}));
    spec.actual_sigmas = s->get_double_list("actual_sigmas", spec.actual_sigmas);
    require_non_empty(spec.actual_sigmas, "actual_sigmas");
    spec.jitters = s->get_double_list("jitters", spec.jitters);
    require_non_empty(spec.jitters, "jitters");
    const std::string coupling = s->get_string("mismatch_coupling", "axes");
    if (coupling == "axes") {
      spec.mismatch_coupling = MismatchCoupling::kAxes;
    } else if (coupling == "product") {
      spec.mismatch_coupling = MismatchCoupling::kProduct;
    } else {
      LAD_REQUIRE_MSG(false, "[sweep] mismatch_coupling must be 'axes' or "
                             "'product', got '"
                                 << coupling << "'");
    }
    if (s->has("group_thresholds")) {
      // Only dr-sweep consumes this axis; anywhere else even a single
      // value would be dead configuration (fail-fast contract).
      LAD_REQUIRE_MSG(spec.kind == ExperimentKind::kDrSweep,
                      "[sweep] group_thresholds is only swept by dr-sweep "
                      "(this is " << experiment_kind_name(spec.kind) << ")");
      spec.group_threshold_modes.clear();
      for (const std::string& n : s->get_string_list("group_thresholds", {})) {
        spec.group_threshold_modes.push_back(
            group_threshold_mode_from_name(n));
      }
      LAD_REQUIRE_MSG(!spec.group_threshold_modes.empty(),
                      "sweep list 'group_thresholds' is empty");
    }
  }
  if (spec.kind == ExperimentKind::kDensitySweep) {
    LAD_REQUIRE_MSG(!spec.densities.empty(),
                    "density-sweep needs a non-empty [sweep] densities list");
  } else {
    LAD_REQUIRE_MSG(spec.densities.empty(),
                    "[sweep] densities is only swept by density-sweep (this "
                    "is " << experiment_kind_name(spec.kind) << ")");
  }

  // Reject multi-valued axes the kind does not expand: the runner would
  // silently use only the first value, which breaks the fail-fast contract.
  {
    const ExperimentKind k = spec.kind;
    const auto require_single = [&](std::size_t n, const char* axis) {
      LAD_REQUIRE_MSG(n <= 1, "experiment '"
                                  << experiment_kind_name(k)
                                  << "' does not sweep [sweep] " << axis
                                  << " (got " << n
                                  << " values; only the first would run)");
    };
    const bool dr = k == ExperimentKind::kDrSweep;
    const bool grid_kind = dr || k == ExperimentKind::kRoc ||
                           k == ExperimentKind::kDensitySweep;
    if (!dr) {
      require_single(spec.shapes.size(), "shapes");
      require_single(spec.localizers.size(), "localizers");
      require_single(spec.actual_sigmas.size(), "actual_sigmas");
      require_single(spec.jitters.size(), "jitters");
    }
    if (!grid_kind && k != ExperimentKind::kMetricFusion) {
      require_single(spec.metrics.size(), "metrics");
    }
    if (!grid_kind && k != ExperimentKind::kCorrection &&
        k != ExperimentKind::kTimeEvolving) {
      require_single(spec.attacks.size(), "attacks");
    }
    if (!grid_kind && k != ExperimentKind::kCorrection &&
        k != ExperimentKind::kEchoComparison &&
        k != ExperimentKind::kThresholdSensitivity &&
        k != ExperimentKind::kTimeEvolving &&
        k != ExperimentKind::kInNetwork) {
      require_single(spec.damages.size(), "damages");
    }
    if (!grid_kind) require_single(spec.compromised.size(), "compromised");
  }

  if (const KvConfig::Section* d = config.find_section("detector")) {
    spec.fp_budget = d->get_double("fp_budget", spec.fp_budget);
    spec.tau = d->get_double("tau", spec.tau);
    if (d->has("group_min_samples")) {
      LAD_REQUIRE_MSG(spec.kind == ExperimentKind::kDrSweep,
                      "[detector] group_min_samples is only consumed by "
                      "dr-sweep (this is "
                          << experiment_kind_name(spec.kind) << ")");
      spec.group_min_samples = get_positive_int(*d, "group_min_samples",
                                                spec.group_min_samples);
    }
    spec.bundle = d->get_string("bundle", "");
    // Only metric-fusion consumes a saved bundle today; anywhere else the
    // key would be dead configuration (fail-fast contract).
    LAD_REQUIRE_MSG(spec.bundle.empty() ||
                        spec.kind == ExperimentKind::kMetricFusion,
                    "[detector] bundle is only consumed by metric-fusion "
                    "(this is " << experiment_kind_name(spec.kind) << ")");
  }
  LAD_REQUIRE_MSG(spec.fp_budget > 0 && spec.fp_budget < 1,
                  "[detector] fp_budget must be in (0,1)");
  LAD_REQUIRE_MSG(spec.tau > 0 && spec.tau < 1,
                  "[detector] tau must be in (0,1)");

  if (const KvConfig::Section* r = config.find_section("run")) {
    spec.jobs = get_positive_int(*r, "jobs", 1);
  }

  spec.fp_grid = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5};
  if (const KvConfig::Section* o = config.find_section("output")) {
    spec.fp_grid = o->get_double_list("fp_grid", spec.fp_grid);
    require_non_empty(spec.fp_grid, "fp_grid");
    const long long pts = o->get_int("curve_points", spec.curve_points);
    LAD_REQUIRE_MSG(pts >= 0, "[output] curve_points must be >= 0");
    spec.curve_points = static_cast<int>(pts);
    spec.loc_error = o->get_bool("loc_error", spec.loc_error);
  }

  if (const KvConfig::Section* c = config.find_section("correction")) {
    spec.trials = get_positive_int(*c, "trials", spec.trials);
  }
  if (const KvConfig::Section* e = config.find_section("echo")) {
    spec.trials = get_positive_int(*e, "trials", spec.trials);
    spec.echo_grid_x = get_positive_int(*e, "grid_x", spec.echo_grid_x);
    spec.echo_grid_y = get_positive_int(*e, "grid_y", spec.echo_grid_y);
    spec.echo_range = e->get_double("range", spec.echo_range);
    spec.echo_train_samples =
        get_positive_int(*e, "train_samples", spec.echo_train_samples);
  }
  spec.omegas = {8, 16, 32, 64, 128, 256, 512, 1024, 4096};
  if (const KvConfig::Section* g = config.find_section("gz")) {
    spec.omegas = g->get_int_list("omegas", spec.omegas);
    LAD_REQUIRE_MSG(!spec.omegas.empty(), "sweep list 'omegas' is empty");
  }
  spec.lies = {0, 100, 200, 400, 800, 1600, 3200};
  spec.dvhop_lies = {0, 400, 1600};
  if (const KvConfig::Section* m = config.find_section("mmse")) {
    spec.lies = m->get_double_list("lies", spec.lies);
    require_non_empty(spec.lies, "lies");
    spec.trials = get_positive_int(*m, "trials", spec.trials);
    spec.dvhop_lies = m->get_double_list("dvhop_lies", spec.dvhop_lies);
    spec.dvhop_trials = get_positive_int(*m, "dvhop_trials", spec.dvhop_trials);
  }
  spec.taus = {0.90, 0.95, 0.99, 0.999};
  spec.fudges = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
  if (const KvConfig::Section* t = config.find_section("threshold")) {
    spec.taus = t->get_double_list("taus", spec.taus);
    spec.fudges = t->get_double_list("fudges", spec.fudges);
    LAD_REQUIRE_MSG(!spec.taus.empty() || !spec.fudges.empty(),
                    "threshold-sensitivity needs taus and/or fudges");
    for (double tau : spec.taus) {
      LAD_REQUIRE_MSG(tau > 0 && tau < 1, "[threshold] taus must be in (0,1)");
    }
  }
  if (const KvConfig::Section* p = config.find_section("pdf")) {
    spec.pdf_grid = get_positive_int(*p, "grid", spec.pdf_grid);
    LAD_REQUIRE_MSG(spec.pdf_grid >= 2, "[pdf] grid must be >= 2");
  }
  if (const KvConfig::Section* e = config.find_section("evolve")) {
    spec.trials = get_positive_int(*e, "trials", spec.trials);
    spec.evolve_rounds = get_positive_int(*e, "rounds", spec.evolve_rounds);
    spec.evolve_step = get_positive_int(*e, "step", spec.evolve_step);
    const long long initial = e->get_int("initial", spec.evolve_initial);
    LAD_REQUIRE_MSG(initial >= 0,
                    "[evolve] initial must be >= 0, got " << initial);
    spec.evolve_initial = static_cast<int>(initial);
    spec.evolve_train_samples =
        get_positive_int(*e, "train_samples", spec.evolve_train_samples);
  }
  if (const KvConfig::Section* c = config.find_section("coop")) {
    spec.trials = get_positive_int(*c, "trials", spec.trials);
    spec.coop_radius = c->get_double("radius", spec.coop_radius);
    LAD_REQUIRE_MSG(spec.coop_radius > 0, "[coop] radius must be > 0, got "
                                              << spec.coop_radius);
    spec.coop_majority = c->get_double("majority", spec.coop_majority);
    LAD_REQUIRE_MSG(spec.coop_majority > 0 && spec.coop_majority <= 1,
                    "[coop] majority must be in (0,1], got "
                        << spec.coop_majority);
    spec.coop_train_samples =
        get_positive_int(*c, "train_samples", spec.coop_train_samples);
  }

  const std::vector<std::string> unknown = config.unused();
  LAD_REQUIRE_MSG(unknown.empty(), config.origin() << ": unknown key(s): "
                                                   << join(unknown, ", "));
  return spec;
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  return from_config(KvConfig::parse_file(path));
}

ScenarioSpec apply_overrides(ScenarioSpec spec, const ScenarioOverrides& o) {
  if (o.quick) {
    // Explicit [quick] values win; the fallback only ever shrinks the run
    // (a spec already smaller than the 3x60 default stays as it is).
    spec.pipeline.networks =
        spec.quick.networks.value_or(std::min(spec.pipeline.networks, 3));
    spec.pipeline.victims_per_network = spec.quick.victims.value_or(
        std::min(spec.pipeline.victims_per_network, 60));
    if (spec.quick.m) spec.pipeline.deploy.nodes_per_group = *spec.quick.m;
    if (spec.quick.trials) spec.trials = *spec.quick.trials;
    if (spec.quick.dvhop_trials) spec.dvhop_trials = *spec.quick.dvhop_trials;
    if (!spec.quick.densities.empty()) spec.densities = spec.quick.densities;
  }
  if (o.seed) spec.pipeline.seed = *o.seed;
  if (o.m) spec.pipeline.deploy.nodes_per_group = *o.m;
  if (o.networks) spec.pipeline.networks = *o.networks;
  if (o.victims) spec.pipeline.victims_per_network = *o.victims;
  if (o.threads) spec.pipeline.threads = *o.threads;
  if (o.jobs) spec.jobs = *o.jobs;
  if (o.r) spec.pipeline.deploy.radio_range = *o.r;
  if (o.sigma) spec.pipeline.deploy.sigma = *o.sigma;
  spec.pipeline.deploy.validate();
  return spec;
}

ScenarioOverrides overrides_from_flags(const Flags& flags) {
  ScenarioOverrides o;
  o.quick = flags.get_bool("quick", false);
  if (flags.has("seed")) {
    o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  }
  if (flags.has("m")) o.m = static_cast<int>(flags.get_int("m", 0));
  if (flags.has("networks")) {
    o.networks = static_cast<int>(flags.get_int("networks", 0));
  }
  if (flags.has("victims")) {
    o.victims = static_cast<int>(flags.get_int("victims", 0));
  }
  if (flags.has("threads")) {
    o.threads = static_cast<int>(flags.get_int("threads", 0));
  }
  if (flags.has("jobs")) {
    const long long jobs = flags.get_int("jobs", 1);
    // Rejected by name (never silently sequential or all-cores): a caller
    // computing jobs from a subtraction must see its bug immediately.
    LAD_REQUIRE_MSG(jobs >= 1,
                    "--jobs must be >= 1 (1 = sequential), got " << jobs);
    o.jobs = static_cast<int>(jobs);
  }
  if (flags.has("r")) o.r = flags.get_double("r", 0.0);
  if (flags.has("sigma")) o.sigma = flags.get_double("sigma", 0.0);
  return o;
}

ShardRange parse_shard(const std::string& text) {
  const auto parts = split(text, '/');
  LAD_REQUIRE_MSG(parts.size() == 2,
                  "bad shard '" << text << "': expected i/n (e.g. 0/4)");
  long long index = 0, count = 0;
  try {
    index = parse_int(trim(parts[0]));
    count = parse_int(trim(parts[1]));
  } catch (const AssertionError&) {
    LAD_REQUIRE_MSG(false,
                    "bad shard '" << text << "': expected i/n (e.g. 0/4)");
  }
  LAD_REQUIRE_MSG(count >= 1,
                  "bad shard '" << text << "': shard count must be >= 1");
  LAD_REQUIRE_MSG(index >= 0 && index < count,
                  "bad shard '" << text
                                << "': shard index must be in [0, count)");
  return ShardRange{static_cast<int>(index), static_cast<int>(count)};
}

std::vector<std::string> write_result_csvs(const ScenarioResult& result,
                                           const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  LAD_REQUIRE_MSG(!ec, "cannot create output directory '" << dir << "': "
                                                          << ec.message());
  std::vector<std::string> paths;
  for (const ResultTable& t : result.tables) {
    LAD_REQUIRE_MSG(t.row_items.size() == t.table.num_rows(),
                    "table '" << t.id << "': item tags out of sync");
    const fs::path path =
        fs::path(dir) / (result.scenario + "." + t.id + ".csv");
    // Write-then-rename so a killed run never leaves a truncated CSV
    // behind - `run --resume` treats a present file as complete.
    const fs::path tmp_path = path.string() + ".tmp";
    {
      std::ofstream os(tmp_path);
      LAD_REQUIRE_MSG(static_cast<bool>(os),
                      "cannot open '" << tmp_path.string()
                                      << "' for writing");
      os << "item";
      for (const std::string& col : t.table.columns()) {
        os << ',' << csv_escape(col);
      }
      os << '\n';
      for (std::size_t r = 0; r < t.table.num_rows(); ++r) {
        os << t.row_items[r];
        for (std::size_t c = 0; c < t.table.num_cols(); ++c) {
          os << ',' << csv_escape(t.table.cell(r, c));
        }
        os << '\n';
      }
      // Flush before checking: a tail-of-file write failure otherwise
      // hides in the stream buffer until the destructor, and the rename
      // below would install a truncated CSV that --resume trusts.
      os.flush();
      LAD_REQUIRE_MSG(static_cast<bool>(os),
                      "failed writing '" << tmp_path.string() << "'");
    }
    fs::rename(tmp_path, path, ec);
    LAD_REQUIRE_MSG(!ec, "cannot rename '" << tmp_path.string() << "' to '"
                                           << path.string()
                                           << "': " << ec.message());
    paths.push_back(path.string());
  }
  return paths;
}

void merge_result_csvs(const std::vector<std::string>& shard_dirs,
                       const std::string& out_dir, bool require_complete) {
  namespace fs = std::filesystem;
  LAD_REQUIRE_MSG(!shard_dirs.empty(), "merge: need at least one shard dir");

  const auto list_csvs = [](const std::string& dir) {
    std::vector<std::string> out;
    std::error_code list_ec;
    for (const auto& entry : fs::directory_iterator(dir, list_ec)) {
      if (entry.path().extension() == ".csv") {
        out.push_back(entry.path().filename().string());
      }
    }
    LAD_REQUIRE_MSG(!list_ec,
                    "merge: cannot list '" << dir << "': " << list_ec.message());
    std::sort(out.begin(), out.end());
    return out;
  };

  const std::vector<std::string> names = list_csvs(shard_dirs.front());
  LAD_REQUIRE_MSG(!names.empty(),
                  "merge: no .csv files in '" << shard_dirs.front() << "'");
  // Every shard of the same run writes the same table files (headers are
  // emitted even for empty shards), so a differing set means the dirs are
  // not shards of one run.
  for (std::size_t i = 1; i < shard_dirs.size(); ++i) {
    LAD_REQUIRE_MSG(list_csvs(shard_dirs[i]) == names,
                    "merge: '" << shard_dirs[i]
                               << "' holds a different table-file set than '"
                               << shard_dirs.front() << "'");
  }

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  LAD_REQUIRE_MSG(!ec, "merge: cannot create '" << out_dir << "': "
                                                << ec.message());

  // Union of item tags across every table, for the completeness check:
  // a full shard set covers a contiguous 0..max range.
  std::set<long long> merged_items;

  for (const std::string& name : names) {
    std::string header;
    std::vector<std::pair<long long, std::string>> rows;
    // Work items are partitioned across shards, so the same item tag in
    // two shard dirs means overlapping shards (e.g. the same dir passed
    // twice, or dirs from runs with different --shard counts) - merging
    // them would silently duplicate rows.
    std::map<long long, const std::string*> item_origin;
    for (const std::string& dir : shard_dirs) {
      const fs::path path = fs::path(dir) / name;
      std::ifstream is(path);
      LAD_REQUIRE_MSG(static_cast<bool>(is),
                      "merge: shard file missing: " << path.string());
      std::string line;
      LAD_REQUIRE_MSG(static_cast<bool>(std::getline(is, line)),
                      "merge: empty shard file: " << path.string());
      if (header.empty()) {
        header = line;
      } else {
        LAD_REQUIRE_MSG(line == header, "merge: header mismatch in "
                                            << path.string());
      }
      while (std::getline(is, line)) {
        if (line.empty()) continue;
        const std::size_t comma = line.find(',');
        LAD_REQUIRE_MSG(comma != std::string::npos,
                        "merge: malformed row in " << path.string() << ": "
                                                   << line);
        const long long item = parse_int(line.substr(0, comma));
        const auto [it, inserted] = item_origin.emplace(item, &dir);
        LAD_REQUIRE_MSG(inserted || it->second == &dir,
                        "merge: overlapping shards: item " << item << " of "
                            << name << " appears in both '" << *it->second
                            << "' and '" << dir << "'");
        merged_items.insert(item);
        rows.emplace_back(item, line);
      }
    }
    // Items are partitioned across shards and each shard emits its items
    // in ascending order, so a stable sort by item tag reproduces the
    // unsharded row order exactly.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const fs::path out_path = fs::path(out_dir) / name;
    std::ofstream os(out_path);
    LAD_REQUIRE_MSG(static_cast<bool>(os),
                    "merge: cannot open '" << out_path.string()
                                           << "' for writing");
    os << header << '\n';
    for (const auto& [item, line] : rows) os << line << '\n';
  }

  if (require_complete && !merged_items.empty()) {
    std::vector<long long> missing;
    for (long long i = 0; i <= *merged_items.rbegin(); ++i) {
      if (!merged_items.count(i) && missing.size() < 8) missing.push_back(i);
    }
    if (!missing.empty()) {
      std::ostringstream os;
      for (std::size_t i = 0; i < missing.size(); ++i) {
        os << (i ? ", " : "") << missing[i];
      }
      LAD_REQUIRE_MSG(false, "merge: incomplete shard set: no rows for "
                             "item(s) " << os.str()
                                 << " - a shard dir is missing or its run "
                                    "died (pass every shard, or merge "
                                    "partial sets with require_complete "
                                    "off / --partial)");
    }
  }
}

}  // namespace lad
