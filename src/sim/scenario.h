// Declarative scenario engine: one spec format drives every figure/table
// sweep, the CLI, and sharded runs.
//
// A scenario is a small INI-style text file (see bench/scenarios/*.scn and
// the README's "Scenario files" section) parsed by util/kvconfig into a
// ScenarioSpec: deployment shape, localizer(s), metrics, attack classes,
// damage/compromise/density sweeps, sample counts, seed, and FP budget.
// The ScenarioRunner expands the spec's cartesian product into an ordered
// list of work items and executes them through the existing Pipeline /
// experiment entry points (which fan out per network via
// parallel_for_items), emitting item-tagged result tables.
//
// Sharding: every work item derives its randomness from the spec's seed
// through Philox-style (experiment, trial) keyed sub-streams (rng/rng.h),
// never from execution order, so item results are placement-independent.
// `lad_cli run --shard i/n` executes the items with id % n == i; the
// shard CSVs carry the item tag, and `lad_cli merge` re-orders rows by it,
// reproducing the unsharded output byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/adversary.h"
#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "sim/pipeline.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/kvconfig.h"

namespace lad {

/// Experiment families; each maps to one expansion + rendering strategy in
/// the runner (the paper's Section 7 grid plus the repo's extensions).
enum class ExperimentKind {
  kRoc,                   ///< ROC curves over metric x attack x damage (Figs. 4-6)
  kDrSweep,               ///< trained-threshold DR sweeps (Figs. 7/8, tabs)
  kDensitySweep,          ///< re-deploy per density m (Fig. 9)
  kDeploymentPdf,         ///< the deployment pdf surface (Fig. 2)
  kGzAccuracy,            ///< g(z) table resolution ablation
  kCorrection,            ///< trimmed-ML location correction table
  kEchoComparison,        ///< LAD vs the Echo protocol
  kMetricFusion,          ///< attacker-vs-detector fusion matrix
  kMmseVulnerability,     ///< MMSE / DV-Hop single-anchor lies
  kThresholdSensitivity,  ///< tau + miscalibration sweeps
  kTimeEvolving,          ///< attacker corrupts k more beacons each round
  kInNetwork,             ///< neighbors exchange verdicts, local majority
};

const char* experiment_kind_name(ExperimentKind kind);
ExperimentKind experiment_kind_from_name(const std::string& name);

/// How the two deployment-mismatch axes (actual_sigmas x jitters) combine:
/// kAxes varies one axis at a time (first value of the other axis held),
/// kProduct takes the full cartesian product.
enum class MismatchCoupling { kAxes, kProduct };

/// Threshold-training mode axis for dr-sweep: one pooled threshold for the
/// whole field, or boundary groups fitted separately on their own benign
/// buckets (min-samples fallback to the pooled value).
enum class GroupThresholdMode { kGlobal, kPerGroup };

const char* group_threshold_mode_name(GroupThresholdMode mode);
GroupThresholdMode group_threshold_mode_from_name(const std::string& name);

/// Reduced sample counts applied in quick (CI smoke) mode; every field is
/// optional so specs only override what matters for their kind.
struct QuickOverrides {
  std::optional<int> networks;
  std::optional<int> victims;
  std::optional<int> m;
  std::optional<int> trials;
  std::optional<int> dvhop_trials;
  std::vector<int> densities;  ///< empty = keep the full density list
};

struct ScenarioSpec {
  // [scenario]
  std::string name;
  std::string title;
  std::string note;  ///< printed after the tables (the paper's findings)
  ExperimentKind kind = ExperimentKind::kDrSweep;

  // [pipeline] - base deployment / sampling configuration
  PipelineConfig pipeline;

  // [quick]
  QuickOverrides quick;

  // [sweep] axes (unused axes keep their single-element defaults)
  std::vector<DeploymentShape> shapes;
  std::vector<std::string> localizers;  ///< registry names, see below
  std::vector<MetricKind> metrics;
  std::vector<AttackClass> attacks;
  std::vector<double> damages;
  std::vector<double> compromised;
  std::vector<int> densities;
  std::vector<double> actual_sigmas;
  std::vector<double> jitters;
  MismatchCoupling mismatch_coupling = MismatchCoupling::kAxes;
  /// dr-sweep only: `group_thresholds = global, per_group` sweeps both
  /// training modes; when per_group appears, the dr table grows
  /// boundary/interior DR+FP split columns.  Never empty (the runner
  /// iterates it as an axis).
  std::vector<GroupThresholdMode> group_threshold_modes = {
      GroupThresholdMode::kGlobal};

  // [detector]
  double fp_budget = 0.01;  ///< trained-threshold experiments
  double tau = 0.99;        ///< quantile-trained experiments (fusion etc.)
  /// Per-group benign-bucket floor for the per_group mode; buckets below
  /// it keep the pooled threshold.
  int group_min_samples = 100;
  /// Path to a saved detector bundle (core/serialize.h); when set, the
  /// metric-fusion experiment takes its thresholds from the artifact
  /// instead of training them inline.  Only valid for metric-fusion.
  std::string bundle;

  // [run]
  /// Independent work items executed concurrently (1 = sequential).  Rows
  /// are buffered per item and emitted in item order, so output CSVs are
  /// byte-identical at any jobs count.  Effective thread usage is roughly
  /// jobs x pipeline.threads; the shared pool keeps oversubscription from
  /// spawning jobs*threads OS threads.
  int jobs = 1;

  // [output]
  std::vector<double> fp_grid;  ///< ROC summary columns
  int curve_points = 60;        ///< max ROC curve rows per item; 0 = omit
  bool loc_error = false;       ///< add a localization-error column (dr-sweep)

  // [correction] / [echo] / [gz] / [mmse] / [threshold] / [pdf]
  int trials = 300;
  int pdf_grid = 13;
  std::vector<long long> omegas;
  std::vector<double> lies;
  std::vector<double> dvhop_lies;
  int dvhop_trials = 100;
  int echo_grid_x = 4;
  int echo_grid_y = 4;
  double echo_range = 200.0;
  int echo_train_samples = 400;
  std::vector<double> taus;
  std::vector<double> fudges;

  // [evolve] - time-evolving compromise: the attacker corrupts
  // `initial + round * step` beacons in round 0..rounds-1.
  int evolve_rounds = 8;
  int evolve_step = 2;
  int evolve_initial = 0;
  int evolve_train_samples = 400;

  // [coop] - in-network detection: nodes within `radius` of a claimed
  // location vote on it; the claim is flagged when at least `majority`
  // (fraction) of the voters call it anomalous.
  double coop_radius = 150.0;
  double coop_majority = 0.5;
  int coop_train_samples = 400;

  /// Builds a spec from parsed config text.  Rejects unknown sections and
  /// keys, bad enum values, and empty sweep lists with precise messages.
  static ScenarioSpec from_config(const KvConfig& config);
  static ScenarioSpec load(const std::string& path);
};

/// Runtime adjustments (CLI flags) applied on top of a loaded spec.
struct ScenarioOverrides {
  bool quick = false;
  std::optional<std::uint64_t> seed;
  std::optional<int> m;
  std::optional<int> networks;
  std::optional<int> victims;
  std::optional<int> threads;
  std::optional<int> jobs;
  std::optional<double> r;
  std::optional<double> sigma;
};

ScenarioSpec apply_overrides(ScenarioSpec spec, const ScenarioOverrides& o);

/// Reads the common override flags (--quick, --seed, --m, --networks,
/// --victims, --threads, --jobs, --r, --sigma) — the one flag list shared
/// by `lad_cli run` and the bench wrappers.  `--jobs` must be >= 1; zero
/// and negative values are rejected by name (the parallel_for_items
/// convention: a computed-jobs bug must surface, not silently serialize
/// or grab all cores).
ScenarioOverrides overrides_from_flags(const Flags& flags);

/// One shard of a work-item list: the items with id % count == index.
struct ShardRange {
  int index = 0;
  int count = 1;

  bool contains(long long item) const {
    return item % static_cast<long long>(count) == static_cast<long long>(index);
  }
};

/// Parses "i/n" (0 <= i < n, n >= 1); throws lad::AssertionError with a
/// usage message on malformed syntax, i >= n, or n < 1.
ShardRange parse_shard(const std::string& text);

/// A result table whose rows are tagged with the work item that produced
/// them - the merge key for sharded runs.
struct ResultTable {
  std::string id;  ///< stable short name ("summary", "curves", "dr", ...)
  Table table;
  std::vector<long long> row_items;  ///< parallel to table rows
};

struct ScenarioResult {
  std::string scenario;  ///< spec name (CSV file prefix)
  std::vector<ResultTable> tables;
};

/// Expands and executes a scenario (or one shard of it).  Pipelines and
/// benign passes are constructed lazily and shared across the items that
/// need them; caches never change results (item randomness is keyed, not
/// sequential), only wall time.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioSpec& spec);
  ~ScenarioRunner();

  /// Total work items in the full (unsharded) expansion.
  long long num_items() const;

  /// The table ids this spec's run will emit, in emission order - the
  /// CSV files `run --out` writes are `<scenario>.<id>.csv`.  Drives
  /// `run --resume`'s are-all-outputs-present check without executing
  /// any work item.
  std::vector<std::string> table_ids() const;

  /// Runs the items of `shard`; tables always carry the full header row
  /// even when the shard holds none of their items.
  ScenarioResult run(const ShardRange& shard = {});

  /// True when `dir` holds complete output for `shard`: every table CSV
  /// exists and the union of their item tags is exactly the work-item ids
  /// the shard owns.  Every work item emits at least one tagged row, so a
  /// header-only CSV left by a run killed between the header write and
  /// the first row reads as incomplete - presence of the file alone does
  /// not.  On false, `reason` (optional) receives why.
  bool output_complete(const std::string& dir, const ShardRange& shard,
                       std::string* reason = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Localizer registry used by scenario specs: "beaconless-mle",
/// "weighted-centroid", "dv-hop", "amorphous", "truth-noise:<sigma>".
/// The factory borrows `pipeline` (model + g(z) table); keep it alive.
LocalizerFactory localizer_factory_from_name(const std::string& name,
                                             const Pipeline& pipeline);
/// Validates a registry name without needing a pipeline (spec parsing).
bool is_known_localizer(const std::string& name);

/// Writes one "<scenario>.<table>.csv" per result table into `dir`
/// (created if missing) with the work-item tag as the first column.
/// Returns the written paths.
std::vector<std::string> write_result_csvs(const ScenarioResult& result,
                                           const std::string& dir);

/// Merges shard directories produced by write_result_csvs into `out_dir`:
/// every shard must carry the same table files with identical headers;
/// rows are re-ordered by item tag (stable), which reproduces the
/// unsharded file byte for byte.  Overlapping shards (an item tag in two
/// dirs) are always an error; with `require_complete` (the default) a
/// gap in the merged item tags - a forgotten or dead shard - is too.
void merge_result_csvs(const std::vector<std::string>& shard_dirs,
                       const std::string& out_dir,
                       bool require_complete = true);

}  // namespace lad
