#include "sim/scenario_fuzz.h"

#include <algorithm>
#include <sstream>

#include "rng/rng.h"
#include "sim/scenario.h"
#include "util/assert.h"
#include "util/kvconfig.h"
#include "util/string_util.h"

namespace lad {

namespace {

// ---------------------------------------------------------------------
// Small drawing helpers over Rng (all deterministic per rng state).

int draw_int(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.uniform_int(static_cast<long long>(lo),
                                          static_cast<long long>(hi)));
}

bool chance(Rng& rng, double p) { return rng.uniform01() < p; }

template <class T>
const T& pick(Rng& rng, const std::vector<T>& options) {
  return options[static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::uint64_t>(options.size())))];
}

std::string fmt(double v, int decimals) {
  return format_double(v, decimals);
}

// A comma list of `n` doubles drawn from [lo, hi], strictly increasing so
// it can also render as a lo:hi:step range.
std::string double_values(Rng& rng, int n, double lo, double hi,
                          int decimals) {
  // Range syntax with a positive step; bounded expansion by construction.
  if (n > 1 && chance(rng, 0.35)) {
    const double start = rng.uniform(lo, (lo + hi) / 2);
    const double step = rng.uniform((hi - start) / (4 * n), (hi - start) / n);
    const double stop = start + (n - 1) * step;
    return fmt(start, decimals) + ":" + fmt(stop, decimals) + ":" +
           fmt(step, decimals);
  }
  std::vector<std::string> out;
  double v = lo;
  for (int i = 0; i < n; ++i) {
    v += rng.uniform(0.0, (hi - lo) / n);
    out.push_back(fmt(std::min(v, hi), decimals));
  }
  return join(out, ", ");
}

std::string int_values(Rng& rng, int n, int lo, int hi) {
  if (n > 1 && chance(rng, 0.35)) {
    const int start = draw_int(rng, lo, (lo + hi) / 2);
    const int step = std::max(1, (hi - start) / std::max(1, 2 * n));
    return std::to_string(start) + ":" +
           std::to_string(start + (n - 1) * step) + ":" +
           std::to_string(step);
  }
  std::vector<std::string> out;
  int v = lo;
  for (int i = 0; i < n; ++i) {
    v += draw_int(rng, 1, std::max(1, (hi - lo) / std::max(1, n)));
    out.push_back(std::to_string(std::min(v, hi)));
  }
  return join(out, ", ");
}

// ---------------------------------------------------------------------
// Spec writer: accumulates lines, sprinkles comments and blank lines so
// the fuzzer also exercises the lexer's trivia handling.

class ScnWriter {
 public:
  explicit ScnWriter(Rng& rng) : rng_(rng) {}

  void section(const std::string& name) {
    trivia();
    text_ += "[" + name + "]\n";
  }

  void kv(const std::string& key, const std::string& value) {
    trivia();
    // Exercise both the canonical "key = value" form and tight "key=value".
    text_ += chance(rng_, 0.85) ? key + " = " + value + "\n"
                                : key + "=" + value + "\n";
  }

  const std::string& text() const { return text_; }

 private:
  void trivia() {
    if (chance(rng_, 0.10)) text_ += "\n";
    if (chance(rng_, 0.10)) {
      text_ += std::string(chance(rng_, 0.5) ? "# " : "; ") + "fuzz trivia\n";
    }
    if (chance(rng_, 0.05)) text_ += "   \n";
  }

  Rng& rng_;
  std::string text_;
};

// Per-kind axis permissions, mirroring ScenarioSpec::from_config's
// require_single contract (which axes a kind expands).
struct KindShape {
  std::string name;
  bool multi_metrics = false;
  bool multi_attacks = false;
  bool multi_damages = false;
  bool multi_x = false;
  bool dr_axes = false;    // shapes/localizers/sigmas/jitters/group modes
  bool densities = false;  // [sweep] densities required (density-sweep)
  std::string section;     // kind-specific section ("" = none)
};

const std::vector<KindShape>& kind_shapes() {
  static const std::vector<KindShape> kinds = {
      {"roc", true, true, true, true, false, false, ""},
      {"dr-sweep", true, true, true, true, true, false, ""},
      {"density-sweep", true, true, true, true, false, true, ""},
      {"deployment-pdf", false, false, false, false, false, false, "pdf"},
      {"gz-accuracy", false, false, false, false, false, false, "gz"},
      {"correction", false, true, true, false, false, false, "correction"},
      {"echo-comparison", false, false, true, false, false, false, "echo"},
      {"metric-fusion", true, false, false, false, false, false, ""},
      {"mmse-vulnerability", false, false, false, false, false, false,
       "mmse"},
      {"threshold-sensitivity", false, false, true, false, false, false,
       "threshold"},
      {"time-evolving", false, true, true, false, false, false, "evolve"},
      {"in-network", false, false, true, false, false, false, "coop"},
  };
  return kinds;
}

const std::vector<std::string>& all_kind_sections() {
  static const std::vector<std::string> sections = {
      "pdf", "gz", "correction", "echo", "mmse", "threshold", "evolve",
      "coop"};
  return sections;
}

int axis_n(Rng& rng, bool multi) { return multi ? draw_int(rng, 1, 4) : 1; }

void emit_sweep(ScnWriter& w, Rng& rng, const KindShape& kind) {
  w.section("sweep");
  bool any = false;
  if (chance(rng, 0.7)) {
    std::vector<std::string> ms = {"diff", "add-all", "prob"};
    const int n = std::min(axis_n(rng, kind.multi_metrics), 3);
    ms.resize(static_cast<std::size_t>(n));
    w.kv("metrics", join(ms, ", "));
    any = true;
  }
  if (chance(rng, 0.7)) {
    std::vector<std::string> as = {"dec-bounded", "dec-only"};
    const int n = std::min(axis_n(rng, kind.multi_attacks), 2);
    as.resize(static_cast<std::size_t>(n));
    w.kv("attacks", join(as, ", "));
    any = true;
  }
  if (chance(rng, 0.8)) {
    w.kv("damages", double_values(rng, axis_n(rng, kind.multi_damages), 40,
                                  400, 0));
    any = true;
  }
  if (chance(rng, 0.7)) {
    w.kv("compromised",
         double_values(rng, axis_n(rng, kind.multi_x), 0.05, 0.4, 2));
    any = true;
  }
  if (kind.densities) {
    w.kv("densities", int_values(rng, draw_int(rng, 1, 3), 50, 400));
    any = true;
  }
  if (kind.dr_axes) {
    if (chance(rng, 0.5)) w.kv("shapes", "grid, hex");
    if (chance(rng, 0.5)) {
      w.kv("localizers", "beaconless-mle, weighted-centroid");
    }
    if (chance(rng, 0.4)) {
      w.kv("actual_sigmas", double_values(rng, draw_int(rng, 1, 3), 20, 80,
                                          0));
      w.kv("mismatch_coupling", chance(rng, 0.5) ? "axes" : "product");
    }
    if (chance(rng, 0.4)) {
      w.kv("jitters", double_values(rng, draw_int(rng, 1, 2), 0.5, 10, 1));
    }
    if (chance(rng, 0.4)) w.kv("group_thresholds", "global, per_group");
    any = true;
  }
  // An empty [sweep] section is legal (all axes default); keep it
  // sometimes, but usually guarantee at least one key above.
  if (!any && chance(rng, 0.5)) {
    w.kv("damages", double_values(rng, axis_n(rng, kind.multi_damages), 40,
                                  400, 0));
  }
}

void emit_kind_section(ScnWriter& w, Rng& rng, const KindShape& kind) {
  if (kind.section.empty()) return;
  w.section(kind.section);
  if (kind.section == "pdf") {
    w.kv("grid", std::to_string(draw_int(rng, 2, 12)));
  } else if (kind.section == "gz") {
    w.kv("omegas", int_values(rng, draw_int(rng, 1, 4), 8, 256));
  } else if (kind.section == "correction") {
    w.kv("trials", std::to_string(draw_int(rng, 2, 40)));
  } else if (kind.section == "echo") {
    if (chance(rng, 0.7)) w.kv("trials", std::to_string(draw_int(rng, 2, 40)));
    if (chance(rng, 0.5)) {
      w.kv("grid_x", std::to_string(draw_int(rng, 2, 8)));
      w.kv("grid_y", std::to_string(draw_int(rng, 2, 8)));
    }
    if (chance(rng, 0.5)) w.kv("range", fmt(rng.uniform(20, 120), 0));
    if (chance(rng, 0.5)) {
      w.kv("train_samples", std::to_string(draw_int(rng, 20, 200)));
    }
  } else if (kind.section == "mmse") {
    w.kv("lies", double_values(rng, draw_int(rng, 1, 4), 0, 3200, 0));
    if (chance(rng, 0.6)) {
      // An empty dvhop_lies list is expressed by omitting the key, not by
      // an empty value (the parser rejects "dvhop_lies =").
      w.kv("dvhop_lies",
           double_values(rng, draw_int(rng, 1, 3), 0, 1600, 0));
    }
    if (chance(rng, 0.5)) w.kv("trials", std::to_string(draw_int(rng, 2, 40)));
    if (chance(rng, 0.5)) {
      w.kv("dvhop_trials", std::to_string(draw_int(rng, 2, 20)));
    }
  } else if (kind.section == "threshold") {
    // taus and/or fudges must survive; emit at least one non-empty.
    const bool taus = chance(rng, 0.8);
    if (taus) {
      w.kv("taus", double_values(rng, draw_int(rng, 1, 4), 0.9, 0.999, 3));
    }
    if (!taus || chance(rng, 0.5)) {
      w.kv("fudges", double_values(rng, draw_int(rng, 1, 4), 0.5, 2.0, 2));
    }
  } else if (kind.section == "evolve") {
    if (chance(rng, 0.7)) w.kv("trials", std::to_string(draw_int(rng, 2, 40)));
    if (chance(rng, 0.7)) w.kv("rounds", std::to_string(draw_int(rng, 1, 10)));
    if (chance(rng, 0.5)) w.kv("step", std::to_string(draw_int(rng, 1, 8)));
    if (chance(rng, 0.5)) w.kv("initial", std::to_string(draw_int(rng, 0, 6)));
    if (chance(rng, 0.5)) {
      w.kv("train_samples", std::to_string(draw_int(rng, 20, 200)));
    }
  } else if (kind.section == "coop") {
    if (chance(rng, 0.7)) w.kv("trials", std::to_string(draw_int(rng, 2, 40)));
    if (chance(rng, 0.5)) w.kv("radius", fmt(rng.uniform(40, 200), 0));
    if (chance(rng, 0.5)) w.kv("majority", fmt(rng.uniform(0.2, 1.0), 2));
    if (chance(rng, 0.5)) {
      w.kv("train_samples", std::to_string(draw_int(rng, 20, 200)));
    }
  }
}

}  // namespace

std::string generate_valid_scn(Rng& rng) {
  const KindShape& kind = pick(rng, kind_shapes());
  ScnWriter w(rng);

  w.section("scenario");
  w.kv("name", "fuzz_" + std::to_string(draw_int(rng, 0, 9999)));
  w.kv("experiment", kind.name);
  if (chance(rng, 0.4)) w.kv("title", "fuzzed spec");
  if (chance(rng, 0.3)) w.kv("note", "generated by scenario_fuzz");

  if (chance(rng, 0.8)) {
    w.section("pipeline");
    if (chance(rng, 0.7)) {
      w.kv("seed", std::to_string(draw_int(rng, 1, 100000)));
    }
    if (chance(rng, 0.6)) w.kv("networks", std::to_string(draw_int(rng, 1, 8)));
    if (chance(rng, 0.6)) {
      w.kv("victims", std::to_string(draw_int(rng, 1, 200)));
    }
    if (chance(rng, 0.7)) w.kv("m", std::to_string(draw_int(rng, 10, 300)));
    if (chance(rng, 0.6)) w.kv("r", fmt(rng.uniform(20, 90), 0));
    if (chance(rng, 0.6)) w.kv("sigma", fmt(rng.uniform(10, 80), 0));
    if (chance(rng, 0.5)) w.kv("field", fmt(rng.uniform(400, 1200), 0));
    if (chance(rng, 0.5)) {
      w.kv("grid_nx", std::to_string(draw_int(rng, 2, 12)));
      w.kv("grid_ny", std::to_string(draw_int(rng, 2, 12)));
    }
    if (chance(rng, 0.3)) {
      w.kv("gz_omega", std::to_string(draw_int(rng, 8, 512)));
    }
    if (chance(rng, 0.4)) {
      w.kv("shape", pick(rng, std::vector<std::string>{
                                  "grid", "hex", "hexagonal", "random",
                                  "random-known"}));
    }
    if (chance(rng, 0.3)) {
      w.kv("in_field_victims",
           pick(rng, std::vector<std::string>{"true", "false", "yes", "no",
                                              "1", "0", "on", "off"}));
    }
  }

  if (chance(rng, 0.4)) {
    w.section("quick");
    if (chance(rng, 0.6)) w.kv("networks", std::to_string(draw_int(rng, 1, 3)));
    if (chance(rng, 0.6)) w.kv("victims", std::to_string(draw_int(rng, 1, 60)));
    if (chance(rng, 0.4)) w.kv("m", std::to_string(draw_int(rng, 10, 60)));
    if (chance(rng, 0.6)) w.kv("trials", std::to_string(draw_int(rng, 2, 60)));
    if (chance(rng, 0.3)) {
      w.kv("dvhop_trials", std::to_string(draw_int(rng, 2, 30)));
    }
    if (kind.densities && chance(rng, 0.5)) {
      w.kv("densities", int_values(rng, draw_int(rng, 1, 2), 50, 200));
    }
  }

  if (kind.densities || chance(rng, 0.8)) emit_sweep(w, rng, kind);

  if (chance(rng, 0.6)) {
    w.section("detector");
    if (chance(rng, 0.6)) w.kv("tau", fmt(rng.uniform(0.5, 0.999), 3));
    if (chance(rng, 0.5)) w.kv("fp_budget", fmt(rng.uniform(0.005, 0.2), 3));
    if (kind.dr_axes && chance(rng, 0.4)) {
      w.kv("group_min_samples", std::to_string(draw_int(rng, 1, 200)));
    }
    if (kind.name == "metric-fusion" && chance(rng, 0.3)) {
      // Parse-time valid; only an actual run would open the file.
      w.kv("bundle", "artifacts/fuzz.lad");
    }
  }

  if (chance(rng, 0.4)) {
    w.section("run");
    w.kv("jobs", std::to_string(draw_int(rng, 1, 8)));
  }

  if (chance(rng, 0.4)) {
    w.section("output");
    if (chance(rng, 0.6)) {
      w.kv("fp_grid", double_values(rng, draw_int(rng, 1, 5), 0.01, 0.5, 2));
    }
    if (chance(rng, 0.5)) {
      w.kv("curve_points", std::to_string(draw_int(rng, 0, 40)));
    }
    if (chance(rng, 0.3)) {
      w.kv("loc_error", chance(rng, 0.5) ? "true" : "false");
    }
  }

  emit_kind_section(w, rng, kind);
  return w.text();
}

// ---------------------------------------------------------------------
// Mutation mode.

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      if (pos < text.size()) lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

bool is_section_header(const std::string& line) {
  const std::string t{trim(line)};
  return !t.empty() && t.front() == '[' && t.back() == ']';
}

std::string section_name_of(const std::string& header) {
  const std::string t{trim(header)};
  return std::string{trim(t.substr(1, t.size() - 2))};
}

/// Index just after the header of `section`, or npos.
std::size_t after_section_header(const std::vector<std::string>& lines,
                                 const std::string& section) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (is_section_header(lines[i]) && section_name_of(lines[i]) == section) {
      return i + 1;
    }
  }
  return std::string::npos;
}

/// True when the (trimmed) line assigns exactly `key` (not a key that
/// merely starts with it: "m" must not match "metrics" or "majority").
bool line_sets_key(const std::string& line, const std::string& key) {
  const std::string t{trim(line)};
  if (t.rfind(key, 0) != 0) return false;
  std::string_view rest = std::string_view(t).substr(key.size());
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
    rest.remove_prefix(1);
  }
  return !rest.empty() && rest.front() == '=';
}

/// Removes every line assigning `key` (any section).
void drop_key(std::vector<std::string>& lines, const std::string& key) {
  lines.erase(std::remove_if(lines.begin(), lines.end(),
                             [&](const std::string& l) {
                               return line_sets_key(l, key);
                             }),
              lines.end());
}

std::string experiment_of(const std::vector<std::string>& lines) {
  for (const std::string& l : lines) {
    if (line_sets_key(l, "experiment")) {
      const std::string t{trim(l)};
      return std::string{trim(t.substr(t.find('=') + 1))};
    }
  }
  return "";
}

/// The kind-specific section of `kind` ("" when it has none).
std::string own_section_of(const std::string& kind) {
  for (const KindShape& shape : kind_shapes()) {
    if (shape.name == kind) return shape.section;
  }
  return "";
}

}  // namespace

const std::vector<std::string>& scn_mutation_classes() {
  static const std::vector<std::string> classes = {
      "unknown-key",      "unknown-section",   "duplicate-section",
      "duplicate-key",    "malformed-range",   "foreign-kind-section",
      "bad-enum",         "bad-value",         "empty-sweep-list",
      "unswept-axis",     "unterminated-header"};
  return classes;
}

ScnMutation mutate_scn(const std::string& valid, Rng& rng,
                       const std::string& klass) {
  const std::string chosen =
      klass.empty() ? pick(rng, scn_mutation_classes()) : klass;
  std::vector<std::string> lines = split_lines(valid);
  const std::string kind = experiment_of(lines);
  ScnMutation m;
  m.klass = chosen;

  const auto insert_into = [&](const std::string& section,
                               const std::string& line) {
    std::size_t at = after_section_header(lines, section);
    if (at == std::string::npos) {
      lines.push_back("[" + section + "]");
      lines.push_back(line);
    } else {
      lines.insert(lines.begin() + static_cast<long>(at), line);
    }
  };

  // Drops every assignment of `key`, then plants `line` in `section`
  // (created at the end when absent): one bad assignment, no duplicates.
  const auto plant = [&](const std::string& section, const std::string& key,
                         const std::string& line) {
    drop_key(lines, key);
    insert_into(section, line);
  };

  if (chosen == "unknown-key") {
    m.needle = "frobnicate";
    insert_into("scenario", "frobnicate = 1");
  } else if (chosen == "unknown-section") {
    m.needle = "frobnicator";
    lines.push_back("[frobnicator]");
    lines.push_back("x = 1");
  } else if (chosen == "duplicate-section") {
    m.needle = "duplicate section";
    lines.push_back("[scenario]");
    lines.push_back("name = twice");
  } else if (chosen == "duplicate-key") {
    m.needle = "duplicate key";
    insert_into("scenario", "experiment = " + (kind.empty() ? "roc" : kind));
  } else if (chosen == "malformed-range") {
    if (chance(rng, 0.5)) {
      m.needle = "step must be > 0";
      plant("sweep", "damages", "damages = 40:160:0");
    } else {
      m.needle = "lo must be <= hi";
      plant("sweep", "damages", "damages = 160:40:20");
    }
  } else if (chosen == "foreign-kind-section") {
    // A kind section belonging to a DIFFERENT kind than the spec's: the
    // spec's own section (present or not) must not be a candidate.
    const std::string own = own_section_of(kind);
    std::vector<std::string> foreign;
    for (const std::string& s : all_kind_sections()) {
      if (s != own && after_section_header(lines, s) == std::string::npos) {
        foreign.push_back(s);
      }
    }
    const std::string section = pick(rng, foreign);
    m.needle = "[" + section + "]";
    lines.push_back("[" + section + "]");
    lines.push_back(section == "pdf" ? "grid = 4" : "trials = 4");
  } else if (chosen == "bad-enum") {
    struct Choice { const char* key; const char* line; const char* needle; };
    static const std::vector<Choice> choices = {
        {"attacks", "attacks = nuke", "nuke"},
        {"metrics", "metrics = banana", "banana"},
        {"shapes", "shapes = pentagon", "pentagon"},
        {"localizers", "localizers = gps", "gps"},
    };
    const Choice& c = pick(rng, choices);
    m.needle = c.needle;
    plant("sweep", c.key, c.line);
  } else if (chosen == "bad-value") {
    struct Choice {
      const char* section;
      const char* key;
      const char* line;
      const char* needle;
    };
    static const std::vector<Choice> choices = {
        {"detector", "tau", "tau = 1.5", "tau"},
        {"detector", "fp_budget", "fp_budget = 0", "fp_budget"},
        {"run", "jobs", "jobs = 0", "jobs"},
        {"pipeline", "m", "m = -3", "m"},
        {"pipeline", "sigma", "sigma = 0", "sigma"},
    };
    const Choice& c = pick(rng, choices);
    m.needle = c.needle;
    plant(c.section, c.key, c.line);
  } else if (chosen == "empty-sweep-list") {
    m.needle = "empty";
    plant("sweep", "damages", "damages =");
  } else if (chosen == "unswept-axis") {
    // Multi-valued localizers is a dr-sweep-only axis; a dr-sweep spec
    // instead gets densities, which only density-sweep accepts.
    if (kind == "dr-sweep") {
      m.needle = "densities";
      plant("sweep", "densities", "densities = 100, 300");
    } else {
      m.needle = "localizers";
      plant("sweep", "localizers", "localizers = beaconless-mle, dv-hop");
    }
  } else if (chosen == "unterminated-header") {
    m.needle = "unterminated";
    lines.push_back("[broken");
  } else {
    LAD_REQUIRE_MSG(false, "unknown mutation class '" << chosen << "'");
  }

  m.text = join_lines(lines);
  return m;
}

void check_scn_accepted(const std::string& text) {
  const ScenarioSpec spec =
      ScenarioSpec::from_config(KvConfig::parse_string(text, "fuzz.scn"));
  ScenarioRunner runner(spec);
  LAD_REQUIRE_MSG(runner.num_items() > 0,
                  "spec '" << spec.name << "' expands to no work items");
  LAD_REQUIRE_MSG(!runner.table_ids().empty(),
                  "spec '" << spec.name << "' declares no result tables");
}

std::string shrink_scn(
    std::string text,
    const std::function<bool(const std::string&)>& still_fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<std::string> lines = split_lines(text);
    // Whole sections first (big strides), then single lines.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < lines.size();) {
        std::size_t span = 1;
        if (pass == 0) {
          if (!is_section_header(lines[i])) {
            ++i;
            continue;
          }
          while (i + span < lines.size() &&
                 !is_section_header(lines[i + span])) {
            ++span;
          }
        }
        std::vector<std::string> candidate = lines;
        candidate.erase(candidate.begin() + static_cast<long>(i),
                        candidate.begin() + static_cast<long>(i + span));
        const std::string candidate_text = join_lines(candidate);
        if (still_fails(candidate_text)) {
          lines = std::move(candidate);
          text = candidate_text;
          progress = true;
        } else {
          i += span;
        }
      }
    }
  }
  return text;
}

FuzzReport fuzz_scn(const FuzzOptions& options) {
  FuzzReport report;
  std::vector<std::string> classes_seen;
  for (long long i = 0; i < options.iters; ++i) {
    ++report.iterations;
    Rng rng = Rng::stream(options.seed, static_cast<std::uint64_t>(i));
    const std::string valid = generate_valid_scn(rng);

    if (!options.invalid) {
      std::string error;
      try {
        check_scn_accepted(valid);
        continue;
      } catch (const AssertionError& e) {
        error = std::string("valid spec rejected: ") + e.what();
      } catch (const std::exception& e) {
        error = std::string("valid spec crashed the parser: ") + e.what();
      }
      FuzzFailure f;
      f.iteration = i;
      f.mode = "valid";
      f.message = error;
      f.spec = valid;
      if (options.minimize) {
        f.minimized = shrink_scn(valid, [](const std::string& t) {
          try {
            check_scn_accepted(t);
            return false;
          } catch (...) {
            return true;
          }
        });
      }
      report.failures.push_back(std::move(f));
      continue;
    }

    // Invalid mode: round-robin the classes so every run covers each one,
    // then fill with random picks.
    const auto& classes = scn_mutation_classes();
    const std::string forced =
        i < static_cast<long long>(classes.size())
            ? classes[static_cast<std::size_t>(i)]
            : "";
    const ScnMutation mutation = mutate_scn(valid, rng, forced);
    if (std::find(classes_seen.begin(), classes_seen.end(),
                  mutation.klass) == classes_seen.end()) {
      classes_seen.push_back(mutation.klass);
    }
    std::string error;
    try {
      check_scn_accepted(mutation.text);
      error = "silent acceptance of mutation class '" + mutation.klass + "'";
    } catch (const AssertionError& e) {
      const std::string what = e.what();
      if (what.find(mutation.needle) == std::string::npos) {
        error = "mutation '" + mutation.klass +
                "' rejected without naming '" + mutation.needle +
                "': " + what;
      } else if (what.find(':') == std::string::npos) {
        error = "mutation '" + mutation.klass +
                "' rejected without file:line context: " + what;
      }
    } catch (const std::exception& e) {
      error = "mutation '" + mutation.klass +
              "' crashed instead of asserting: " + e.what();
    }
    if (error.empty()) continue;
    FuzzFailure f;
    f.iteration = i;
    f.mode = "invalid";
    f.klass = mutation.klass;
    f.message = error;
    f.spec = mutation.text;
    if (options.minimize) {
      const std::string needle = mutation.needle;
      const bool accepted = error.rfind("silent acceptance", 0) == 0;
      f.minimized = shrink_scn(mutation.text, [&](const std::string& t) {
        try {
          check_scn_accepted(t);
          return accepted;  // still (wrongly) accepted
        } catch (const AssertionError& e) {
          if (accepted) return false;
          return std::string(e.what()).find(needle) == std::string::npos;
        } catch (...) {
          return !accepted;
        }
      });
    }
    report.failures.push_back(std::move(f));
  }
  report.classes_seen = std::move(classes_seen);
  return report;
}

}  // namespace lad
