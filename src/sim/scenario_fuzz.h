// Property fuzzer for the .scn surface (util/kvconfig + sim/scenario).
//
// Two modes over one seeded generator:
//
//  - valid:   emit a random-but-valid spec covering every section, key,
//             and axis the experiment kinds accept (comma lists and
//             lo:hi:step ranges, [run] jobs, [detector] blocks, the
//             kind-specific sections) and require the parser AND the
//             runner's item accounting to accept it.
//  - invalid: take a valid spec, inject ONE invalid edit from a named
//             mutation class (unknown key, duplicate section/key,
//             malformed range, kind-foreign section, ...) and require a
//             named AssertionError that mentions the injected token -
//             never a crash, a hang, or silent acceptance.
//
// Failures carry the offending spec plus a greedy line/section-removal
// shrink to a minimal reproducer (see shrink_scn), ready to check in
// under tests/data/fuzz/.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace lad {

/// Emits a random spec text that must parse and expand.  Consumes `rng`;
/// the same rng state always produces the same text.
std::string generate_valid_scn(Rng& rng);

/// One injected invalid edit.
struct ScnMutation {
  std::string klass;   ///< mutation class, e.g. "unknown-key"
  std::string needle;  ///< token the rejection message must contain
  std::string text;    ///< the mutated spec
};

/// Names of every mutation class mutate_scn can produce (for coverage
/// assertions: a fuzz run must reject each class at least once).
const std::vector<std::string>& scn_mutation_classes();

/// Applies one random invalid edit to a valid spec.  Pass a non-empty
/// `klass` (one of scn_mutation_classes()) to force that class.
ScnMutation mutate_scn(const std::string& valid, Rng& rng,
                       const std::string& klass = "");

/// Parses + expands a spec text the way the CLI would, throwing
/// AssertionError on any problem (also when the expansion is empty or
/// the table ids are).  The fuzzer's oracle; exposed for tests.
void check_scn_accepted(const std::string& text);

/// Greedy minimization: repeatedly drop whole sections, then single
/// lines, keeping every removal for which `still_fails` stays true.
/// Terminates at a local fixpoint (no single removal reproduces).
std::string shrink_scn(std::string text,
                       const std::function<bool(const std::string&)>& still_fails);

struct FuzzFailure {
  long long iteration = 0;
  std::string mode;       ///< "valid" | "invalid"
  std::string klass;      ///< mutation class ("" in valid mode)
  std::string message;    ///< what went wrong
  std::string spec;       ///< offending spec text
  std::string minimized;  ///< shrunk reproducer ("" unless minimize)
};

struct FuzzReport {
  long long iterations = 0;
  /// Mutation classes exercised at least once (invalid mode).
  std::vector<std::string> classes_seen;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  long long iters = 200;
  bool invalid = false;   ///< false: valid mode, true: mutation mode
  bool minimize = false;  ///< shrink failing specs to minimal reproducers
};

/// Runs the fuzz loop.  Iteration i draws from Rng::stream(seed, i), so
/// any failure reproduces from (seed, iteration) alone.
FuzzReport fuzz_scn(const FuzzOptions& options);

}  // namespace lad
