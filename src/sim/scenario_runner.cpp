// ScenarioRunner: expands a ScenarioSpec's cartesian product into an
// ordered work-item list and executes it (or one shard of it) through the
// existing Pipeline / experiment entry points.
//
// Work-item ids are assigned by iterating the expansion in a fixed order,
// so ids are identical in every shard of the same spec.  All randomness is
// keyed from the spec's seed (Philox-style sub-streams inside Pipeline;
// explicit per-item seeds in the bespoke kinds), never from execution
// order, which is what makes shard output placement-independent.
//
// Pipelines / benign passes / deployed networks are cached per runner and
// shared across the items that need them; because they are deterministic
// functions of (spec, seed), caching changes wall time only, never values.
#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/corrector.h"
#include "core/detector.h"
#include "core/metric.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "loc/dvhop.h"
#include "loc/echo.h"
#include "loc/mmse.h"
#include "rng/rng.h"
#include "sim/experiment.h"
#include "sim/item_scheduler.h"
#include "sim/latched_cache.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"
#include "stats/roc.h"
#include "stats/running_stats.h"
#include "stats/special.h"
#include "util/assert.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace lad {

namespace {

/// The (actual_sigma, jitter) mismatch combinations a spec expands to.
std::vector<std::pair<double, double>> mismatch_pairs(const ScenarioSpec& s) {
  std::vector<std::pair<double, double>> pairs;
  if (s.mismatch_coupling == MismatchCoupling::kProduct) {
    for (double sigma : s.actual_sigmas) {
      for (double jitter : s.jitters) pairs.emplace_back(sigma, jitter);
    }
    return pairs;
  }
  // Axes mode: vary one axis at a time, the other held at its first value.
  // When both axes vary, the two passes are emitted back to back (the
  // baseline-ish row appears in each, matching the two-table mismatch
  // bench this mode reproduces).
  if (s.actual_sigmas.size() <= 1) {
    for (double jitter : s.jitters) {
      pairs.emplace_back(s.actual_sigmas.front(), jitter);
    }
    return pairs;
  }
  for (double sigma : s.actual_sigmas) {
    pairs.emplace_back(sigma, s.jitters.front());
  }
  if (s.jitters.size() > 1) {
    for (double jitter : s.jitters) {
      pairs.emplace_back(s.actual_sigmas.front(), jitter);
    }
  }
  return pairs;
}

std::string percent_label(double fp) {
  if (fp == 0.0) return "DR@FP=0";
  std::ostringstream os;
  os << fp * 100.0;
  return "DR@" + os.str() + "%";
}

std::string dr_at_damage_label(double d) {
  return "DR@D=" + format_double(d, 0);
}

/// Total work items in a spec's full expansion.  Shared by num_items()
/// and the per-kind empty-shard early-outs (a modulo shard owns at least
/// one item exactly when its index is below this total).
long long total_items(const ScenarioSpec& s) {
  const long long metrics = static_cast<long long>(s.metrics.size());
  const long long attacks = static_cast<long long>(s.attacks.size());
  const long long damages = static_cast<long long>(s.damages.size());
  const long long xs = static_cast<long long>(s.compromised.size());
  switch (s.kind) {
    case ExperimentKind::kRoc:
      return metrics * attacks * damages * xs;
    case ExperimentKind::kDrSweep:
      return static_cast<long long>(s.group_threshold_modes.size()) *
             static_cast<long long>(mismatch_pairs(s).size()) *
             static_cast<long long>(s.shapes.size()) *
             static_cast<long long>(s.localizers.size()) * metrics * attacks *
             xs * damages;
    case ExperimentKind::kDensitySweep:
      return static_cast<long long>(s.densities.size()) * metrics * attacks *
             xs * damages;
    case ExperimentKind::kDeploymentPdf:
      return 2;
    case ExperimentKind::kGzAccuracy:
      return static_cast<long long>(s.omegas.size());
    case ExperimentKind::kCorrection:
      return 1 + attacks * damages;
    case ExperimentKind::kEchoComparison:
      return 1 + damages;
    case ExperimentKind::kMetricFusion:
      return 1 + metrics;
    case ExperimentKind::kMmseVulnerability:
      return static_cast<long long>(s.lies.size()) +
             static_cast<long long>(s.dvhop_lies.size());
    case ExperimentKind::kThresholdSensitivity:
      return static_cast<long long>(s.taus.size()) +
             static_cast<long long>(s.fudges.size());
    case ExperimentKind::kTimeEvolving:
      return 1 + attacks * damages;
    case ExperimentKind::kInNetwork:
      return 1 + damages;
  }
  return 0;
}

/// True when `shard` owns no item at all - the caller returns its
/// header-only tables without building any shared state.
bool shard_is_empty(const ShardRange& shard, const ScenarioSpec& s) {
  return static_cast<long long>(shard.index) >= total_items(s);
}

/// The result-table ids each kind emits, in emission order.  Must stay in
/// sync with the run_* builders below (guarded by a unit test that runs a
/// spec of each kind and compares).
std::vector<std::string> table_ids_for(const ScenarioSpec& s) {
  switch (s.kind) {
    case ExperimentKind::kRoc:
      if (s.curve_points > 0) return {"summary", "curves"};
      return {"summary"};
    case ExperimentKind::kDrSweep: return {"dr"};
    case ExperimentKind::kDensitySweep: return {"density"};
    case ExperimentKind::kDeploymentPdf: return {"surface", "radial"};
    case ExperimentKind::kGzAccuracy: return {"gz"};
    case ExperimentKind::kCorrection: return {"benign_floor", "correction"};
    case ExperimentKind::kEchoComparison: return {"meta", "echo"};
    case ExperimentKind::kMetricFusion: return {"benign", "fusion"};
    case ExperimentKind::kMmseVulnerability: return {"mmse", "dvhop"};
    case ExperimentKind::kThresholdSensitivity: return {"tau", "fudge"};
    case ExperimentKind::kTimeEvolving: return {"meta", "evolve"};
    case ExperimentKind::kInNetwork: return {"fp", "coop"};
  }
  LAD_REQUIRE_MSG(false, "invalid experiment kind");
  return {};  // unreachable
}

}  // namespace

struct ScenarioRunner::Impl {
  ScenarioSpec spec;

  /// One shared benign pass: per-metric scores plus each sample's victim
  /// group (the per-group threshold modes bucket by it).
  struct BenignPass {
    std::map<MetricKind, std::vector<double>> scores;
    std::vector<int> victim_groups;
  };

  // --- shared deterministic state (lazy; values never depend on which
  //     items run, only the spec).  Latched caches: concurrent work items
  //     (jobs > 1) wanting the same key build it exactly once, and the
  //     sequential run fills them in the exact historical order.
  LatchedCache<Pipeline> pipelines;
  // (pipeline key | localizer) -> the shared benign pass
  LatchedCache<BenignPass> benign;
  LatchedCache<double> loc_errors;
  // threshold-sensitivity: per-damage attack scores on the base pipeline
  LatchedCache<std::vector<double>> attack_cache;
  // dr-sweep per_group mode: per-(pipeline|localizer|metric) boundary-group
  // fits - invariant across the attack/x/damage axes, so trained once.
  LatchedCache<std::vector<GroupTrainingResult>> group_fits;

  explicit Impl(const ScenarioSpec& s) : spec(s) {}

  PipelineConfig group_config(DeploymentShape shape, double actual_sigma,
                              double jitter) const {
    PipelineConfig cfg = spec.pipeline;
    cfg.shape = shape;
    cfg.actual_sigma = actual_sigma;
    cfg.deployment_jitter = jitter;
    return cfg;
  }

  static std::string config_key(const PipelineConfig& cfg) {
    std::ostringstream os;
    os << deployment_shape_name(cfg.shape) << "|m="
       << cfg.deploy.nodes_per_group << "|as=" << cfg.actual_sigma
       << "|j=" << cfg.deployment_jitter << "|seed=" << cfg.seed;
    return os.str();
  }

  Pipeline& pipeline_for(const PipelineConfig& cfg) {
    return pipelines.get(config_key(cfg),
                         [&] { return std::make_unique<Pipeline>(cfg); });
  }

  /// Benign scores for every spec metric under one (pipeline, localizer);
  /// per-metric values are independent of which metrics share the pass.
  const BenignPass& benign_for(Pipeline& pipeline,
                               const std::string& localizer) {
    const std::string key =
        config_key(pipeline.config()) + "|" + localizer;
    return benign.get(key, [&] {
      const LocalizerFactory factory =
          localizer_factory_from_name(localizer, pipeline);
      auto pass = std::make_unique<BenignPass>();
      pass->scores =
          pipeline.benign_scores(factory, spec.metrics, &pass->victim_groups);
      return pass;
    });
  }

  double loc_error_for(Pipeline& pipeline, const std::string& localizer) {
    const std::string key =
        config_key(pipeline.config()) + "|" + localizer;
    return loc_errors.get(key, [&] {
      const LocalizerFactory factory =
          localizer_factory_from_name(localizer, pipeline);
      return std::make_unique<double>(
          pipeline.mean_localization_error(factory));
    });
  }

  /// Boundary-group threshold fits for the per_group mode; a deterministic
  /// function of (pipeline, localizer, metric) given the spec's fp_budget
  /// and floor, so cached under that key.
  const std::vector<GroupTrainingResult>& group_fit_for(
      Pipeline& pipeline, const std::string& localizer, MetricKind metric,
      double global_threshold) {
    const std::string key = config_key(pipeline.config()) + "|" + localizer +
                            "|" + metric_name(metric);
    return group_fits.get(key, [&] {
      const BenignPass& pass = benign_for(pipeline, localizer);
      GroupTrainingOptions options;
      options.groups = boundary_groups(pipeline.model());
      options.min_samples = static_cast<std::size_t>(spec.group_min_samples);
      return std::make_unique<std::vector<GroupTrainingResult>>(
          train_group_thresholds(metric, pass.scores.at(metric),
                                 pass.victim_groups, options,
                                 1.0 - spec.fp_budget, global_threshold));
    });
  }

  const std::vector<double>& attack_scores_cached(Pipeline& pipeline,
                                                  const AttackSpec& spec_) {
    std::ostringstream key;
    key << spec_.damage;
    return attack_cache.get(key.str(), [&] {
      return std::make_unique<std::vector<double>>(
          pipeline.attack_scores(spec_));
    });
  }

  // --- per-kind execution ----------------------------------------------
  ScenarioResult run_roc(const ShardRange& shard);
  ScenarioResult run_dr(const ShardRange& shard);
  ScenarioResult run_density(const ShardRange& shard);
  ScenarioResult run_pdf(const ShardRange& shard);
  ScenarioResult run_gz(const ShardRange& shard);
  ScenarioResult run_correction(const ShardRange& shard);
  ScenarioResult run_echo(const ShardRange& shard);
  ScenarioResult run_fusion(const ShardRange& shard);
  ScenarioResult run_mmse(const ShardRange& shard);
  ScenarioResult run_threshold(const ShardRange& shard);
  ScenarioResult run_evolve(const ShardRange& shard);
  ScenarioResult run_coop(const ShardRange& shard);
};

ScenarioRunner::ScenarioRunner(const ScenarioSpec& spec)
    : impl_(std::make_unique<Impl>(spec)) {}

ScenarioRunner::~ScenarioRunner() = default;

long long ScenarioRunner::num_items() const {
  return total_items(impl_->spec);
}

std::vector<std::string> ScenarioRunner::table_ids() const {
  return table_ids_for(impl_->spec);
}

bool ScenarioRunner::output_complete(const std::string& dir,
                                     const ShardRange& shard,
                                     std::string* reason) const {
  namespace fs = std::filesystem;
  const auto incomplete = [&](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  const long long total = num_items();
  std::set<long long> found;
  for (const std::string& id : table_ids()) {
    const fs::path path =
        fs::path(dir) / (impl_->spec.name + "." + id + ".csv");
    std::ifstream is(path);
    if (!is) return incomplete("missing " + path.string());
    std::string line;
    if (!std::getline(is, line)) {
      return incomplete("empty file " + path.string());
    }
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      const std::size_t comma = line.find(',');
      long long item = -1;
      try {
        item = parse_int(
            comma == std::string::npos ? line : line.substr(0, comma));
      } catch (const AssertionError&) {
        return incomplete("malformed row in " + path.string() + ": " + line);
      }
      if (item < 0 || item >= total || !shard.contains(item)) {
        return incomplete(path.string() + " holds rows for work item " +
                          std::to_string(item) +
                          ", which this shard does not own (different "
                          "--shard split?)");
      }
      found.insert(item);
    }
  }
  // Every work item emits at least one tagged row, so a shard is complete
  // exactly when every id it owns shows up somewhere - a header-only CSV
  // from a run killed after the header write therefore reads incomplete.
  for (long long i = shard.index; i < total;
       i += static_cast<long long>(shard.count)) {
    if (!found.count(i)) {
      return incomplete("no rows for work item " + std::to_string(i) +
                        " (run killed between header write and first "
                        "row?)");
    }
  }
  return true;
}

ScenarioResult ScenarioRunner::run(const ShardRange& shard) {
  LAD_REQUIRE_MSG(shard.count >= 1 && shard.index >= 0 &&
                      shard.index < shard.count,
                  "invalid shard range " << shard.index << "/" << shard.count);
  switch (impl_->spec.kind) {
    case ExperimentKind::kRoc: return impl_->run_roc(shard);
    case ExperimentKind::kDrSweep: return impl_->run_dr(shard);
    case ExperimentKind::kDensitySweep: return impl_->run_density(shard);
    case ExperimentKind::kDeploymentPdf: return impl_->run_pdf(shard);
    case ExperimentKind::kGzAccuracy: return impl_->run_gz(shard);
    case ExperimentKind::kCorrection: return impl_->run_correction(shard);
    case ExperimentKind::kEchoComparison: return impl_->run_echo(shard);
    case ExperimentKind::kMetricFusion: return impl_->run_fusion(shard);
    case ExperimentKind::kMmseVulnerability: return impl_->run_mmse(shard);
    case ExperimentKind::kThresholdSensitivity:
      return impl_->run_threshold(shard);
    case ExperimentKind::kTimeEvolving: return impl_->run_evolve(shard);
    case ExperimentKind::kInNetwork: return impl_->run_coop(shard);
  }
  LAD_REQUIRE_MSG(false, "invalid experiment kind");
  return {};  // unreachable
}

ScenarioResult ScenarioRunner::Impl::run_roc(const ShardRange& shard) {
  const bool many_metrics = spec.metrics.size() > 1;
  const bool many_attacks = spec.attacks.size() > 1;
  const bool many_xs = spec.compromised.size() > 1;

  std::vector<std::string> dims;
  if (many_metrics) dims.push_back("metric");
  if (many_attacks) dims.push_back("attack");
  dims.push_back("D");
  if (many_xs) dims.push_back("x");

  std::vector<std::string> summary_cols = dims;
  summary_cols.push_back("AUC");
  for (double fp : spec.fp_grid) summary_cols.push_back(percent_label(fp));
  std::vector<std::string> curve_cols = dims;
  curve_cols.push_back("FP");
  curve_cols.push_back("DR");

  ScenarioResult result{spec.name, {}};
  result.tables.push_back({"summary", Table(summary_cols), {}});
  if (spec.curve_points > 0) {
    result.tables.push_back({"curves", Table(curve_cols), {}});
  }

  ItemScheduler sched(result, spec.jobs);
  long long item = -1;
  for (MetricKind metric : spec.metrics) {
    for (AttackClass cls : spec.attacks) {
      for (double d : spec.damages) {
        for (double x : spec.compromised) {
          ++item;
          if (!shard.contains(item)) continue;
          sched.add(item, [this, metric, cls, d, x, many_metrics,
                           many_attacks, many_xs](ItemSink& sink) {
            Pipeline& pipeline = pipeline_for(
                group_config(spec.shapes.front(), spec.actual_sigmas.front(),
                             spec.jitters.front()));
            const std::vector<double>& benign_scores =
                benign_for(pipeline, spec.localizers.front())
                    .scores.at(metric);
            AttackSpec attack;
            attack.metric = metric;
            attack.attack_class = cls;
            attack.damage = d;
            attack.compromised_frac = x;
            const RocCurve curve(benign_scores,
                                 pipeline.attack_scores(attack));

            auto add_dims = [&](Table& t) -> Table& {
              if (many_metrics) t.add(metric_name(metric));
              if (many_attacks) t.add(attack_class_name(cls));
              t.add(d, 0);
              if (many_xs) t.add(x, 2);
              return t;
            };
            Table& row = add_dims(sink.row(0));
            row.add(curve.auc(), 4);
            for (double fp : spec.fp_grid) {
              row.add(curve.detection_rate_at_fp(fp), 4);
            }
            if (spec.curve_points > 0) {
              const auto& pts = curve.points();
              const std::size_t stride = std::max<std::size_t>(
                  1, pts.size() / static_cast<std::size_t>(spec.curve_points));
              for (std::size_t i = 0; i < pts.size(); i += stride) {
                add_dims(sink.row(1))
                    .add(pts[i].false_positive_rate, 5)
                    .add(pts[i].detection_rate, 5);
              }
            }
          });
        }
      }
    }
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_dr(const ShardRange& shard) {
  const auto pairs = mismatch_pairs(spec);
  const bool many_sigmas = spec.actual_sigmas.size() > 1;
  const bool many_jitters = spec.jitters.size() > 1;
  const bool many_shapes = spec.shapes.size() > 1;
  const bool many_locs = spec.localizers.size() > 1;
  const bool many_metrics = spec.metrics.size() > 1;
  const bool many_attacks = spec.attacks.size() > 1;
  const bool many_modes = spec.group_threshold_modes.size() > 1;
  // The boundary/interior split columns appear whenever the per_group mode
  // is in play - the whole point of the sweep is comparing the edge
  // against the (byte-identical) interior.
  const bool split_groups =
      std::find(spec.group_threshold_modes.begin(),
                spec.group_threshold_modes.end(),
                GroupThresholdMode::kPerGroup) !=
      spec.group_threshold_modes.end();

  std::vector<std::string> cols;
  if (many_modes) cols.push_back("group_mode");
  if (many_sigmas) cols.push_back("actual_sigma");
  if (many_jitters) cols.push_back("jitter");
  if (many_shapes) cols.push_back("shape");
  if (many_locs) cols.push_back("localizer");
  if (many_metrics) cols.push_back("metric");
  if (many_attacks) cols.push_back("attack");
  cols.push_back("x");
  cols.push_back("D");
  cols.push_back("DR");
  cols.push_back("trained_FP");
  cols.push_back("threshold");
  if (split_groups) {
    cols.insert(cols.end(),
                {"DR_interior", "DR_boundary", "FP_interior", "FP_boundary"});
  }
  if (spec.loc_error) cols.push_back("loc_error");

  ScenarioResult result{spec.name, {}};
  result.tables.push_back({"dr", Table(cols), {}});

  // fraction of `scores` above its victim-group threshold, restricted to
  // samples whose group passes `keep` (empty selection -> 0).
  const auto rate_where = [](const std::vector<double>& scores,
                             const std::vector<int>& groups,
                             const std::vector<double>& thresholds,
                             const auto& keep) {
    std::size_t n = 0, above = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      const int g = groups[i];
      if (!keep(g)) continue;
      ++n;
      if (scores[i] > thresholds[static_cast<std::size_t>(g)]) ++above;
    }
    return n == 0 ? 0.0
                  : static_cast<double>(above) / static_cast<double>(n);
  };

  ItemScheduler sched(result, spec.jobs);
  long long item = -1;
  for (GroupThresholdMode mode : spec.group_threshold_modes) {
    for (const auto& pair : pairs) {
      const double actual_sigma = pair.first;
      const double jitter = pair.second;
      for (DeploymentShape shape : spec.shapes) {
        for (const std::string& localizer : spec.localizers) {
          for (MetricKind metric : spec.metrics) {
            for (AttackClass cls : spec.attacks) {
              for (double x : spec.compromised) {
                for (double d : spec.damages) {
                  ++item;
                  if (!shard.contains(item)) continue;
                  sched.add(item, [this, mode, actual_sigma, jitter, shape,
                                   localizer, metric, cls, x, d, many_modes,
                                   many_sigmas, many_jitters, many_shapes,
                                   many_locs, many_metrics, many_attacks,
                                   split_groups,
                                   &rate_where](ItemSink& sink) {
                    Pipeline& pipeline = pipeline_for(
                        group_config(shape, actual_sigma, jitter));
                    const BenignPass& benign_pass =
                        benign_for(pipeline, localizer);
                    const std::vector<double>& benign_scores =
                        benign_pass.scores.at(metric);
                    const ThresholdFit fit =
                        fit_threshold(metric, benign_scores, spec.fp_budget);
                    AttackSpec attack;
                    attack.metric = metric;
                    attack.attack_class = cls;
                    attack.damage = d;
                    attack.compromised_frac = x;
                    std::vector<int> attack_groups;
                    const std::vector<double> scores = pipeline.attack_scores(
                        attack, split_groups ? &attack_groups : nullptr);

                    // Per-group threshold vector: the pooled fit everywhere,
                    // boundary groups re-fitted on their own benign buckets
                    // in per_group mode (interior groups always keep the
                    // pooled value, which is what keeps their verdicts
                    // byte-identical across modes).
                    const std::size_t num_groups = static_cast<std::size_t>(
                        pipeline.model().num_groups());
                    std::vector<double> thresholds(num_groups,
                                                   fit.threshold());
                    std::vector<char> is_boundary(num_groups, 0);
                    if (split_groups) {
                      const std::vector<GroupTrainingResult>& fits =
                          group_fit_for(pipeline, localizer, metric,
                                        fit.threshold());
                      for (const GroupTrainingResult& r : fits) {
                        is_boundary[static_cast<std::size_t>(r.group)] = 1;
                        if (mode == GroupThresholdMode::kPerGroup) {
                          thresholds[static_cast<std::size_t>(r.group)] =
                              r.training.threshold;
                        }
                      }
                    }

                    Table& row = sink.row(0);
                    if (many_modes) row.add(group_threshold_mode_name(mode));
                    if (many_sigmas) row.add(actual_sigma, 1);
                    if (many_jitters) row.add(jitter, 1);
                    if (many_shapes) row.add(deployment_shape_name(shape));
                    if (many_locs) row.add(localizer);
                    if (many_metrics) row.add(metric_name(metric));
                    if (many_attacks) row.add(attack_class_name(cls));
                    row.add(x, 2).add(d, 0);
                    const auto all = [](int) { return true; };
                    if (mode == GroupThresholdMode::kPerGroup) {
                      row.add(rate_where(scores, attack_groups, thresholds,
                                         all),
                              4)
                          .add(rate_where(benign_scores, benign_pass.victim_groups,
                                          thresholds, all),
                               4);
                    } else {
                      row.add(fraction_above(scores, fit.threshold()), 4)
                          .add(fit.realized_fp, 4);
                    }
                    row.add(fit.threshold(), 2);
                    if (split_groups) {
                      const auto interior = [&](int g) {
                        return is_boundary[static_cast<std::size_t>(g)] == 0;
                      };
                      const auto boundary = [&](int g) {
                        return is_boundary[static_cast<std::size_t>(g)] != 0;
                      };
                      row.add(rate_where(scores, attack_groups, thresholds,
                                         interior),
                              4)
                          .add(rate_where(scores, attack_groups, thresholds,
                                          boundary),
                               4)
                          .add(rate_where(benign_scores, benign_pass.victim_groups,
                                          thresholds, interior),
                               4)
                          .add(rate_where(benign_scores, benign_pass.victim_groups,
                                          thresholds, boundary),
                               4);
                    }
                    if (spec.loc_error) {
                      row.add(loc_error_for(pipeline, localizer), 2);
                    }
                  });
                }
              }
            }
          }
        }
      }
    }
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_density(const ShardRange& shard) {
  const bool many_metrics = spec.metrics.size() > 1;
  const bool many_attacks = spec.attacks.size() > 1;

  std::vector<std::string> cols = {"m"};
  if (many_metrics) cols.push_back("metric");
  if (many_attacks) cols.push_back("attack");
  cols.insert(cols.end(), {"x", "D", "DR", "mle_loc_error", "threshold"});

  ScenarioResult result{spec.name, {}};
  result.tables.push_back({"density", Table(cols), {}});

  ItemScheduler sched(result, spec.jobs);
  long long item = -1;
  for (int m : spec.densities) {
    for (MetricKind metric : spec.metrics) {
      for (AttackClass cls : spec.attacks) {
        for (double x : spec.compromised) {
          for (double d : spec.damages) {
            ++item;
            if (!shard.contains(item)) continue;
            sched.add(item, [this, m, metric, cls, x, d, many_metrics,
                             many_attacks](ItemSink& sink) {
              // Each density re-deploys with the decorrelated per-m seed the
              // Fig. 9 sweep uses (density_pipeline_config).
              Pipeline& pipeline =
                  pipeline_for(density_pipeline_config(spec.pipeline, m));
              const std::string& localizer = spec.localizers.front();
              const ThresholdFit fit = fit_threshold(
                  metric, benign_for(pipeline, localizer).scores.at(metric),
                  spec.fp_budget);
              AttackSpec attack;
              attack.metric = metric;
              attack.attack_class = cls;
              attack.damage = d;
              attack.compromised_frac = x;
              const std::vector<double> scores =
                  pipeline.attack_scores(attack);

              Table& row = sink.row(0);
              row.add(m);
              if (many_metrics) row.add(metric_name(metric));
              if (many_attacks) row.add(attack_class_name(cls));
              row.add(x, 2)
                  .add(d, 0)
                  .add(fraction_above(scores, fit.threshold()), 4)
                  .add(loc_error_for(pipeline, localizer), 2)
                  .add(fit.threshold(), 2);
            });
          }
        }
      }
    }
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_pdf(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back({"surface", Table({"x", "y", "pdf"}), {}});
  result.tables.push_back(
      {"radial", Table({"distance_from_deployment_point", "pdf",
                        "fraction_within_distance"}),
       {}});

  const double sigma = spec.pipeline.deploy.sigma;
  const Vec2 dp{150.0, 150.0};  // the paper's Figure 2 group

  ItemScheduler sched(result, spec.jobs);
  if (shard.contains(0)) {
    sched.add(0, [this, sigma, dp](ItemSink& sink) {
      const int grid = spec.pdf_grid;
      for (int i = 0; i < grid; ++i) {
        for (int j = 0; j < grid; ++j) {
          const Vec2 p{300.0 * i / (grid - 1), 300.0 * j / (grid - 1)};
          sink.row(0)
              .add(p.x, 1)
              .add(p.y, 1)
              .add(gaussian2d_pdf_radial(distance(p, dp), sigma), 9);
        }
      }
    });
  }
  if (shard.contains(1)) {
    sched.add(1, [sigma](ItemSink& sink) {
      for (double r = 0.0; r <= 250.0; r += 25.0) {
        sink.row(1)
            .add(r, 0)
            .add(gaussian2d_pdf_radial(r, sigma), 9)
            .add(rayleigh_cdf(r, sigma), 6);
      }
    });
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_gz(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back(
      {"gz", Table({"omega", "max_abs_error", "max_mu_error_nodes",
                    "table_bytes"}),
       {}});
  const GzParams params{spec.pipeline.deploy.radio_range,
                        spec.pipeline.deploy.sigma};
  const int m = spec.pipeline.deploy.nodes_per_group;
  ItemScheduler sched(result, spec.jobs);
  for (std::size_t i = 0; i < spec.omegas.size(); ++i) {
    const long long item = static_cast<long long>(i);
    if (!shard.contains(item)) continue;
    const int omega = static_cast<int>(spec.omegas[i]);
    sched.add(item, [params, m, omega](ItemSink& sink) {
      const GzTable table(params, omega);
      const double err = table.max_abs_error(2000);
      sink.row(0)
          .add(omega)
          .add(err, 8)
          .add(err * m, 5)
          .add(static_cast<long long>((omega + 1) * sizeof(double)));
    });
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_correction(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back(
      {"benign_floor", Table({"mean_err", "max_err", "trials"}), {}});
  result.tables.push_back(
      {"correction",
       Table({"attack", "D", "err_accepting_Le", "err_corrected_mean",
              "err_corrected_p90", "recovered_frac"}),
       {}});
  if (shard_is_empty(shard, spec)) return result;

  const DeploymentConfig& dcfg = spec.pipeline.deploy;
  const std::uint64_t seed = spec.pipeline.seed;
  const double x = spec.compromised.front();
  const MetricKind target = spec.metrics.front();
  const int trials = spec.trials;

  const DeploymentModel model(dcfg);
  const GzTable gz({dcfg.radio_range, dcfg.sigma});
  // The deployed network consumes the head of Rng(seed); the benign-floor
  // item continues from the post-construction state, so the same network
  // and floor fall out of any shard that needs them.
  // lad-lint: allow(rng-construct) -- historical root stream for this
  // work item; re-keying would change every golden CSV.
  Rng rng(seed);
  const Network net(model, rng);
  const LocationCorrector corrector(model, gz);

  auto draw_in_field = [&](Rng& r) {
    std::size_t node;
    do {
      node = static_cast<std::size_t>(r.uniform_int(net.num_nodes()));
    } while (!dcfg.field().contains(net.position(node)));
    return node;
  };

  ItemScheduler sched(result, spec.jobs);
  if (shard.contains(0)) {
    // The benign-floor item continues the shared rng from its
    // post-Network-construction state; the closure owns a value copy so
    // the draw sequence matches the historical sequential run no matter
    // when (or on which thread) the item executes.
    sched.add(0, [rng, trials, &net, &corrector,
                  &draw_in_field](ItemSink& sink) {
      Rng floor_rng = rng;
      RunningStats floor;
      // Draw every floor sample first (identical rng call order), then one
      // observation batch over all of them.
      std::vector<std::size_t> nodes(static_cast<std::size_t>(trials));
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        nodes[t] = draw_in_field(floor_rng);
      }
      ObservationBatch batch;
      net.observe_many(nodes, batch);
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        floor.add(
            distance(corrector.correct(batch.to_observation(t)).corrected,
                     net.position(nodes[t])));
      }
      sink.row(0).add(floor.mean(), 1).add(floor.max(), 1).add(trials);
    });
  }

  long long item = 0;
  for (AttackClass cls : spec.attacks) {
    for (double d : spec.damages) {
      ++item;
      if (!shard.contains(item)) continue;
      sched.add(item, [item, cls, d, seed, trials, x, target, &net, &model,
                       &gz, &corrector, &dcfg,
                       &draw_in_field](ItemSink& sink) {
        std::vector<double> errs;
        // Keyed by item id, not by the (possibly fractional) damage value,
        // so distinct cells never share a stream.
        Rng trial_rng = Rng::stream(seed, static_cast<std::uint64_t>(item));
        // Victim + Le draws first (same rng call order as the historical
        // per-trial loop), then a single observation batch.
        std::vector<std::size_t> nodes(static_cast<std::size_t>(trials));
        std::vector<Vec2> les(nodes.size());
        for (std::size_t t = 0; t < nodes.size(); ++t) {
          nodes[t] = draw_in_field(trial_rng);
          les[t] = displaced_location(net.position(nodes[t]), d, dcfg.field(),
                                      trial_rng);
        }
        ObservationBatch batch;
        net.observe_many(nodes, batch);
        for (std::size_t t = 0; t < nodes.size(); ++t) {
          const Observation a = batch.to_observation(t);
          const ExpectedObservation mu =
              model.expected_observation(les[t], gz);
          const TaintResult taint =
              greedy_taint(a, mu, dcfg.nodes_per_group, target, cls,
                           static_cast<int>(x * a.total()));
          errs.push_back(distance(corrector.correct(taint.tainted).corrected,
                                  net.position(nodes[t])));
        }
        double mean = 0.0;
        int recovered = 0;
        for (double e : errs) {
          mean += e;
          if (e < d / 2.0) ++recovered;  // "recovered": below half the damage
        }
        mean /= static_cast<double>(errs.size());
        std::sort(errs.begin(), errs.end());
        const double p90 =
            errs[static_cast<std::size_t>(
                0.9 * static_cast<double>(errs.size() - 1))];
        sink.row(1)
            .add(attack_class_name(cls))
            .add(d, 0)
            .add(d, 0)
            .add(mean, 1)
            .add(p90, 1)
            .add(static_cast<double>(recovered) / trials, 3);
      });
    }
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_echo(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back(
      {"meta", Table({"echo_coverage", "lad_threshold"}), {}});
  result.tables.push_back(
      {"echo", Table({"D", "echo_rejected", "echo_accepted", "echo_uncovered",
                      "echo_DR", "lad_DR"}),
       {}});
  if (shard_is_empty(shard, spec)) return result;

  const DeploymentConfig& dcfg = spec.pipeline.deploy;
  const std::uint64_t seed = spec.pipeline.seed;
  const MetricKind metric = spec.metrics.front();
  const double x = spec.compromised.front();

  const DeploymentModel model(dcfg);
  const GzTable gz({dcfg.radio_range, dcfg.sigma});
  // lad-lint: allow(rng-construct) -- historical root stream for this
  // work item; re-keying would change every golden CSV.
  Rng rng(seed);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);
  const EchoProtocol echo = EchoProtocol::grid(
      dcfg.field(), spec.echo_grid_x, spec.echo_grid_y, spec.echo_range);

  // Train LAD on benign samples (continues the shared rng, like the net).
  const std::unique_ptr<Metric> scorer = make_metric(metric);
  std::vector<double> benign_scores;
  std::vector<std::size_t> train_nodes(
      static_cast<std::size_t>(spec.echo_train_samples));
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    train_nodes[i] = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
  }
  ObservationBatch train_batch;
  net.observe_many(train_nodes, train_batch);
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    const Observation obs = train_batch.to_observation(i);
    benign_scores.push_back(
        scorer->score(obs,
                      model.expected_observation(localizer.estimate(obs), gz),
                      dcfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(metric, benign_scores, spec.tau).threshold;
  const Detector detector(model, gz, metric, threshold);

  ItemScheduler sched(result, spec.jobs);
  if (shard.contains(0)) {
    sched.add(0, [threshold, &echo, &dcfg](ItemSink& sink) {
      sink.row(0).add(echo.coverage(dcfg.field()), 3).add(threshold, 2);
    });
  }

  long long item = 0;
  for (double d : spec.damages) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [this, item, d, seed, metric, x, &net, &model, &gz,
                     &echo, &detector, &dcfg](ItemSink& sink) {
      int rejected = 0, accepted = 0, uncovered = 0, lad_detected = 0;
      // Keyed by item id (see run_correction): damage values never collide
      // with each other or with the shared training stream.
      Rng trial_rng = Rng::stream(seed, static_cast<std::uint64_t>(item));
      // Victim + claimed-location draws first (same rng call order), then
      // one observation batch over the trials.
      std::vector<std::size_t> nodes(static_cast<std::size_t>(spec.trials));
      std::vector<Vec2> claims(nodes.size());
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        std::size_t node;
        do {
          node =
              static_cast<std::size_t>(trial_rng.uniform_int(net.num_nodes()));
        } while (!dcfg.field().contains(net.position(node)));
        nodes[t] = node;
        claims[t] =
            displaced_location(net.position(node), d, dcfg.field(), trial_rng);
      }
      ObservationBatch batch;
      net.observe_many(nodes, batch);
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        const Vec2 la = net.position(nodes[t]);
        const Vec2 claimed = claims[t];

        // The attacker may stretch the echo (delay >= 0) but never shrink
        // it; testing the honest echo plus one large delay covers the
        // attacker's whole strategy space.
        int verdict = echo.verify(claimed, la, 0.0);
        if (verdict == -1) {
          verdict = echo.verify(claimed, la, 10.0) == 1 ? 1 : -1;
        }
        if (verdict == 0) ++uncovered;
        else if (verdict == 1) ++accepted;
        else ++rejected;

        const Observation a = batch.to_observation(t);
        const ExpectedObservation mu = model.expected_observation(claimed, gz);
        const TaintResult taint = greedy_taint(
            a, mu, dcfg.nodes_per_group, metric, spec.attacks.front(),
            static_cast<int>(x * a.total()));
        if (detector.check(taint.tainted, claimed).anomaly) ++lad_detected;
      }
      sink.row(1)
          .add(d, 0)
          .add(rejected)
          .add(accepted)
          .add(uncovered)
          .add(static_cast<double>(rejected) / spec.trials, 3)
          .add(static_cast<double>(lad_detected) / spec.trials, 3);
    });
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_fusion(const ShardRange& shard) {
  std::vector<std::string> cols = {"attacker_targets"};
  for (MetricKind k : spec.metrics) {
    cols.push_back(std::string("DR_") + metric_name(k));
  }
  cols.push_back("DR_fusion");

  ScenarioResult result{spec.name, {}};
  result.tables.push_back({"benign", Table({"fused_FP", "tau"}), {}});
  result.tables.push_back({"fusion", Table(cols), {}});
  if (shard_is_empty(shard, spec)) return result;

  Pipeline& pipeline = pipeline_for(group_config(
      spec.shapes.front(), spec.actual_sigmas.front(), spec.jitters.front()));
  const auto& benign_scores =
      benign_for(pipeline, spec.localizers.front()).scores;

  // Thresholds always travel through a DetectorBundle - the unit the CLI
  // ships to sensors - either loaded from the spec's saved artifact
  // ([detector] bundle = path) or captured in memory from the same
  // training the historical inline path ran.  Either way the ablation
  // exercises the deployment surface, not a parallel code path.
  DetectorBundle bundle;
  if (!spec.bundle.empty()) {
    bundle = load_bundle_file(spec.bundle);
    // The artifact's thresholds are only meaningful against the score
    // distribution of the deployment they were trained on; a mismatched
    // bundle would silently skew every FP/DR column (fail-fast contract).
    LAD_REQUIRE_MSG(
        bundle.config == pipeline.model().config() &&
            bundle.deployment_points == pipeline.model().deployment_points() &&
            bundle.gz_omega == pipeline.config().gz_omega,
        "bundle '" << spec.bundle
                   << "' was trained on a different deployment than this "
                      "scenario's [pipeline]");
  } else {
    std::vector<DetectorSpec> sections;
    sections.reserve(spec.metrics.size());
    for (MetricKind k : spec.metrics) {
      sections.push_back(detector_spec_from_training(
          {train_threshold(k, benign_scores.at(k), spec.tau)}, spec.tau));
    }
    bundle =
        make_bundle(pipeline.model(), pipeline.config().gz_omega,
                    std::move(sections));
  }
  std::map<MetricKind, double> thresholds;
  for (MetricKind k : spec.metrics) {
    const DetectorSpec* section = find_detector(bundle, k);
    LAD_REQUIRE_MSG(section != nullptr,
                    "bundle '" << spec.bundle
                               << "' has no [detector] section for metric '"
                               << metric_name(k) << "'");
    thresholds[k] = section->threshold;
  }
  const double d = spec.damages.front();
  const double x = spec.compromised.front();

  ItemScheduler sched(result, spec.jobs);
  if (shard.contains(0)) {
    sched.add(0, [this, &benign_scores, &thresholds](ItemSink& sink) {
      const std::size_t n = benign_scores.begin()->second.size();
      int fused_fp = 0;
      for (std::size_t i = 0; i < n; ++i) {
        bool any = false;
        for (MetricKind k : spec.metrics) {
          if (benign_scores.at(k)[i] > thresholds.at(k)) any = true;
        }
        if (any) ++fused_fp;
      }
      sink.row(0)
          .add(static_cast<double>(fused_fp) / static_cast<double>(n), 4)
          .add(spec.tau, 3);
    });
  }

  long long item = 0;
  for (MetricKind target : spec.metrics) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [this, target, d, x, &pipeline,
                     &thresholds](ItemSink& sink) {
      AttackSpec attack;
      attack.metric = target;
      attack.attack_class = spec.attacks.front();
      attack.damage = d;
      attack.compromised_frac = x;
      const auto cross = pipeline.attack_scores_cross(attack, spec.metrics);

      Table& row = sink.row(1).add(metric_name(target));
      std::vector<char> fused_hit(cross.begin()->second.size(), 0);
      for (MetricKind scorer : spec.metrics) {
        const auto& scores = cross.at(scorer);
        row.add(fraction_above(scores, thresholds.at(scorer)), 4);
        for (std::size_t i = 0; i < scores.size(); ++i) {
          if (scores[i] > thresholds.at(scorer)) fused_hit[i] = 1;
        }
      }
      int hits = 0;
      for (char h : fused_hit) hits += h;
      row.add(
          static_cast<double>(hits) / static_cast<double>(fused_hit.size()),
          4);
    });
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_mmse(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back(
      {"mmse", Table({"lie_m", "mmse_mean_err", "mmse_max_err"}), {}});
  result.tables.push_back({"dvhop", Table({"lie_m", "dvhop_mean_err"}), {}});

  const std::uint64_t seed = spec.pipeline.seed;

  ItemScheduler sched(result, spec.jobs);
  long long item = -1;
  for (double lie : spec.lies) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [this, item, lie, seed](ItemSink& sink) {
      // Per-item keyed stream: shard placement cannot perturb the draws.
      Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(item));
      RunningStats err;
      for (int trial = 0; trial < spec.trials; ++trial) {
        const Vec2 truth{rng.uniform(100, 900), rng.uniform(100, 900)};
        std::vector<Vec2> refs = {
            {100, 100}, {900, 100}, {100, 900}, {900, 900}};
        std::vector<double> dists;
        for (const Vec2& r : refs) dists.push_back(distance(truth, r));
        const double theta = rng.uniform(0.0, 2 * M_PI);
        refs[0] = polar_offset(refs[0], lie, theta);
        const auto res = mmse_multilaterate(refs, dists);
        if (res) err.add(distance(res->position, truth));
      }
      sink.row(0).add(lie, 0).add(err.mean(), 2).add(err.max(), 2);
    });
  }

  // DV-Hop end-to-end on one deployed network (deterministic shared state).
  const DeploymentModel model(spec.pipeline.deploy);
  // lad-lint: allow(rng-construct) -- historical seed+1 stream of the
  // shared DV-Hop network; re-keying would change the golden CSV.
  Rng net_rng(seed + 1);
  const Network net(model, net_rng);
  for (double lie : spec.dvhop_lies) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [this, lie, seed, &net](ItemSink& sink) {
      // Each item owns its DvHopLocalizer (prepare/compromise mutate it)
      // and re-rolls the same victim picks from seed + 2, exactly like the
      // historical per-lie loop.
      DvHopLocalizer dvhop(3, 3);
      dvhop.prepare(net);
      if (lie > 0) {
        dvhop.compromise_anchor(0, polar_offset({167, 167}, lie, 0.7));
      }
      RunningStats err;
      // lad-lint: allow(rng-construct) -- historical per-lie victim
      // stream (seed + 2); re-keying would change the golden CSV.
      Rng pick(seed + 2);
      for (int trial = 0; trial < spec.dvhop_trials; ++trial) {
        const std::size_t node =
            static_cast<std::size_t>(pick.uniform_int(net.num_nodes()));
        err.add(distance(dvhop.localize(net, node), net.position(node)));
      }
      sink.row(1).add(lie, 0).add(err.mean(), 2);
    });
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_threshold(const ShardRange& shard) {
  std::vector<std::string> cols = {"threshold", "FP"};
  for (double d : spec.damages) cols.push_back(dr_at_damage_label(d));
  std::vector<std::string> tau_cols = {"tau"};
  tau_cols.insert(tau_cols.end(), cols.begin(), cols.end());
  std::vector<std::string> fudge_cols = {"fudge"};
  fudge_cols.insert(fudge_cols.end(), cols.begin(), cols.end());

  ScenarioResult result{spec.name, {}};
  result.tables.push_back({"tau", Table(tau_cols), {}});
  result.tables.push_back({"fudge", Table(fudge_cols), {}});
  if (shard_is_empty(shard, spec)) return result;

  Pipeline& pipeline = pipeline_for(group_config(
      spec.shapes.front(), spec.actual_sigmas.front(), spec.jitters.front()));
  const MetricKind metric = spec.metrics.front();
  const std::vector<double>& benign_scores =
      benign_for(pipeline, spec.localizers.front()).scores.at(metric);

  auto attack_for = [&](double d) -> const std::vector<double>& {
    AttackSpec attack;
    attack.metric = metric;
    attack.attack_class = spec.attacks.front();
    attack.damage = d;
    attack.compromised_frac = spec.compromised.front();
    return attack_scores_cached(pipeline, attack);
  };
  auto emit = [&](Table& row, double threshold) {
    row.add(threshold, 2).add(fraction_above(benign_scores, threshold), 4);
    for (double d : spec.damages) {
      row.add(fraction_above(attack_for(d), threshold), 4);
    }
  };

  ItemScheduler sched(result, spec.jobs);
  long long item = -1;
  for (double tau : spec.taus) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [tau, metric, &benign_scores, &emit](ItemSink& sink) {
      const TrainingResult r = train_threshold(metric, benign_scores, tau);
      emit(sink.row(0).add(tau, 3), r.threshold);
    });
  }
  const double base =
      spec.fudges.empty()
          ? 0.0
          : train_threshold(metric, benign_scores, spec.tau).threshold;
  for (double fudge : spec.fudges) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [fudge, base, &emit](ItemSink& sink) {
      emit(sink.row(1).add(fudge, 2), base * fudge);
    });
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_evolve(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back(
      {"meta", Table({"lad_threshold", "rounds", "trials"}), {}});
  result.tables.push_back(
      {"evolve", Table({"attack", "D", "round", "corrupted", "DR"}), {}});
  if (shard_is_empty(shard, spec)) return result;

  const DeploymentConfig& dcfg = spec.pipeline.deploy;
  const std::uint64_t seed = spec.pipeline.seed;
  const MetricKind metric = spec.metrics.front();

  const DeploymentModel model(dcfg);
  const GzTable gz({dcfg.radio_range, dcfg.sigma});
  // lad-lint: allow(rng-construct) -- historical root stream for this
  // work item; re-keying would change every golden CSV.
  Rng rng(seed);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);

  // Train LAD on benign samples (continues the shared rng, like run_echo);
  // the threshold stays fixed across rounds - only the attacker evolves.
  const std::unique_ptr<Metric> scorer = make_metric(metric);
  std::vector<double> benign_scores;
  std::vector<std::size_t> train_nodes(
      static_cast<std::size_t>(spec.evolve_train_samples));
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    train_nodes[i] = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
  }
  ObservationBatch train_batch;
  net.observe_many(train_nodes, train_batch);
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    const Observation obs = train_batch.to_observation(i);
    benign_scores.push_back(
        scorer->score(obs,
                      model.expected_observation(localizer.estimate(obs), gz),
                      dcfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(metric, benign_scores, spec.tau).threshold;
  const Detector detector(model, gz, metric, threshold);

  ItemScheduler sched(result, spec.jobs);
  if (shard.contains(0)) {
    sched.add(0, [this, threshold](ItemSink& sink) {
      sink.row(0).add(threshold, 2).add(spec.evolve_rounds).add(spec.trials);
    });
  }

  long long item = 0;
  for (AttackClass cls : spec.attacks) {
    for (double d : spec.damages) {
      ++item;
      if (!shard.contains(item)) continue;
      sched.add(item, [this, item, cls, d, seed, metric, &net, &model, &gz,
                       &detector, &dcfg](ItemSink& sink) {
        // Keyed by item id (see run_correction): (attack, damage) cells
        // never share a stream with each other or with training.
        Rng trial_rng = Rng::stream(seed, static_cast<std::uint64_t>(item));
        // Victim + claimed-location draws first (one rng call order no
        // matter how rounds interleave), then one observation batch.
        std::vector<std::size_t> nodes(static_cast<std::size_t>(spec.trials));
        std::vector<Vec2> claims(nodes.size());
        for (std::size_t t = 0; t < nodes.size(); ++t) {
          std::size_t node;
          do {
            node = static_cast<std::size_t>(
                trial_rng.uniform_int(net.num_nodes()));
          } while (!dcfg.field().contains(net.position(node)));
          nodes[t] = node;
          claims[t] = displaced_location(net.position(node), d, dcfg.field(),
                                         trial_rng);
        }
        ObservationBatch batch;
        net.observe_many(nodes, batch);
        std::vector<ExpectedObservation> mus;
        mus.reserve(claims.size());
        for (const Vec2& claim : claims) {
          mus.push_back(model.expected_observation(claim, gz));
        }
        // Round r: the same victims re-assert the same claim, but the
        // attacker has corrupted `initial + r * step` beacons by now (the
        // greedy taint with a growing absolute budget is monotone, so
        // round r+1's taint extends round r's).
        for (int round = 0; round < spec.evolve_rounds; ++round) {
          const int corrupted = spec.evolve_initial + round * spec.evolve_step;
          int detected = 0;
          for (std::size_t t = 0; t < nodes.size(); ++t) {
            const TaintResult taint =
                greedy_taint(batch.to_observation(t), mus[t],
                             dcfg.nodes_per_group, metric, cls, corrupted);
            if (detector.check(taint.tainted, claims[t]).anomaly) ++detected;
          }
          sink.row(1)
              .add(attack_class_name(cls))
              .add(d, 0)
              .add(round)
              .add(corrupted)
              .add(static_cast<double>(detected) / spec.trials, 3);
        }
      });
    }
  }
  sched.run();
  return result;
}

ScenarioResult ScenarioRunner::Impl::run_coop(const ShardRange& shard) {
  ScenarioResult result{spec.name, {}};
  result.tables.push_back(
      {"fp",
       Table({"solo_FP", "node_FP", "coop_FP", "mean_voters"}),
       {}});
  result.tables.push_back(
      {"coop",
       Table({"D", "solo_DR", "node_DR", "coop_DR", "mean_voters"}),
       {}});
  if (shard_is_empty(shard, spec)) return result;

  const DeploymentConfig& dcfg = spec.pipeline.deploy;
  const std::uint64_t seed = spec.pipeline.seed;
  const MetricKind metric = spec.metrics.front();
  const AttackClass cls = spec.attacks.front();
  const double x = spec.compromised.front();

  const DeploymentModel model(dcfg);
  const GzTable gz({dcfg.radio_range, dcfg.sigma});
  // lad-lint: allow(rng-construct) -- historical root stream for this
  // work item; re-keying would change every golden CSV.
  Rng rng(seed);
  const Network net(model, rng);
  const BeaconlessMleLocalizer localizer(model, gz);

  // Train the solo LAD detector (continues the shared rng, like run_echo).
  const std::unique_ptr<Metric> scorer = make_metric(metric);
  std::vector<double> benign_scores;
  std::vector<std::size_t> train_nodes(
      static_cast<std::size_t>(spec.coop_train_samples));
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    train_nodes[i] = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
  }
  ObservationBatch train_batch;
  net.observe_many(train_nodes, train_batch);
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    const Observation obs = train_batch.to_observation(i);
    benign_scores.push_back(
        scorer->score(obs,
                      model.expected_observation(localizer.estimate(obs), gz),
                      dcfg.nodes_per_group));
  }
  const double threshold =
      train_threshold(metric, benign_scores, spec.tau).threshold;
  const Detector detector(model, gz, metric, threshold);

  // One trial batch shared by the benign and every attack item: draw the
  // victims, observe, then vote.  `d < 0` means benign (claim = truth,
  // untainted observation).  Nodes within coop_radius of the CLAIMED
  // location vote, but only those with radio standing: a node expects to
  // hear the claimer when the claim is within the claimer's tx range
  // (receiver-perspective unit disk, deploy/network.h), and actually
  // hears it when the true position is.  Expectation != reality is an
  // anomalous vote; a node with neither (outside both disks) has no
  // evidence and abstains.  An honest claim makes the two disks coincide,
  // so the vote-level FP rate is exactly zero by construction, while a
  // displaced claim leaves both disks' occupants testifying against it.
  const auto run_trials = [this, seed, metric, cls, x, &net, &model, &gz,
                           &detector,
                           &dcfg](long long item, double d, Table& row) {
    Rng trial_rng = Rng::stream(seed, static_cast<std::uint64_t>(item));
    std::vector<std::size_t> nodes(static_cast<std::size_t>(spec.trials));
    std::vector<Vec2> claims(nodes.size());
    for (std::size_t t = 0; t < nodes.size(); ++t) {
      std::size_t node;
      do {
        node =
            static_cast<std::size_t>(trial_rng.uniform_int(net.num_nodes()));
      } while (!dcfg.field().contains(net.position(node)));
      nodes[t] = node;
      claims[t] = d < 0 ? net.position(node)
                        : displaced_location(net.position(node), d,
                                             dcfg.field(), trial_rng);
    }
    ObservationBatch batch;
    net.observe_many(nodes, batch);

    int solo = 0, coop = 0;
    long long votes = 0, anomalous_votes = 0, voters_total = 0;
    for (std::size_t t = 0; t < nodes.size(); ++t) {
      const Observation a = batch.to_observation(t);
      if (d < 0) {
        if (detector.check(a, claims[t]).anomaly) ++solo;
      } else {
        const ExpectedObservation mu =
            model.expected_observation(claims[t], gz);
        const TaintResult taint =
            greedy_taint(a, mu, dcfg.nodes_per_group, metric, cls,
                         static_cast<int>(x * a.total()));
        if (detector.check(taint.tainted, claims[t]).anomaly) ++solo;
      }
      const std::vector<std::size_t> nearby =
          net.nodes_within(claims[t], spec.coop_radius, nodes[t]);
      long long standing = 0, bad = 0;
      for (std::size_t v : nearby) {
        const double range = net.tx_range(nodes[t]);
        const bool expected =
            distance(net.position(v), claims[t]) <= range;
        const bool actual =
            distance(net.position(v), net.position(nodes[t])) <= range;
        if (!expected && !actual) continue;  // no evidence either way
        ++standing;
        if (expected != actual) ++bad;
      }
      votes += standing;
      anomalous_votes += bad;
      voters_total += standing;
      if (standing > 0 &&
          static_cast<double>(bad) >=
              spec.coop_majority * static_cast<double>(standing)) {
        ++coop;
      }
    }
    const double trials = static_cast<double>(spec.trials);
    if (d >= 0) row.add(d, 0);
    row.add(solo / trials, 3)
        .add(votes == 0 ? 0.0
                        : static_cast<double>(anomalous_votes) /
                              static_cast<double>(votes),
             3)
        .add(coop / trials, 3)
        .add(static_cast<double>(voters_total) / trials, 1);
  };

  ItemScheduler sched(result, spec.jobs);
  if (shard.contains(0)) {
    sched.add(0, [&run_trials](ItemSink& sink) {
      run_trials(0, -1.0, sink.row(0));
    });
  }
  long long item = 0;
  for (double d : spec.damages) {
    ++item;
    if (!shard.contains(item)) continue;
    sched.add(item, [item, d, &run_trials](ItemSink& sink) {
      run_trials(item, d, sink.row(1));
    });
  }
  sched.run();
  return result;
}

}  // namespace lad
