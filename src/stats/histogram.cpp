#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lad {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  LAD_REQUIRE_MSG(hi > lo, "histogram range is empty");
  LAD_REQUIRE_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  LAD_REQUIRE(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }
double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }
double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + width_ / 2.0;
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / width_;
  const std::size_t bin = std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < bin; ++b) below += counts_[b];
  const double frac = pos - static_cast<double>(bin);
  return (static_cast<double>(below) +
          frac * static_cast<double>(counts_[bin])) /
         static_cast<double>(total_);
}

void Histogram::merge(const Histogram& o) {
  LAD_REQUIRE_MSG(o.lo_ == lo_ && o.hi_ == hi_ && o.counts_.size() == counts_.size(),
                  "merging histograms with different layouts");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
  total_ += o.total_;
}

}  // namespace lad
