// Fixed-width histogram over [lo, hi); out-of-range samples land in
// saturated edge bins so nothing is silently dropped.
#pragma once

#include <cstdint>
#include <vector>

namespace lad {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Fraction of mass at or below x (empirical CDF evaluated on bin edges;
  /// linear within the containing bin).
  double cdf(double x) const;

  /// Merges histograms with identical layout.
  void merge(const Histogram& o);

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace lad
