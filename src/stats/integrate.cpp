#include "stats/integrate.h"

#include <array>
#include <cmath>

#include "util/assert.h"

namespace lad {
namespace {

double simpson(const std::function<double(double)>& /*f*/, double a, double fa,
               double b, double fb, double /*m*/, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa,
                double b, double fb, double m, double fm, double whole,
                double tol, int depth) {
  const double lm = (a + m) / 2.0;
  const double rm = (m + b) / 2.0;
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(f, a, fa, m, fm, lm, flm);
  const double right = simpson(f, m, fm, b, fb, rm, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return adaptive(f, a, fa, m, fm, lm, flm, left, tol / 2.0, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, tol / 2.0, depth - 1);
}

// Nodes/weights for the positive half-interval; symmetric about 0.
struct GlRule {
  const double* nodes;
  const double* weights;
  int half;  // number of positive nodes (order/2)
};

constexpr double kGl4Nodes[] = {0.3399810435848563, 0.8611363115940526};
constexpr double kGl4Weights[] = {0.6521451548625461, 0.3478548451374538};

constexpr double kGl8Nodes[] = {0.1834346424956498, 0.5255324099163290,
                                0.7966664774136267, 0.9602898564975363};
constexpr double kGl8Weights[] = {0.3626837833783620, 0.3137066458778873,
                                  0.2223810344533745, 0.1012285362903763};

constexpr double kGl16Nodes[] = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr double kGl16Weights[] = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

constexpr double kGl32Nodes[] = {
    0.0483076656877383, 0.1444719615827965, 0.2392873622521371,
    0.3318686022821277, 0.4213512761306353, 0.5068999089322294,
    0.5877157572407623, 0.6630442669302152, 0.7321821187402897,
    0.7944837959679424, 0.8493676137325700, 0.8963211557660521,
    0.9349060759377397, 0.9647622555875064, 0.9856115115452684,
    0.9972638618494816};
constexpr double kGl32Weights[] = {
    0.0965400885147278, 0.0956387200792749, 0.0938443990808046,
    0.0911738786957639, 0.0876520930044038, 0.0833119242269467,
    0.0781938957870703, 0.0723457941088485, 0.0658222227763618,
    0.0586840934785355, 0.0509980592623762, 0.0428358980222267,
    0.0342738629130214, 0.0253920653092621, 0.0162743947309057,
    0.0070186100094701};

constexpr double kGl64Nodes[] = {
    0.0243502926634244, 0.0729931217877990, 0.1214628192961206,
    0.1696444204239928, 0.2174236437400071, 0.2646871622087674,
    0.3113228719902110, 0.3572201583376681, 0.4022701579639916,
    0.4463660172534641, 0.4894031457070530, 0.5312794640198946,
    0.5718956462026340, 0.6111553551723933, 0.6489654712546573,
    0.6852363130542333, 0.7198818501716109, 0.7528199072605319,
    0.7839723589433414, 0.8132653151227975, 0.8406292962525803,
    0.8659993981540928, 0.8893154459951141, 0.9105221370785028,
    0.9295691721319396, 0.9464113748584028, 0.9610087996520538,
    0.9733268277899110, 0.9833362538846260, 0.9910133714767443,
    0.9963401167719553, 0.9993050417357722};
constexpr double kGl64Weights[] = {
    0.0486909570091397, 0.0485754674415034, 0.0483447622348030,
    0.0479993885964583, 0.0475401657148303, 0.0469681828162100,
    0.0462847965813144, 0.0454916279274181, 0.0445905581637566,
    0.0435837245293235, 0.0424735151236536, 0.0412625632426235,
    0.0399537411327203, 0.0385501531786156, 0.0370551285402400,
    0.0354722132568824, 0.0338051618371416, 0.0320579283548516,
    0.0302346570724025, 0.0283396726142595, 0.0263774697150547,
    0.0243527025687109, 0.0222701738083833, 0.0201348231535302,
    0.0179517157756973, 0.0157260304760247, 0.0134630478967186,
    0.0111681394601311, 0.0088467598263639, 0.0065044579689784,
    0.0041470332605625, 0.0017832807216964};

GlRule gl_rule(int order) {
  switch (order) {
    case 4: return {kGl4Nodes, kGl4Weights, 2};
    case 8: return {kGl8Nodes, kGl8Weights, 4};
    case 16: return {kGl16Nodes, kGl16Weights, 8};
    case 32: return {kGl32Nodes, kGl32Weights, 16};
    case 64: return {kGl64Nodes, kGl64Weights, 32};
    default:
      LAD_REQUIRE_MSG(false, "unsupported Gauss-Legendre order " << order);
      return {nullptr, nullptr, 0};
  }
}

}  // namespace

double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tol,
                                  int max_depth) {
  LAD_REQUIRE_MSG(tol > 0, "tolerance must be positive");
  if (a == b) return 0.0;
  const double sign = a < b ? 1.0 : -1.0;
  if (a > b) std::swap(a, b);
  const double m = (a + b) / 2.0;
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(f, a, fa, b, fb, m, fm);
  return sign * adaptive(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double integrate_gauss_legendre(const std::function<double(double)>& f,
                                double a, double b, int order, int panels) {
  LAD_REQUIRE_MSG(panels > 0, "need at least one panel");
  const GlRule rule = gl_rule(order);
  const double h = (b - a) / panels;
  double total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double lo = a + p * h;
    const double c = lo + h / 2.0;
    const double s = h / 2.0;
    double panel = 0.0;
    for (int i = 0; i < rule.half; ++i) {
      panel += rule.weights[i] * (f(c - s * rule.nodes[i]) + f(c + s * rule.nodes[i]));
    }
    total += panel * s;
  }
  return total;
}

}  // namespace lad
