// 1-D quadrature: adaptive Simpson (with error control) and fixed-order
// Gauss-Legendre panels.  Theorem 1's g(z) integral is the main client; the
// integrand has a removable cosine-edge singularity at the interval ends, so
// the adaptive rule splits there automatically.
#pragma once

#include <functional>

namespace lad {

/// Adaptive Simpson on [a, b] with absolute tolerance `tol` and a recursion
/// depth cap (the error estimate uses the standard Richardson correction).
double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tol = 1e-10,
                                  int max_depth = 32);

/// Composite Gauss-Legendre with `order`-point panels (order in {4, 8, 16,
/// 32, 64}) over `panels` equal subdivisions of [a, b].
double integrate_gauss_legendre(const std::function<double(double)>& f,
                                double a, double b, int order = 16,
                                int panels = 8);

}  // namespace lad
