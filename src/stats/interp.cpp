#include "stats/interp.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lad {

InterpTable::InterpTable(const std::function<double(double)>& f, double lo,
                         double hi, int omega)
    : lo_(lo), hi_(hi) {
  LAD_REQUIRE_MSG(hi > lo, "interpolation range is empty");
  LAD_REQUIRE_MSG(omega >= 1, "need at least one sub-range");
  values_.resize(static_cast<std::size_t>(omega) + 1);
  const double step = (hi - lo) / omega;
  for (int i = 0; i <= omega; ++i) {
    values_[static_cast<std::size_t>(i)] = f(lo + step * i);
  }
  inv_step_ = omega / (hi - lo);
}

InterpTable::InterpTable(std::vector<double> values, double lo, double hi)
    : lo_(lo), hi_(hi), values_(std::move(values)) {
  LAD_REQUIRE_MSG(hi > lo, "interpolation range is empty");
  LAD_REQUIRE_MSG(values_.size() >= 2, "need at least two sample points");
  inv_step_ = static_cast<double>(values_.size() - 1) / (hi - lo);
}

double InterpTable::operator()(double x) const {
  if (x <= lo_) return values_.front();
  if (x >= hi_) return values_.back();
  const double pos = (x - lo_) * inv_step_;
  std::size_t i = static_cast<std::size_t>(pos);
  i = std::min(i, values_.size() - 2);
  const double frac = pos - static_cast<double>(i);
  return values_[i] + frac * (values_[i + 1] - values_[i]);
}

double InterpTable::max_abs_error(const std::function<double(double)>& f,
                                  int probes) const {
  LAD_REQUIRE_MSG(probes > 0, "need at least one probe");
  double worst = 0.0;
  for (int i = 0; i < probes; ++i) {
    const double x = lo_ + (hi_ - lo_) * (i + 0.5) / probes;
    worst = std::max(worst, std::abs((*this)(x) - f(x)));
  }
  return worst;
}

}  // namespace lad
