// Uniform-grid linear interpolation table.
//
// Section 3.3: "we divide the range of z into omega equal-size sub-ranges,
// and store the g(z) values for these omega+1 dividing points into a table
// ... then it uses the interpolation".  This class is that table, reused
// for any sampled 1-D function.
#pragma once

#include <functional>
#include <vector>

namespace lad {

class InterpTable {
 public:
  /// Samples f at omega+1 equally spaced points on [lo, hi].
  InterpTable(const std::function<double(double)>& f, double lo, double hi,
              int omega);

  /// Builds from precomputed values (values.size() == omega + 1).
  InterpTable(std::vector<double> values, double lo, double hi);

  /// Piecewise-linear evaluation; clamps outside [lo, hi] to the endpoint
  /// values (g(z) tables saturate at the tails by construction).
  double operator()(double x) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int omega() const { return static_cast<int>(values_.size()) - 1; }
  const std::vector<double>& values() const { return values_; }

  /// Maximum absolute error against f over `probes` midpoint samples.
  double max_abs_error(const std::function<double(double)>& f,
                       int probes = 1000) const;

 private:
  double lo_, hi_, inv_step_;
  std::vector<double> values_;
};

}  // namespace lad
