#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lad {

double quantile_inplace(std::vector<double>& samples, double q) {
  LAD_REQUIRE_MSG(!samples.empty(), "quantile of an empty sample set");
  LAD_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  const std::size_t n = samples.size();
  if (n == 1) return samples[0];
  const double h = q * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const double frac = h - static_cast<double>(lo);
  std::nth_element(samples.begin(), samples.begin() + lo, samples.end());
  const double vlo = samples[lo];
  if (frac == 0.0) return vlo;
  // The (lo+1)-th order statistic is the min of the tail after nth_element.
  const double vhi = *std::min_element(samples.begin() + lo + 1, samples.end());
  return vlo + frac * (vhi - vlo);
}

double quantile(std::vector<double> samples, double q) {
  return quantile_inplace(samples, q);
}

std::vector<double> quantiles(std::vector<double> samples,
                              const std::vector<double>& qs) {
  LAD_REQUIRE_MSG(!samples.empty(), "quantiles of an empty sample set");
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(qs.size());
  const std::size_t n = samples.size();
  for (double q : qs) {
    LAD_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
    const double h = q * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(h));
    const double frac = h - static_cast<double>(lo);
    double v = samples[lo];
    if (frac > 0.0 && lo + 1 < n) v += frac * (samples[lo + 1] - samples[lo]);
    out.push_back(v);
  }
  return out;
}

double fraction_above(const std::vector<double>& samples, double x) {
  if (samples.empty()) return 0.0;
  std::size_t above = 0;
  for (double s : samples) {
    if (s > x) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(samples.size());
}

}  // namespace lad
