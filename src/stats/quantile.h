// Exact sample quantiles.  Threshold training in the paper takes the
// tau-percentile of the metric's sample distribution (Section 5.5); this is
// that operation.
#pragma once

#include <vector>

namespace lad {

/// Returns the q-quantile (q in [0,1]) of the samples using linear
/// interpolation between order statistics (type-7 / default in R and NumPy).
/// The input is copied; use quantile_inplace to avoid the copy.
double quantile(std::vector<double> samples, double q);

/// As quantile(), but reorders `samples` in place (nth_element based).
double quantile_inplace(std::vector<double>& samples, double q);

/// Multiple quantiles of the same sample set; sorts once, O(n log n).
std::vector<double> quantiles(std::vector<double> samples,
                              const std::vector<double>& qs);

/// Fraction of samples strictly greater than x.
double fraction_above(const std::vector<double>& samples, double x);

}  // namespace lad
