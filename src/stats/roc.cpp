#include "stats/roc.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lad {

RocCurve::RocCurve(const std::vector<double>& benign_scores,
                   const std::vector<double>& attack_scores) {
  LAD_REQUIRE_MSG(!benign_scores.empty(), "ROC needs benign samples");
  LAD_REQUIRE_MSG(!attack_scores.empty(), "ROC needs attack samples");

  // Candidate thresholds: every distinct observed score.  Evaluating "score
  // > t" on sorted copies turns each rate into a suffix count.
  std::vector<double> benign = benign_scores;
  std::vector<double> attack = attack_scores;
  std::sort(benign.begin(), benign.end());
  std::sort(attack.begin(), attack.end());

  std::vector<double> thresholds;
  thresholds.reserve(benign.size() + attack.size() + 2);
  thresholds.insert(thresholds.end(), benign.begin(), benign.end());
  thresholds.insert(thresholds.end(), attack.begin(), attack.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  const double nb = static_cast<double>(benign.size());
  const double na = static_cast<double>(attack.size());

  auto frac_above = [](const std::vector<double>& sorted, double t) {
    // Count of elements strictly greater than t.
    return static_cast<double>(sorted.end() -
                               std::upper_bound(sorted.begin(), sorted.end(), t));
  };

  // Include a threshold below every score (FP = DR = 1) so curves span the
  // full range, then one point per distinct score.
  points_.push_back({-std::numeric_limits<double>::infinity(), 1.0, 1.0});
  for (double t : thresholds) {
    points_.push_back({t, frac_above(benign, t) / nb, frac_above(attack, t) / na});
  }
  std::sort(points_.begin(), points_.end(),
            [](const RocPoint& a, const RocPoint& b) {
              if (a.false_positive_rate != b.false_positive_rate)
                return a.false_positive_rate < b.false_positive_rate;
              return a.detection_rate < b.detection_rate;
            });
}

double RocCurve::auc() const {
  double area = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dx =
        points_[i].false_positive_rate - points_[i - 1].false_positive_rate;
    area += dx * (points_[i].detection_rate + points_[i - 1].detection_rate) / 2.0;
  }
  return area;
}

double RocCurve::detection_rate_at_fp(double fp_budget) const {
  LAD_REQUIRE_MSG(fp_budget >= 0.0 && fp_budget <= 1.0,
                  "false-positive budget must be in [0,1]");
  double best = 0.0;
  for (const RocPoint& p : points_) {
    if (p.false_positive_rate <= fp_budget) {
      best = std::max(best, p.detection_rate);
    }
  }
  return best;
}

double RocCurve::fp_at_detection_rate(double dr_floor) const {
  double best = 1.0;
  for (const RocPoint& p : points_) {
    if (p.detection_rate >= dr_floor) {
      best = std::min(best, p.false_positive_rate);
    }
  }
  return best;
}

}  // namespace lad
