// Receiver Operating Characteristic curves.
//
// The paper evaluates every metric with ROC curves (Figs. 4-6): detection
// rate (fraction of attacked samples whose anomaly score exceeds the
// threshold) against false-positive rate (fraction of benign samples that
// exceed it), swept over all thresholds.  Scores follow the library-wide
// convention "higher = more anomalous".
#pragma once

#include <vector>

namespace lad {

struct RocPoint {
  double threshold;
  double false_positive_rate;
  double detection_rate;
};

class RocCurve {
 public:
  /// Builds the curve from benign and attacked score samples.  Thresholds
  /// are the distinct score values; points are sorted by ascending FP rate.
  RocCurve(const std::vector<double>& benign_scores,
           const std::vector<double>& attack_scores);

  const std::vector<RocPoint>& points() const { return points_; }

  /// Area under the curve via trapezoidal rule; 0.5 = chance, 1 = perfect.
  double auc() const;

  /// Detection rate at the largest threshold whose FP rate is <= fp_budget
  /// (the paper's "detection rate at 1% false positives").
  double detection_rate_at_fp(double fp_budget) const;

  /// Smallest achievable FP rate at which the detection rate is >= dr_floor;
  /// returns 1.0 if unreachable.
  double fp_at_detection_rate(double dr_floor) const;

 private:
  std::vector<RocPoint> points_;
};

}  // namespace lad
