#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace lad {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace lad
