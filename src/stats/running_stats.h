// Streaming moments (Welford) plus a mergeable variant for parallel
// reductions: each Monte-Carlo worker accumulates locally, then merges.
#pragma once

#include <cstdint>
#include <limits>

namespace lad {

class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (Chan et al. parallel update).
  void merge(const RunningStats& o);

  std::uint64_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kahan-compensated summation; used where millions of small probabilities
/// are accumulated.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - c_;
    const double t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }
  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

}  // namespace lad
