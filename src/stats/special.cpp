#include "stats/special.h"

#include <cmath>
#include <limits>

#include "util/assert.h"

namespace lad {

// std::lgamma writes the process-global `signgam`, which is a data race
// once the scoring passes evaluate the Probability metric from multiple
// threads.  The reentrant variant returns the same bits and keeps the
// sign in a local.  Declared by hand because <cmath> hides it under
// strict -std=c++20 (CMAKE_CXX_EXTENSIONS OFF).
#if defined(__GLIBC__) || defined(__APPLE__)
extern "C" double lgamma_r(double, int*);
#define LAD_HAVE_LGAMMA_R 1
#endif

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double lgamma_threadsafe(double x) {
#ifdef LAD_HAVE_LGAMMA_R
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  // lad-lint: allow(ban-lgamma) -- fallback for libcs without lgamma_r;
  // single-threaded use only (the PR 7 signgam race is a glibc concern).
  return std::lgamma(x);
#endif
}
}  // namespace

double log_factorial(int n) {
  LAD_REQUIRE_MSG(n >= 0, "factorial of a negative number");
  return lgamma_threadsafe(static_cast<double>(n) + 1.0);
}

double log_binomial_coefficient(int n, int k) {
  LAD_REQUIRE_MSG(k >= 0 && k <= n, "C(n,k) requires 0 <= k <= n");
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_binomial_pmf(int k, int n, double p) {
  LAD_REQUIRE_MSG(n >= 0, "binomial n must be non-negative");
  LAD_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "binomial p must be in [0,1]");
  if (k < 0 || k > n) return kNegInf;
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  return log_binomial_coefficient(n, k) + k * std::log(p) +
         (n - k) * std::log1p(-p);
}

double binomial_pmf(int k, int n, double p) {
  const double lp = log_binomial_pmf(k, n, p);
  return lp == kNegInf ? 0.0 : std::exp(lp);
}

double binomial_cdf(int k, int n, double p) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  double cdf = 0.0;
  for (int i = 0; i <= k; ++i) cdf += binomial_pmf(i, n, p);
  return std::min(cdf, 1.0);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_pdf(double x) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * M_PI);
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double gaussian2d_pdf_radial(double r, double sigma) {
  LAD_REQUIRE_MSG(sigma > 0, "sigma must be positive");
  return std::exp(-r * r / (2.0 * sigma * sigma)) /
         (2.0 * M_PI * sigma * sigma);
}

double rayleigh_cdf(double r, double sigma) {
  LAD_REQUIRE_MSG(sigma > 0, "sigma must be positive");
  if (r <= 0) return 0.0;
  return -std::expm1(-r * r / (2.0 * sigma * sigma));
}

}  // namespace lad
