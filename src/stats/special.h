// Special functions: log-space binomial pmf/cdf (the Probability metric of
// Section 5.4 evaluates Binom(oi; m, gi(Le)) where m can be 1000 and the pmf
// underflows double range), normal cdf, and log-gamma helpers.
#pragma once

namespace lad {

/// log(n!) via lgamma; exact for the integers we use.
double log_factorial(int n);

/// log C(n, k); requires 0 <= k <= n.
double log_binomial_coefficient(int n, int k);

/// log Binom(k; n, p).  Exact conventions at the boundary:
///   p == 0:  log pmf = 0 if k == 0 else -inf
///   p == 1:  log pmf = 0 if k == n else -inf
double log_binomial_pmf(int k, int n, double p);

/// Binom(k; n, p) in linear space (may underflow to 0 for extreme tails).
double binomial_pmf(int k, int n, double p);

/// P(X <= k) for X ~ Binom(n, p); direct summation in log space.
double binomial_cdf(int k, int n, double p);

/// Standard normal CDF.
double normal_cdf(double x);

/// Standard normal pdf.
double normal_pdf(double x);

/// 2-D isotropic Gaussian pdf with std sigma, evaluated at distance r from
/// the mean: (1 / (2 pi sigma^2)) exp(-r^2 / (2 sigma^2)).  This is the
/// paper's deployment pdf f(x, y) written radially.
double gaussian2d_pdf_radial(double r, double sigma);

/// Rayleigh CDF: P(|X| <= r) for the 2-D isotropic Gaussian above; equals
/// 1 - exp(-r^2 / (2 sigma^2)).  This is the first (z < R) term of Theorem 1.
double rayleigh_cdf(double r, double sigma);

}  // namespace lad
