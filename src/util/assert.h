// Assertion macros used across the library.
//
// LAD_REQUIRE  - precondition / invariant check that stays on in release
//                builds; throws lad::AssertionError so tests can observe it.
// LAD_ASSERT   - internal sanity check compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lad {

/// Thrown when a LAD_REQUIRE contract is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw AssertionError(os.str());
}
}  // namespace detail

}  // namespace lad

#define LAD_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::lad::detail::assertion_failure(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define LAD_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream lad_require_os_;                                  \
      lad_require_os_ << msg;                                              \
      ::lad::detail::assertion_failure(#expr, __FILE__, __LINE__,          \
                                       lad_require_os_.str());             \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define LAD_ASSERT(expr) ((void)0)
#else
#define LAD_ASSERT(expr) LAD_REQUIRE(expr)
#endif
