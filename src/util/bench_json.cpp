#include "util/bench_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#if !defined(_WIN32)
#include <sys/utsname.h>
#endif

#include "util/assert.h"
#include "util/env.h"
#include "util/string_util.h"

namespace lad {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  // Fixed one-decimal form: enough resolution for ns/op while keeping
  // checked-in artifacts diff-friendly run to run.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string run_git_rev() {
  const std::string env = env_string("LAD_GIT_REV");
  if (!env.empty()) return env;
#if !defined(_WIN32)
  if (FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[128];
    std::string out;
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
    const int rc = pclose(pipe);
    out = std::string(trim(out));
    if (rc == 0 && !out.empty()) return out;
  }
#endif
  return "unknown";
}

std::string host_description() {
  std::ostringstream os;
#if !defined(_WIN32)
  utsname u{};
  if (uname(&u) == 0) {
    os << u.sysname << " " << u.release << " " << u.machine << " / ";
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  os << (hw == 0 ? 1 : hw) << " core(s)";
  return os.str();
}

std::string utc_date() {
  // lad-lint: allow(ban-time) -- the date stamps BENCH_*.json metadata;
  // it never feeds simulation output, which stays replayable.
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

// --- Minimal JSON reader for the validator -------------------------------
//
// Full JSON values (objects, arrays, strings with escapes, numbers,
// true/false/null) — small enough to audit, strict enough that a
// truncated or hand-mangled artifact is a parse error, not a shrug.

struct JsonValue {
  enum class Kind { Object, Array, String, Number, Bool, Null };
  Kind kind = Kind::Null;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0;
  bool boolean = false;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses the whole document; on failure `error` describes the problem.
  bool parse(JsonValue& out, std::string& error) {
    try {
      skip_ws();
      out = parse_value();
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters after document");
      return true;
    } catch (const std::runtime_error& e) {
      error = e.what();
      return false;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = false;
    } else if (consume_literal("null")) {
      v.kind = JsonValue::Kind::Null;
    } else {
      fail("unexpected character");
    }
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!v.object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      const char sep = next();
      if (sep == '}') return v;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char sep = next();
      if (sep == ']') return v;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Validation only: preserve as '?' placeholders, the schema
          // checker never compares escaped content.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* rest = nullptr;
    const double num = std::strtod(tok.c_str(), &rest);
    if (rest == tok.c_str() || *rest != '\0' || !std::isfinite(num)) {
      fail("malformed number '" + tok + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = num;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* find_key(const JsonValue& obj, const std::string& key) {
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

/// Checks one required key; returns "" or the problem.
std::string require_kind(const JsonValue& obj, const std::string& key,
                         JsonValue::Kind kind, const std::string& where) {
  const JsonValue* v = find_key(obj, key);
  if (v == nullptr) return where + ": missing required key \"" + key + "\"";
  if (v->kind != kind) return where + ": key \"" + key + "\" has wrong type";
  if (kind == JsonValue::Kind::String && v->string.empty()) {
    return where + ": key \"" + key + "\" must be a non-empty string";
  }
  return "";
}

std::string require_count(const JsonValue& obj, const std::string& key,
                          double min, const std::string& where) {
  if (std::string err = require_kind(obj, key, JsonValue::Kind::Number, where);
      !err.empty()) {
    return err;
  }
  const double num = find_key(obj, key)->number;
  if (num < min || num != std::floor(num)) {
    return where + ": key \"" + key + "\" must be an integer >= " +
           format_double(min);
  }
  return "";
}

}  // namespace

void fill_bench_environment(BenchReport& report) {
  report.git_rev = run_git_rev();
  report.host = host_description();
  report.date = utc_date();
}

std::string bench_json(const BenchReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"lad-bench-1\",\n";
  os << "  \"name\": \"" << json_escape(report.name) << "\",\n";
  os << "  \"threads\": " << report.threads << ",\n";
  os << "  \"git_rev\": \"" << json_escape(report.git_rev) << "\",\n";
  os << "  \"host\": \"" << json_escape(report.host) << "\",\n";
  os << "  \"date\": \"" << json_escape(report.date) << "\",\n";
  os << "  \"results\": [";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const BenchResult& r = report.results[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << json_escape(r.name) << "\", \"nodes\": "
       << r.nodes << ", \"ns_per_op\": " << format_double(r.ns_per_op)
       << ", \"ops\": " << r.ops << "}";
  }
  os << (report.results.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::string write_bench_json(const BenchReport& report,
                             const std::string& dir) {
  LAD_REQUIRE_MSG(!report.name.empty(), "bench report has no name");
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "BENCH_" + report.name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LAD_REQUIRE_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << bench_json(report);
  out.flush();
  LAD_REQUIRE_MSG(out.good(), "failed writing '" << path << "'");
  return path;
}

std::string validate_bench_json(const std::string& text) {
  JsonValue doc;
  std::string error;
  if (!JsonReader(text).parse(doc, error)) return error;
  if (doc.kind != JsonValue::Kind::Object) return "document is not an object";

  const JsonValue* schema = find_key(doc, "schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String) {
    return "missing \"schema\" string";
  }
  if (schema->string != "lad-bench-1") {
    return "unsupported schema \"" + schema->string + "\"";
  }
  for (const char* key : {"name", "git_rev", "host"}) {
    if (std::string err =
            require_kind(doc, key, JsonValue::Kind::String, "document");
        !err.empty()) {
      return err;
    }
  }
  if (std::string err = require_count(doc, "threads", 1, "document");
      !err.empty()) {
    return err;
  }
  if (std::string err =
          require_kind(doc, "results", JsonValue::Kind::Array, "document");
      !err.empty()) {
    return err;
  }
  const JsonValue& results = *find_key(doc, "results");
  for (std::size_t i = 0; i < results.array.size(); ++i) {
    const JsonValue& row = results.array[i];
    const std::string where = "results[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::Object) return where + ": not an object";
    if (std::string err =
            require_kind(row, "name", JsonValue::Kind::String, where);
        !err.empty()) {
      return err;
    }
    for (const char* key : {"nodes", "ops"}) {
      if (std::string err = require_count(row, key, 0, where); !err.empty()) {
        return err;
      }
    }
    if (std::string err =
            require_kind(row, "ns_per_op", JsonValue::Kind::Number, where);
        !err.empty()) {
      return err;
    }
    if (find_key(row, "ns_per_op")->number < 0) {
      return where + ": key \"ns_per_op\" must be >= 0";
    }
  }
  return "";
}

}  // namespace lad
