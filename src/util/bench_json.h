// Machine-readable bench results: the BENCH_*.json surface.
//
// Every bench that measures anything emits one JSON document per run so
// the perf trajectory is trackable across PRs (schema "lad-bench-1"):
//
//   {
//     "schema": "lad-bench-1",
//     "name": "scale_observe",
//     "threads": 1,
//     "git_rev": "4690bd0",
//     "host": "Linux 6.18.5 x86_64 / 1 core(s)",
//     "date": "2026-08-07",
//     "results": [
//       {"name": "observe_many/avx2", "nodes": 30000,
//        "ns_per_op": 612.4, "ops": 20000}
//     ]
//   }
//
// The writer and the validator live together so the schema cannot drift:
// validate_bench_json() accepts exactly the documents the writer (or the
// shell benches that mirror it, e.g. tools/bench_baseline.sh) produce,
// plus unknown extra keys for forward compatibility.  CI smoke-checks
// every emitted file through tools/bench_json_check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lad {

/// One measured row of a bench run.
struct BenchResult {
  std::string name;        ///< e.g. "observe_many/avx2"
  std::int64_t nodes = 0;  ///< problem size the row was measured at
  double ns_per_op = 0;    ///< nanoseconds per operation (median/best)
  std::int64_t ops = 0;    ///< operations timed to produce ns_per_op
};

/// One bench run: provenance metadata plus its result rows.
struct BenchReport {
  std::string name;     ///< bench id; file becomes BENCH_<name>.json
  int threads = 1;      ///< thread count the run was pinned to
  std::string git_rev;  ///< short commit id, "unknown" outside a checkout
  std::string host;     ///< kernel/arch/core-count description
  std::string date;     ///< UTC YYYY-MM-DD of the run
  std::vector<BenchResult> results;
};

/// Fills git_rev (git rev-parse, overridable via LAD_GIT_REV, "unknown"
/// on failure), host, and date from the environment.
void fill_bench_environment(BenchReport& report);

/// Serializes the report as a lad-bench-1 JSON document.
std::string bench_json(const BenchReport& report);

/// Writes bench_json(report) to <dir>/BENCH_<name>.json ("" = cwd) and
/// returns the path written.  Throws lad::AssertionError on I/O failure
/// or an empty report name.
std::string write_bench_json(const BenchReport& report,
                             const std::string& dir = "");

/// Tiny schema checker: returns "" when `text` is valid JSON carrying
/// every lad-bench-1 required key with the right type (extra keys are
/// allowed), else a one-line description of the first problem found.
std::string validate_bench_json(const std::string& text);

}  // namespace lad
