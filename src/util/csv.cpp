#include "util/csv.h"

#include <algorithm>
#include <ostream>

#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  LAD_REQUIRE_MSG(!columns_.empty(), "a table needs at least one column");
}

Table& Table::new_row() {
  LAD_REQUIRE_MSG(rows_.empty() || rows_.back().size() == columns_.size(),
                  "previous row incomplete: got " << rows_.back().size()
                                                  << " of " << columns_.size()
                                                  << " cells");
  rows_.emplace_back();
  return *this;
}

Table& Table::add(double v, int precision) {
  LAD_REQUIRE_MSG(!rows_.empty(), "call new_row() before add()");
  rows_.back().push_back(format_double(v, precision));
  return *this;
}

Table& Table::add(long long v) {
  LAD_REQUIRE_MSG(!rows_.empty(), "call new_row() before add()");
  rows_.back().push_back(std::to_string(v));
  return *this;
}

Table& Table::add(const std::string& v) {
  LAD_REQUIRE_MSG(!rows_.empty(), "call new_row() before add()");
  rows_.back().push_back(v);
  return *this;
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  LAD_REQUIRE(row < rows_.size());
  LAD_REQUIRE(col < rows_[row].size());
  return rows_[row][col];
}

const std::vector<std::string>& Table::row(std::size_t row) const {
  LAD_REQUIRE(row < rows_.size());
  return rows_[row];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto pad = [&](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w; ++i) os << ' ';
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "  ";
    pad(columns_[c], width[c]);
  }
  os << "\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      pad(row[c], width[c]);
    }
    os << "\n";
  }
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << "\n";
  }
}

}  // namespace lad
