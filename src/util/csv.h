// Result-table builder: accumulates typed rows and renders them either as an
// aligned text table (for stdout) or as CSV (for downstream plotting).  Every
// figure bench emits its paper series through this class so the output
// format is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace lad {

/// RFC-4180-ish escaping of one CSV cell (quotes cells containing
/// comma/quote/newline); shared with the scenario CSV writer.
std::string csv_escape(const std::string& s);

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Begins a new row; values are appended with add()/operator<<.
  Table& new_row();
  Table& add(double v, int precision = 4);
  Table& add(long long v);
  Table& add(int v) { return add(static_cast<long long>(v)); }
  Table& add(std::size_t v) { return add(static_cast<long long>(v)); }
  Table& add(const std::string& v);
  Table& add(const char* v) { return add(std::string(v)); }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Cell as rendered text (row/col bounds-checked).
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// One row's rendered cells (bounds-checked).  Values are stored
  /// pre-formatted at add() time, so copying cells between tables with
  /// add(string) is byte-exact — the scenario runner splices per-item row
  /// fragments back into the shared tables through this.
  const std::vector<std::string>& row(std::size_t row) const;

  /// Aligned human-readable rendering.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV rendering (quotes cells containing comma/quote).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lad
