#include "util/env.h"

#include <cerrno>
#include <cstdlib>

#include "util/assert.h"

namespace lad {

namespace {

// The one sanctioned getenv call site (lad_lint rule `raw-getenv`).
const char* env_raw(const char* name) { return std::getenv(name); }

}  // namespace

bool env_flag(const char* name) {
  const char* v = env_raw(name);
  return v != nullptr && *v != '\0';
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = env_raw(name);
  return v == nullptr || *v == '\0' ? fallback : std::string(v);
}

long env_int(const char* name, long fallback, long min, long max) {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* rest = nullptr;
  const long parsed = std::strtol(v, &rest, 10);
  LAD_REQUIRE_MSG(errno == 0 && rest != v && *rest == '\0' && parsed >= min &&
                      parsed <= max,
                  "invalid " << name << " value '" << v
                             << "' (expected an integer in [" << min << ", "
                             << max << "])");
  return parsed;
}

}  // namespace lad
