// Centralized environment-variable access with named validation errors.
//
// Every LAD_* knob goes through these helpers instead of raw getenv:
// a mistyped value must be a loud, named error, never a silent fallback
// (a garbled LAD_THREADS=1e9 quietly using all cores would defeat the
// reproducibility pin the variable exists for).  lad_lint bans raw
// getenv outside util/env.cpp (rule `raw-getenv`) so new knobs cannot
// bypass the validation.
#pragma once

#include <string>

namespace lad {

/// True when `name` is set to a non-empty value.  The convention for
/// boolean knobs (LAD_NO_AVX2, LAD_REGOLD): any non-empty value enables,
/// unset or empty disables.
bool env_flag(const char* name);

/// The value of `name`, or `fallback` when unset or empty.
std::string env_string(const char* name, const std::string& fallback = "");

/// Integer knob: returns `fallback` when `name` is unset or empty;
/// otherwise the value must parse as an integer in [min, max] or the
/// call fails with a named error (lad::AssertionError) quoting the
/// variable, the offending text, and the accepted range.
long env_int(const char* name, long fallback, long min, long max);

}  // namespace lad
