#include "util/flags.h"

#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" form only when the next token is not itself a flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";  // bare boolean
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  read_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

double Flags::get_double(const std::string& name, double def) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : parse_double(it->second);
}

long long Flags::get_int(const std::string& name, long long def) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : parse_int(it->second);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  LAD_REQUIRE_MSG(false, "flag --" << name << " is not a boolean: " << v);
  return def;  // unreachable
}

std::vector<double> Flags::get_double_list(
    const std::string& name, const std::vector<double>& def) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<double> out;
  for (const std::string& tok : split(it->second, ',')) {
    out.push_back(parse_double(tok));
  }
  return out;
}

std::vector<long long> Flags::get_int_list(
    const std::string& name, const std::vector<long long>& def) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<long long> out;
  for (const std::string& tok : split(it->second, ',')) {
    out.push_back(parse_int(tok));
  }
  return out;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!read_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace lad
