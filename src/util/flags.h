// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supported syntax:  --name=value   --name value   --bool_flag
// Unknown flags throw, so typos in experiment sweeps fail fast.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lad {

class Flags {
 public:
  /// Parses argv (skipping argv[0]).  Positional arguments (tokens that do
  /// not start with "--") are collected in order.
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed accessors with defaults.  Throw lad::AssertionError if the flag
  /// is present but not parseable as the requested type.
  std::string get_string(const std::string& name, const std::string& def) const;
  double get_double(const std::string& name, double def) const;
  long long get_int(const std::string& name, long long def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated list of doubles, e.g. --d=80,120,160.
  std::vector<double> get_double_list(const std::string& name,
                                      const std::vector<double>& def) const;
  std::vector<long long> get_int_list(const std::string& name,
                                      const std::vector<long long>& def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were parsed but never read; used to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace lad
