#include "util/kvconfig.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/assert.h"
#include "util/string_util.h"

namespace lad {

namespace {

bool is_comment_or_blank(std::string_view line) {
  const std::string_view t = trim(line);
  return t.empty() || t.front() == '#' || t.front() == ';';
}

}  // namespace

const KvConfig::Section::Entry* KvConfig::Section::find(
    const std::string& key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

int KvConfig::Section::line_of(const std::string& key) const {
  const Entry* e = find(key);
  return e ? e->line : 0;
}

std::string KvConfig::Section::context(const std::string& key) const {
  std::ostringstream os;
  os << origin_ << ":" << line_of(key) << ": [" << name_ << "] " << key;
  return os.str();
}

bool KvConfig::Section::has(const std::string& key) const {
  read_[key] = true;
  return find(key) != nullptr;
}

std::string KvConfig::Section::get_string(const std::string& key,
                                          const std::string& def) const {
  read_[key] = true;
  const Entry* e = find(key);
  return e ? e->value : def;
}

double KvConfig::Section::get_double(const std::string& key,
                                     double def) const {
  read_[key] = true;
  const Entry* e = find(key);
  if (!e) return def;
  try {
    return parse_double(e->value);
  } catch (const AssertionError&) {
    LAD_REQUIRE_MSG(false, context(key) << ": '" << e->value
                                        << "' is not a number");
  }
  return def;  // unreachable
}

long long KvConfig::Section::get_int(const std::string& key,
                                     long long def) const {
  read_[key] = true;
  const Entry* e = find(key);
  if (!e) return def;
  try {
    return parse_int(e->value);
  } catch (const AssertionError&) {
    LAD_REQUIRE_MSG(false, context(key) << ": '" << e->value
                                        << "' is not an integer");
  }
  return def;  // unreachable
}

bool KvConfig::Section::get_bool(const std::string& key, bool def) const {
  read_[key] = true;
  const Entry* e = find(key);
  if (!e) return def;
  const std::string lower = to_lower(e->value);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  LAD_REQUIRE_MSG(false, context(key) << ": '" << e->value
                                      << "' is not a boolean");
  return def;  // unreachable
}

std::vector<double> KvConfig::Section::get_double_list(
    const std::string& key, const std::vector<double>& def) const {
  read_[key] = true;
  const Entry* e = find(key);
  if (!e) return def;
  std::vector<double> out;
  for (const std::string& tok : split(e->value, ',')) {
    try {
      for (double d : expand_double_range(trim(tok))) out.push_back(d);
    } catch (const AssertionError& ex) {
      LAD_REQUIRE_MSG(false, context(key) << ": " << ex.what());
    }
  }
  return out;
}

std::vector<long long> KvConfig::Section::get_int_list(
    const std::string& key, const std::vector<long long>& def) const {
  read_[key] = true;
  const Entry* e = find(key);
  if (!e) return def;
  std::vector<long long> out;
  for (const std::string& tok : split(e->value, ',')) {
    try {
      for (long long i : expand_int_range(trim(tok))) out.push_back(i);
    } catch (const AssertionError& ex) {
      LAD_REQUIRE_MSG(false, context(key) << ": " << ex.what());
    }
  }
  return out;
}

std::vector<std::string> KvConfig::Section::get_string_list(
    const std::string& key, const std::vector<std::string>& def) const {
  read_[key] = true;
  const Entry* e = find(key);
  if (!e) return def;
  std::vector<std::string> out;
  for (const std::string& tok : split(e->value, ',')) {
    out.emplace_back(trim(tok));
  }
  return out;
}

std::vector<std::string> KvConfig::Section::unused() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (!read_.count(e.key)) out.push_back(e.key);
  }
  return out;
}

std::vector<std::string> KvConfig::Section::keys() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) out.push_back(e.key);
  return out;
}

KvConfig KvConfig::parse_string(std::string_view text,
                                const std::string& origin) {
  KvConfig cfg;
  cfg.origin_ = origin;
  Section* current = nullptr;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (is_comment_or_blank(line)) continue;
    const std::string_view t = trim(line);

    if (t.front() == '[') {
      LAD_REQUIRE_MSG(t.back() == ']', origin << ":" << line_no
                                              << ": unterminated section header "
                                              << t);
      const std::string name{trim(t.substr(1, t.size() - 2))};
      LAD_REQUIRE_MSG(!name.empty(),
                      origin << ":" << line_no << ": empty section name");
      for (const Section& s : cfg.sections_) {
        LAD_REQUIRE_MSG(s.name() != name,
                        origin << ":" << line_no << ": duplicate section ["
                               << name << "] (first at line " << s.line()
                               << ")");
      }
      cfg.sections_.emplace_back(name, line_no, origin);
      current = &cfg.sections_.back();
      continue;
    }

    const std::size_t eq = t.find('=');
    LAD_REQUIRE_MSG(eq != std::string_view::npos,
                    origin << ":" << line_no << ": expected 'key = value', got '"
                           << t << "'");
    const std::string key{trim(t.substr(0, eq))};
    const std::string value{trim(t.substr(eq + 1))};
    LAD_REQUIRE_MSG(!key.empty(), origin << ":" << line_no << ": empty key");
    LAD_REQUIRE_MSG(current != nullptr,
                    origin << ":" << line_no << ": key '" << key
                           << "' before any [section]");
    LAD_REQUIRE_MSG(current->find(key) == nullptr,
                    origin << ":" << line_no << ": duplicate key '" << key
                           << "' in section [" << current->name() << "]");
    current->entries_.push_back({key, value, line_no});
  }
  return cfg;
}

KvConfig KvConfig::parse_file(const std::string& path) {
  std::ifstream is(path);
  LAD_REQUIRE_MSG(static_cast<bool>(is), "cannot open config file '" << path
                                                                     << "'");
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_string(ss.str(), path);
}

bool KvConfig::has_section(const std::string& name) const {
  return find_section(name) != nullptr;
}

const KvConfig::Section* KvConfig::find_section(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

const KvConfig::Section& KvConfig::section(const std::string& name) const {
  const Section* s = find_section(name);
  LAD_REQUIRE_MSG(s != nullptr,
                  origin_ << ": missing required section [" << name << "]");
  return *s;
}

std::vector<std::string> KvConfig::unused() const {
  std::vector<std::string> out;
  for (const Section& s : sections_) {
    for (const std::string& key : s.unused()) {
      out.push_back(s.name() + "." + key);
    }
  }
  return out;
}

std::vector<double> expand_double_range(std::string_view token) {
  const auto parts = split(token, ':');
  if (parts.size() == 1) return {parse_double(token)};
  LAD_REQUIRE_MSG(parts.size() == 3, "bad range '" << token
                                                   << "' (expected lo:hi:step)");
  const double lo = parse_double(parts[0]);
  const double hi = parse_double(parts[1]);
  const double step = parse_double(parts[2]);
  LAD_REQUIRE_MSG(std::isfinite(lo) && std::isfinite(hi) && std::isfinite(step),
                  "range '" << token << "': bounds and step must be finite");
  LAD_REQUIRE_MSG(step > 0, "range '" << token << "': step must be > 0");
  LAD_REQUIRE_MSG(lo <= hi, "range '" << token << "': lo must be <= hi");
  // A tiny (e.g. denormal) step over a wide span would expand to an
  // astronomically large list - reject by size before generating anything.
  const double approx = (hi - lo) / step + 1.0;
  LAD_REQUIRE_MSG(approx <= static_cast<double>(kMaxRangeValues),
                  "range '" << token << "': expands to ~" << approx
                            << " values (limit " << kMaxRangeValues << ")");
  std::vector<double> out;
  // Index-based stepping avoids drift; the endpoint is included when it
  // lies on the grid (within a relative tolerance of one part in 1e9).
  const double tol = step * 1e-9;
  for (std::size_t i = 0;; ++i) {
    const double v = lo + static_cast<double>(i) * step;
    if (v > hi + tol) break;
    out.push_back(v);
  }
  return out;
}

std::vector<long long> expand_int_range(std::string_view token) {
  const auto parts = split(token, ':');
  if (parts.size() == 1) return {parse_int(token)};
  LAD_REQUIRE_MSG(parts.size() == 3, "bad range '" << token
                                                   << "' (expected lo:hi:step)");
  const long long lo = parse_int(parts[0]);
  const long long hi = parse_int(parts[1]);
  const long long step = parse_int(parts[2]);
  LAD_REQUIRE_MSG(step > 0, "range '" << token << "': step must be > 0");
  LAD_REQUIRE_MSG(lo <= hi, "range '" << token << "': lo must be <= hi");
  // Unsigned arithmetic: hi - lo may overflow long long when the bounds
  // straddle the full 64-bit span, and `v += step` near LLONG_MAX is UB.
  const unsigned long long span = static_cast<unsigned long long>(hi) -
                                  static_cast<unsigned long long>(lo);
  // span / step alone (not +1) so the check itself cannot wrap when the
  // bounds straddle the whole 64-bit range.
  const unsigned long long steps = span / static_cast<unsigned long long>(step);
  LAD_REQUIRE_MSG(steps < static_cast<unsigned long long>(kMaxRangeValues),
                  "range '" << token << "': expands to " << steps
                            << "+1 values (limit " << kMaxRangeValues << ")");
  const unsigned long long count = steps + 1;
  std::vector<long long> out;
  out.reserve(static_cast<std::size_t>(count));
  for (unsigned long long i = 0; i < count; ++i) {
    out.push_back(static_cast<long long>(
        static_cast<unsigned long long>(lo) +
        i * static_cast<unsigned long long>(step)));
  }
  return out;
}

std::string render_list(const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << values[i];
  }
  return os.str();
}

std::string render_list(const std::vector<long long>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << values[i];
  }
  return os.str();
}

}  // namespace lad
