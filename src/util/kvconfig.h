// Minimal INI-style key/value configuration parser - the text format
// behind the declarative scenario engine (sim/scenario.h).
//
// Syntax:
//
//   # comment (also ';')
//   [section]
//   key = value          # values run to end of line; inline comments are
//   list = 1, 2, 3       # NOT stripped (values rarely need '#')
//   range = 40:160:20    # expands to 40,60,...,160 in list accessors
//
// Rules enforced at parse time (errors carry file:line context):
//   * every key lives inside a section;
//   * section names are unique (duplicate sections are almost always a
//     copy-paste bug in a sweep file, so they hard-fail);
//   * keys are unique within their section.
//
// Like util/flags.h, every accessor marks its key as read; unused() then
// reports the keys a consumer never looked at, which is how the scenario
// loader rejects typos ("dammages = ...") instead of ignoring them.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lad {

class KvConfig {
 public:
  class Section {
   public:
    Section(std::string name, int line, std::string origin = "<string>")
        : name_(std::move(name)), line_(line), origin_(std::move(origin)) {}

    const std::string& name() const { return name_; }
    int line() const { return line_; }
    const std::string& origin() const { return origin_; }

    /// Source line of a key (0 when absent) - error messages cite it.
    int line_of(const std::string& key) const;

    bool has(const std::string& key) const;

    /// Typed accessors with defaults; throw lad::AssertionError (with the
    /// section/key named) when a present value does not parse.
    std::string get_string(const std::string& key,
                           const std::string& def) const;
    double get_double(const std::string& key, double def) const;
    long long get_int(const std::string& key, long long def) const;
    bool get_bool(const std::string& key, bool def) const;

    /// Comma-separated lists; every element may be a lo:hi:step range.
    std::vector<double> get_double_list(const std::string& key,
                                        const std::vector<double>& def) const;
    std::vector<long long> get_int_list(
        const std::string& key, const std::vector<long long>& def) const;
    std::vector<std::string> get_string_list(
        const std::string& key, const std::vector<std::string>& def) const;

    /// Keys that were parsed but never read through an accessor.
    std::vector<std::string> unused() const;

    /// All keys in file order (introspection / error messages).
    std::vector<std::string> keys() const;

   private:
    friend class KvConfig;

    struct Entry {
      std::string key;
      std::string value;
      int line = 0;  // source line in origin(); 0 when synthesized
    };

    std::string name_;
    int line_ = 0;
    std::string origin_;
    std::vector<Entry> entries_;  // file order
    mutable std::map<std::string, bool> read_;

    const Entry* find(const std::string& key) const;
    /// "origin:line: [section] key" - the prefix every accessor error uses.
    std::string context(const std::string& key) const;
  };

  /// Parses configuration text; `origin` names the source in errors.
  static KvConfig parse_string(std::string_view text,
                               const std::string& origin = "<string>");
  /// Reads and parses a file; throws lad::AssertionError if unreadable.
  static KvConfig parse_file(const std::string& path);

  const std::string& origin() const { return origin_; }

  bool has_section(const std::string& name) const;
  /// Throws lad::AssertionError when the section is missing.
  const Section& section(const std::string& name) const;
  /// nullptr when missing (for optional sections).
  const Section* find_section(const std::string& name) const;

  /// Sections in file order.
  const std::vector<Section>& sections() const { return sections_; }

  /// Every "section.key" never read through an accessor - callers reject
  /// these after consuming the config so typos fail loudly.
  std::vector<std::string> unused() const;

 private:
  std::string origin_;
  std::vector<Section> sections_;
};

/// Expands one list token: either a scalar ("42") or an inclusive range
/// "lo:hi:step" (step > 0, lo <= hi; the endpoint is included when it lies
/// on the grid within a relative tolerance).  Shared by the list accessors.
/// A range that would expand to more than kMaxRangeValues elements (e.g. a
/// denormal step) is a named error, not an effectively-infinite loop.
inline constexpr long long kMaxRangeValues = 1'000'000;
std::vector<double> expand_double_range(std::string_view token);
std::vector<long long> expand_int_range(std::string_view token);

/// Canonical comma-joined rendering; parsing the result through the list
/// accessors round-trips to the same values.
std::string render_list(const std::vector<double>& values);
std::string render_list(const std::vector<long long>& values);

}  // namespace lad
