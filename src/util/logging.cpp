#include "util/logging.h"

namespace lad {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << "[" << log_level_name(level) << "] " << message << "\n";
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace lad
