// Minimal leveled logger.  Single global sink (stderr by default) guarded by
// a mutex; hot paths should not log, so contention is a non-issue.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace lad {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logging configuration; thread-safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Redirect output (e.g. to a std::ostringstream in tests).  Pass nullptr
  /// to restore stderr.  The caller keeps ownership of the stream.
  void set_sink(std::ostream* sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kInfo;
  std::ostream* sink_ = nullptr;  // nullptr => std::cerr
};

const char* log_level_name(LogLevel level);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace lad

#define LAD_LOG(lvl)                                                 \
  if (static_cast<int>(lvl) <                                        \
      static_cast<int>(::lad::Logger::instance().level())) {         \
  } else                                                             \
    ::lad::detail::LogLine(lvl)

#define LAD_DEBUG LAD_LOG(::lad::LogLevel::kDebug)
#define LAD_INFO LAD_LOG(::lad::LogLevel::kInfo)
#define LAD_WARN LAD_LOG(::lad::LogLevel::kWarn)
#define LAD_ERROR LAD_LOG(::lad::LogLevel::kError)
