#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/assert.h"

namespace lad {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  const std::string buf(trim(s));
  LAD_REQUIRE_MSG(!buf.empty(), "empty string is not a number");
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  LAD_REQUIRE_MSG(end == buf.c_str() + buf.size(),
                  "not a valid double: '" << buf << "'");
  return v;
}

long long parse_int(std::string_view s) {
  const std::string buf(trim(s));
  LAD_REQUIRE_MSG(!buf.empty(), "empty string is not an integer");
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  LAD_REQUIRE_MSG(end == buf.c_str() + buf.size(),
                  "not a valid integer: '" << buf << "'");
  return v;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace lad
