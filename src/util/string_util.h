// Small string helpers shared by the flag parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lad {

/// Splits `s` on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double, throwing lad::AssertionError on garbage/partial input.
double parse_double(std::string_view s);

/// Parses an integer, throwing lad::AssertionError on garbage/partial input.
long long parse_int(std::string_view s);

/// Fixed-precision formatting ("%.*f") without iostream state leakage.
std::string format_double(double v, int precision);

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

}  // namespace lad
