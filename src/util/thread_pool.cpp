#include "util/thread_pool.h"

#include "util/assert.h"

namespace lad {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  ensure_workers(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ensure_workers(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  LAD_REQUIRE_MSG(!stop_, "ensure_workers() on a stopped pool");
  while (workers_.size() < n) {
    workers_.emplace_back([this] { worker_loop(); });
    count_.store(workers_.size(), std::memory_order_release);
  }
}

ThreadPool& ThreadPool::shared() {
  // Starts at one worker; parallel_for_items grows it to the requested
  // width per call (LAD_THREADS is re-checked there, so a pin raised
  // mid-process takes effect on the next loop).
  static ThreadPool pool(1);
  return pool;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LAD_REQUIRE_MSG(!stop_, "submit() on a stopped pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::drive(const std::shared_ptr<Loop>& loop) {
  // active is raised *before* the first cursor grab: once a completion
  // waiter observes active == 0 after the cursor closed, no thread can
  // still be about to execute an iteration — a helper dequeued later
  // sees the closed cursor and leaves without touching fn.
  loop->active.fetch_add(1, std::memory_order_acq_rel);
  while (true) {
    const std::size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= loop->end) break;
    try {
      loop->fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(loop->mu);
      if (!loop->error) loop->error = std::current_exception();
      // Close the cursor: iterations already grabbed finish, the rest
      // are abandoned.
      loop->next.store(loop->end, std::memory_order_relaxed);
    }
  }
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    last = loop->active.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
  if (last) loop->cv.notify_all();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_workers) {
  if (begin >= end) return;
  const std::size_t n = end - begin;

  auto loop = std::make_shared<Loop>();
  loop->fn = fn;
  loop->next.store(begin, std::memory_order_relaxed);
  loop->end = end;

  // The caller is one of the loop's workers, so only width-1 helpers are
  // needed; never more helpers than there are extra iterations.
  const std::size_t width = max_workers == 0 ? num_threads() : max_workers;
  const std::size_t helpers = std::min(width > 0 ? width - 1 : 0, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([loop] { drive(loop); });
  }

  drive(loop);

  // The caller drained the cursor, so next >= end permanently; once no
  // thread is inside drive(), every grabbed iteration has finished and
  // late helpers can only no-op.
  std::unique_lock<std::mutex> lock(loop->mu);
  loop->cv.wait(lock,
                [&] { return loop->active.load(std::memory_order_acquire) == 0; });
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace lad
