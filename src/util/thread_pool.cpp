#include "util/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/assert.h"

namespace lad {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LAD_REQUIRE_MSG(!stop_, "submit() on a stopped pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t nchunks = std::min(n, workers_.size());

  std::atomic<std::size_t> remaining(nchunks);
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lad
