// Fixed-size thread pool with a static-chunked parallel_for.
//
// The Monte-Carlo engine prefers OpenMP when available; this pool is the
// portable fallback and is also used directly by a few tests to validate
// thread-count-independent determinism (results must not depend on how work
// is scheduled, only on per-trial seeds).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lad {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 => hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finished.  Work is split into contiguous chunks so that
  /// cache behaviour is predictable.  Exceptions thrown by fn propagate to
  /// the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lad
