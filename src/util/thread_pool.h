// Persistent thread pool with a dynamically-chunked parallel_for.
//
// The Monte-Carlo engine prefers OpenMP when available; this pool is the
// portable fallback and is also used directly by a few tests to validate
// thread-count-independent determinism (results must not depend on how work
// is scheduled, only on per-trial seeds).
//
// Two properties matter for the scoring hot path:
//
//  * parallel_for hands out iterations through an atomic cursor, one at a
//    time, instead of pre-splitting the range into one static chunk per
//    worker.  Greedy-taint cost varies wildly across victims; with static
//    chunks every worker idles behind the unluckiest one.
//
//  * The calling thread participates in the loop (it drains the same
//    cursor the helpers do).  That makes nested parallel_for calls on one
//    pool deadlock-free: a worker that issues an inner loop never blocks
//    waiting for queue capacity it is itself occupying — it executes the
//    inner iterations in place and helpers join only if they are free.
//
// Process-wide reuse: ThreadPool::shared() returns a lazily-created
// singleton that parallel_for_items() grows on demand (sim/parallel.cpp),
// so a scenario sweep issuing thousands of small loops does not pay a
// thread spawn/join per call.  The singleton is joined during static
// destruction, never leaked, so sanitizer runs stay clean.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lad {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 => hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least `n` workers (never shrinks).  Safe to call
  /// concurrently with running loops; new workers start draining the task
  /// queue immediately.
  void ensure_workers(std::size_t n);

  /// Runs fn(i) for i in [begin, end) and blocks until every iteration
  /// finished.  Iterations are handed out one at a time through an atomic
  /// cursor, so uneven per-iteration cost load-balances instead of
  /// serializing on the slowest static chunk.  The caller participates:
  /// at most `max_workers` threads (0 => num_threads()) touch the loop,
  /// counting the caller, and nested calls cannot deadlock.  Exceptions
  /// thrown by fn propagate to the caller (first one wins; the cursor is
  /// closed so remaining iterations are abandoned).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t max_workers = 0);

  /// The process-wide pool used by parallel_for_items.  Created on first
  /// use, grown on demand via ensure_workers, joined at static
  /// destruction.
  static ThreadPool& shared();

 private:
  // State shared between the caller and helper tasks of one parallel_for.
  // Helpers hold it by shared_ptr: a helper that is dequeued only after
  // the loop already completed must still be able to read the (closed)
  // cursor safely and no-op.
  struct Loop {
    std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> next{0};  ///< cursor; >= end means closed
    std::size_t end = 0;
    std::atomic<int> active{0};  ///< threads currently inside drive()
    std::mutex mu;               ///< guards error; cv waits on active==0
    std::condition_variable cv;
    std::exception_ptr error;
  };

  /// Drains the loop's cursor on the current thread until it is closed.
  static void drive(const std::shared_ptr<Loop>& loop);

  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::atomic<std::size_t> count_{0};  ///< == workers_.size(), lock-free
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lad
