// Wall-clock stopwatch used by the bench harnesses.
#pragma once

#include <chrono>

namespace lad {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  // lad-lint: allow(ban-clock-now) -- Timer is bench/tool instrumentation
  // only; wall-clock readings never feed simulation output.
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lad
