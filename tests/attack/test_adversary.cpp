#include "attack/adversary.h"

#include <gtest/gtest.h>

#include "deploy/observation.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(AttackClassNames, RoundTrip) {
  EXPECT_EQ(attack_class_from_name(attack_class_name(AttackClass::kDecBounded)),
            AttackClass::kDecBounded);
  EXPECT_EQ(attack_class_from_name(attack_class_name(AttackClass::kDecOnly)),
            AttackClass::kDecOnly);
  EXPECT_THROW(attack_class_from_name("nope"), AssertionError);
}

TEST(DecrementMass, CountsOnlyDecreases) {
  const Observation a(std::vector<int>{5, 3, 0, 7});
  const Observation o(std::vector<int>{2, 9, 0, 6});
  EXPECT_EQ(decrement_mass(a, o), 4);  // (5-2) + (7-6)
  EXPECT_EQ(decrement_mass(a, a), 0);
}

TEST(DecBounded, AllowsUnboundedIncreases) {
  const Observation a(std::vector<int>{1, 1});
  const Observation o(std::vector<int>{1000000, 1});
  EXPECT_TRUE(is_feasible_dec_bounded(a, o, 0));
}

TEST(DecBounded, BoundsTotalDecrease) {
  const Observation a(std::vector<int>{5, 5});
  EXPECT_TRUE(is_feasible_dec_bounded(a, Observation(std::vector<int>{3, 4}), 3));
  EXPECT_FALSE(is_feasible_dec_bounded(a, Observation(std::vector<int>{3, 4}), 2));
  // Mixed increase and decrease: only decreases count toward the budget.
  EXPECT_TRUE(
      is_feasible_dec_bounded(a, Observation(std::vector<int>{0, 500}), 5));
  EXPECT_FALSE(
      is_feasible_dec_bounded(a, Observation(std::vector<int>{0, 500}), 4));
}

TEST(DecOnly, ForbidsAnyIncrease) {
  const Observation a(std::vector<int>{5, 5});
  EXPECT_FALSE(is_feasible_dec_only(a, Observation(std::vector<int>{5, 6}), 100));
  EXPECT_TRUE(is_feasible_dec_only(a, Observation(std::vector<int>{5, 5}), 0));
}

TEST(DecOnly, BoundsTotalDecrease) {
  const Observation a(std::vector<int>{5, 5});
  EXPECT_TRUE(is_feasible_dec_only(a, Observation(std::vector<int>{2, 4}), 4));
  EXPECT_FALSE(is_feasible_dec_only(a, Observation(std::vector<int>{2, 4}), 3));
}

TEST(DecOnly, ImpliesDecBounded) {
  // Every Dec-Only-feasible taint is Dec-Bounded-feasible (Section 6.2:
  // "Dec-Only attacks are less powerful").
  const Observation a(std::vector<int>{4, 2, 9});
  const std::vector<std::vector<int>> candidates = {
      {4, 2, 9}, {3, 2, 9}, {0, 0, 9}, {4, 0, 7}};
  for (const auto& c : candidates) {
    const Observation o{std::vector<int>(c)};
    if (is_feasible_dec_only(a, o, 6)) {
      EXPECT_TRUE(is_feasible_dec_bounded(a, o, 6));
    }
  }
}

TEST(Feasibility, DispatchMatchesSpecificPredicates) {
  const Observation a(std::vector<int>{3, 3});
  const Observation o(std::vector<int>{1, 5});
  EXPECT_EQ(is_feasible(AttackClass::kDecBounded, a, o, 2),
            is_feasible_dec_bounded(a, o, 2));
  EXPECT_EQ(is_feasible(AttackClass::kDecOnly, a, o, 2),
            is_feasible_dec_only(a, o, 2));
}

TEST(Feasibility, RejectsMalformedInputs) {
  const Observation a(std::vector<int>{3});
  EXPECT_THROW(is_feasible_dec_bounded(a, Observation(std::vector<int>{1, 2}), 1),
               AssertionError);
  EXPECT_THROW(is_feasible_dec_bounded(a, Observation(std::vector<int>{-1}), 1),
               AssertionError);
  EXPECT_THROW(is_feasible_dec_bounded(a, a, -1), AssertionError);
}

}  // namespace
}  // namespace lad
