#include "attack/displacement.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(Displacement, ExactDistanceWhenFeasible) {
  Rng rng(1);
  const Aabb field = Aabb::square(1000.0);
  const Vec2 la{500, 500};
  for (double d : {10.0, 80.0, 160.0, 400.0}) {
    for (int i = 0; i < 50; ++i) {
      const Vec2 le = displaced_location(la, d, field, rng);
      EXPECT_NEAR(distance(le, la), d, 1e-9);
      EXPECT_TRUE(field.contains(le));
    }
  }
}

TEST(Displacement, ZeroDamageIsIdentity) {
  Rng rng(2);
  const Vec2 la{123, 456};
  EXPECT_EQ(displaced_location(la, 0.0, Aabb::square(1000.0), rng), la);
}

TEST(Displacement, CornerVictimStillGetsExactDistanceUsually) {
  Rng rng(3);
  const Aabb field = Aabb::square(1000.0);
  const Vec2 corner{5, 5};
  int exact = 0;
  for (int i = 0; i < 100; ++i) {
    const Vec2 le = displaced_location(corner, 160.0, field, rng);
    EXPECT_TRUE(field.contains(le));
    if (std::abs(distance(le, corner) - 160.0) < 1e-9) ++exact;
  }
  // About a quarter of directions stay in-field from a corner; with 64
  // retries essentially every trial should find one.
  EXPECT_EQ(exact, 100);
}

TEST(Displacement, InfeasibleDistanceClampsTowardCenter) {
  Rng rng(4);
  const Aabb field = Aabb::square(100.0);
  // d = 200 cannot fit inside a 100-square from the center.
  const Vec2 le = displaced_location({50, 50}, 200.0, field, rng);
  EXPECT_TRUE(field.contains(le));
}

TEST(Displacement, DirectionsCoverTheCircle) {
  Rng rng(5);
  const Aabb field = Aabb::square(1000.0);
  const Vec2 la{500, 500};
  int quadrant_hits[4] = {0, 0, 0, 0};
  for (int i = 0; i < 400; ++i) {
    const Vec2 le = displaced_location(la, 100.0, field, rng);
    const int q = (le.x >= la.x ? 0 : 1) + (le.y >= la.y ? 0 : 2);
    ++quadrant_hits[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(quadrant_hits[q], 50);
}

TEST(Displacement, NegativeDistanceThrows) {
  Rng rng(6);
  EXPECT_THROW(displaced_location({0, 0}, -1.0, Aabb::square(10.0), rng),
               AssertionError);
}

}  // namespace
}  // namespace lad
