#include "attack/greedy.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include <cmath>

#include "attack/adversary.h"
#include "core/metric.h"
#include "deploy/observation.h"
#include "rng/rng.h"

namespace lad {
namespace {

double score_of(MetricKind kind, const Observation& o,
                const ExpectedObservation& mu, int m) {
  return make_metric(kind)->score(o, mu, m);
}

TEST(GreedyDiffDecBounded, PaperProcedureExactly) {
  // Section 7.1's worked procedure: increases are free to mu_i, decreases
  // consume budget one unit at a time.
  const Observation a(std::vector<int>{10, 0, 4});
  const ExpectedObservation mu = {2.0, 6.0, 4.0};
  const int m = 50;
  // Budget 3: group 0 can only come down to 7; group 1 rises to 6 free.
  const TaintResult r =
      greedy_taint(a, mu, m, MetricKind::kDiff, AttackClass::kDecBounded, 3);
  EXPECT_EQ(r.tainted.counts, (std::vector<int>{7, 6, 4}));
  EXPECT_EQ(r.budget_spent, 3);
  // Unlimited budget: o == round(mu) everywhere.
  const TaintResult full =
      greedy_taint(a, mu, m, MetricKind::kDiff, AttackClass::kDecBounded, 100);
  EXPECT_EQ(full.tainted.counts, (std::vector<int>{2, 6, 4}));
  EXPECT_EQ(full.budget_spent, 8);
}

TEST(GreedyDiffDecBounded, RoundsFractionalTargets) {
  const Observation a(std::vector<int>{0, 0});
  const ExpectedObservation mu = {2.4, 2.6};
  const TaintResult r =
      greedy_taint(a, mu, 50, MetricKind::kDiff, AttackClass::kDecBounded, 0);
  EXPECT_EQ(r.tainted.counts, (std::vector<int>{2, 3}));
  EXPECT_EQ(r.budget_spent, 0);
}

TEST(GreedyDiffDecOnly, NeverIncreasesAndRespectsBudget) {
  const Observation a(std::vector<int>{10, 0, 4});
  const ExpectedObservation mu = {2.0, 6.0, 4.0};
  const TaintResult r =
      greedy_taint(a, mu, 50, MetricKind::kDiff, AttackClass::kDecOnly, 5);
  EXPECT_TRUE(is_feasible_dec_only(a, r.tainted, 5));
  // Group 1 stays at 0 (cannot rise); group 0 eats the whole budget.
  EXPECT_EQ(r.tainted.counts, (std::vector<int>{5, 0, 4}));
  EXPECT_EQ(r.budget_spent, 5);
}

TEST(GreedyAddAll, DecrementsOnlyWhereAboveMu) {
  const Observation a(std::vector<int>{8, 1});
  const ExpectedObservation mu = {3.0, 5.0};
  const TaintResult r =
      greedy_taint(a, mu, 50, MetricKind::kAddAll, AttackClass::kDecBounded, 4);
  // AM = max(o0, 3) + max(o1, 5).  Only group 0 decrements help (until 4
  // is spent or o0 hits 3); group 1 sits below mu already.
  EXPECT_EQ(r.tainted.counts, (std::vector<int>{4, 1}));
  EXPECT_EQ(r.budget_spent, 4);
  EXPECT_DOUBLE_EQ(score_of(MetricKind::kAddAll, r.tainted, mu, 50), 9.0);
}

TEST(GreedyAddAll, StopsWhenNoDecrementHelps) {
  const Observation a(std::vector<int>{2, 3});
  const ExpectedObservation mu = {5.0, 5.0};
  const TaintResult r =
      greedy_taint(a, mu, 50, MetricKind::kAddAll, AttackClass::kDecBounded, 10);
  EXPECT_EQ(r.budget_spent, 0);
  EXPECT_EQ(r.tainted.counts, a.counts);
}

TEST(GreedyProb, FreeIncreaseHitsTheMode) {
  const Observation a(std::vector<int>{0, 5});
  const ExpectedObservation mu = {30.0, 5.0};  // p0 = 0.3, m = 100
  const TaintResult r =
      greedy_taint(a, mu, 100, MetricKind::kProb, AttackClass::kDecBounded, 0);
  // Mode of Binom(100, 0.3) = floor(101 * 0.3) = 30.
  EXPECT_EQ(r.tainted.counts[0], 30);
  EXPECT_EQ(r.tainted.counts[1], 5);
}

TEST(GreedyProb, DecrementsTheArgmaxGroup) {
  const Observation a(std::vector<int>{20, 2});
  const ExpectedObservation mu = {5.0, 2.0};  // group 0 is wildly over
  const TaintResult r =
      greedy_taint(a, mu, 100, MetricKind::kProb, AttackClass::kDecOnly, 10);
  EXPECT_TRUE(is_feasible_dec_only(a, r.tainted, 10));
  EXPECT_LT(score_of(MetricKind::kProb, r.tainted, mu, 100),
            score_of(MetricKind::kProb, a, mu, 100));
  EXPECT_LT(r.tainted.counts[0], 20);
}

// ---------------------------------------------------------------------------
// Property sweeps: feasibility always holds; greedy never loses to the
// untainted observation; greedy dominates random feasible taints; budget
// monotonicity.
// ---------------------------------------------------------------------------

struct GreedyCase {
  MetricKind metric;
  AttackClass cls;
};

class GreedyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  MetricKind metric() const {
    return static_cast<MetricKind>(std::get<0>(GetParam()));
  }
  AttackClass cls() const {
    return static_cast<AttackClass>(std::get<1>(GetParam()));
  }
};

Observation random_observation(std::size_t n, int max_count, Rng& rng) {
  Observation o(n);
  for (std::size_t i = 0; i < n; ++i) {
    o.counts[i] = static_cast<int>(rng.uniform_int(0ll, max_count));
  }
  return o;
}

ExpectedObservation random_mu(std::size_t n, double max_mu, Rng& rng) {
  ExpectedObservation mu(n);
  for (std::size_t i = 0; i < n; ++i) mu[i] = rng.uniform(0.0, max_mu);
  return mu;
}

TEST_P(GreedyPropertyTest, TaintIsAlwaysFeasibleAndNeverWorseThanHonest) {
  Rng rng(100 + std::get<0>(GetParam()) * 10 + std::get<1>(GetParam()));
  const int m = 60;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(std::uint64_t{12});
    const Observation a = random_observation(n, 30, rng);
    const ExpectedObservation mu = random_mu(n, 30.0, rng);
    const int x = static_cast<int>(rng.uniform_int(std::uint64_t{25}));
    const TaintResult r = greedy_taint(a, mu, m, metric(), cls(), x);

    ASSERT_TRUE(is_feasible(cls(), a, r.tainted, x))
        << "trial " << trial << " budget " << x;
    EXPECT_LE(r.budget_spent, x);
    EXPECT_LE(score_of(metric(), r.tainted, mu, m) -
                  score_of(metric(), a, mu, m),
              1e-9)
        << "greedy made the attacker worse off";
  }
}

TEST_P(GreedyPropertyTest, GreedyDominatesRandomFeasibleTaints) {
  Rng rng(500 + std::get<0>(GetParam()) * 10 + std::get<1>(GetParam()));
  const int m = 60;
  int greedy_wins = 0, ties = 0, losses = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(std::uint64_t{8});
    const Observation a = random_observation(n, 20, rng);
    const ExpectedObservation mu = random_mu(n, 20.0, rng);
    const int x = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{15}));
    const TaintResult greedy = greedy_taint(a, mu, m, metric(), cls(), x);
    const double greedy_score = score_of(metric(), greedy.tainted, mu, m);

    // Random feasible taint: random decrements within budget; random
    // increases if Dec-Bounded.
    Observation o = a;
    int budget = x;
    for (std::size_t i = 0; i < n && budget > 0; ++i) {
      const int dec = static_cast<int>(rng.uniform_int(
          0ll, std::min(o.counts[i], budget)));
      o.counts[i] -= dec;
      budget -= dec;
    }
    if (cls() == AttackClass::kDecBounded) {
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) {
          o.counts[i] += static_cast<int>(rng.uniform_int(std::uint64_t{10}));
        }
      }
    }
    ASSERT_TRUE(is_feasible(cls(), a, o, x));
    const double random_score = score_of(metric(), o, mu, m);
    if (greedy_score < random_score - 1e-9) ++greedy_wins;
    else if (greedy_score > random_score + 1e-9) ++losses;
    else ++ties;
  }
  EXPECT_EQ(losses, 0) << "a random taint beat the greedy minimizer "
                       << losses << " times (wins=" << greedy_wins
                       << ", ties=" << ties << ")";
}

TEST_P(GreedyPropertyTest, MoreBudgetNeverHurts) {
  Rng rng(900 + std::get<0>(GetParam()) * 10 + std::get<1>(GetParam()));
  const int m = 60;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(std::uint64_t{8});
    const Observation a = random_observation(n, 25, rng);
    const ExpectedObservation mu = random_mu(n, 25.0, rng);
    double prev = std::numeric_limits<double>::infinity();
    for (int x : {0, 2, 5, 10, 20, 40}) {
      const TaintResult r = greedy_taint(a, mu, m, metric(), cls(), x);
      const double s = score_of(metric(), r.tainted, mu, m);
      EXPECT_LE(s, prev + 1e-9) << "budget " << x;
      prev = s;
    }
  }
}

std::string greedy_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* metric_names[] = {"Diff", "AddAll", "Prob"};
  static const char* class_names[] = {"DecBounded", "DecOnly"};
  return std::string(metric_names[std::get<0>(info.param)]) +
         class_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricAttackCombos, GreedyPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),   // Diff, AddAll, Prob
                       ::testing::Values(0, 1)),     // DecBounded, DecOnly
    greedy_case_name);

TEST(Greedy, RejectsNegativeBudgetAndSizeMismatch) {
  const Observation a(std::vector<int>{1});
  EXPECT_THROW(greedy_taint(a, {1.0}, 10, MetricKind::kDiff,
                            AttackClass::kDecBounded, -1),
               AssertionError);
  EXPECT_THROW(greedy_taint(a, {1.0, 2.0}, 10, MetricKind::kDiff,
                            AttackClass::kDecBounded, 1),
               AssertionError);
}

}  // namespace
}  // namespace lad
