#include "attack/realize.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/adversary.h"
#include "attack/greedy.h"
#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "net/broadcast.h"
#include "rng/rng.h"

namespace lad {
namespace {

DeploymentConfig tiny_config() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 2;
  cfg.grid_ny = 2;
  cfg.nodes_per_group = 60;
  cfg.sigma = 35.0;
  cfg.radio_range = 70.0;
  return cfg;
}

class RealizeTest : public ::testing::Test {
 protected:
  RealizeTest() : model_(tiny_config()), rng_(77), net_(model_, rng_) {}

  /// Picks a victim with a reasonably populated neighborhood.
  std::size_t pick_victim() const {
    for (std::size_t i = 0; i < net_.num_nodes(); ++i) {
      if (net_.neighbors_of(i).size() >= 12) return i;
    }
    return 0;
  }

  DeploymentModel model_;
  Rng rng_;
  Network net_;
};

TEST_F(RealizeTest, PureIncreaseTaintIsExactWithOneCompromisedNode) {
  BroadcastSim sim(net_);
  const std::size_t victim = pick_victim();
  const auto neighbors = net_.neighbors_of(victim);
  Observation target = sim.observe(victim);
  target.counts[0] += 9;
  target.counts[3] += 2;
  const RealizationPlan plan =
      realize_taint(sim, net_, victim, {neighbors.front()}, target);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.achieved, target);
  EXPECT_TRUE(plan.silenced.empty());
}

TEST_F(RealizeTest, PureSilenceTaintIsExactWithEnoughCompromisedNeighbors) {
  BroadcastSim sim(net_);
  const std::size_t victim = pick_victim();
  const auto neighbors = net_.neighbors_of(victim);
  // Compromise three neighbors of the same group and silence two of them.
  std::vector<std::size_t> same_group;
  const int g = net_.group_of(neighbors.front());
  for (std::size_t n : neighbors) {
    if (net_.group_of(n) == g) same_group.push_back(n);
  }
  if (same_group.size() < 3) GTEST_SKIP() << "unlucky topology";
  Observation target = sim.observe(victim);
  target.counts[static_cast<std::size_t>(g)] -= 2;
  const RealizationPlan plan =
      realize_taint(sim, net_, victim,
                    {same_group[0], same_group[1], same_group[2]}, target);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.silenced.size(), 2u);
}

TEST_F(RealizeTest, MixedTaintUsesImpersonationWhenSpeakerGroupShrinks) {
  BroadcastSim sim(net_);
  const std::size_t victim = pick_victim();
  const auto neighbors = net_.neighbors_of(victim);
  const std::size_t speaker = neighbors.front();
  const std::size_t sg = static_cast<std::size_t>(net_.group_of(speaker));
  Observation target = sim.observe(victim);
  if (target.counts[sg] < 1) GTEST_SKIP() << "unlucky topology";
  target.counts[sg] -= 1;                 // speaker's own group must shrink
  target.counts[(sg + 1) % 4] += 5;       // another group must grow
  const RealizationPlan plan =
      realize_taint(sim, net_, victim, {speaker}, target);
  EXPECT_TRUE(plan.exact) << "achieved != target";
}

TEST_F(RealizeTest, GreedyDiffTaintIsRealizableWithSufficientCompromise) {
  // End-to-end: formal greedy taint -> message-level realization.
  BroadcastSim sim(net_);
  const std::size_t victim = pick_victim();
  const Observation a = sim.observe(victim);
  const GzTable gz({model_.config().radio_range, model_.config().sigma});
  // Fake location: one cell away.
  const Vec2 le = model_.config().field().clamp(net_.position(victim) +
                                                Vec2{180.0, 0.0});
  const ExpectedObservation mu = model_.expected_observation(le, gz);

  // Compromise ALL neighbors: the formal global budget then never exceeds
  // the per-group physical supply.
  const auto neighbors = net_.neighbors_of(victim);
  const TaintResult taint =
      greedy_taint(a, mu, model_.config().nodes_per_group, MetricKind::kDiff,
                   AttackClass::kDecBounded,
                   static_cast<int>(neighbors.size()));

  // The formal model allows decrementing any group; physically only groups
  // with compromised members can shrink.  With all neighbors compromised,
  // every decrement the greedy chose is realizable.
  const RealizationPlan plan =
      realize_taint(sim, net_, victim, neighbors, taint.tainted);
  EXPECT_TRUE(plan.exact);
}

TEST_F(RealizeTest, InsufficientCompromiseIsReportedNotSilent) {
  BroadcastSim sim(net_);
  const std::size_t victim = pick_victim();
  Observation target = sim.observe(victim);
  // Ask for a decrement with zero compromised nodes: unrealizable.
  std::size_t g = 0;
  while (g < 4 && target.counts[g] == 0) ++g;
  if (g == 4) GTEST_SKIP() << "victim heard nobody";
  target.counts[g] -= 1;
  const RealizationPlan plan = realize_taint(sim, net_, victim, {}, target);
  EXPECT_FALSE(plan.exact);
  EXPECT_EQ(plan.achieved, sim.observe(victim));
}

}  // namespace
}  // namespace lad
