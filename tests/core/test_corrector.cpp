#include "core/corrector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/metric.h"
#include "core/serialize.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "stats/running_stats.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig cfg8() {
  DeploymentConfig cfg;
  cfg.field_side = 800.0;
  cfg.grid_nx = 8;
  cfg.grid_ny = 8;
  cfg.nodes_per_group = 60;
  cfg.sigma = 40.0;
  cfg.radio_range = 50.0;
  return cfg;
}

class CorrectorTest : public ::testing::Test {
 protected:
  CorrectorTest()
      : cfg_(cfg8()), model_(cfg_), gz_({cfg_.radio_range, cfg_.sigma}),
        rng_(88), net_(model_, rng_), corrector_(model_, gz_) {}

  std::size_t in_field_victim() {
    std::size_t node;
    do {
      node = static_cast<std::size_t>(rng_.uniform_int(net_.num_nodes()));
    } while (!cfg_.field().contains(net_.position(node)));
    return node;
  }

  DeploymentConfig cfg_;
  DeploymentModel model_;
  GzTable gz_;
  Rng rng_;
  Network net_;
  LocationCorrector corrector_;
};

TEST_F(CorrectorTest, BenignObservationsCorrectToTruth) {
  RunningStats err;
  for (int t = 0; t < 30; ++t) {
    const std::size_t node = in_field_victim();
    const CorrectionResult r = corrector_.correct(net_.observe(node));
    err.add(distance(r.corrected, net_.position(node)));
  }
  EXPECT_LT(err.mean(), 25.0);
}

TEST_F(CorrectorTest, DecOnlyTaintIsCorrectedNearBenignFloor) {
  RunningStats err;
  for (int t = 0; t < 30; ++t) {
    const std::size_t node = in_field_victim();
    const Observation a = net_.observe(node);
    const Vec2 la = net_.position(node);
    const Vec2 le = displaced_location(la, 160.0, cfg_.field(), rng_);
    const TaintResult taint = greedy_taint(
        a, model_.expected_observation(le, gz_), cfg_.nodes_per_group,
        MetricKind::kDiff, AttackClass::kDecOnly,
        static_cast<int>(0.15 * a.total()));
    err.add(distance(corrector_.correct(taint.tainted).corrected, la));
  }
  // Silences only remove evidence; the surviving bump pins the estimate.
  EXPECT_LT(err.mean(), 40.0);
}

TEST_F(CorrectorTest, DecBoundedCorrectionBeatsAcceptingTheFake) {
  RunningStats corrected_err;
  const double kDamage = 200.0;
  for (int t = 0; t < 30; ++t) {
    const std::size_t node = in_field_victim();
    const Observation a = net_.observe(node);
    const Vec2 la = net_.position(node);
    const Vec2 le = displaced_location(la, kDamage, cfg_.field(), rng_);
    const TaintResult taint = greedy_taint(
        a, model_.expected_observation(le, gz_), cfg_.nodes_per_group,
        MetricKind::kDiff, AttackClass::kDecBounded,
        static_cast<int>(0.10 * a.total()));
    corrected_err.add(distance(corrector_.correct(taint.tainted).corrected, la));
  }
  // Not necessarily near-perfect (correction under Dec-Bounded is open),
  // but on average it must beat blindly accepting the planted location.
  EXPECT_LT(corrected_err.mean(), kDamage);
}

TEST_F(CorrectorTest, RobustLikelihoodCapsWorstGroups) {
  const std::size_t node = in_field_victim();
  Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  const double before = corrector_.robust_log_likelihood(obs, truth);
  // Inject an absurd count into a far group: the plain likelihood would
  // crater to ~-1e12; the capped one drops by at most the cap (25).
  int far_group = 0;
  double far_d = 0;
  for (int g = 0; g < model_.num_groups(); ++g) {
    const double d = distance(model_.deployment_point(g), truth);
    if (d > far_d) {
      far_d = d;
      far_group = g;
    }
  }
  obs.counts[static_cast<std::size_t>(far_group)] += 40;
  const double after = corrector_.robust_log_likelihood(obs, truth);
  EXPECT_GE(after, before - 25.0 - 1e-9);
  EXPECT_LT(after, before);  // the forged group still costs something
}

TEST_F(CorrectorTest, CappedGroupsReportTheForgedOnes) {
  const std::size_t node = in_field_victim();
  Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  int far_group = 0;
  double far_d = 0;
  for (int g = 0; g < model_.num_groups(); ++g) {
    const double d = distance(model_.deployment_point(g), truth);
    if (d > far_d) {
      far_d = d;
      far_group = g;
    }
  }
  obs.counts[static_cast<std::size_t>(far_group)] += 40;
  const CorrectionResult r = corrector_.correct(obs);
  EXPECT_NE(std::find(r.capped_groups.begin(), r.capped_groups.end(),
                      far_group),
            r.capped_groups.end())
      << "the forged group should be among the capped ones";
}

TEST_F(CorrectorTest, InvalidConstructionRejected) {
  EXPECT_THROW(LocationCorrector(model_, gz_, 0.0), AssertionError);
  EXPECT_THROW(LocationCorrector(model_, gz_, -5.0), AssertionError);
  EXPECT_THROW(LocationCorrector(model_, gz_, 25.0, 0), AssertionError);
  EXPECT_THROW(LocationCorrector(model_, gz_, 25.0, 3, 0.0), AssertionError);
}

TEST_F(CorrectorTest, SizeMismatchThrows) {
  EXPECT_THROW(corrector_.correct(Observation(3)), AssertionError);
}

TEST_F(CorrectorTest, AllZeroObservationHasDefinedBehavior) {
  // Every group silenced: no likelihood evidence at all.  Defined result:
  // the max-prior deployment point, every group flagged capped, no NaNs.
  const Observation silent(static_cast<std::size_t>(model_.num_groups()));
  const CorrectionResult r = corrector_.correct(silent);
  EXPECT_TRUE(std::isfinite(r.corrected.x));
  EXPECT_TRUE(std::isfinite(r.corrected.y));
  EXPECT_TRUE(std::isfinite(r.robust_ll));
  EXPECT_EQ(r.corrected, corrector_.max_prior_deployment_point());
  ASSERT_EQ(r.capped_groups.size(),
            static_cast<std::size_t>(model_.num_groups()));
  for (int g = 0; g < model_.num_groups(); ++g) {
    EXPECT_EQ(r.capped_groups[static_cast<std::size_t>(g)], g);
  }
  // Deterministic: the same silent observation yields the same point.
  EXPECT_EQ(corrector_.correct(silent).corrected, r.corrected);
}

TEST_F(CorrectorTest, MaxPriorPointIsAnInteriorDeploymentPoint) {
  // The deployment-density mixture peaks away from the field edge, so the
  // fallback point must be one of the interior deployment points.
  const Vec2 p = corrector_.max_prior_deployment_point();
  bool is_deployment_point = false;
  for (int g = 0; g < model_.num_groups(); ++g) {
    if (model_.deployment_point(g) == p) is_deployment_point = true;
  }
  EXPECT_TRUE(is_deployment_point);
  const double edge = std::min(std::min(p.x, cfg_.field_side - p.x),
                               std::min(p.y, cfg_.field_side - p.y));
  EXPECT_GT(edge, cfg_.sigma);  // not a boundary deployment point
}

TEST_F(CorrectorTest, GroupSpreadConditioningLoosensBoundaryCaps) {
  DetectorSpec spec;
  spec.metric = MetricKind::kDiff;
  spec.threshold = 10.0;
  // Group 0 trained twice as wide, group 5 half as wide.
  spec.group_overrides = {
      {0, 20.0, GroupOverrideSource::kTrained, 50, 4.0, 2.0},
      {5, 5.0, GroupOverrideSource::kTrained, 50, 1.0, 0.5}};
  const DetectorBundle bundle = make_bundle(model_, 128, {spec});

  LocationCorrector conditioned(model_, gz_);
  conditioned.apply_group_spread(bundle);
  EXPECT_DOUBLE_EQ(conditioned.cap_for_group(0), 50.0);
  EXPECT_DOUBLE_EQ(conditioned.cap_for_group(5), 12.5);
  EXPECT_DOUBLE_EQ(conditioned.cap_for_group(1), 25.0);  // base cap
  EXPECT_DOUBLE_EQ(corrector_.cap_for_group(0), 25.0);   // unconditioned
  EXPECT_THROW(conditioned.cap_for_group(model_.num_groups()),
               AssertionError);
}

TEST_F(CorrectorTest, ConditionedCapsChangeTheCappedDiagnostic) {
  // Forge a far group hard enough to hit the base cap, then loosen that
  // group's cap via a bundle: the term must now cost more than the base
  // cap allowed (the diagnostic threshold moved with it).
  const std::size_t node = in_field_victim();
  Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  int far_group = 0;
  double far_d = 0;
  for (int g = 0; g < model_.num_groups(); ++g) {
    const double d = distance(model_.deployment_point(g), truth);
    if (d > far_d) {
      far_d = d;
      far_group = g;
    }
  }
  obs.counts[static_cast<std::size_t>(far_group)] += 40;
  const double base_ll = corrector_.robust_log_likelihood(obs, truth);

  DetectorSpec spec;
  spec.metric = MetricKind::kDiff;
  spec.threshold = 10.0;
  spec.group_overrides = {
      {far_group, 40.0, GroupOverrideSource::kTrained, 50, 8.0, 4.0}};
  LocationCorrector conditioned(model_, gz_);
  conditioned.apply_group_spread(make_bundle(model_, 128, {spec}));
  // A 4x looser cap lets the forged group's true implausibility through.
  EXPECT_LT(conditioned.robust_log_likelihood(obs, truth), base_ll);
}

TEST_F(CorrectorTest, GroupSpreadRejectsMismatchedBundle) {
  DeploymentConfig other = cfg_;
  other.grid_nx = 3;
  other.grid_ny = 3;
  const DeploymentModel other_model(other);
  const DetectorBundle bundle =
      make_bundle(other_model, 128, MetricKind::kDiff, 10.0);
  LocationCorrector c(model_, gz_);
  EXPECT_THROW(c.apply_group_spread(bundle), AssertionError);
}

}  // namespace
}  // namespace lad
