#include "core/corrector.h"

#include <gtest/gtest.h>

#include "attack/displacement.h"
#include "attack/greedy.h"
#include "deploy/network.h"
#include "stats/running_stats.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig cfg8() {
  DeploymentConfig cfg;
  cfg.field_side = 800.0;
  cfg.grid_nx = 8;
  cfg.grid_ny = 8;
  cfg.nodes_per_group = 60;
  cfg.sigma = 40.0;
  cfg.radio_range = 50.0;
  return cfg;
}

class CorrectorTest : public ::testing::Test {
 protected:
  CorrectorTest()
      : cfg_(cfg8()), model_(cfg_), gz_({cfg_.radio_range, cfg_.sigma}),
        rng_(88), net_(model_, rng_), corrector_(model_, gz_) {}

  std::size_t in_field_victim() {
    std::size_t node;
    do {
      node = static_cast<std::size_t>(rng_.uniform_int(net_.num_nodes()));
    } while (!cfg_.field().contains(net_.position(node)));
    return node;
  }

  DeploymentConfig cfg_;
  DeploymentModel model_;
  GzTable gz_;
  Rng rng_;
  Network net_;
  LocationCorrector corrector_;
};

TEST_F(CorrectorTest, BenignObservationsCorrectToTruth) {
  RunningStats err;
  for (int t = 0; t < 30; ++t) {
    const std::size_t node = in_field_victim();
    const CorrectionResult r = corrector_.correct(net_.observe(node));
    err.add(distance(r.corrected, net_.position(node)));
  }
  EXPECT_LT(err.mean(), 25.0);
}

TEST_F(CorrectorTest, DecOnlyTaintIsCorrectedNearBenignFloor) {
  RunningStats err;
  for (int t = 0; t < 30; ++t) {
    const std::size_t node = in_field_victim();
    const Observation a = net_.observe(node);
    const Vec2 la = net_.position(node);
    const Vec2 le = displaced_location(la, 160.0, cfg_.field(), rng_);
    const TaintResult taint = greedy_taint(
        a, model_.expected_observation(le, gz_), cfg_.nodes_per_group,
        MetricKind::kDiff, AttackClass::kDecOnly,
        static_cast<int>(0.15 * a.total()));
    err.add(distance(corrector_.correct(taint.tainted).corrected, la));
  }
  // Silences only remove evidence; the surviving bump pins the estimate.
  EXPECT_LT(err.mean(), 40.0);
}

TEST_F(CorrectorTest, DecBoundedCorrectionBeatsAcceptingTheFake) {
  RunningStats corrected_err;
  const double kDamage = 200.0;
  for (int t = 0; t < 30; ++t) {
    const std::size_t node = in_field_victim();
    const Observation a = net_.observe(node);
    const Vec2 la = net_.position(node);
    const Vec2 le = displaced_location(la, kDamage, cfg_.field(), rng_);
    const TaintResult taint = greedy_taint(
        a, model_.expected_observation(le, gz_), cfg_.nodes_per_group,
        MetricKind::kDiff, AttackClass::kDecBounded,
        static_cast<int>(0.10 * a.total()));
    corrected_err.add(distance(corrector_.correct(taint.tainted).corrected, la));
  }
  // Not necessarily near-perfect (correction under Dec-Bounded is open),
  // but on average it must beat blindly accepting the planted location.
  EXPECT_LT(corrected_err.mean(), kDamage);
}

TEST_F(CorrectorTest, RobustLikelihoodCapsWorstGroups) {
  const std::size_t node = in_field_victim();
  Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  const double before = corrector_.robust_log_likelihood(obs, truth);
  // Inject an absurd count into a far group: the plain likelihood would
  // crater to ~-1e12; the capped one drops by at most the cap (25).
  int far_group = 0;
  double far_d = 0;
  for (int g = 0; g < model_.num_groups(); ++g) {
    const double d = distance(model_.deployment_point(g), truth);
    if (d > far_d) {
      far_d = d;
      far_group = g;
    }
  }
  obs.counts[static_cast<std::size_t>(far_group)] += 40;
  const double after = corrector_.robust_log_likelihood(obs, truth);
  EXPECT_GE(after, before - 25.0 - 1e-9);
  EXPECT_LT(after, before);  // the forged group still costs something
}

TEST_F(CorrectorTest, CappedGroupsReportTheForgedOnes) {
  const std::size_t node = in_field_victim();
  Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  int far_group = 0;
  double far_d = 0;
  for (int g = 0; g < model_.num_groups(); ++g) {
    const double d = distance(model_.deployment_point(g), truth);
    if (d > far_d) {
      far_d = d;
      far_group = g;
    }
  }
  obs.counts[static_cast<std::size_t>(far_group)] += 40;
  const CorrectionResult r = corrector_.correct(obs);
  EXPECT_NE(std::find(r.capped_groups.begin(), r.capped_groups.end(),
                      far_group),
            r.capped_groups.end())
      << "the forged group should be among the capped ones";
}

TEST_F(CorrectorTest, InvalidConstructionRejected) {
  EXPECT_THROW(LocationCorrector(model_, gz_, 0.0), AssertionError);
  EXPECT_THROW(LocationCorrector(model_, gz_, -5.0), AssertionError);
  EXPECT_THROW(LocationCorrector(model_, gz_, 25.0, 0), AssertionError);
  EXPECT_THROW(LocationCorrector(model_, gz_, 25.0, 3, 0.0), AssertionError);
}

TEST_F(CorrectorTest, SizeMismatchThrows) {
  EXPECT_THROW(corrector_.correct(Observation(3)), AssertionError);
}

}  // namespace
}  // namespace lad
