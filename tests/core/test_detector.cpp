#include "core/detector.h"

#include <gtest/gtest.h>

#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

DeploymentConfig tiny_config() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 2;
  cfg.grid_ny = 2;
  cfg.nodes_per_group = 50;
  cfg.sigma = 30.0;
  cfg.radio_range = 60.0;
  return cfg;
}

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest()
      : cfg_(tiny_config()), model_(cfg_), gz_({cfg_.radio_range, cfg_.sigma}),
        rng_(3), net_(model_, rng_) {}
  DeploymentConfig cfg_;
  DeploymentModel model_;
  GzTable gz_;
  Rng rng_;
  Network net_;
};

TEST_F(DetectorTest, ScoreEqualsMetricOnExpectedObservation) {
  const Detector det(model_, gz_, MetricKind::kDiff, 10.0);
  const std::size_t node = 7;
  const Observation obs = net_.observe(node);
  const Vec2 le = net_.position(node);
  const ExpectedObservation mu = model_.expected_observation(le, gz_);
  const DiffMetric dm;
  EXPECT_DOUBLE_EQ(det.score(obs, le), dm.score(obs, mu, cfg_.nodes_per_group));
}

TEST_F(DetectorTest, TruthfulLocationScoresLowerThanDistantLie) {
  const Detector det(model_, gz_, MetricKind::kDiff, 0.0);
  const std::size_t node = 11;
  const Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  const Vec2 lie = cfg_.field().clamp(truth + Vec2{250, 0});
  EXPECT_LT(det.score(obs, truth), det.score(obs, lie));
}

TEST_F(DetectorTest, VerdictComparesAgainstThreshold) {
  Detector det(model_, gz_, MetricKind::kDiff, 1e9);
  const std::size_t node = 13;
  const Observation obs = net_.observe(node);
  const Vec2 le = net_.position(node);
  const Verdict ok = det.check(obs, le);
  EXPECT_FALSE(ok.anomaly);
  EXPECT_DOUBLE_EQ(ok.threshold, 1e9);

  det.set_threshold(-1.0);  // everything is anomalous now
  const Verdict bad = det.check(obs, le);
  EXPECT_TRUE(bad.anomaly);
  EXPECT_DOUBLE_EQ(bad.score, ok.score);
}

TEST_F(DetectorTest, ImplementsAnomalyDetectorInterface) {
  // The polymorphic path (what RuntimeDetector hands out) must agree with
  // the concrete one.
  const Detector det(model_, gz_, MetricKind::kDiff, 10.0);
  const AnomalyDetector& base = det;
  const std::size_t node = 19;
  const Observation obs = net_.observe(node);
  const Vec2 le = net_.position(node);
  EXPECT_EQ(base.score(obs, le), det.score(obs, le));
  EXPECT_EQ(base.check(obs, le).anomaly, det.check(obs, le).anomaly);
  EXPECT_NE(base.describe().find("diff"), std::string::npos);
  EXPECT_NE(base.describe().find("10"), std::string::npos);
}

TEST_F(DetectorTest, WorksWithAllThreeMetrics) {
  const std::size_t node = 17;
  const Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  const Vec2 lie = cfg_.field().clamp(truth + Vec2{0, 250});
  for (MetricKind kind :
       {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb}) {
    const Detector det(model_, gz_, kind, 0.0);
    EXPECT_LT(det.score(obs, truth), det.score(obs, lie))
        << metric_name(kind);
    EXPECT_EQ(det.metric(), kind);
  }
}

}  // namespace
}  // namespace lad
