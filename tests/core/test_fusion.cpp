#include "core/fusion.h"

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig cfg6() {
  DeploymentConfig cfg;
  cfg.field_side = 600.0;
  cfg.grid_nx = 6;
  cfg.grid_ny = 6;
  cfg.nodes_per_group = 50;
  cfg.sigma = 35.0;
  cfg.radio_range = 55.0;
  return cfg;
}

class FusionTest : public ::testing::Test {
 protected:
  FusionTest()
      : cfg_(cfg6()), model_(cfg_), gz_({cfg_.radio_range, cfg_.sigma}),
        rng_(17), net_(model_, rng_) {}
  DeploymentConfig cfg_;
  DeploymentModel model_;
  GzTable gz_;
  Rng rng_;
  Network net_;
};

TEST_F(FusionTest, FusedScoreIsMaxOfNormalizedScores) {
  const FusionDetector fusion(model_, gz_, 10.0, 100.0, 20.0);
  const std::size_t node = 7;
  const Observation obs = net_.observe(node);
  const Vec2 le = net_.position(node);
  const Detector d_diff(model_, gz_, MetricKind::kDiff, 0);
  const Detector d_add(model_, gz_, MetricKind::kAddAll, 0);
  const Detector d_prob(model_, gz_, MetricKind::kProb, 0);
  const double expected = std::max(
      {d_diff.score(obs, le) / 10.0, d_add.score(obs, le) / 100.0,
       d_prob.score(obs, le) / 20.0});
  EXPECT_DOUBLE_EQ(fusion.fused_score(obs, le), expected);
}

TEST_F(FusionTest, AlarmsWhenAnyMetricExceedsItsThreshold) {
  // Thresholds set so only the Diff ratio can cross 1 on a far-off claim.
  const FusionDetector fusion(model_, gz_, 1.0, 1e9, 1e9);
  const std::size_t node = 11;
  const Observation obs = net_.observe(node);
  const Vec2 lie = cfg_.field().clamp(net_.position(node) + Vec2{250, 0});
  const Verdict v = fusion.check(obs, lie);
  EXPECT_TRUE(v.anomaly);
  EXPECT_EQ(fusion.dominant_metric(obs, lie), MetricKind::kDiff);
}

TEST_F(FusionTest, QuietOnTruthfulLocationWithSaneThresholds) {
  // Generous thresholds: an honest (obs, truth) pair must not alarm.
  const FusionDetector fusion(model_, gz_, 1e6, 1e6, 1e6);
  const std::size_t node = 23;
  const Observation obs = net_.observe(node);
  EXPECT_FALSE(fusion.check(obs, net_.position(node)).anomaly);
}

TEST_F(FusionTest, DominantMetricTracksTheLargestRatio) {
  const FusionDetector fusion(model_, gz_, 1e9, 1.0, 1e9);
  const std::size_t node = 31;
  const Observation obs = net_.observe(node);
  // Add-all score is ~|obs| > 1, so with threshold 1 it dominates.
  EXPECT_EQ(fusion.dominant_metric(obs, net_.position(node)),
            MetricKind::kAddAll);
}

TEST_F(FusionTest, RejectsNonPositiveThresholds) {
  EXPECT_THROW(FusionDetector(model_, gz_, 0.0, 1.0, 1.0), AssertionError);
  EXPECT_THROW(FusionDetector(model_, gz_, 1.0, -2.0, 1.0), AssertionError);
}

TEST_F(FusionTest, RejectsEmptyAndDuplicateComponents) {
  EXPECT_THROW(FusionDetector(model_, gz_, {}), AssertionError);
  EXPECT_THROW(FusionDetector(model_, gz_,
                              {{MetricKind::kDiff, 1.0},
                               {MetricKind::kDiff, 2.0}}),
               AssertionError);
}

TEST_F(FusionTest, ComponentSubsetMatchesManualMax) {
  // The generalized constructor: fuse just Diff and Prob.
  const FusionDetector fusion(
      model_, gz_, {{MetricKind::kDiff, 8.0}, {MetricKind::kProb, 30.0}});
  const std::size_t node = 13;
  const Observation obs = net_.observe(node);
  const Vec2 le = net_.position(node);
  const Detector d_diff(model_, gz_, MetricKind::kDiff, 0);
  const Detector d_prob(model_, gz_, MetricKind::kProb, 0);
  const double expected = std::max(d_diff.score(obs, le) / 8.0,
                                   d_prob.score(obs, le) / 30.0);
  EXPECT_DOUBLE_EQ(fusion.fused_score(obs, le), expected);
  ASSERT_EQ(fusion.components().size(), 2u);
  EXPECT_EQ(fusion.components()[0].first, MetricKind::kDiff);
  EXPECT_EQ(fusion.components()[1].first, MetricKind::kProb);
}

TEST_F(FusionTest, ImplementsAnomalyDetectorInterface) {
  const FusionDetector fusion(model_, gz_, 10.0, 100.0, 20.0);
  const AnomalyDetector& base = fusion;
  const std::size_t node = 29;
  const Observation obs = net_.observe(node);
  const Vec2 le = net_.position(node);
  EXPECT_EQ(base.score(obs, le), fusion.fused_score(obs, le));
  EXPECT_EQ(base.check(obs, le).threshold, 1.0);
  EXPECT_NE(base.describe().find("fusion"), std::string::npos);
  EXPECT_NE(base.describe().find("add-all"), std::string::npos);
}

TEST_F(FusionTest, CatchesAttackerOptimizedAgainstSingleMetric) {
  // The motivating case: an attacker that minimizes the Diff metric may
  // still trip the Prob metric.  Craft an observation that keeps the total
  // |o - mu| small but concentrates the discrepancy in one group.
  const std::size_t node = 41;
  const Vec2 le = net_.position(node);
  const ExpectedObservation mu = model_.expected_observation(le, gz_);
  Observation crafted(static_cast<std::size_t>(model_.num_groups()));
  for (std::size_t g = 0; g < mu.size(); ++g) {
    crafted.counts[g] = static_cast<int>(std::lround(mu[g]));
  }
  // One impossible group: +6 nodes where mu ~ 0 (diff cost just 6).
  std::size_t far_group = 0;
  for (std::size_t g = 0; g < mu.size(); ++g) {
    if (mu[g] < mu[far_group]) far_group = g;
  }
  crafted.counts[far_group] += 6;

  const Detector diff_only(model_, gz_, MetricKind::kDiff, 12.0);
  EXPECT_FALSE(diff_only.check(crafted, le).anomaly)
      << "the crafted observation should slip past a Diff-only detector";
  const FusionDetector fusion(model_, gz_, 12.0, 1e9, 25.0);
  EXPECT_TRUE(fusion.check(crafted, le).anomaly)
      << "the Prob component should catch the impossible group";
  EXPECT_EQ(fusion.dominant_metric(crafted, le), MetricKind::kProb);
}

}  // namespace
}  // namespace lad
