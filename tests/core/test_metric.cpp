#include "core/metric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/observation.h"
#include "stats/special.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(MetricNames, RoundTrip) {
  for (MetricKind k :
       {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb}) {
    EXPECT_EQ(metric_from_name(metric_name(k)), k);
  }
  EXPECT_EQ(metric_from_name("DM"), MetricKind::kDiff);
  EXPECT_EQ(metric_from_name("AddAll"), MetricKind::kAddAll);
  EXPECT_EQ(metric_from_name("probability"), MetricKind::kProb);
  EXPECT_THROW(metric_from_name("bogus"), AssertionError);
}

TEST(MakeMetric, ProducesCorrectKinds) {
  for (MetricKind k :
       {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb}) {
    EXPECT_EQ(make_metric(k)->kind(), k);
  }
}

TEST(DiffMetric, HandComputedExample) {
  const DiffMetric dm;
  const Observation o(std::vector<int>{5, 0, 10});
  const ExpectedObservation mu = {3.0, 2.0, 10.5};
  // |5-3| + |0-2| + |10-10.5| = 4.5.
  EXPECT_DOUBLE_EQ(dm.score(o, mu, 100), 4.5);
}

TEST(DiffMetric, ZeroWhenObservationMatchesExpectation) {
  const DiffMetric dm;
  const Observation o(std::vector<int>{3, 7});
  EXPECT_DOUBLE_EQ(dm.score(o, {3.0, 7.0}, 10), 0.0);
}

TEST(AddAllMetric, HandComputedExample) {
  const AddAllMetric am;
  const Observation o(std::vector<int>{5, 0, 10});
  const ExpectedObservation mu = {3.0, 2.0, 10.5};
  // max(5,3) + max(0,2) + max(10,10.5) = 17.5.
  EXPECT_DOUBLE_EQ(am.score(o, mu, 100), 17.5);
}

TEST(AddAllMetric, LowerBoundIsMaxOfTotals) {
  // AM >= max(|o|, |mu|) always, with equality iff the supports align.
  const AddAllMetric am;
  const Observation o(std::vector<int>{8, 0});
  const ExpectedObservation mu = {0.0, 6.0};
  EXPECT_DOUBLE_EQ(am.score(o, mu, 10), 14.0);  // disjoint supports add up
  const Observation o2(std::vector<int>{8, 0});
  const ExpectedObservation mu2 = {6.0, 0.0};
  EXPECT_DOUBLE_EQ(am.score(o2, mu2, 10), 8.0);  // aligned: just the max
}

TEST(AddAllMetric, GrowsWithDisplacementStory) {
  // The Figure-1 narrative: union of observations at two far-apart points
  // has a larger total than either one.
  const AddAllMetric am;
  const Observation at_o(std::vector<int>{10, 10, 0, 0});
  const ExpectedObservation at_p = {0.0, 0.0, 10.0, 10.0};
  const ExpectedObservation at_o_mu = {10.0, 10.0, 0.0, 0.0};
  EXPECT_GT(am.score(at_o, at_p, 100), am.score(at_o, at_o_mu, 100));
}

TEST(ProbMetric, ScoreIsNegLogOfMinProbability) {
  const ProbMetric pm;
  const Observation o(std::vector<int>{2, 5});
  const ExpectedObservation mu = {3.0, 4.0};
  const int m = 10;
  const double p0 = binomial_pmf(2, m, 0.3);
  const double p1 = binomial_pmf(5, m, 0.4);
  EXPECT_NEAR(pm.score(o, mu, m), -std::log(std::min(p0, p1)), 1e-10);
  EXPECT_NEAR(ProbMetric::min_probability(o, mu, m), std::min(p0, p1), 1e-12);
}

TEST(ProbMetric, ImpossibleObservationIsHugeButFinite) {
  const ProbMetric pm;
  // Group 0 has expectation 0 (p = 0) but we observed 3 nodes from it.
  const Observation o(std::vector<int>{3, 1});
  const ExpectedObservation mu = {0.0, 1.0};
  const double s = pm.score(o, mu, 10);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_GE(s, 1e12);
}

TEST(ProbMetric, ZeroCountAtZeroExpectationIsPerfectlyNormal) {
  const ProbMetric pm;
  const Observation o(std::vector<int>{0});
  const ExpectedObservation mu = {0.0};
  EXPECT_DOUBLE_EQ(pm.score(o, mu, 10), 0.0);  // pmf = 1, -log = 0
}

TEST(ProbMetric, GroupScoreMatchesLogPmf) {
  EXPECT_NEAR(prob_metric_group_score(4, 3.0, 10),
              -log_binomial_pmf(4, 10, 0.3), 1e-12);
  // Count above m is impossible -> huge score.
  EXPECT_GE(prob_metric_group_score(11, 3.0, 10), 1e12);
}

TEST(Metrics, AllGrowWithDisplacementDistance) {
  // Synthetic two-group world: o concentrated on group 0, mu progressively
  // moved to group 1.  Every metric must increase monotonically.
  const Observation o(std::vector<int>{20, 0});
  const int m = 100;
  for (MetricKind kind :
       {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb}) {
    const auto metric = make_metric(kind);
    double prev = -1.0;
    for (double shift : {0.0, 5.0, 10.0, 15.0, 20.0}) {
      const ExpectedObservation mu = {20.0 - shift, shift};
      const double s = metric->score(o, mu, m);
      EXPECT_GE(s, prev) << metric->name() << " at shift " << shift;
      prev = s;
    }
  }
}

TEST(Metrics, SizeMismatchThrows) {
  const Observation o(std::vector<int>{1, 2});
  const ExpectedObservation mu = {1.0};
  for (MetricKind kind :
       {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb}) {
    EXPECT_THROW(make_metric(kind)->score(o, mu, 10), AssertionError);
  }
}

}  // namespace
}  // namespace lad
