#include "core/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "deploy/network.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig cfg4() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 4;
  cfg.grid_ny = 4;
  cfg.nodes_per_group = 30;
  cfg.sigma = 25.0;
  cfg.radio_range = 45.0;
  return cfg;
}

TEST(Serialize, RoundTripPreservesEverything) {
  const DeploymentModel model(cfg4());
  const DetectorBundle original =
      make_bundle(model, 128, MetricKind::kProb, 17.25);
  std::stringstream ss;
  save_bundle(ss, original);
  const DetectorBundle loaded = load_bundle(ss);
  EXPECT_EQ(loaded, original);
}

TEST(Serialize, RoundTripPreservesExactDoubles) {
  const DeploymentModel model(cfg4());
  DetectorBundle b = make_bundle(model, 64, MetricKind::kDiff, 0.0);
  b.threshold = 0.1 + 0.2;  // a value with no short decimal representation
  b.config.sigma = 1.0 / 3.0;
  std::stringstream ss;
  save_bundle(ss, b);
  const DetectorBundle loaded = load_bundle(ss);
  EXPECT_EQ(loaded.threshold, b.threshold);      // bit-exact
  EXPECT_EQ(loaded.config.sigma, b.config.sigma);
}

TEST(Serialize, RoundTripWithCustomDeploymentPoints) {
  const DeploymentModel model(cfg4(), {{10.5, 20.25}, {399.9, 0.1}, {7, 7}});
  const DetectorBundle original =
      make_bundle(model, 256, MetricKind::kAddAll, 42.0);
  std::stringstream ss;
  save_bundle(ss, original);
  const DetectorBundle loaded = load_bundle(ss);
  EXPECT_EQ(loaded.deployment_points, original.deployment_points);
}

TEST(Serialize, MaterializedDetectorMatchesLiveDetector) {
  const DeploymentConfig cfg = cfg4();
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma}, 128);
  const Detector live(model, gz, MetricKind::kDiff, 12.0);

  std::stringstream ss;
  save_bundle(ss, make_bundle(model, 128, MetricKind::kDiff, 12.0));
  const RuntimeDetector shipped(load_bundle(ss));

  Rng rng(3);
  const Network net(model, rng);
  for (std::size_t node = 0; node < net.num_nodes(); node += 113) {
    const Observation obs = net.observe(node);
    const Vec2 le = net.position(node);
    const Verdict a = live.check(obs, le);
    const Verdict b = shipped.check(obs, le);
    EXPECT_EQ(a.anomaly, b.anomaly);
    EXPECT_DOUBLE_EQ(a.score, b.score);
  }
}

TEST(Serialize, RejectsWrongHeader) {
  std::stringstream ss("not-a-bundle v9\n");
  EXPECT_THROW(load_bundle(ss), AssertionError);
}

TEST(Serialize, RejectsTruncatedInput) {
  const DeploymentModel model(cfg4());
  std::stringstream ss;
  save_bundle(ss, make_bundle(model, 64, MetricKind::kDiff, 1.0));
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_bundle(cut), AssertionError);
}

TEST(Serialize, RejectsKeyOutOfOrder) {
  std::stringstream ss("lad-detector v1\nsigma 50\n");
  EXPECT_THROW(load_bundle(ss), AssertionError);
}

TEST(Serialize, RejectsGarbageNumbers) {
  const DeploymentModel model(cfg4());
  std::stringstream ss;
  save_bundle(ss, make_bundle(model, 64, MetricKind::kDiff, 1.0));
  std::string text = ss.str();
  const auto pos = text.find("threshold 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "threshold x");
  std::stringstream bad(text);
  EXPECT_THROW(load_bundle(bad), AssertionError);
}

TEST(Serialize, RejectsInvalidConfigAfterParse) {
  const DeploymentModel model(cfg4());
  std::stringstream ss;
  save_bundle(ss, make_bundle(model, 64, MetricKind::kDiff, 1.0));
  std::string text = ss.str();
  const auto pos = text.find("sigma 25");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "sigma -5");
  std::stringstream bad(text);
  EXPECT_THROW(load_bundle(bad), AssertionError);
}

}  // namespace
}  // namespace lad
