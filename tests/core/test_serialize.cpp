#include "core/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/detector.h"
#include "core/fusion.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig cfg4() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 4;
  cfg.grid_ny = 4;
  cfg.nodes_per_group = 30;
  cfg.sigma = 25.0;
  cfg.radio_range = 45.0;
  return cfg;
}

/// A fully loaded fusion bundle: three sections, multi-tau tables, group
/// overrides, and extension keys.
DetectorBundle fat_bundle(const DeploymentModel& model) {
  DetectorSpec diff;
  diff.metric = MetricKind::kDiff;
  diff.threshold = 12.25;
  diff.taus = {{0.95, 10.5, 4800, 3.5, 1.25, 0.125, 19.75},
               {0.99, 12.25, 4800, 3.5, 1.25, 0.125, 19.75}};
  diff.group_overrides = {{1, 11.5}, {3, 13.0}};
  diff.extensions = {{"trained-by", "unit test"}, {"note", "hello world"}};
  DetectorSpec prob;
  prob.metric = MetricKind::kProb;
  prob.threshold = 30.5;
  return make_bundle(model, 128, {diff, prob});
}

std::string text_of(const DetectorBundle& b) {
  std::ostringstream os;
  save_bundle(os, b);
  return os.str();
}

DetectorBundle parse(const std::string& text, int* version = nullptr) {
  std::istringstream is(text);
  return load_bundle(is, version);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const DeploymentModel model(cfg4());
  const DetectorBundle original =
      make_bundle(model, 128, MetricKind::kProb, 17.25);
  int version = 0;
  const DetectorBundle loaded = parse(text_of(original), &version);
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(version, 2);
}

TEST(Serialize, RoundTripPreservesFusionSectionsTausOverridesExtensions) {
  const DeploymentModel model(cfg4());
  const DetectorBundle original = fat_bundle(model);
  const DetectorBundle loaded = parse(text_of(original));
  EXPECT_EQ(loaded, original);
  // And the canonical text is a fixed point.
  EXPECT_EQ(text_of(loaded), text_of(original));
}

TEST(Serialize, RoundTripPreservesExactDoubles) {
  const DeploymentModel model(cfg4());
  DetectorBundle b = make_bundle(model, 64, MetricKind::kDiff, 0.0);
  b.detectors[0].threshold = 0.1 + 0.2;  // no short decimal representation
  b.config.sigma = 1.0 / 3.0;
  const DetectorBundle loaded = parse(text_of(b));
  EXPECT_EQ(loaded.detectors[0].threshold, b.detectors[0].threshold);
  EXPECT_EQ(loaded.config.sigma, b.config.sigma);
}

TEST(Serialize, RoundTripWithCustomDeploymentPoints) {
  const DeploymentModel model(cfg4(), {{10.5, 20.25}, {399.9, 0.1}, {7, 7}});
  const DetectorBundle original =
      make_bundle(model, 256, MetricKind::kAddAll, 42.0);
  const DetectorBundle loaded = parse(text_of(original));
  EXPECT_EQ(loaded.deployment_points, original.deployment_points);
}

TEST(Serialize, MaterializedDetectorMatchesLiveDetector) {
  const DeploymentConfig cfg = cfg4();
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma}, 128);
  const Detector live(model, gz, MetricKind::kDiff, 12.0);

  const RuntimeDetector shipped(
      parse(text_of(make_bundle(model, 128, MetricKind::kDiff, 12.0))));
  EXPECT_FALSE(shipped.fused());

  Rng rng(3);
  const Network net(model, rng);
  for (std::size_t node = 0; node < net.num_nodes(); node += 113) {
    const Observation obs = net.observe(node);
    const Vec2 le = net.position(node);
    const Verdict a = live.check(obs, le);
    const Verdict b = shipped.check(obs, le);
    EXPECT_EQ(a.anomaly, b.anomaly);
    EXPECT_DOUBLE_EQ(a.score, b.score);
  }
}

TEST(Serialize, FusedBundleMaterializesFusionDetector) {
  const DeploymentConfig cfg = cfg4();
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma}, 128);
  const DetectorBundle bundle = fat_bundle(model);
  const RuntimeDetector rt(parse(text_of(bundle)));
  EXPECT_TRUE(rt.fused());
  EXPECT_NE(rt.detector().describe().find("fusion"), std::string::npos);

  const FusionDetector live(
      model, gz, {{MetricKind::kDiff, 12.25}, {MetricKind::kProb, 30.5}});
  Rng rng(5);
  const Network net(model, rng);
  const Observation obs = net.observe(11);
  const Vec2 le = net.position(11);
  EXPECT_DOUBLE_EQ(rt.score(obs, le), live.fused_score(obs, le));
}

TEST(Serialize, CheckForGroupHonorsOverrides) {
  const DeploymentConfig cfg = cfg4();
  const DeploymentModel model(cfg);
  DetectorSpec spec;
  spec.metric = MetricKind::kDiff;
  spec.threshold = 5.0;
  spec.group_overrides = {{2, 1e9}};
  const DetectorBundle bundle = make_bundle(model, 64, {spec});
  EXPECT_EQ(bundle.primary().threshold_for_group(2), 1e9);
  EXPECT_EQ(bundle.primary().threshold_for_group(0), 5.0);

  const RuntimeDetector rt(bundle);
  Rng rng(7);
  const Network net(model, rng);
  const std::size_t node = 9;
  const Observation obs = net.observe(node);
  const Vec2 lie = cfg.field().clamp(net.position(node) + Vec2{300, 300});
  // The lie alarms under the base threshold but not under group 2's
  // (absurdly generous) override.
  ASSERT_TRUE(rt.check(obs, lie).anomaly);
  EXPECT_TRUE(rt.check_for_group(obs, lie, 0).anomaly);
  EXPECT_FALSE(rt.check_for_group(obs, lie, 2).anomaly);
  EXPECT_THROW(rt.check_for_group(obs, lie, -1), AssertionError);
  EXPECT_THROW(rt.check_for_group(obs, lie, model.num_groups()),
               AssertionError);
}

TEST(Serialize, GroupRowProvenanceRoundTrips) {
  const DeploymentModel model(cfg4());
  DetectorSpec spec;
  spec.metric = MetricKind::kDiff;
  spec.threshold = 10.0;
  // All three row kinds: hand-written, trained, recorded fallback.
  spec.group_overrides = {
      {0, 8.5},
      {1, 7.25, GroupOverrideSource::kTrained, 120, 2.5, 1.125},
      {3, 10.0, GroupOverrideSource::kFallback, 4, 1.5, 0.25}};
  const DetectorBundle original = make_bundle(model, 64, {spec});
  const std::string text = text_of(original);
  // Manual rows keep the bare 2-field form; trained/fallback rows carry
  // the bucket provenance and their marker.
  EXPECT_NE(text.find("group 0 8.5\n"), std::string::npos);
  EXPECT_NE(text.find("group 1 7.25 120 2.5 1.125 trained\n"),
            std::string::npos);
  EXPECT_NE(text.find("group 3 10 4 1.5 0.25 fallback\n"),
            std::string::npos);
  const DetectorBundle loaded = parse(text);
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(text_of(loaded), text);  // canonical text is a fixed point
}

TEST(Serialize, GroupRowRejectsMalformedProvenance) {
  const DeploymentModel model(cfg4());
  const std::string text =
      text_of(make_bundle(model, 64, MetricKind::kDiff, 5.0));
  // Wrong arity: 3 provenance fields without the marker.
  EXPECT_THROW(parse(text + "group 1 2.5 10 1.0 0.5\n"), AssertionError);
  // Unknown provenance marker.
  EXPECT_THROW(parse(text + "group 1 2.5 10 1.0 0.5 guessed\n"),
               AssertionError);
  // Negative sample count.
  EXPECT_THROW(parse(text + "group 1 2.5 -1 1.0 0.5 trained\n"),
               AssertionError);
  // The well-formed forms still parse.
  EXPECT_NO_THROW(parse(text + "group 1 2.5\n"));
  EXPECT_NO_THROW(parse(text + "group 1 2.5 10 1.0 0.5 trained\n"));
  EXPECT_NO_THROW(parse(text + "group 1 2.5 0 0 0 fallback\n"));
}

TEST(Serialize, ValidateRejectsTrainedGroupRowWithoutSamples) {
  const DeploymentModel model(cfg4());
  DetectorSpec spec;
  spec.metric = MetricKind::kDiff;
  spec.threshold = 10.0;
  spec.group_overrides = {
      {1, 7.25, GroupOverrideSource::kTrained, 0, 0.0, 0.0}};
  EXPECT_THROW(make_bundle(model, 64, {spec}), AssertionError);
  // A zero-sample *fallback* row is fine - that is what the min-samples
  // floor records for a group no victim landed in.
  spec.group_overrides = {
      {1, 10.0, GroupOverrideSource::kFallback, 0, 0.0, 0.0}};
  EXPECT_NO_THROW(make_bundle(model, 64, {spec}));
}

TEST(Serialize, DetectorSpecFromTrainingSelectsActiveTau) {
  std::vector<TrainingResult> table;
  for (double tau : {0.99, 0.95}) {  // deliberately unsorted
    TrainingResult r;
    r.metric = MetricKind::kAddAll;
    r.tau = tau;
    r.threshold = 100.0 * tau;
    r.num_samples = 42;
    r.score_stats.add(1.0);
    r.score_stats.add(3.0);
    table.push_back(r);
  }
  const DetectorSpec spec = detector_spec_from_training(table, 0.95);
  EXPECT_EQ(spec.metric, MetricKind::kAddAll);
  EXPECT_EQ(spec.threshold, 95.0);
  ASSERT_EQ(spec.taus.size(), 2u);
  EXPECT_EQ(spec.taus[0].tau, 0.95);  // sorted ascending
  EXPECT_EQ(spec.taus[1].tau, 0.99);
  EXPECT_EQ(spec.taus[0].samples, 42u);
  EXPECT_EQ(spec.taus[0].score_mean, 2.0);

  EXPECT_THROW(detector_spec_from_training(table, 0.5), AssertionError);
  EXPECT_THROW(detector_spec_from_training({}, 0.5), AssertionError);
  table[1].metric = MetricKind::kDiff;
  EXPECT_THROW(detector_spec_from_training(table, 0.95), AssertionError);
}

TEST(Serialize, FindDetectorLocatesSections) {
  const DeploymentModel model(cfg4());
  const DetectorBundle bundle = fat_bundle(model);
  ASSERT_NE(find_detector(bundle, MetricKind::kProb), nullptr);
  EXPECT_EQ(find_detector(bundle, MetricKind::kProb)->threshold, 30.5);
  EXPECT_EQ(find_detector(bundle, MetricKind::kAddAll), nullptr);
}

// ---- validation rejections ---------------------------------------------

TEST(Serialize, ValidateRejectsStructuralErrors) {
  const DeploymentModel model(cfg4());
  {
    DetectorSpec a, b;
    a.metric = b.metric = MetricKind::kDiff;
    a.threshold = b.threshold = 1.0;
    EXPECT_THROW(make_bundle(model, 64, {a, b}), AssertionError);
  }
  {
    DetectorSpec s;
    s.taus = {{0.99, 1.0, 1, 0, 0, 0, 0}, {0.95, 1.0, 1, 0, 0, 0, 0}};
    EXPECT_THROW(make_bundle(model, 64, {s}), AssertionError);  // unsorted
  }
  {
    DetectorSpec s;
    s.taus = {{1.5, 1.0, 1, 0, 0, 0, 0}};
    EXPECT_THROW(make_bundle(model, 64, {s}), AssertionError);  // tau > 1
  }
  {
    DetectorSpec s;
    s.group_overrides = {{99, 1.0}};
    EXPECT_THROW(make_bundle(model, 64, {s}), AssertionError);  // range
  }
  {
    DetectorSpec s;
    s.group_overrides = {{3, 1.0}, {1, 1.0}};
    EXPECT_THROW(make_bundle(model, 64, {s}), AssertionError);  // unsorted
  }
  {
    // A fused bundle must have positive thresholds (scores are divided by
    // them); a single-section bundle tolerates 0 (v1 compatibility).
    DetectorSpec zero, other;
    zero.metric = MetricKind::kDiff;
    zero.threshold = 0.0;
    other.metric = MetricKind::kProb;
    other.threshold = 1.0;
    EXPECT_NO_THROW(make_bundle(model, 64, {zero}));
    EXPECT_THROW(make_bundle(model, 64, {zero, other}), AssertionError);
  }
  EXPECT_THROW(make_bundle(model, 64, std::vector<DetectorSpec>{}),
               AssertionError);
}

// ---- malformed-input rejections (v1 and v2) ----------------------------

TEST(Serialize, RejectsWrongHeader) {
  std::stringstream ss("not-a-bundle v9\n");
  EXPECT_THROW(load_bundle(ss), AssertionError);
  std::stringstream v3("lad-detector v3\n");
  EXPECT_THROW(load_bundle(v3), AssertionError);
}

TEST(Serialize, RejectsTruncatedInput) {
  const DeploymentModel model(cfg4());
  std::string text = text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_bundle(cut), AssertionError);
}

TEST(Serialize, RejectsKeyOutOfOrder) {
  std::stringstream ss("lad-detector v2\n[deployment]\nsigma 50\n");
  EXPECT_THROW(load_bundle(ss), AssertionError);
}

TEST(Serialize, RejectsGarbageNumbers) {
  const DeploymentModel model(cfg4());
  std::string text = text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  const auto pos = text.find("threshold 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "threshold x");
  std::stringstream bad(text);
  EXPECT_THROW(load_bundle(bad), AssertionError);
}

TEST(Serialize, RejectsInvalidConfigAfterParse) {
  const DeploymentModel model(cfg4());
  std::string text = text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  const auto pos = text.find("sigma 25");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "sigma -5");
  std::stringstream bad(text);
  EXPECT_THROW(load_bundle(bad), AssertionError);
}

TEST(Serialize, RejectsUnknownDetectorKeyWithLineContext) {
  const DeploymentModel model(cfg4());
  std::string text = text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  text += "wibble 3\n";
  try {
    parse(text);
    FAIL() << "unknown key accepted";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("wibble"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

TEST(Serialize, RejectsDuplicateDetectorSections) {
  const DeploymentModel model(cfg4());
  std::string text = text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  text += "[detector.diff]\nmetric diff\nthreshold 2\n";
  EXPECT_THROW(parse(text), AssertionError);
  // A distinct label with a repeated metric is also rejected (validate).
  std::string text2 = text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  text2 += "[detector.other]\nmetric diff\nthreshold 2\n";
  EXPECT_THROW(parse(text2), AssertionError);
}

TEST(Serialize, RejectsMalformedTauAndGroupRows) {
  const DeploymentModel model(cfg4());
  const std::string base =
      text_of(make_bundle(model, 64, MetricKind::kDiff, 1.0));
  EXPECT_THROW(parse(base + "tau 0.99 1.0\n"), AssertionError);
  EXPECT_THROW(parse(base + "tau 0.99 1 1 0 0 0 zero\n"), AssertionError);
  EXPECT_THROW(parse(base + "group 1\n"), AssertionError);
  EXPECT_THROW(parse(base + "group one 1.0\n"), AssertionError);
  EXPECT_THROW(parse(base + "x-nothing\n"), AssertionError);
}

// ---- fuzz-style robustness ---------------------------------------------
//
// Malformed bundles must raise lad::AssertionError - never crash, never
// throw anything else, never silently "succeed" into an invalid bundle.
// `survives` funnels every outcome through that contract.

enum class ParseOutcome { kOk, kRejected };

ParseOutcome survives(const std::string& text) {
  try {
    const DetectorBundle b = parse(text);
    b.validate();  // anything that loads must also be structurally valid
    return ParseOutcome::kOk;
  } catch (const AssertionError&) {
    return ParseOutcome::kRejected;
  }
  // Any other exception type escapes and fails the test loudly.
}

TEST(SerializeFuzz, EveryBytePrefixEitherLoadsOrRejects) {
  const DeploymentModel model(cfg4());
  for (const std::string& text :
       {text_of(fat_bundle(model)),
        // A v1 body, exercising the migration parser's error paths.
        std::string("lad-detector v1\nfield_side 400\ngrid_nx 4\n"
                    "grid_ny 4\nnodes_per_group 30\nsigma 25\n"
                    "radio_range 45\nclamp_to_field 0\ngz_omega 64\n"
                    "metric diff\nthreshold 1\npoints 2\n1 2\n3 4\n")}) {
    int ok = 0;
    for (std::size_t cut = 0; cut < text.size(); ++cut) {
      if (survives(text.substr(0, cut)) == ParseOutcome::kOk) ++ok;
    }
    // Some truncations legitimately parse (the optional tail can end at
    // any complete row); the contract fuzzing enforces is that every
    // other prefix rejects with AssertionError - never a crash, never a
    // different exception (survives() would rethrow it here).
    EXPECT_EQ(survives(text), ParseOutcome::kOk);
    EXPECT_LT(ok, static_cast<int>(text.size()) / 2)
        << "most truncations must reject";
    // Everything cut before the first detector section must reject.
    const std::size_t first_section = text.find("metric ");
    ASSERT_NE(first_section, std::string::npos);
    for (std::size_t cut = 0; cut < first_section; cut += 7) {
      EXPECT_EQ(survives(text.substr(0, cut)), ParseOutcome::kRejected)
          << "prefix of " << cut << " bytes parsed";
    }
  }
}

TEST(SerializeFuzz, LinePermutationsNeverCrash) {
  const DeploymentModel model(cfg4());
  const std::string text = text_of(fat_bundle(model));
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  // Swap every adjacent pair; most permutations violate the schema and
  // must reject with AssertionError, none may crash or mis-load.
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    std::vector<std::string> permuted = lines;
    std::swap(permuted[i], permuted[i + 1]);
    std::string body;
    for (const std::string& line : permuted) body += line + "\n";
    survives(body);
  }
}

TEST(SerializeFuzz, GarbageLineInjectionAlwaysRejectsWithLineContext) {
  const DeploymentModel model(cfg4());
  const std::string text = text_of(fat_bundle(model));
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::vector<std::string> mangled = lines;
    mangled[i] = "\x7f garbage \x01";
    std::string body;
    for (const std::string& line : mangled) body += line + "\n";
    try {
      parse(body);
      FAIL() << "garbage at line " << i + 1 << " accepted";
    } catch (const AssertionError& e) {
      if (i > 0) {  // header errors name the header, not a line number
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
            << e.what();
      }
    }
  }
}

TEST(SerializeFuzz, RandomByteCorruptionNeverCrashes) {
  const DeploymentModel model(cfg4());
  const std::string text = text_of(fat_bundle(model));
  // Deterministic LCG; no seed-dependent flakiness.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string mangled = text;
    const std::size_t pos = next() % mangled.size();
    mangled[pos] = static_cast<char>(next() % 256);
    survives(mangled);
  }
}

}  // namespace
}  // namespace lad
