// Pins the on-disk detector-bundle formats to checked-in golden files so
// accidental format changes fail loudly:
//
//   detector_bundle_v1.lad          frozen v1 input (never regenerated);
//                                   guards the migration path
//   detector_bundle_v1_migrated.lad the v2 bytes save_bundle emits for the
//                                   migrated v1 golden
//   detector_bundle_v2.lad          a fusion bundle with a 3-tau table,
//                                   group overrides and extension keys
//
// Intentional v2 changes: bump the version header, regenerate the v2
// goldens with LAD_REGOLD=1, and review the diff.  The v1 golden is
// input-only: save_bundle can no longer produce v1 bytes, so that file
// must never change.
#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "support/golden.h"
#include "support/tiny_network.h"

namespace lad {
namespace {

constexpr char kGoldenV1[] = "detector_bundle_v1.lad";
constexpr char kGoldenV1Migrated[] = "detector_bundle_v1_migrated.lad";
constexpr char kGoldenV2[] = "detector_bundle_v2.lad";

DeploymentConfig golden_config() {
  DeploymentConfig cfg = test::tiny_config();
  cfg.sigma = 1.0 / 3.0;  // exercises round-trippable double formatting
  return cfg;
}

DeploymentModel golden_model() {
  return DeploymentModel(golden_config(),
                         {{10.5, 20.25}, {399.875, 0.125}, {7, 7}});
}

/// The in-memory (migrated) image of the frozen v1 golden file.
DetectorBundle reference_v1_bundle() {
  DetectorBundle b =
      make_bundle(golden_model(), 128, MetricKind::kProb, 17.25);
  b.detectors[0].threshold = 0.1 + 0.2;  // no short decimal representation
  return b;
}

/// The v2 golden: a fusion bundle exercising every section feature -
/// three metrics, a 3-tau threshold table, per-group overrides, and
/// extension keys.
DetectorBundle reference_v2_bundle() {
  DetectorSpec diff;
  diff.metric = MetricKind::kDiff;
  diff.threshold = 12.25;
  diff.taus = {{0.95, 10.5, 4800, 3.5, 1.25, 0.125, 19.75},
               {0.99, 12.25, 4800, 3.5, 1.25, 0.125, 19.75},
               {0.999, 1.0 / 3.0, 4800, 3.5, 1.25, 0.125, 19.75}};
  DetectorSpec addall;
  addall.metric = MetricKind::kAddAll;
  addall.threshold = 100.5;
  addall.taus = {{0.95, 90.25, 4800, 60.5, 8.75, 30.0, 120.0},
                 {0.99, 100.5, 4800, 60.5, 8.75, 30.0, 120.0},
                 {0.999, 110.75, 4800, 60.5, 8.75, 30.0, 120.0}};
  addall.group_overrides = {{0, 95.5}, {2, 105.25}};
  DetectorSpec prob;
  prob.metric = MetricKind::kProb;
  prob.threshold = 30.125;
  prob.taus = {{0.95, 25.5, 4800, 12.25, 4.5, 2.0, 48.0},
               {0.99, 30.125, 4800, 12.25, 4.5, 2.0, 48.0},
               {0.999, 36.75, 4800, 12.25, 4.5, 2.0, 48.0}};
  prob.extensions = {{"trained-by", "golden fixture"},
                     {"note", "values are hand-picked, not trained"}};
  return make_bundle(golden_model(), 128, {diff, addall, prob});
}

TEST(SerializeGolden, V1GoldenLoadsAndMigratesToReferenceBundle) {
  std::istringstream is(test::read_golden(kGoldenV1));
  int version = 0;
  const DetectorBundle loaded = load_bundle(is, &version);
  EXPECT_EQ(version, 1);
  EXPECT_EQ(loaded, reference_v1_bundle());
}

TEST(SerializeGolden, MigratedV1BundleSavesToMigratedGoldenBytes) {
  std::istringstream is(test::read_golden(kGoldenV1));
  std::ostringstream os;
  save_bundle(os, load_bundle(is));
  test::expect_matches_golden(os.str(), kGoldenV1Migrated);
}

TEST(SerializeGolden, MigratedGoldenLoadsBackToTheSameBundle) {
  std::istringstream migrated(test::read_golden(kGoldenV1Migrated));
  int version = 0;
  const DetectorBundle loaded = load_bundle(migrated, &version);
  EXPECT_EQ(version, 2);
  EXPECT_EQ(loaded, reference_v1_bundle());
}

TEST(SerializeGolden, SavedBytesMatchV2GoldenFile) {
  std::ostringstream os;
  save_bundle(os, reference_v2_bundle());
  test::expect_matches_golden(os.str(), kGoldenV2);
}

TEST(SerializeGolden, V2GoldenFileLoadsToReferenceBundle) {
  std::istringstream is(test::read_golden(kGoldenV2));
  int version = 0;
  const DetectorBundle loaded = load_bundle(is, &version);
  EXPECT_EQ(version, 2);
  EXPECT_EQ(loaded, reference_v2_bundle());
}

TEST(SerializeGolden, V1GoldenMaterializesWorkingDetector) {
  std::istringstream is(test::read_golden(kGoldenV1));
  const RuntimeDetector rt(load_bundle(is));
  EXPECT_FALSE(rt.fused());
  const Observation o(static_cast<std::size_t>(rt.model().num_groups()));
  const Verdict v = rt.check(o, {200.0, 200.0});
  EXPECT_TRUE(std::isfinite(v.score));
}

TEST(SerializeGolden, V2GoldenMaterializesWorkingFusionDetector) {
  std::istringstream is(test::read_golden(kGoldenV2));
  const RuntimeDetector rt(load_bundle(is));
  EXPECT_TRUE(rt.fused());
  EXPECT_NE(rt.detector().describe().find("fusion"), std::string::npos);
  const Observation o(static_cast<std::size_t>(rt.model().num_groups()));
  const Verdict v = rt.check(o, {200.0, 200.0});
  EXPECT_TRUE(std::isfinite(v.score));
}

TEST(SerializeGolden, V1GoldenVerdictsAreBitIdenticalToLiveDetector) {
  // The migration contract: a v1 bundle shipped before the v2 redesign
  // must keep producing exactly the verdicts the pre-refactor detector
  // produced.  The live Detector below is that pre-refactor construction
  // (model + gz + metric + threshold straight from the reference values).
  std::istringstream is(test::read_golden(kGoldenV1));
  const RuntimeDetector shipped(load_bundle(is));

  const DeploymentModel model = golden_model();
  const GzTable gz({model.config().radio_range, model.config().sigma}, 128);
  const Detector live(model, gz, MetricKind::kProb, 0.1 + 0.2);

  const Network net = test::make_network(model);
  for (std::size_t node = 0; node < net.num_nodes(); node += 7) {
    const Observation obs = net.observe(node);
    const Vec2 le = net.position(node);
    const Verdict a = live.check(obs, le);
    const Verdict b = shipped.check(obs, le);
    EXPECT_EQ(a.anomaly, b.anomaly) << "node " << node;
    EXPECT_EQ(a.score, b.score) << "node " << node;  // bit-identical
    EXPECT_EQ(a.threshold, b.threshold) << "node " << node;
  }
}

}  // namespace
}  // namespace lad
