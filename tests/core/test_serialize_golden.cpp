// Pins the on-disk detector-bundle formats to checked-in golden files so
// accidental format changes fail loudly:
//
//   detector_bundle_v1.lad          frozen v1 input (never regenerated);
//                                   guards the migration path
//   detector_bundle_v1_migrated.lad the v2 bytes save_bundle emits for the
//                                   migrated v1 golden
//   detector_bundle_v2.lad          a fusion bundle with a 3-tau table,
//                                   group overrides and extension keys
//
// Intentional v2 changes: bump the version header, regenerate the v2
// goldens with LAD_REGOLD=1, and review the diff.  The v1 golden is
// input-only: save_bundle can no longer produce v1 bytes, so that file
// must never change.
#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/detector.h"
#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "support/golden.h"
#include "support/tiny_network.h"

namespace lad {
namespace {

constexpr char kGoldenV1[] = "detector_bundle_v1.lad";
constexpr char kGoldenV1Migrated[] = "detector_bundle_v1_migrated.lad";
constexpr char kGoldenV2[] = "detector_bundle_v2.lad";
constexpr char kGoldenV2Groups[] = "detector_bundle_v2_groups.lad";

DeploymentConfig golden_config() {
  DeploymentConfig cfg = test::tiny_config();
  cfg.sigma = 1.0 / 3.0;  // exercises round-trippable double formatting
  return cfg;
}

DeploymentModel golden_model() {
  return DeploymentModel(golden_config(),
                         {{10.5, 20.25}, {399.875, 0.125}, {7, 7}});
}

/// The in-memory (migrated) image of the frozen v1 golden file.
DetectorBundle reference_v1_bundle() {
  DetectorBundle b =
      make_bundle(golden_model(), 128, MetricKind::kProb, 17.25);
  b.detectors[0].threshold = 0.1 + 0.2;  // no short decimal representation
  return b;
}

/// The v2 golden: a fusion bundle exercising every section feature -
/// three metrics, a 3-tau threshold table, per-group overrides, and
/// extension keys.
DetectorBundle reference_v2_bundle() {
  DetectorSpec diff;
  diff.metric = MetricKind::kDiff;
  diff.threshold = 12.25;
  diff.taus = {{0.95, 10.5, 4800, 3.5, 1.25, 0.125, 19.75},
               {0.99, 12.25, 4800, 3.5, 1.25, 0.125, 19.75},
               {0.999, 1.0 / 3.0, 4800, 3.5, 1.25, 0.125, 19.75}};
  DetectorSpec addall;
  addall.metric = MetricKind::kAddAll;
  addall.threshold = 100.5;
  addall.taus = {{0.95, 90.25, 4800, 60.5, 8.75, 30.0, 120.0},
                 {0.99, 100.5, 4800, 60.5, 8.75, 30.0, 120.0},
                 {0.999, 110.75, 4800, 60.5, 8.75, 30.0, 120.0}};
  addall.group_overrides = {{0, 95.5}, {2, 105.25}};
  DetectorSpec prob;
  prob.metric = MetricKind::kProb;
  prob.threshold = 30.125;
  prob.taus = {{0.95, 25.5, 4800, 12.25, 4.5, 2.0, 48.0},
               {0.99, 30.125, 4800, 12.25, 4.5, 2.0, 48.0},
               {0.999, 36.75, 4800, 12.25, 4.5, 2.0, 48.0}};
  prob.extensions = {{"trained-by", "golden fixture"},
                     {"note", "values are hand-picked, not trained"}};
  return make_bundle(golden_model(), 128, {diff, addall, prob});
}

/// The per-group golden: a fusion bundle whose sections carry trained and
/// fallback group override rows (the per-group training provenance) next
/// to a hand-written one - pinning the 7-token row format.
DetectorBundle reference_v2_groups_bundle() {
  DetectorSpec diff;
  diff.metric = MetricKind::kDiff;
  diff.threshold = 12.25;
  diff.taus = {{0.99, 12.25, 4800, 3.5, 1.25, 0.125, 19.75}};
  diff.group_overrides = {
      {0, 15.125, GroupOverrideSource::kTrained, 96, 4.5, 2.25},
      {1, 9.5},  // hand-written override keeps the bare form
      {2, 12.25, GroupOverrideSource::kFallback, 3, 1.0 / 3.0, 0.125}};
  diff.extensions = {{"group-training",
                      "boundary=2 trained=1 fallback=1 min_samples=16"}};
  DetectorSpec addall;
  addall.metric = MetricKind::kAddAll;
  addall.threshold = 100.5;
  addall.group_overrides = {
      {0, 130.75, GroupOverrideSource::kTrained, 96, 60.5, 8.75},
      {2, 100.5, GroupOverrideSource::kFallback, 3, 55.25, 4.5}};
  return make_bundle(golden_model(), 128, {diff, addall});
}

TEST(SerializeGolden, SavedBytesMatchV2GroupsGoldenFile) {
  std::ostringstream os;
  save_bundle(os, reference_v2_groups_bundle());
  test::expect_matches_golden(os.str(), kGoldenV2Groups);
}

TEST(SerializeGolden, V2GroupsGoldenLoadsToReferenceBundle) {
  std::istringstream is(test::read_golden(kGoldenV2Groups));
  int version = 0;
  const DetectorBundle loaded = load_bundle(is, &version);
  EXPECT_EQ(version, 2);
  EXPECT_EQ(loaded, reference_v2_groups_bundle());
}

TEST(SerializeGolden, V2GroupsGoldenUpgradeIsIdempotent) {
  // `upgrade` on a v2 fusion bundle with group override rows is
  // load-then-save; the bytes must be a fixed point of that map.
  const std::string golden = test::read_golden(kGoldenV2Groups);
  std::istringstream first(golden);
  std::ostringstream once;
  save_bundle(once, load_bundle(first));
  EXPECT_EQ(once.str(), golden);
  std::istringstream second(once.str());
  std::ostringstream twice;
  save_bundle(twice, load_bundle(second));
  EXPECT_EQ(twice.str(), once.str());
}

TEST(SerializeGolden, V2GroupsGoldenGroupVerdictsUseTheOverrides) {
  std::istringstream is(test::read_golden(kGoldenV2Groups));
  const RuntimeDetector rt(load_bundle(is));
  EXPECT_TRUE(rt.fused());
  Observation o(static_cast<std::size_t>(rt.model().num_groups()));
  o.counts[0] = 40;  // a far-from-expected observation with nonzero score
  const Vec2 le{200.0, 200.0};
  // Group 0 carries trained overrides in both sections, so its fused
  // normalization must differ from the global one.
  const Verdict global = rt.check(o, le);
  const Verdict g0 = rt.check_for_group(o, le, 0);
  EXPECT_TRUE(std::isfinite(global.score));
  EXPECT_TRUE(std::isfinite(g0.score));
  EXPECT_NE(global.score, g0.score);
}

TEST(SerializeGolden, V1GoldenLoadsAndMigratesToReferenceBundle) {
  std::istringstream is(test::read_golden(kGoldenV1));
  int version = 0;
  const DetectorBundle loaded = load_bundle(is, &version);
  EXPECT_EQ(version, 1);
  EXPECT_EQ(loaded, reference_v1_bundle());
}

TEST(SerializeGolden, MigratedV1BundleSavesToMigratedGoldenBytes) {
  std::istringstream is(test::read_golden(kGoldenV1));
  std::ostringstream os;
  save_bundle(os, load_bundle(is));
  test::expect_matches_golden(os.str(), kGoldenV1Migrated);
}

TEST(SerializeGolden, MigratedGoldenLoadsBackToTheSameBundle) {
  std::istringstream migrated(test::read_golden(kGoldenV1Migrated));
  int version = 0;
  const DetectorBundle loaded = load_bundle(migrated, &version);
  EXPECT_EQ(version, 2);
  EXPECT_EQ(loaded, reference_v1_bundle());
}

TEST(SerializeGolden, SavedBytesMatchV2GoldenFile) {
  std::ostringstream os;
  save_bundle(os, reference_v2_bundle());
  test::expect_matches_golden(os.str(), kGoldenV2);
}

TEST(SerializeGolden, V2GoldenFileLoadsToReferenceBundle) {
  std::istringstream is(test::read_golden(kGoldenV2));
  int version = 0;
  const DetectorBundle loaded = load_bundle(is, &version);
  EXPECT_EQ(version, 2);
  EXPECT_EQ(loaded, reference_v2_bundle());
}

TEST(SerializeGolden, V1GoldenMaterializesWorkingDetector) {
  std::istringstream is(test::read_golden(kGoldenV1));
  const RuntimeDetector rt(load_bundle(is));
  EXPECT_FALSE(rt.fused());
  const Observation o(static_cast<std::size_t>(rt.model().num_groups()));
  const Verdict v = rt.check(o, {200.0, 200.0});
  EXPECT_TRUE(std::isfinite(v.score));
}

TEST(SerializeGolden, V2GoldenMaterializesWorkingFusionDetector) {
  std::istringstream is(test::read_golden(kGoldenV2));
  const RuntimeDetector rt(load_bundle(is));
  EXPECT_TRUE(rt.fused());
  EXPECT_NE(rt.detector().describe().find("fusion"), std::string::npos);
  const Observation o(static_cast<std::size_t>(rt.model().num_groups()));
  const Verdict v = rt.check(o, {200.0, 200.0});
  EXPECT_TRUE(std::isfinite(v.score));
}

TEST(SerializeGolden, V1GoldenVerdictsAreBitIdenticalToLiveDetector) {
  // The migration contract: a v1 bundle shipped before the v2 redesign
  // must keep producing exactly the verdicts the pre-refactor detector
  // produced.  The live Detector below is that pre-refactor construction
  // (model + gz + metric + threshold straight from the reference values).
  std::istringstream is(test::read_golden(kGoldenV1));
  const RuntimeDetector shipped(load_bundle(is));

  const DeploymentModel model = golden_model();
  const GzTable gz({model.config().radio_range, model.config().sigma}, 128);
  const Detector live(model, gz, MetricKind::kProb, 0.1 + 0.2);

  const Network net = test::make_network(model);
  for (std::size_t node = 0; node < net.num_nodes(); node += 7) {
    const Observation obs = net.observe(node);
    const Vec2 le = net.position(node);
    const Verdict a = live.check(obs, le);
    const Verdict b = shipped.check(obs, le);
    EXPECT_EQ(a.anomaly, b.anomaly) << "node " << node;
    EXPECT_EQ(a.score, b.score) << "node " << node;  // bit-identical
    EXPECT_EQ(a.threshold, b.threshold) << "node " << node;
  }
}

}  // namespace
}  // namespace lad
