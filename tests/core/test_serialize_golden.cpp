// Pins the on-disk detector-bundle format to a checked-in golden file so
// accidental format changes fail loudly.  Intentional changes: bump the
// version header, regenerate with LAD_REGOLD=1, and review the diff.
#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "deploy/deployment_model.h"
#include "support/golden.h"
#include "support/tiny_network.h"

namespace lad {
namespace {

constexpr char kGoldenName[] = "detector_bundle_v1.lad";

DetectorBundle reference_bundle() {
  DeploymentConfig cfg = test::tiny_config();
  cfg.sigma = 1.0 / 3.0;  // exercises round-trippable double formatting
  const DeploymentModel model(cfg, {{10.5, 20.25}, {399.875, 0.125}, {7, 7}});
  DetectorBundle b = make_bundle(model, 128, MetricKind::kProb, 17.25);
  b.threshold = 0.1 + 0.2;  // no short decimal representation
  return b;
}

TEST(SerializeGolden, SavedBytesMatchGoldenFile) {
  std::ostringstream os;
  save_bundle(os, reference_bundle());
  test::expect_matches_golden(os.str(), kGoldenName);
}

TEST(SerializeGolden, GoldenFileLoadsToReferenceBundle) {
  std::istringstream is(test::read_golden(kGoldenName));
  const DetectorBundle loaded = load_bundle(is);
  EXPECT_EQ(loaded, reference_bundle());
}

TEST(SerializeGolden, GoldenFileMaterializesWorkingDetector) {
  std::istringstream is(test::read_golden(kGoldenName));
  const RuntimeDetector rt(load_bundle(is));
  const Observation o(rt.model().num_groups());
  const Verdict v = rt.check(o, {200.0, 200.0});
  EXPECT_TRUE(std::isfinite(v.score));
}

}  // namespace
}  // namespace lad
