#include "core/trainer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/metric.h"
#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "rng/rng.h"
#include "stats/quantile.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(Trainer, ThresholdIsTheTauPercentile) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(static_cast<double>(i));
  const TrainingResult r =
      train_threshold(MetricKind::kDiff, scores, 0.99);
  EXPECT_DOUBLE_EQ(r.threshold, quantile(scores, 0.99));
  EXPECT_EQ(r.metric, MetricKind::kDiff);
  EXPECT_EQ(r.num_samples, 100u);
  EXPECT_DOUBLE_EQ(r.tau, 0.99);
}

TEST(Trainer, TrainingFalsePositiveRateIsOneMinusTau) {
  Rng rng(8);
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) scores.push_back(rng.normal(50, 10));
  for (double tau : {0.9, 0.99, 0.999}) {
    const TrainingResult r = train_threshold(MetricKind::kDiff, scores, tau);
    const double fp = fraction_above(scores, r.threshold);
    EXPECT_NEAR(fp, 1.0 - tau, 0.002) << "tau = " << tau;
  }
}

TEST(Trainer, StatsSummarizeTheSample) {
  const TrainingResult r =
      train_threshold(MetricKind::kAddAll, {1.0, 2.0, 3.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.score_stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(r.score_stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.score_stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(r.threshold, 3.0);  // tau = 1 takes the max
}

TEST(Trainer, MultiTauMatchesIndividualTraining) {
  Rng rng(9);
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) scores.push_back(rng.uniform(0, 100));
  const std::vector<double> taus = {0.9, 0.95, 0.99};
  const auto batch = train_thresholds(MetricKind::kProb, scores, taus);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const TrainingResult single =
        train_threshold(MetricKind::kProb, scores, taus[i]);
    EXPECT_DOUBLE_EQ(batch[i].threshold, single.threshold);
    EXPECT_EQ(batch[i].num_samples, single.num_samples);
  }
  // Thresholds grow with tau.
  EXPECT_LE(batch[0].threshold, batch[1].threshold);
  EXPECT_LE(batch[1].threshold, batch[2].threshold);
}

TEST(Trainer, RejectsBadInputs) {
  EXPECT_THROW(train_threshold(MetricKind::kDiff, {}, 0.9), AssertionError);
  EXPECT_THROW(train_threshold(MetricKind::kDiff, {1.0}, 0.0), AssertionError);
  EXPECT_THROW(train_threshold(MetricKind::kDiff, {1.0}, 1.5), AssertionError);
}

TEST(GroupTrainer, FitsEachRequestedGroupOnItsOwnBucket) {
  // Group 0 scores cluster low, group 2 high; group 1 is not requested.
  const std::vector<double> scores = {1, 2, 3, 4, 50, 10, 20, 30, 40, 5};
  const std::vector<int> groups = {0, 0, 0, 0, 1, 2, 2, 2, 2, 0};
  GroupTrainingOptions options;
  options.groups = {0, 2};
  options.min_samples = 4;
  const auto out = train_group_thresholds(MetricKind::kDiff, scores, groups,
                                          options, 1.0, 99.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].group, 0);
  EXPECT_FALSE(out[0].fallback);
  EXPECT_DOUBLE_EQ(out[0].training.threshold, 5.0);  // tau = 1 -> bucket max
  EXPECT_EQ(out[0].training.num_samples, 5u);
  EXPECT_DOUBLE_EQ(out[0].training.score_stats.mean(), 3.0);
  EXPECT_EQ(out[1].group, 2);
  EXPECT_FALSE(out[1].fallback);
  EXPECT_DOUBLE_EQ(out[1].training.threshold, 40.0);
  EXPECT_EQ(out[1].training.num_samples, 4u);
}

TEST(GroupTrainer, BucketBelowFloorFallsBackToGlobalThreshold) {
  const std::vector<double> scores = {1, 2, 3};
  const std::vector<int> groups = {0, 0, 7};
  GroupTrainingOptions options;
  options.groups = {0, 7};
  options.min_samples = 2;
  const auto out = train_group_thresholds(MetricKind::kDiff, scores, groups,
                                          options, 0.99, 42.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].fallback);
  EXPECT_TRUE(out[1].fallback);
  EXPECT_DOUBLE_EQ(out[1].training.threshold, 42.0);
  // The fallback still records the bucket's provenance.
  EXPECT_EQ(out[1].training.num_samples, 1u);
  EXPECT_DOUBLE_EQ(out[1].training.score_stats.mean(), 3.0);
}

TEST(GroupTrainer, EmptyBucketFallsBackEvenWithZeroFloor) {
  GroupTrainingOptions options;
  options.groups = {5};
  options.min_samples = 0;
  const auto out = train_group_thresholds(MetricKind::kDiff, {1.0}, {0},
                                          options, 0.99, 7.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].fallback);
  EXPECT_DOUBLE_EQ(out[0].training.threshold, 7.0);
  EXPECT_EQ(out[0].training.num_samples, 0u);
}

TEST(GroupTrainer, RejectsMisalignedOrUnsortedInputs) {
  GroupTrainingOptions options;
  options.groups = {0, 1};
  EXPECT_THROW(train_group_thresholds(MetricKind::kDiff, {1.0}, {0, 1},
                                      options, 0.99, 1.0),
               AssertionError);
  options.groups = {1, 0};
  EXPECT_THROW(train_group_thresholds(MetricKind::kDiff, {1.0, 2.0}, {0, 1},
                                      options, 0.99, 1.0),
               AssertionError);
  options.groups = {-1};
  EXPECT_THROW(train_group_thresholds(MetricKind::kDiff, {1.0}, {0}, options,
                                      0.99, 1.0),
               AssertionError);
}

TEST(GroupTrainer, BoundaryGroupsAreTheEdgeTruncatedOnes) {
  // 1000m field, 10x10 grid, sigma 50, R 50: deployment points sit at
  // 50, 150, ..., 950, so exactly the outermost ring (edge distance 50 <
  // sigma + R = 100) is boundary - 36 of 100 groups.
  DeploymentConfig cfg;
  const DeploymentModel model(cfg);
  const std::vector<int> boundary = boundary_groups(model);
  EXPECT_EQ(boundary.size(), 36u);
  for (std::size_t i = 1; i < boundary.size(); ++i) {
    EXPECT_LT(boundary[i - 1], boundary[i]);  // ascending
  }
  // Row 0 and row 9 entirely; rows 1..8 contribute their two edge columns.
  for (int g = 0; g < 10; ++g) {
    EXPECT_TRUE(std::find(boundary.begin(), boundary.end(), g) !=
                boundary.end());
  }
  EXPECT_TRUE(std::find(boundary.begin(), boundary.end(), 55) ==
              boundary.end());  // interior (row 5, col 5)
}

}  // namespace
}  // namespace lad
