#include "core/trainer.h"

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "stats/quantile.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(Trainer, ThresholdIsTheTauPercentile) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(static_cast<double>(i));
  const TrainingResult r =
      train_threshold(MetricKind::kDiff, scores, 0.99);
  EXPECT_DOUBLE_EQ(r.threshold, quantile(scores, 0.99));
  EXPECT_EQ(r.metric, MetricKind::kDiff);
  EXPECT_EQ(r.num_samples, 100u);
  EXPECT_DOUBLE_EQ(r.tau, 0.99);
}

TEST(Trainer, TrainingFalsePositiveRateIsOneMinusTau) {
  Rng rng(8);
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) scores.push_back(rng.normal(50, 10));
  for (double tau : {0.9, 0.99, 0.999}) {
    const TrainingResult r = train_threshold(MetricKind::kDiff, scores, tau);
    const double fp = fraction_above(scores, r.threshold);
    EXPECT_NEAR(fp, 1.0 - tau, 0.002) << "tau = " << tau;
  }
}

TEST(Trainer, StatsSummarizeTheSample) {
  const TrainingResult r =
      train_threshold(MetricKind::kAddAll, {1.0, 2.0, 3.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.score_stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(r.score_stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.score_stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(r.threshold, 3.0);  // tau = 1 takes the max
}

TEST(Trainer, MultiTauMatchesIndividualTraining) {
  Rng rng(9);
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) scores.push_back(rng.uniform(0, 100));
  const std::vector<double> taus = {0.9, 0.95, 0.99};
  const auto batch = train_thresholds(MetricKind::kProb, scores, taus);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const TrainingResult single =
        train_threshold(MetricKind::kProb, scores, taus[i]);
    EXPECT_DOUBLE_EQ(batch[i].threshold, single.threshold);
    EXPECT_EQ(batch[i].num_samples, single.num_samples);
  }
  // Thresholds grow with tau.
  EXPECT_LE(batch[0].threshold, batch[1].threshold);
  EXPECT_LE(batch[1].threshold, batch[2].threshold);
}

TEST(Trainer, RejectsBadInputs) {
  EXPECT_THROW(train_threshold(MetricKind::kDiff, {}, 0.9), AssertionError);
  EXPECT_THROW(train_threshold(MetricKind::kDiff, {1.0}, 0.0), AssertionError);
  EXPECT_THROW(train_threshold(MetricKind::kDiff, {1.0}, 1.5), AssertionError);
}

}  // namespace
}  // namespace lad
