// rng-construct fixture: library code takes an Rng stream; only
// src/rng/ and the test fixtures construct generators directly.
#include "rng/rng.h"
double draw() {
  lad::Rng rng(42);
  return rng.uniform01();
}
