// unordered-output fixture: this TU writes CSV output, so unordered
// container iteration order could leak into the artifact.
#include <unordered_map>
#include "util/csv.h"
void dump(const std::unordered_map<int, double>& rows);
