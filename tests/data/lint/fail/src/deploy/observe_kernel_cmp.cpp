// kernel-cmp-ordered fixture: the compare must be ordered-quiet
// (_CMP_LE_OQ family) to map exactly onto the scalar <= semantics.
#include <immintrin.h>
int hits(__m256d d2, __m256d a2) {
  return _mm256_movemask_pd(_mm256_cmp_pd(d2, a2, _CMP_LE_OS));
}
