// kernel-no-fma fixture: a fused dx*dx + dy*dy keeps the product
// unrounded and can flip the borderline <= a2 compare vs the scalar
// reference (see src/deploy/observe_kernel_avx2.cpp).
#include <immintrin.h>
__m256d dist2(__m256d dx, __m256d dy) {
  return _mm256_fmadd_pd(dx, dx, _mm256_mul_pd(dy, dy));
}
