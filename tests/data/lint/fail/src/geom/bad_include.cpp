// layer-dag fixture: geom must never grow a dependency on sim.
#include "geom/vec2.h"
#include "util/assert.h"
#include "sim/scenario.h"
