// raw-getenv fixture: every environment knob goes through the validated
// lad::env_* helpers (util/env.h) so garbage values fail by name.
#include <cstdlib>
bool quick_mode() { return std::getenv("LAD_QUICK") != nullptr; }
