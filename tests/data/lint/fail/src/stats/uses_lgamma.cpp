// ban-lgamma fixture: std::lgamma writes the process-global signgam,
// a data race under the threaded scoring passes (PR 7).  Use lgamma_r.
#include <cmath>
double log_gamma(double x) { return std::lgamma(x); }
