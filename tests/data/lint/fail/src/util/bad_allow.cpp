// allow-syntax fixture: suppressions must name a known rule and carry a
// `-- justification`; both lines below are malformed, so the ban-rand
// finding on each still fires too.
int a() { return std::rand(); }  // lad-lint: allow(ban-rand)
int b() { return std::rand(); }  // lad-lint: allow(no-such-rule) -- why
