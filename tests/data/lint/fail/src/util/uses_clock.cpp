// ban-clock-now fixture: std::chrono clocks belong in bench/ and tools/.
#include <chrono>
double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
