// ban-rand fixture: C rand() and std::random_device are not seedable
// per-stream; all randomness flows through lad::Rng.
int noise() { return std::rand(); }
