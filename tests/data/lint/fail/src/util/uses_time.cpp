// ban-time fixture: wall-clock reads in library code break replayable
// output.
long stamp() { return time(nullptr); }
