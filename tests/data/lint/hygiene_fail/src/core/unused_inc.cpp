#include "util/thing.h"

namespace fix {
int core_local() { return 7; }
}  // namespace fix
