#include "util/wrapper.h"

namespace fix {
int transit(const Wrapper& w) {
  Thing t = w.inner;
  return thing_count(t);
}
}  // namespace fix
