#pragma once

#include "util/cyc_b.h"
