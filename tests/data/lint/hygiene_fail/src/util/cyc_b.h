#pragma once

#include "util/cyc_a.h"
