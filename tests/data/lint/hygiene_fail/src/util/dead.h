#pragma once

namespace fix {
struct DeadThing {
  int unused = 0;
};
}  // namespace fix
