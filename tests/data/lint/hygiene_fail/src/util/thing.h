#pragma once

namespace fix {
struct Thing {
  int v = 0;
};
int thing_count(const Thing& t);
}  // namespace fix
