#pragma once

#include "util/thing.h"

namespace fix {
struct Wrapper {
  Thing inner;
};
}  // namespace fix
