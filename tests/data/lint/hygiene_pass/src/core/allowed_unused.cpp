// lad-lint: allow(include-unused) -- exercising the hatch for this rule
#include "util/thing.h"

namespace fix {
int hatch() { return 2; }
}  // namespace fix
