// A side-effect include retained deliberately survives include-unused.
#include "util/thing.h"  // IWYU pragma: keep

namespace fix {
int keeper() { return 1; }
}  // namespace fix
