#include "util/umbrella.h"

namespace fix {
int use(const Thing& t) { return thing_count(t); }
}  // namespace fix
