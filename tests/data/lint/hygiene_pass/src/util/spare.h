#pragma once

namespace fix {
struct SpareApi {
  int v = 0;
};
}  // namespace fix
