#pragma once

#include "util/thing.h"  // IWYU pragma: export
