// Kernel pass: two IEEE multiplies + one add (no FMA) and an
// ordered-quiet compare, exactly like the real AVX2 kernel.
#include <immintrin.h>
int hits(__m256d dx, __m256d dy, __m256d a2) {
  const __m256d d2 =
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
  return _mm256_movemask_pd(_mm256_cmp_pd(d2, a2, _CMP_LE_OQ));
}
