// layer-dag pass: geom may include its own headers and util.
#include "geom/vec2.h"
#include "util/assert.h"
#include <vector>
