// rng-construct pass: src/rng/ defines the constructors, and
// Rng::stream(...) derivation is the sanctioned pattern everywhere.
#include "rng/rng.h"
lad::Rng trial_stream(unsigned long long seed, unsigned long long trial) {
  return lad::Rng::stream(seed, trial);
}
