// Escape-hatch pass: a well-formed, justified suppression silences the
// rule on the next line (and only there).
// lad-lint: allow(ban-time) -- fixture proving the justified hatch works.
long stamp() { return time(nullptr); }

long stamp2(long t) { return t; }  // lad-lint: allow(ban-rand) -- same-line form, nothing to suppress.
