// Near-miss pass file: identifiers and calls that merely resemble the
// banned tokens must not fire.
//
// ban-rand: "srand" inside an identifier, rand without a call.
int operand(int strand) { return strand; }
// ban-time: strftime/gmtime_r contain "time" but read no clock.
void fmt(char* buf, unsigned long n) { (void)buf; (void)n; }
// ban-lgamma: the reentrant variant is the sanctioned spelling.
double lg(double x) {
  int sign = 0;
  extern double lgamma_r(double, int*);
  return lgamma_r(x, &sign);
}
// raw-getenv mentioned in a comment only: std::getenv("HOME").
// rng-construct: taking a stream or a reference is the sanctioned shape.
namespace lad {
class Rng;
Rng& reseed(Rng& rng) { return rng; }
}  // namespace lad
// unordered-output: unordered_map in a TU with no CSV/bundle output.
void keep(int unordered_map_like) { (void)unordered_map_like; }
// Scanner state near-misses: banned tokens inside block comments and raw
// string literals are inert, across line boundaries.
/* time(nullptr) std::rand() getenv("HOME")
   lgamma(0.5) std::random_device rd;
*/
const char* kRaw = R"(time(nullptr) std::rand() getenv)";
const char* kRawCustom = R"lint( rand() )" not closed yet )lint";
const char* kRawMulti = R"(spans
  time(nullptr) and even a fake #include "util/fake.h"
)";
// An identifier ending in R must not open a raw string: operatoR"" is
// just a string following an identifier.
int operatoR = 0;
const char* kNotRaw = "R\"(this is an ordinary string)\"";
