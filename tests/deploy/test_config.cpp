#include "deploy/config.h"

#include <gtest/gtest.h>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(DeploymentConfig, PaperDefaults) {
  const DeploymentConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.field_side, 1000.0);
  EXPECT_EQ(cfg.grid_nx, 10);
  EXPECT_EQ(cfg.grid_ny, 10);
  EXPECT_EQ(cfg.nodes_per_group, 300);
  EXPECT_DOUBLE_EQ(cfg.sigma, 50.0);
  EXPECT_EQ(cfg.num_groups(), 100);
  EXPECT_EQ(cfg.total_nodes(), 30000);
}

TEST(DeploymentConfig, FieldBox) {
  const DeploymentConfig cfg;
  const Aabb f = cfg.field();
  EXPECT_EQ(f.lo, (Vec2{0, 0}));
  EXPECT_EQ(f.hi, (Vec2{1000, 1000}));
}

TEST(DeploymentConfig, ValidationCatchesBadValues) {
  DeploymentConfig cfg;
  cfg.sigma = 0.0;
  EXPECT_THROW(cfg.validate(), AssertionError);
  cfg = DeploymentConfig{};
  cfg.grid_nx = 0;
  EXPECT_THROW(cfg.validate(), AssertionError);
  cfg = DeploymentConfig{};
  cfg.nodes_per_group = -1;
  EXPECT_THROW(cfg.validate(), AssertionError);
  cfg = DeploymentConfig{};
  cfg.radio_range = 0.0;
  EXPECT_THROW(cfg.validate(), AssertionError);
  cfg = DeploymentConfig{};
  cfg.field_side = -5.0;
  EXPECT_THROW(cfg.validate(), AssertionError);
}

}  // namespace
}  // namespace lad
