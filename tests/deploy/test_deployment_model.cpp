#include "deploy/deployment_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/config.h"
#include "deploy/gz_table.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "stats/running_stats.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig small_config() {
  DeploymentConfig cfg;
  cfg.field_side = 600.0;
  cfg.grid_nx = 3;
  cfg.grid_ny = 2;
  cfg.nodes_per_group = 50;
  cfg.sigma = 40.0;
  cfg.radio_range = 50.0;
  return cfg;
}

TEST(DeploymentModel, GridPointsAtCellCenters) {
  const DeploymentModel model(small_config());
  ASSERT_EQ(model.num_groups(), 6);
  // 3 x 2 over 600 x 600: cells are 200 x 300.
  EXPECT_EQ(model.deployment_point(0), (Vec2{100, 150}));
  EXPECT_EQ(model.deployment_point(1), (Vec2{300, 150}));
  EXPECT_EQ(model.deployment_point(2), (Vec2{500, 150}));
  EXPECT_EQ(model.deployment_point(3), (Vec2{100, 450}));
  EXPECT_EQ(model.deployment_point(5), (Vec2{500, 450}));
}

TEST(DeploymentModel, PaperLayoutFigure1) {
  // The paper's Figure 1: 10x10 grid over 1000x1000 with centers at
  // 50, 150, ..., 950.
  const DeploymentModel model(DeploymentConfig{});
  EXPECT_EQ(model.deployment_point(0), (Vec2{50, 50}));
  EXPECT_EQ(model.deployment_point(9), (Vec2{950, 50}));
  EXPECT_EQ(model.deployment_point(10), (Vec2{50, 150}));
  EXPECT_EQ(model.deployment_point(99), (Vec2{950, 950}));
}

TEST(DeploymentModel, GroupIndexBounds) {
  const DeploymentModel model(small_config());
  EXPECT_THROW(model.deployment_point(-1), AssertionError);
  EXPECT_THROW(model.deployment_point(6), AssertionError);
}

TEST(DeploymentModel, NearestGroup) {
  const DeploymentModel model(small_config());
  EXPECT_EQ(model.nearest_group({100, 150}), 0);
  EXPECT_EQ(model.nearest_group({490, 440}), 5);
  EXPECT_EQ(model.nearest_group({0, 0}), 0);
}

TEST(DeploymentModel, ScatterMomentsMatchGaussian) {
  const DeploymentConfig cfg = small_config();
  const DeploymentModel model(cfg);
  Rng rng(123);
  RunningStats dx, dy;
  const Vec2 dp = model.deployment_point(4);
  for (int i = 0; i < 20000; ++i) {
    const Vec2 p = model.sample_resident_point(4, rng);
    dx.add(p.x - dp.x);
    dy.add(p.y - dp.y);
  }
  EXPECT_NEAR(dx.mean(), 0.0, 1.5);
  EXPECT_NEAR(dy.mean(), 0.0, 1.5);
  EXPECT_NEAR(dx.stddev(), cfg.sigma, 1.0);
  EXPECT_NEAR(dy.stddev(), cfg.sigma, 1.0);
}

TEST(DeploymentModel, ClampedScatterStaysInField) {
  DeploymentConfig cfg = small_config();
  cfg.clamp_to_field = true;
  const DeploymentModel model(cfg);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Corner group: without clamping ~half the samples would leave.
    EXPECT_TRUE(cfg.field().contains(model.sample_resident_point(0, rng)));
  }
}

TEST(DeploymentModel, PdfPeaksAtDeploymentPointAndIsRadial) {
  const DeploymentModel model(small_config());
  const Vec2 dp = model.deployment_point(2);
  const double peak = model.pdf(2, dp);
  EXPECT_GT(peak, model.pdf(2, dp + Vec2{10, 0}));
  // Radial symmetry: equal distances give equal densities.
  EXPECT_DOUBLE_EQ(model.pdf(2, dp + Vec2{30, 0}), model.pdf(2, dp + Vec2{0, 30}));
  EXPECT_DOUBLE_EQ(model.pdf(2, dp + Vec2{3, 4}), model.pdf(2, dp + Vec2{5, 0}));
}

TEST(DeploymentModel, PdfIntegratesToOne) {
  const DeploymentConfig cfg = small_config();
  const DeploymentModel model(cfg);
  const Vec2 dp = model.deployment_point(0);
  // Midpoint rule over a box of +-6 sigma around the deployment point.
  const double r = 6 * cfg.sigma;
  const int n = 300;
  const double h = 2 * r / n;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Vec2 p{dp.x - r + (i + 0.5) * h, dp.y - r + (j + 0.5) * h};
      total += model.pdf(0, p) * h * h;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(DeploymentModel, ExpectedObservationScalesWithM) {
  const DeploymentConfig cfg = small_config();
  const DeploymentModel model(cfg);
  const GzTable gz({cfg.radio_range, cfg.sigma});
  const Vec2 le{250, 200};
  const ExpectedObservation mu = model.expected_observation(le, gz);
  ASSERT_EQ(mu.size(), 6u);
  double total = 0.0;
  for (std::size_t g = 0; g < mu.size(); ++g) {
    // mu_i = m * g_i(le), so it never exceeds m and is non-negative.
    EXPECT_GE(mu[g], 0.0);
    EXPECT_LE(mu[g], cfg.nodes_per_group);
    total += mu[g];
  }
  EXPECT_NEAR(model.expected_neighbors(le, gz), total, 1e-9);
  // Nearby groups dominate: group 1 at (300,150) is closest to le.
  EXPECT_GT(mu[1], mu[5]);
}

}  // namespace
}  // namespace lad
