#include <gtest/gtest.h>

#include <set>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

DeploymentConfig cfg6() {
  DeploymentConfig cfg;
  cfg.field_side = 600.0;
  cfg.grid_nx = 6;
  cfg.grid_ny = 6;
  cfg.nodes_per_group = 20;
  cfg.sigma = 30.0;
  cfg.radio_range = 50.0;
  return cfg;
}

TEST(CustomDeployment, UsesProvidedPoints) {
  const std::vector<Vec2> pts = {{10, 10}, {50, 50}, {90, 10}};
  DeploymentConfig cfg = cfg6();
  const DeploymentModel model(cfg, pts);
  EXPECT_EQ(model.num_groups(), 3);
  EXPECT_EQ(model.total_nodes(), 60);
  EXPECT_EQ(model.deployment_point(1), (Vec2{50, 50}));
  EXPECT_THROW(model.deployment_point(3), AssertionError);
}

TEST(CustomDeployment, RejectsEmptyPointSet) {
  EXPECT_THROW(DeploymentModel(cfg6(), {}), AssertionError);
}

TEST(HexDeployment, PointsInsideFieldWithHexNeighborDistances) {
  const DeploymentModel model = DeploymentModel::hex(cfg6());
  EXPECT_GT(model.num_groups(), 10);
  const Aabb field = cfg6().field();
  for (const Vec2& p : model.deployment_points()) {
    EXPECT_TRUE(field.contains(p));
  }
  // Nearest-neighbor distance in a hex packing is the pitch (100 m here);
  // every point's nearest other point must be at pitch +- epsilon.
  for (int g = 0; g < model.num_groups(); ++g) {
    double nearest = 1e18;
    for (int h = 0; h < model.num_groups(); ++h) {
      if (h == g) continue;
      nearest = std::min(nearest, distance(model.deployment_point(g),
                                           model.deployment_point(h)));
    }
    EXPECT_NEAR(nearest, 100.0, 1.0) << "group " << g;
  }
}

TEST(HexDeployment, AlternatingRowsAreOffset) {
  const DeploymentModel model = DeploymentModel::hex(cfg6());
  // Collect distinct x-coordinates of the two lowest rows; they must not
  // coincide (half-pitch offset).
  std::set<double> row0_x, row1_x;
  double y0 = 1e18, y1 = 1e18;
  for (const Vec2& p : model.deployment_points()) y0 = std::min(y0, p.y);
  for (const Vec2& p : model.deployment_points()) {
    if (p.y > y0 + 1e-9) y1 = std::min(y1, p.y);
  }
  for (const Vec2& p : model.deployment_points()) {
    if (std::abs(p.y - y0) < 1e-9) row0_x.insert(p.x);
    if (std::abs(p.y - y1) < 1e-9) row1_x.insert(p.x);
  }
  ASSERT_FALSE(row0_x.empty());
  ASSERT_FALSE(row1_x.empty());
  EXPECT_DOUBLE_EQ(std::abs(*row0_x.begin() - *row1_x.begin()), 50.0);
}

TEST(RandomDeployment, DeterministicInSeedAndInField) {
  DeploymentConfig cfg = cfg6();
  Rng rng1(9), rng2(9), rng3(10);
  const DeploymentModel a = DeploymentModel::random(cfg, rng1);
  const DeploymentModel b = DeploymentModel::random(cfg, rng2);
  const DeploymentModel c = DeploymentModel::random(cfg, rng3);
  ASSERT_EQ(a.num_groups(), cfg.num_groups());
  EXPECT_EQ(a.deployment_points(), b.deployment_points());
  EXPECT_NE(a.deployment_points(), c.deployment_points());
  for (const Vec2& p : a.deployment_points()) {
    EXPECT_TRUE(cfg.field().contains(p));
  }
}

TEST(DeploymentShapeFactory, ProducesEachLayout) {
  const DeploymentConfig cfg = cfg6();
  const DeploymentModel grid =
      DeploymentModel::make(DeploymentShape::kGrid, cfg);
  EXPECT_EQ(grid.num_groups(), 36);
  const DeploymentModel hex = DeploymentModel::make(DeploymentShape::kHex, cfg);
  EXPECT_NE(hex.num_groups(), 0);
  const DeploymentModel rnd =
      DeploymentModel::make(DeploymentShape::kRandom, cfg, 42);
  EXPECT_EQ(rnd.num_groups(), 36);
  // Same seed, same layout.
  const DeploymentModel rnd2 =
      DeploymentModel::make(DeploymentShape::kRandom, cfg, 42);
  EXPECT_EQ(rnd.deployment_points(), rnd2.deployment_points());
}

TEST(CustomDeployment, NetworkAndObservationsWork) {
  // End-to-end sanity on a non-grid layout: network generation, neighbor
  // queries, and expected observations all use model.num_groups().
  DeploymentConfig cfg = cfg6();
  const DeploymentModel model = DeploymentModel::hex(cfg);
  Rng rng(5);
  const Network net(model, rng);
  EXPECT_EQ(net.num_nodes(),
            static_cast<std::size_t>(model.total_nodes()));
  const Observation obs = net.observe(0);
  EXPECT_EQ(obs.num_groups(), static_cast<std::size_t>(model.num_groups()));
  const GzTable gz({cfg.radio_range, cfg.sigma}, 64);
  const ExpectedObservation mu =
      model.expected_observation(net.position(0), gz);
  EXPECT_EQ(mu.size(), static_cast<std::size_t>(model.num_groups()));
}

}  // namespace
}  // namespace lad
