#include "deploy/gz.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include <cmath>

#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

/// Brute-force estimate of g(z): scatter nodes around a deployment point at
/// the origin and count how many land within R of the probe at (z, 0).
double gz_monte_carlo(double z, const GzParams& params, int samples,
                      std::uint64_t seed) {
  Rng rng(seed);
  const Vec2 probe{z, 0.0};
  int hits = 0;
  for (int i = 0; i < samples; ++i) {
    const Vec2 p{rng.normal(0.0, params.sigma), rng.normal(0.0, params.sigma)};
    if (distance(p, probe) <= params.radio_range) ++hits;
  }
  return static_cast<double>(hits) / samples;
}

TEST(Gz, ZeroDistanceClosedForm) {
  const GzParams params{50.0, 50.0};
  // g(0) = P(|N(0, sigma^2 I)| <= R) = 1 - exp(-R^2 / 2 sigma^2).
  EXPECT_NEAR(gz_exact(0.0, params), 1.0 - std::exp(-0.5), 1e-9);
  EXPECT_DOUBLE_EQ(gz_exact(0.0, params), gz_at_zero(params));
}

TEST(Gz, MatchesMonteCarloAcrossTheRange) {
  const GzParams params{50.0, 50.0};
  constexpr int kSamples = 400000;
  for (double z : {0.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0}) {
    const double exact = gz_exact(z, params);
    const double mc = gz_monte_carlo(z, params, kSamples, 1000 + static_cast<std::uint64_t>(z));
    // MC std-err <= 0.5 / sqrt(N) ~= 8e-4; allow 4 sigma.
    EXPECT_NEAR(exact, mc, 3.2e-3) << "z = " << z;
  }
}

TEST(Gz, MatchesMonteCarloForAsymmetricParameters) {
  // R != sigma exercises both regimes of the integral.
  const GzParams small_r{20.0, 60.0};
  const GzParams large_r{120.0, 30.0};
  constexpr int kSamples = 300000;
  for (double z : {0.0, 30.0, 90.0, 140.0}) {
    EXPECT_NEAR(gz_exact(z, small_r), gz_monte_carlo(z, small_r, kSamples, 77),
                4e-3)
        << "small R, z = " << z;
    EXPECT_NEAR(gz_exact(z, large_r), gz_monte_carlo(z, large_r, kSamples, 99),
                4e-3)
        << "large R, z = " << z;
  }
}

TEST(Gz, MonotonicallyDecreasingInZ) {
  const GzParams params{50.0, 50.0};
  double prev = gz_exact(0.0, params);
  for (double z = 5.0; z <= 500.0; z += 5.0) {
    const double g = gz_exact(z, params);
    EXPECT_LE(g, prev + 1e-12) << "z = " << z;
    prev = g;
  }
}

TEST(Gz, ProbabilityBounds) {
  const GzParams params{50.0, 50.0};
  for (double z = 0.0; z <= 600.0; z += 13.0) {
    const double g = gz_exact(z, params);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(Gz, VanishesBeyondSupportRadius) {
  const GzParams params{50.0, 50.0};
  const double support = gz_support_radius(params);
  EXPECT_DOUBLE_EQ(support, 50.0 + 8.0 * 50.0);
  EXPECT_LT(gz_exact(support, params), 1e-10);
  EXPECT_LT(gz_exact(support + 100.0, params), 1e-12);
}

TEST(Gz, ContinuousAtZEqualsR) {
  // The indicator term vanishes at z = R; the total must be continuous.
  const GzParams params{50.0, 50.0};
  const double eps = 1e-6;
  const double below = gz_exact(50.0 - eps, params);
  const double at = gz_exact(50.0, params);
  const double above = gz_exact(50.0 + eps, params);
  EXPECT_NEAR(below, at, 1e-5);
  EXPECT_NEAR(above, at, 1e-5);
}

TEST(Gz, ContinuousNearZero) {
  // The closed-form branch at z < 1e-9 must agree with the integral branch.
  const GzParams params{50.0, 50.0};
  EXPECT_NEAR(gz_exact(0.0, params), gz_exact(1e-6, params), 1e-6);
  EXPECT_NEAR(gz_exact(0.0, params), gz_exact(0.01, params), 1e-5);
}

TEST(Gz, LargeRangeCapturesEverything) {
  // R >> sigma: nearly every node is a neighbor for small z.
  const GzParams params{500.0, 20.0};
  EXPECT_NEAR(gz_exact(0.0, params), 1.0, 1e-9);
  EXPECT_NEAR(gz_exact(100.0, params), 1.0, 1e-6);
}

TEST(Gz, RejectsInvalidArguments) {
  const GzParams params{50.0, 50.0};
  EXPECT_THROW(gz_exact(-1.0, params), AssertionError);
  EXPECT_THROW(gz_exact(1.0, GzParams{0.0, 50.0}), AssertionError);
  EXPECT_THROW(gz_exact(1.0, GzParams{50.0, 0.0}), AssertionError);
}

}  // namespace
}  // namespace lad
