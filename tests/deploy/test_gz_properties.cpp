// Parameterized property sweep for Theorem 1's g(z) across the (R, sigma)
// plane: probability bounds, monotonicity, continuity at the branch
// points, and table/exact agreement must hold for every parameterization,
// not just the paper's R = sigma = 50.
#include <gtest/gtest.h>

#include <cmath>

#include "deploy/gz.h"
#include "deploy/gz_table.h"

namespace lad {
namespace {

class GzPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  GzParams params() const {
    return {std::get<0>(GetParam()), std::get<1>(GetParam())};
  }
};

TEST_P(GzPropertyTest, BoundedInUnitInterval) {
  const GzParams p = params();
  const double support = gz_support_radius(p);
  for (int i = 0; i <= 50; ++i) {
    const double z = support * i / 50.0 * 1.2;  // beyond support too
    const double g = gz_exact(z, p);
    ASSERT_GE(g, 0.0) << "z=" << z;
    ASSERT_LE(g, 1.0) << "z=" << z;
  }
}

TEST_P(GzPropertyTest, MonotoneNonIncreasing) {
  const GzParams p = params();
  const double support = gz_support_radius(p);
  double prev = gz_exact(0.0, p);
  for (int i = 1; i <= 60; ++i) {
    const double z = support * i / 60.0;
    const double g = gz_exact(z, p);
    ASSERT_LE(g, prev + 1e-10) << "z=" << z;
    prev = g;
  }
}

TEST_P(GzPropertyTest, ZeroDistanceIsRayleighCdf) {
  const GzParams p = params();
  const double want =
      1.0 - std::exp(-p.radio_range * p.radio_range /
                     (2.0 * p.sigma * p.sigma));
  EXPECT_NEAR(gz_exact(0.0, p), want, 1e-10);
}

TEST_P(GzPropertyTest, ContinuousAtBranchPoints) {
  const GzParams p = params();
  // Branches: z ~ 0 (closed form) and z = R (indicator term vanishes).
  EXPECT_NEAR(gz_exact(1e-7, p), gz_exact(0.0, p), 1e-6);
  // g is genuinely sloped at z = R (|g'| <~ 0.5/sigma), so allow the slope
  // contribution across the 2*eps probe plus quadrature noise.
  const double eps = 1e-6 * p.radio_range;
  const double slope_budget = 2.0 * eps * 0.5 / p.sigma;
  EXPECT_NEAR(gz_exact(p.radio_range - eps, p),
              gz_exact(p.radio_range + eps, p), slope_budget + 1e-6);
}

TEST_P(GzPropertyTest, TableTracksExactEverywhere) {
  const GzParams p = params();
  const GzTable table(p, 256);
  // Linear-interpolation error is O(h^2 |g''|) with h = support/omega and
  // |g''| ~ 1/sigma^2; bound with that scaling (floor for tiny cases).
  const double h = gz_support_radius(p) / 256.0;
  const double bound = std::max(5e-5, 0.5 * h * h / (p.sigma * p.sigma));
  EXPECT_LT(table.max_abs_error(500), bound);
}

TEST_P(GzPropertyTest, NegligibleBeyondSupportRadius) {
  const GzParams p = params();
  EXPECT_LT(gz_exact(gz_support_radius(p), p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterPlane, GzPropertyTest,
    ::testing::Combine(::testing::Values(10.0, 50.0, 120.0, 300.0),  // R
                       ::testing::Values(15.0, 50.0, 90.0)),         // sigma
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& param_info) {
      std::string tag = "R";
      tag += std::to_string(static_cast<int>(std::get<0>(param_info.param)));
      tag += "Sigma";
      tag += std::to_string(static_cast<int>(std::get<1>(param_info.param)));
      return tag;
    });

}  // namespace
}  // namespace lad
