#include "deploy/gz_table.h"

#include <gtest/gtest.h>

#include "deploy/gz.h"
#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(GzTable, AgreesWithExactAtTablePoints) {
  const GzParams params{50.0, 50.0};
  const GzTable table(params, 64);
  const double hi = table.support_radius();
  for (int i = 0; i <= 64; ++i) {
    const double z = hi * i / 64.0;
    EXPECT_NEAR(table(z), gz_exact(z, params), 1e-12) << "z = " << z;
  }
}

TEST(GzTable, InterpolationErrorSmallAtDefaultResolution) {
  const GzParams params{50.0, 50.0};
  const GzTable table(params);
  // Section 3.3: "omega does not need to be very large" - the default 256
  // already interpolates to ~1e-5 absolute error.
  EXPECT_LT(table.max_abs_error(), 5e-5);
}

TEST(GzTable, ErrorDecreasesWithOmega) {
  const GzParams params{50.0, 50.0};
  const GzTable coarse(params, 16);
  const GzTable fine(params, 512);
  EXPECT_LT(fine.max_abs_error(500), coarse.max_abs_error(500) / 50.0);
}

TEST(GzTable, ZeroBeyondSupport) {
  const GzTable table(GzParams{50.0, 50.0}, 64);
  EXPECT_DOUBLE_EQ(table(table.support_radius()), 0.0);
  EXPECT_DOUBLE_EQ(table(1e9), 0.0);
}

TEST(GzTable, NegativeInputClampsToZeroDistance) {
  const GzParams params{50.0, 50.0};
  const GzTable table(params, 64);
  EXPECT_DOUBLE_EQ(table(-5.0), table(0.0));
}

TEST(GzTable, AtComputesPointDistances) {
  const GzParams params{50.0, 50.0};
  const GzTable table(params, 256);
  const Vec2 dp{100, 100};
  EXPECT_DOUBLE_EQ(table.at({100, 100}, dp), table(0.0));
  EXPECT_NEAR(table.at({130, 140}, dp), table(50.0), 1e-12);
}

TEST(GzTable, RejectsUselessOmega) {
  EXPECT_THROW(GzTable(GzParams{50.0, 50.0}, 4), AssertionError);
}

}  // namespace
}  // namespace lad
