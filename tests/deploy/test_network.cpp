#include "deploy/network.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

DeploymentConfig tiny_config() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 2;
  cfg.grid_ny = 2;
  cfg.nodes_per_group = 40;
  cfg.sigma = 30.0;
  cfg.radio_range = 60.0;
  return cfg;
}

TEST(Network, HasAllNodesWithCorrectGroups) {
  const DeploymentModel model(tiny_config());
  Rng rng(1);
  const Network net(model, rng);
  EXPECT_EQ(net.num_nodes(), 160u);
  std::vector<int> per_group(4, 0);
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    ++per_group[static_cast<std::size_t>(net.group_of(i))];
  }
  for (int g = 0; g < 4; ++g) EXPECT_EQ(per_group[static_cast<std::size_t>(g)], 40);
}

TEST(Network, DeterministicForSameSeed) {
  const DeploymentModel model(tiny_config());
  Rng rng1(9), rng2(9);
  const Network a(model, rng1), b(model, rng2);
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.position(i), b.position(i));
  }
}

TEST(Network, ObservationMatchesBruteForce) {
  const DeploymentModel model(tiny_config());
  Rng rng(2);
  const Network net(model, rng);
  const double R = net.radio_range();
  for (std::size_t node : {std::size_t{0}, std::size_t{55}, std::size_t{159}}) {
    Observation want(4);
    for (std::size_t j = 0; j < net.num_nodes(); ++j) {
      if (j == node) continue;
      if (distance(net.position(j), net.position(node)) <= R) {
        ++want.counts[static_cast<std::size_t>(net.group_of(j))];
      }
    }
    EXPECT_EQ(net.observe(node), want) << "node " << node;
  }
}

TEST(Network, ObserveAtIncludesAllNodesInRange) {
  const DeploymentModel model(tiny_config());
  Rng rng(3);
  const Network net(model, rng);
  const Vec2 p{200, 200};
  Observation want(4);
  for (std::size_t j = 0; j < net.num_nodes(); ++j) {
    if (distance(net.position(j), p) <= net.radio_range()) {
      ++want.counts[static_cast<std::size_t>(net.group_of(j))];
    }
  }
  EXPECT_EQ(net.observe_at(p), want);
}

TEST(Network, NeighborRelationSymmetricWithUniformRange) {
  const DeploymentModel model(tiny_config());
  Rng rng(4);
  const Network net(model, rng);
  for (std::size_t u : {std::size_t{3}, std::size_t{77}}) {
    for (std::size_t v : net.neighbors_of(u)) {
      const auto back = net.neighbors_of(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end())
          << u << " <-> " << v;
    }
  }
}

TEST(Network, RangeChangeAttackExtendsReach) {
  const DeploymentModel model(tiny_config());
  Rng rng(5);
  Network net(model, rng);
  // Find two nodes out of radio range of each other.
  std::size_t far_a = 0, far_b = 0;
  bool found = false;
  for (std::size_t i = 0; i < net.num_nodes() && !found; ++i) {
    for (std::size_t j = i + 1; j < net.num_nodes(); ++j) {
      const double d = distance(net.position(i), net.position(j));
      if (d > net.radio_range() * 2 && d < net.radio_range() * 4) {
        far_a = i;
        far_b = j;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  const Observation before = net.observe(far_b);
  // Compromise far_a: quadruple its transmit power.
  net.set_tx_range(far_a, net.radio_range() * 4);
  const Observation after = net.observe(far_b);
  const std::size_t g = static_cast<std::size_t>(net.group_of(far_a));
  EXPECT_EQ(after.counts[g], before.counts[g] + 1);
  EXPECT_EQ(after.total(), before.total() + 1);

  net.reset_tx_ranges();
  EXPECT_EQ(net.observe(far_b), before);
}

TEST(Network, ReducedRangeSilencesNode) {
  const DeploymentModel model(tiny_config());
  Rng rng(6);
  Network net(model, rng);
  const auto neighbors = net.neighbors_of(0);
  ASSERT_FALSE(neighbors.empty());
  const std::size_t muted = neighbors.front();
  const Observation before = net.observe(0);
  net.set_tx_range(muted, 0.0);
  const Observation after = net.observe(0);
  const std::size_t g = static_cast<std::size_t>(net.group_of(muted));
  EXPECT_EQ(after.counts[g] + 1, before.counts[g]);
}

TEST(Network, ObserveManyMatchesPerNodeObserve) {
  const DeploymentModel model(tiny_config());
  Rng rng(8);
  const Network net(model, rng);
  std::vector<std::size_t> nodes;
  for (std::size_t n = 0; n < net.num_nodes(); n += 7) nodes.push_back(n);
  ObservationBatch batch;
  net.observe_many(nodes, batch);
  ASSERT_EQ(batch.rows(), nodes.size());
  ASSERT_EQ(batch.num_groups(), static_cast<std::size_t>(net.num_groups()));
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    EXPECT_EQ(batch.to_observation(j), net.observe(nodes[j]))
        << "node " << nodes[j];
  }
}

TEST(Network, ObserveManySeesTxRangeOverrides) {
  const DeploymentModel model(tiny_config());
  Rng rng(9);
  Network net(model, rng);
  const std::vector<std::size_t> nodes = {0, 31, 77, 158};
  ObservationBatch batch;
  // Overrides in both directions, including on an observed node itself.
  net.set_tx_range(0, net.radio_range() * 3);
  net.set_tx_range(42, 0.0);
  net.observe_many(nodes, batch);
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    EXPECT_EQ(batch.to_observation(j), net.observe(nodes[j]))
        << "node " << nodes[j];
  }
  // Reset restores the no-override fast path; batch must follow.
  net.reset_tx_ranges();
  net.observe_many(nodes, batch);
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    EXPECT_EQ(batch.to_observation(j), net.observe(nodes[j]))
        << "node " << nodes[j] << " after reset";
  }
}

TEST(Network, ObserveGridMatchesObserveAt) {
  const DeploymentModel model(tiny_config());
  Rng rng(10);
  const Network net(model, rng);
  // Probe points inside, on the edge of, and outside the field.
  const std::vector<Vec2> points = {
      {200, 200}, {0, 0}, {400, 400}, {-50, 200}, {450, -30}, {123.5, 321.5}};
  ObservationBatch batch;
  net.observe_grid(points, batch);
  ASSERT_EQ(batch.rows(), points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    EXPECT_EQ(batch.to_observation(j), net.observe_at(points[j]))
        << "point " << j;
  }
}

TEST(Network, ObservationBatchIsReusableAcrossCalls) {
  const DeploymentModel model(tiny_config());
  Rng rng(11);
  const Network net(model, rng);
  ObservationBatch batch;
  const std::vector<std::size_t> big = {0, 1, 2, 3, 4, 5, 6, 7};
  net.observe_many(big, batch);
  EXPECT_EQ(batch.rows(), big.size());
  // A smaller follow-up batch must not inherit stale rows or counts.
  const std::vector<std::size_t> small = {9};
  net.observe_many(small, batch);
  ASSERT_EQ(batch.rows(), 1u);
  EXPECT_EQ(batch.to_observation(0), net.observe(9));
  // Empty batch is legal.
  net.observe_many(std::vector<std::size_t>{}, batch);
  EXPECT_EQ(batch.rows(), 0u);
}

TEST(Network, TotalObservationEqualsNeighborCount) {
  const DeploymentModel model(tiny_config());
  Rng rng(7);
  const Network net(model, rng);
  for (std::size_t node = 0; node < net.num_nodes(); node += 17) {
    EXPECT_EQ(static_cast<std::size_t>(net.observe(node).total()),
              net.neighbors_of(node).size());
  }
}

// Self-exclusion pins: observe() removes the observer's own beacon with an
// unconditional decrement, which relies on distance-0 audibility — the
// observer must stay counted even when it carries a tx-range override,
// including range 0 (a silenced node still hears itself at distance 0).
// If a kernel rewrite ever drops the self-count, the decrement must fail
// by name instead of underflowing a count to -1.
TEST(Network, ObserverWithZeroRangeOverrideStillExcludesSelfCleanly) {
  const DeploymentModel model(tiny_config());
  Rng rng(13);
  Network net(model, rng);
  const std::size_t victim = 5;
  const Observation before = net.observe(victim);
  net.set_tx_range(victim, 0.0);
  const Observation after = net.observe(victim);
  after.require_valid();  // no count may underflow to -1
  // Silencing the victim changes only what *others* hear, never its own
  // observation: it still hears the same neighbors and still excludes
  // itself exactly once.
  EXPECT_EQ(after, before);
  net.reset_tx_ranges();
}

TEST(Network, ObserveManyWithObserverRangeOverridesNeverUnderflows) {
  const DeploymentModel model(tiny_config());
  Rng rng(13);
  Network net(model, rng);
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < net.num_nodes(); i += 9) nodes.push_back(i);
  for (const std::size_t node : nodes) {
    net.set_tx_range(node, node % 2 == 0 ? 0.0 : net.radio_range() * 2);
  }
  ObservationBatch batch;
  net.observe_many(nodes, batch);
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    batch.to_observation(j).require_valid();
    EXPECT_EQ(batch.to_observation(j), net.observe(nodes[j]));
  }
  net.reset_tx_ranges();
}

}  // namespace
}  // namespace lad
