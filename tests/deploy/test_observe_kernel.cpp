// The optimized-vs-reference harness for the observation counting kernel
// (qubic-core style: assert bit-identical outputs while timing both
// paths).  Every kernel variant the binary carries is driven over
// randomized networks and query points and must reproduce the scalar
// reference exactly — equality here is ==, never approximate: the
// distance test is pure IEEE mul/add and the accumulation is integer.
#include "deploy/observe_kernel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

// lad-lint: allow(ban-clock-now) -- local perf sanity only; never in CSVs
using Clock = std::chrono::steady_clock;

struct SoaRows {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint16_t> grp;
};

/// Random rows with cell-realistic group runs (ids ascend in short runs,
/// resetting now and then, like the stable cell sort produces).
SoaRows random_rows(std::mt19937_64& gen, std::size_t n, int num_groups,
                    double extent) {
  SoaRows rows;
  rows.xs.resize(n);
  rows.ys.resize(n);
  rows.grp.resize(n);
  std::uniform_real_distribution<double> coord(0.0, extent);
  std::uniform_int_distribution<int> group(0, num_groups - 1);
  std::uniform_int_distribution<int> run_len(1, 6);
  std::size_t i = 0;
  while (i < n) {
    const std::uint16_t g = static_cast<std::uint16_t>(group(gen));
    for (int r = run_len(gen); r > 0 && i < n; --r, ++i) {
      rows.xs[i] = coord(gen);
      rows.ys[i] = coord(gen);
      rows.grp[i] = g;
    }
  }
  return rows;
}

std::vector<int> run_kernel(const ObserveKernelInfo& kernel,
                            const SoaRows& rows, std::uint32_t begin,
                            std::uint32_t end, double px, double py,
                            double a2, int num_groups) {
  std::vector<int> counts(static_cast<std::size_t>(num_groups), 0);
  kernel.fn(rows.xs.data(), rows.ys.data(), rows.grp.data(), begin, end, px,
            py, a2, counts.data());
  return counts;
}

TEST(ObserveKernel, RegistryHasScalarReferenceFirst) {
  const std::vector<ObserveKernelInfo>& kernels = observe_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front().name, "scalar");
  EXPECT_EQ(kernels.front().fn, &observe_kernel_scalar);
  EXPECT_TRUE(kernels.front().runtime_ok);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    for (std::size_t j = i + 1; j < kernels.size(); ++j) {
      EXPECT_STRNE(kernels[i].name, kernels[j].name);
    }
  }
}

TEST(ObserveKernel, DispatchNamesTheActiveKernel) {
  const ObserveKernelFn active = observe_kernel();
  ASSERT_NE(active, nullptr);
  bool found = false;
  for (const ObserveKernelInfo& k : observe_kernels()) {
    if (k.fn == active) {
      EXPECT_TRUE(k.runtime_ok);
      EXPECT_STREQ(observe_kernel_name(), k.name);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObserveKernel, ForceSeamPinsAndRestores) {
  EXPECT_FALSE(force_observe_kernel("no-such-kernel"));
  ASSERT_TRUE(force_observe_kernel("scalar"));
  EXPECT_STREQ(observe_kernel_name(), "scalar");
  EXPECT_EQ(observe_kernel(), &observe_kernel_scalar);
  ASSERT_TRUE(force_observe_kernel(nullptr));
  EXPECT_EQ(observe_kernel_name(), observe_kernel_name());  // stable again
}

// The core reference-equality sweep: randomized rows and query points,
// every kernel vs the scalar reference, with both paths timed.  Spans
// deliberately start/end at every alignment offset so the 4-wide main
// loop and the scalar tail both shift through all phases.
TEST(ObserveKernel, RandomizedEquivalenceWhileTimingBothPaths) {
  std::mt19937_64 gen(20050404);
  std::uniform_real_distribution<double> radius(0.0, 80.0);
  std::vector<double> total_ns(observe_kernels().size(), 0.0);
  std::size_t checked = 0;

  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 32 + static_cast<std::size_t>(gen() % 700);
    const int num_groups = 1 + static_cast<int>(gen() % 24);
    const SoaRows rows = random_rows(gen, n, num_groups, 250.0);
    for (int q = 0; q < 8; ++q) {
      // Query points inside, near the edge of, and far outside the extent.
      std::uniform_real_distribution<double> coord(-60.0, 310.0);
      const double px = coord(gen);
      const double py = coord(gen);
      const double r = radius(gen);
      const double a2 = r * r;
      const std::uint32_t begin = static_cast<std::uint32_t>(gen() % 8);
      const std::uint32_t end = static_cast<std::uint32_t>(
          n - static_cast<std::size_t>(gen() % 8));
      ASSERT_LT(begin, end);

      std::vector<int> reference;
      for (std::size_t ki = 0; ki < observe_kernels().size(); ++ki) {
        const ObserveKernelInfo& kernel = observe_kernels()[ki];
        if (!kernel.runtime_ok) continue;
        const auto t0 = Clock::now();
        const std::vector<int> counts =
            run_kernel(kernel, rows, begin, end, px, py, a2, num_groups);
        const auto t1 = Clock::now();
        total_ns[ki] +=
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        if (ki == 0) {
          reference = counts;
        } else {
          ASSERT_EQ(counts, reference)
              << "kernel '" << kernel.name << "' diverged from the scalar "
              << "reference (round " << round << ", query " << q << ")";
        }
      }
      ++checked;
    }
  }
  // Timing is informational: correctness is the assertion, the numbers
  // document the optimized-vs-reference ratio on whatever machine ran it.
  for (std::size_t ki = 0; ki < observe_kernels().size(); ++ki) {
    if (!observe_kernels()[ki].runtime_ok) continue;
    std::printf("[ observe_kernel ] %-8s %10.0f ns over %zu randomized runs\n",
                observe_kernels()[ki].name, total_ns[ki], checked);
  }
}

TEST(ObserveKernel, EmptySpanCountsNothing) {
  std::mt19937_64 gen(7);
  const SoaRows rows = random_rows(gen, 64, 4, 100.0);
  for (const ObserveKernelInfo& kernel : observe_kernels()) {
    if (!kernel.runtime_ok) continue;
    for (const std::uint32_t at : {0u, 5u, 64u}) {
      const std::vector<int> counts =
          run_kernel(kernel, rows, at, at, 50.0, 50.0, 1e6, 4);
      EXPECT_EQ(counts, std::vector<int>(4, 0)) << kernel.name;
    }
  }
}

TEST(ObserveKernel, UnalignedTailsAllLengthsAgree) {
  std::mt19937_64 gen(11);
  const SoaRows rows = random_rows(gen, 41, 6, 120.0);
  const ObserveKernelInfo& reference = observe_kernels().front();
  // Every span length 0..41 from every start offset 0..7: lengths % 4
  // cover all residues, so the vector loop + tail seam shifts through
  // every phase.
  for (std::uint32_t begin = 0; begin < 8; ++begin) {
    for (std::uint32_t end = begin; end <= 41; ++end) {
      const std::vector<int> expected =
          run_kernel(reference, rows, begin, end, 60.0, 55.0, 45.0 * 45.0, 6);
      for (const ObserveKernelInfo& kernel : observe_kernels()) {
        if (!kernel.runtime_ok) continue;
        EXPECT_EQ(run_kernel(kernel, rows, begin, end, 60.0, 55.0,
                             45.0 * 45.0, 6),
                  expected)
            << kernel.name << " span [" << begin << ", " << end << ")";
      }
    }
  }
}

TEST(ObserveKernel, RadiusZeroCountsOnlyExactMatches) {
  SoaRows rows;
  rows.xs = {10.0, 20.0, 10.0, 30.0, 10.0};
  rows.ys = {5.0, 5.0, 5.0, 5.0, 5.0};
  rows.grp = {0, 1, 2, 1, 2};
  for (const ObserveKernelInfo& kernel : observe_kernels()) {
    if (!kernel.runtime_ok) continue;
    const std::vector<int> counts =
        run_kernel(kernel, rows, 0, 5, 10.0, 5.0, 0.0, 3);
    EXPECT_EQ(counts, (std::vector<int>{1, 0, 2})) << kernel.name;
  }
}

// Network-level seams, exercised in every dispatch mode: a field smaller
// than one grid cell (all nodes share a single cell => one long span),
// and query points clamped from far outside the field.
class ObserveKernelNetworkTest : public ::testing::Test {
 protected:
  void TearDown() override { force_observe_kernel(nullptr); }
};

TEST_F(ObserveKernelNetworkTest, SingleCellFieldAllModesAgree) {
  DeploymentConfig cfg;
  cfg.field_side = 30.0;  // < R/2 = 30: the whole field is one cell row
  cfg.grid_nx = cfg.grid_ny = 1;
  cfg.nodes_per_group = 37;  // odd count: forces a scalar tail
  cfg.sigma = 10.0;
  cfg.radio_range = 60.0;
  const DeploymentModel model(cfg);
  Rng rng(3);
  const Network net(model, rng);

  std::vector<Observation> reference;
  for (const ObserveKernelInfo& kernel : observe_kernels()) {
    if (!kernel.runtime_ok) continue;
    ASSERT_TRUE(force_observe_kernel(kernel.name));
    std::vector<Observation> got;
    for (std::size_t node = 0; node < net.num_nodes(); ++node) {
      got.push_back(net.observe(node));
    }
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << kernel.name;
    }
  }
}

TEST_F(ObserveKernelNetworkTest, ClampedQueryPointsAllModesAgree) {
  DeploymentConfig cfg;
  cfg.field_side = 300.0;
  cfg.grid_nx = cfg.grid_ny = 3;
  cfg.nodes_per_group = 25;
  cfg.sigma = 60.0;  // fat scatter: many residents land outside the field
  cfg.radio_range = 50.0;
  const DeploymentModel model(cfg);
  Rng rng(17);
  const Network net(model, rng);

  const std::vector<Vec2> probes = {
      {-80.0, -80.0}, {350.0, 150.0}, {150.0, 420.0}, {-25.0, 310.0},
      {0.0, 0.0},     {299.9, 299.9}, {150.0, 150.0},
  };
  std::vector<Observation> reference;
  for (const ObserveKernelInfo& kernel : observe_kernels()) {
    if (!kernel.runtime_ok) continue;
    ASSERT_TRUE(force_observe_kernel(kernel.name));
    std::vector<Observation> got;
    for (const Vec2 p : probes) got.push_back(net.observe_at(p));
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << kernel.name;
    }
  }
}

TEST_F(ObserveKernelNetworkTest, BatchedPathsMatchSingleInEveryMode) {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = cfg.grid_ny = 2;
  cfg.nodes_per_group = 45;
  cfg.sigma = 30.0;
  cfg.radio_range = 60.0;
  const DeploymentModel model(cfg);
  Rng rng(29);
  const Network net(model, rng);
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < net.num_nodes(); i += 7) nodes.push_back(i);

  for (const ObserveKernelInfo& kernel : observe_kernels()) {
    if (!kernel.runtime_ok) continue;
    ASSERT_TRUE(force_observe_kernel(kernel.name));
    ObservationBatch batch;
    net.observe_many(nodes, batch);
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      EXPECT_EQ(batch.to_observation(j), net.observe(nodes[j]))
          << kernel.name << " node " << nodes[j];
    }
  }
}

}  // namespace
}  // namespace lad
