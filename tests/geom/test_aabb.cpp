#include "geom/aabb.h"

#include <gtest/gtest.h>

#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(Aabb, BasicProperties) {
  const Aabb box({0, 0}, {10, 20});
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 20.0);
  EXPECT_DOUBLE_EQ(box.area(), 200.0);
  EXPECT_EQ(box.center(), (Vec2{5, 10}));
}

TEST(Aabb, SquareFactory) {
  const Aabb sq = Aabb::square(1000.0);
  EXPECT_EQ(sq.lo, (Vec2{0, 0}));
  EXPECT_EQ(sq.hi, (Vec2{1000, 1000}));
}

TEST(Aabb, ContainsIncludesBoundary) {
  const Aabb box({0, 0}, {10, 10});
  EXPECT_TRUE(box.contains({5, 5}));
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({10, 10}));
  EXPECT_FALSE(box.contains({10.001, 5}));
  EXPECT_FALSE(box.contains({5, -0.001}));
}

TEST(Aabb, ClampProjectsToNearestPoint) {
  const Aabb box({0, 0}, {10, 10});
  EXPECT_EQ(box.clamp({-5, 5}), (Vec2{0, 5}));
  EXPECT_EQ(box.clamp({12, 15}), (Vec2{10, 10}));
  EXPECT_EQ(box.clamp({3, 4}), (Vec2{3, 4}));
}

TEST(Aabb, RejectsInvertedBox) {
  EXPECT_THROW(Aabb({5, 0}, {0, 5}), AssertionError);
  EXPECT_THROW(Aabb({0, 5}, {5, 0}), AssertionError);
}

}  // namespace
}  // namespace lad
