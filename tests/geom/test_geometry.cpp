#include "geom/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/vec2.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(SignedArea, OrientationSigns) {
  EXPECT_GT(signed_area2({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW
  EXPECT_LT(signed_area2({0, 0}, {0, 1}, {1, 0}), 0.0);  // CW
  EXPECT_DOUBLE_EQ(signed_area2({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(PointInTriangle, InsideOutsideBoundary) {
  const Vec2 a{0, 0}, b{4, 0}, c{0, 4};
  EXPECT_TRUE(point_in_triangle({1, 1}, a, b, c));
  EXPECT_FALSE(point_in_triangle({3, 3}, a, b, c));
  EXPECT_TRUE(point_in_triangle({2, 0}, a, b, c));   // on edge
  EXPECT_TRUE(point_in_triangle({0, 0}, a, b, c));   // on vertex
  EXPECT_FALSE(point_in_triangle({-0.01, 0}, a, b, c));
}

TEST(PointInTriangle, OrientationIndependent) {
  // Clockwise vertex order must give the same answers.
  const Vec2 a{0, 0}, b{0, 4}, c{4, 0};
  EXPECT_TRUE(point_in_triangle({1, 1}, a, b, c));
  EXPECT_FALSE(point_in_triangle({3, 3}, a, b, c));
}

TEST(PointSegmentDistance, ProjectionCases) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  // Beyond the endpoints the distance is to the endpoint.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {-1, 0}, {0, 0}), 5.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(CircleIntersectionArea, DisjointAndContainment) {
  EXPECT_DOUBLE_EQ(circle_intersection_area(10.0, 3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(circle_intersection_area(6.0, 3.0, 3.0), 0.0);  // tangent
  // Full containment: small circle inside big one.
  EXPECT_NEAR(circle_intersection_area(1.0, 10.0, 2.0), M_PI * 4.0, 1e-12);
  EXPECT_NEAR(circle_intersection_area(0.0, 5.0, 5.0), M_PI * 25.0, 1e-12);
}

TEST(CircleIntersectionArea, HalfOverlapSymmetry) {
  // Equal circles at distance d: the lens area has the classic closed form
  // 2 r^2 acos(d/2r) - d/2 sqrt(4r^2 - d^2).
  const double r = 2.0, d = 1.5;
  const double expected =
      2 * r * r * std::acos(d / (2 * r)) - d / 2 * std::sqrt(4 * r * r - d * d);
  EXPECT_NEAR(circle_intersection_area(d, r, r), expected, 1e-12);
  // Argument order must not matter.
  EXPECT_DOUBLE_EQ(circle_intersection_area(d, 2.0, 3.0),
                   circle_intersection_area(d, 3.0, 2.0));
}

TEST(CircleIntersectionArea, ZeroRadius) {
  EXPECT_DOUBLE_EQ(circle_intersection_area(1.0, 0.0, 5.0), 0.0);
}

TEST(CircleIntersectionArea, RejectsNegativeArguments) {
  EXPECT_THROW(circle_intersection_area(-1, 1, 1), AssertionError);
  EXPECT_THROW(circle_intersection_area(1, -1, 1), AssertionError);
}

TEST(ArcHalfAngle, KnownValues) {
  // ell = z, R = ell sqrt(2): the half-angle is pi/2... cos = (2z^2-2z^2)/(2z^2)=0.
  EXPECT_NEAR(arc_half_angle(1.0, 1.0, std::sqrt(2.0)), M_PI / 2, 1e-12);
  // Circle fully inside the disk: angle saturates at pi.
  EXPECT_NEAR(arc_half_angle(0.5, 1.0, 10.0), M_PI, 1e-12);
  // Circle fully outside: angle 0.
  EXPECT_NEAR(arc_half_angle(10.0, 10.0, 1e-9), 0.0, 1e-4);
}

TEST(ArcHalfAngle, ClampsRoundoff) {
  // Arguments that put the cosine microscopically outside [-1, 1] must not
  // produce NaN.
  const double v = arc_half_angle(1.0, 2.0, 1.0);  // boundary case: cos = 1
  EXPECT_FALSE(std::isnan(v));
  EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(ArcHalfAngle, RequiresPositiveRadii) {
  EXPECT_THROW(arc_half_angle(0.0, 1.0, 1.0), AssertionError);
  EXPECT_THROW(arc_half_angle(1.0, 0.0, 1.0), AssertionError);
}

}  // namespace
}  // namespace lad
