#include "geom/grid_index.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include <algorithm>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

std::vector<Vec2> random_points(std::size_t n, const Aabb& box, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y)});
  }
  return pts;
}

std::vector<std::size_t> brute_force_query(const std::vector<Vec2>& pts, Vec2 q,
                                           double r) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (distance(pts[i], q) <= r) out.push_back(i);
  }
  return out;
}

TEST(GridIndex, MatchesBruteForceOnRandomQueries) {
  Rng rng(42);
  const Aabb box = Aabb::square(100.0);
  const auto pts = random_points(500, box, rng);
  const GridIndex index(pts, box, 10.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double r = rng.uniform(0.0, 30.0);
    auto got = index.query(q, r);
    auto want = brute_force_query(pts, q, r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "query at (" << q.x << "," << q.y << ") r=" << r;
  }
}

TEST(GridIndex, FindsPointsOutsideTheNominalBounds) {
  // Points outside the bounds are clamped into border cells but must still
  // be discoverable (deployment scatter can leave the field).
  const std::vector<Vec2> pts = {{-5, -5}, {105, 50}, {50, 50}};
  const GridIndex index(pts, Aabb::square(100.0), 10.0);
  const auto got = index.query({-5, -5}, 1.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);
  const auto got2 = index.query({105, 50}, 1.0);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(got2[0], 1u);
}

TEST(GridIndex, QueryRadiusLargerThanCellSize) {
  Rng rng(7);
  const Aabb box = Aabb::square(100.0);
  const auto pts = random_points(300, box, rng);
  const GridIndex index(pts, box, 5.0);
  const Vec2 q{50, 50};
  auto got = index.query(q, 40.0);  // spans many cells
  auto want = brute_force_query(pts, q, 40.0);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(GridIndex, CountInRadiusExcludesRequestedIndex) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 0}, {2, 0}};
  const GridIndex index(pts, Aabb::square(10.0), 5.0);
  EXPECT_EQ(index.count_in_radius({0, 0}, 1.5), 2u);
  EXPECT_EQ(index.count_in_radius({0, 0}, 1.5, 0), 1u);
}

TEST(GridIndex, EmptyPointSet) {
  const GridIndex index({}, Aabb::square(10.0), 1.0);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query({5, 5}, 100.0).empty());
}

TEST(GridIndex, ZeroRadiusFindsCoincidentPointOnly) {
  const std::vector<Vec2> pts = {{5, 5}, {5.0001, 5}};
  const GridIndex index(pts, Aabb::square(10.0), 1.0);
  const auto got = index.query({5, 5}, 0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);
}

TEST(GridIndex, RejectsBadCellSizeAndNegativeRadius) {
  EXPECT_THROW(GridIndex({}, Aabb::square(1.0), 0.0), AssertionError);
  const GridIndex index({{0, 0}}, Aabb::square(1.0), 1.0);
  EXPECT_THROW(index.query({0, 0}, -1.0), AssertionError);
}

TEST(GridIndex, PointsExactlyOnCellBoundaries) {
  // Corners, edge midpoints, and the exact field corners: every boundary
  // point must land in exactly one cell and be found by queries from both
  // sides of the boundary.
  std::vector<Vec2> pts;
  for (double x : {0.0, 10.0, 20.0, 50.0, 100.0}) {
    for (double y : {0.0, 10.0, 20.0, 50.0, 100.0}) {
      pts.push_back({x, y});
    }
  }
  const Aabb box = Aabb::square(100.0);
  const GridIndex index(pts, box, 10.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto got = index.query(pts[i], 0.0);
    ASSERT_EQ(got.size(), 1u) << "boundary point " << i;
    EXPECT_EQ(got[0], i);
  }
  // A query on a cell boundary with a radius that exactly reaches a
  // boundary point includes it (<=, not <).
  const auto reach = index.query({10.0, 10.0}, 10.0);
  const auto want = brute_force_query(pts, {10.0, 10.0}, 10.0);
  EXPECT_EQ(reach.size(), want.size());
}

TEST(GridIndex, RadiusLargerThanFieldDiagonalFindsEverything) {
  Rng rng(11);
  const Aabb box = Aabb::square(100.0);
  const auto pts = random_points(200, box, rng);
  const GridIndex index(pts, box, 7.0);
  // Diagonal is ~141; query from a corner with a far larger radius.
  EXPECT_EQ(index.query({0, 0}, 1000.0).size(), pts.size());
  EXPECT_EQ(index.count_in_radius({100, 100}, 500.0), pts.size());
  EXPECT_EQ(index.count_in_radius({100, 100}, 500.0, 3), pts.size() - 1);
}

TEST(GridIndex, ClampedPointsAndOutOfBoundsQueriesWithFineCells) {
  // Points outside the bounds are clamped into border cells.  With cells
  // much smaller than the query radius, the border rows/columns must still
  // be scanned when the query disk (or the query point itself) leaves the
  // field — the row-trimmed scan cannot skip them.
  const std::vector<Vec2> pts = {{-5, -5},   {105, 50}, {50, -9},
                                 {50, 109},  {-20, 50}, {50, 50},
                                 {503, -9},  {0, 0},    {100, 100}};
  const Aabb box = Aabb::square(100.0);
  const GridIndex index(pts, box, 2.0);
  for (int trial = 0; trial < 200; ++trial) {
    Rng rng(1000 + trial);
    // Query points both inside and well outside the bounds.
    const Vec2 q{rng.uniform(-30, 130), rng.uniform(-30, 130)};
    const double r = rng.uniform(0.0, 40.0);
    auto got = index.query(q, r);
    auto want = brute_force_query(pts, q, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "query at (" << q.x << "," << q.y << ") r=" << r;
  }
  // The regression that motivates this: query below the field close in y
  // to a clamped point but offset in x by more than one fine cell.
  const auto got = index.query({500, -10}, 5.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 6u);  // (503, -9)
}

TEST(GridIndex, TemplatedVisitorAndFunctionShimAgree) {
  Rng rng(21);
  const Aabb box = Aabb::square(100.0);
  const auto pts = random_points(400, box, rng);
  const GridIndex index(pts, box, 9.0);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec2 q{rng.uniform(-10, 110), rng.uniform(-10, 110)};
    const double r = rng.uniform(0.0, 35.0);
    std::vector<std::size_t> via_template;
    index.for_each_in_radius(
        q, r, [&](std::size_t i) { via_template.push_back(i); });
    std::vector<std::size_t> via_shim;
    const std::function<void(std::size_t)> fn = [&](std::size_t i) {
      via_shim.push_back(i);
    };
    index.for_each_in_radius(q, r, fn);
    // Identical contents *and* identical visitation order.
    EXPECT_EQ(via_template, via_shim);
    auto want = brute_force_query(pts, q, r);
    std::sort(via_template.begin(), via_template.end());
    EXPECT_EQ(via_template, want);
  }
}

TEST(GridIndex, SlotQueriesExposeCellOrderedRows) {
  Rng rng(31);
  const Aabb box = Aabb::square(50.0);
  const auto pts = random_points(120, box, rng);
  const GridIndex index(pts, box, 5.0);
  const auto& order = index.permutation();
  ASSERT_EQ(order.size(), pts.size());
  // xs/ys are the original coordinates permuted by `order`.
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    EXPECT_EQ(index.xs()[slot], pts[order[slot]].x);
    EXPECT_EQ(index.ys()[slot], pts[order[slot]].y);
  }
  // Slot-level visitation returns the same points as the index-level API,
  // with the correct squared distances.
  const Vec2 q{25, 25};
  const double r = 12.0;
  std::vector<std::size_t> via_slots;
  index.for_each_slot_in_radius(q, r, [&](std::uint32_t slot, double d2) {
    EXPECT_NEAR(d2, distance2(pts[order[slot]], q), 1e-12);
    via_slots.push_back(order[slot]);
  });
  std::vector<std::size_t> via_index;
  index.for_each_in_radius(q, r,
                           [&](std::size_t i) { via_index.push_back(i); });
  EXPECT_EQ(via_slots, via_index);
}

TEST(GridIndex, PayloadBuildOverloadPermutesColumnsIntoCellOrder) {
  Rng rng(41);
  const Aabb box = Aabb::square(80.0);
  const auto pts = random_points(90, box, rng);
  // One numeric and one wider payload column, tagged by original index.
  std::vector<int> tags(pts.size());
  std::vector<double> weights(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tags[i] = static_cast<int>(i);
    weights[i] = 10.0 * static_cast<double>(i);
  }
  const GridIndex index(pts, box, 8.0, tags, weights);
  const auto& order = index.permutation();
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    EXPECT_EQ(tags[slot], static_cast<int>(order[slot]));
    EXPECT_EQ(weights[slot], 10.0 * order[slot]);
  }
  // A column of the wrong length is rejected.
  std::vector<int> short_col(pts.size() - 1);
  EXPECT_THROW(index.permute_in_place(short_col), AssertionError);
}

TEST(GridIndex, RandomizedSoAVsBruteForceFuzz) {
  // Fixed-seed fuzz across point counts, cell sizes, and radii, checking
  // both query APIs against brute force — including queries at radius 0,
  // beyond the diagonal, and centered outside the bounds.
  for (std::uint64_t seed : {7u, 77u, 777u}) {
    Rng rng(seed);
    const double side = rng.uniform(20.0, 200.0);
    const Aabb box = Aabb::square(side);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(400));
    // Scatter ~10% of the points outside the bounds (clamped cells).
    std::vector<Vec2> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double pad = (i % 10 == 0) ? 0.3 * side : 0.0;
      pts.push_back({rng.uniform(-pad, side + pad),
                     rng.uniform(-pad, side + pad)});
    }
    const double cell = rng.uniform(side / 40.0, side / 2.0);
    const GridIndex index(pts, box, cell);
    for (int trial = 0; trial < 40; ++trial) {
      const Vec2 q{rng.uniform(-0.5 * side, 1.5 * side),
                   rng.uniform(-0.5 * side, 1.5 * side)};
      double r;
      switch (trial % 4) {
        case 0: r = 0.0; break;
        case 1: r = rng.uniform(0.0, cell); break;
        case 2: r = rng.uniform(0.0, side); break;
        default: r = 3.0 * side; break;  // > diagonal
      }
      auto got = index.query(q, r);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, brute_force_query(pts, q, r))
          << "seed=" << seed << " trial=" << trial << " q=(" << q.x << ","
          << q.y << ") r=" << r << " cell=" << cell;
      EXPECT_EQ(index.count_in_radius(q, r), got.size());
    }
  }
}

}  // namespace
}  // namespace lad
