#include "geom/grid_index.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include <algorithm>

#include "rng/rng.h"

namespace lad {
namespace {

std::vector<Vec2> random_points(std::size_t n, const Aabb& box, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y)});
  }
  return pts;
}

std::vector<std::size_t> brute_force_query(const std::vector<Vec2>& pts, Vec2 q,
                                           double r) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (distance(pts[i], q) <= r) out.push_back(i);
  }
  return out;
}

TEST(GridIndex, MatchesBruteForceOnRandomQueries) {
  Rng rng(42);
  const Aabb box = Aabb::square(100.0);
  const auto pts = random_points(500, box, rng);
  const GridIndex index(pts, box, 10.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double r = rng.uniform(0.0, 30.0);
    auto got = index.query(q, r);
    auto want = brute_force_query(pts, q, r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "query at (" << q.x << "," << q.y << ") r=" << r;
  }
}

TEST(GridIndex, FindsPointsOutsideTheNominalBounds) {
  // Points outside the bounds are clamped into border cells but must still
  // be discoverable (deployment scatter can leave the field).
  const std::vector<Vec2> pts = {{-5, -5}, {105, 50}, {50, 50}};
  const GridIndex index(pts, Aabb::square(100.0), 10.0);
  const auto got = index.query({-5, -5}, 1.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);
  const auto got2 = index.query({105, 50}, 1.0);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(got2[0], 1u);
}

TEST(GridIndex, QueryRadiusLargerThanCellSize) {
  Rng rng(7);
  const Aabb box = Aabb::square(100.0);
  const auto pts = random_points(300, box, rng);
  const GridIndex index(pts, box, 5.0);
  const Vec2 q{50, 50};
  auto got = index.query(q, 40.0);  // spans many cells
  auto want = brute_force_query(pts, q, 40.0);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(GridIndex, CountInRadiusExcludesRequestedIndex) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 0}, {2, 0}};
  const GridIndex index(pts, Aabb::square(10.0), 5.0);
  EXPECT_EQ(index.count_in_radius({0, 0}, 1.5), 2u);
  EXPECT_EQ(index.count_in_radius({0, 0}, 1.5, 0), 1u);
}

TEST(GridIndex, EmptyPointSet) {
  const GridIndex index({}, Aabb::square(10.0), 1.0);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query({5, 5}, 100.0).empty());
}

TEST(GridIndex, ZeroRadiusFindsCoincidentPointOnly) {
  const std::vector<Vec2> pts = {{5, 5}, {5.0001, 5}};
  const GridIndex index(pts, Aabb::square(10.0), 1.0);
  const auto got = index.query({5, 5}, 0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);
}

TEST(GridIndex, RejectsBadCellSizeAndNegativeRadius) {
  EXPECT_THROW(GridIndex({}, Aabb::square(1.0), 0.0), AssertionError);
  const GridIndex index({{0, 0}}, Aabb::square(1.0), 1.0);
  EXPECT_THROW(index.query({0, 0}, -1.0), AssertionError);
}

}  // namespace
}  // namespace lad
