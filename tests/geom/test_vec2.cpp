#include "geom/vec2.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lad {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1, 1};
  v += {2, 3};
  EXPECT_EQ(v, (Vec2{3, 4}));
  v -= {1, 1};
  EXPECT_EQ(v, (Vec2{2, 3}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{4, 6}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ((Vec2{1, 2}.dot({3, 4})), 11.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 0}.cross({0, 1})), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}.cross({1, 0})), -1.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}.norm()), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}.norm2()), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1, 1}, {2, 2}), 2.0);
}

TEST(Vec2, Normalized) {
  const Vec2 n = Vec2{3, 4}.normalized();
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  EXPECT_DOUBLE_EQ(n.y, 0.8);
  EXPECT_EQ((Vec2{0, 0}.normalized()), (Vec2{0, 0}));
}

TEST(Vec2, PolarOffset) {
  const Vec2 p = polar_offset({1, 1}, 2.0, M_PI / 2.0);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 3.0, 1e-12);
  // The offset point is at exactly the requested distance.
  EXPECT_NEAR(distance({1, 1}, polar_offset({1, 1}, 7.3, 1.234)), 7.3, 1e-12);
}

}  // namespace
}  // namespace lad
