#include "loc/beaconless_mle.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/gz_table.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "stats/running_stats.h"

namespace lad {
namespace {

DeploymentConfig paper_config_small_m() {
  DeploymentConfig cfg;  // paper geometry
  cfg.nodes_per_group = 100;  // lighter than 300 for test speed
  return cfg;
}

class MleTest : public ::testing::Test {
 protected:
  MleTest()
      : cfg_(paper_config_small_m()), model_(cfg_),
        gz_({cfg_.radio_range, cfg_.sigma}), rng_(31), net_(model_, rng_),
        mle_(model_, gz_) {}
  DeploymentConfig cfg_;
  DeploymentModel model_;
  GzTable gz_;
  Rng rng_;
  Network net_;
  BeaconlessMleLocalizer mle_;
};

TEST_F(MleTest, LogLikelihoodPeaksNearTruth) {
  const std::size_t node = 1234;
  const Observation obs = net_.observe(node);
  const Vec2 truth = net_.position(node);
  const double ll_truth = mle_.log_likelihood(obs, truth);
  // A location 200 m away explains the observation much worse.
  const Vec2 far = cfg_.field().clamp(truth + Vec2{200, 0});
  EXPECT_GT(ll_truth, mle_.log_likelihood(obs, far));
  const Vec2 far2 = cfg_.field().clamp(truth + Vec2{0, -300});
  EXPECT_GT(ll_truth, mle_.log_likelihood(obs, far2));
}

TEST_F(MleTest, EstimateBeatsCoarseBaselineOnAverage) {
  RunningStats err;
  for (std::size_t node = 100; node < 3100; node += 250) {
    const Vec2 le = mle_.estimate(net_.observe(node));
    err.add(distance(le, net_.position(node)));
  }
  // With m = 100, sigma = 50, R = 50 the MLE lands within a few tens of
  // meters on average - far better than the ~45 m cell-radius baseline.
  EXPECT_LT(err.mean(), 40.0);
}

TEST_F(MleTest, EstimateImprovesWithDensity) {
  DeploymentConfig dense = cfg_;
  dense.nodes_per_group = 400;
  const DeploymentModel dense_model(dense);
  Rng rng(77);
  const Network dense_net(dense_model, rng);
  const BeaconlessMleLocalizer dense_mle(dense_model, gz_);

  RunningStats sparse_err, dense_err;
  for (int k = 0; k < 60; ++k) {
    const std::size_t a = static_cast<std::size_t>(rng.uniform_int(
        std::uint64_t(net_.num_nodes())));
    sparse_err.add(distance(mle_.estimate(net_.observe(a)), net_.position(a)));
    const std::size_t b = static_cast<std::size_t>(rng.uniform_int(
        std::uint64_t(dense_net.num_nodes())));
    dense_err.add(distance(dense_mle.estimate(dense_net.observe(b)),
                           dense_net.position(b)));
  }
  // The paper's Fig. 9 premise: localization accuracy improves with m.
  EXPECT_LT(dense_err.mean(), sparse_err.mean());
}

TEST_F(MleTest, EstimateStaysInsideField) {
  for (std::size_t node = 0; node < net_.num_nodes(); node += 977) {
    EXPECT_TRUE(cfg_.field().contains(mle_.estimate(net_.observe(node))));
  }
}

TEST_F(MleTest, EmptyObservationFallsBackGracefully) {
  const Observation empty(static_cast<std::size_t>(model_.num_groups()));
  const Vec2 le = mle_.estimate(empty);
  EXPECT_TRUE(cfg_.field().contains(le));
}

TEST_F(MleTest, SizeMismatchThrows) {
  EXPECT_THROW(mle_.estimate(Observation(5)), AssertionError);
}

TEST_F(MleTest, LocalizerInterfaceMatchesDirectEstimate) {
  const std::size_t node = 42;
  EXPECT_EQ(mle_.localize(net_, node), mle_.estimate(net_.observe(node)));
  EXPECT_EQ(mle_.name(), "beaconless-mle");
}

}  // namespace
}  // namespace lad
