#include "loc/beacons.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/aabb.h"
#include "geom/vec2.h"
#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(BeaconField, GridPlacement) {
  const BeaconField f = BeaconField::grid(Aabb::square(400.0), 2, 2, 150.0);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0].true_position, (Vec2{100, 100}));
  EXPECT_EQ(f[3].true_position, (Vec2{300, 300}));
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(f[i].true_position, f[i].declared_position);
    EXPECT_FALSE(f[i].compromised);
  }
}

TEST(BeaconField, RandomPlacementInsideField) {
  Rng rng(4);
  const BeaconField f = BeaconField::random(Aabb::square(100.0), 20, 50.0, rng);
  ASSERT_EQ(f.size(), 20u);
  for (const Beacon& b : f.beacons()) {
    EXPECT_TRUE(Aabb::square(100.0).contains(b.true_position));
  }
}

TEST(BeaconField, HeardAtUsesTruePositionsAndRange) {
  const BeaconField f = BeaconField::grid(Aabb::square(400.0), 2, 2, 150.0);
  const auto heard = f.heard_at({100, 100});
  // Beacon 0 at distance 0; beacons 1 and 2 at distance 200 > 150.
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0], 0u);
  const auto center = f.heard_at({200, 200});
  EXPECT_EQ(center.size(), 4u);  // all at sqrt(2)*100 ~ 141 < 150
}

TEST(BeaconField, CompromiseChangesDeclarationOnly) {
  BeaconField f = BeaconField::grid(Aabb::square(400.0), 2, 2, 150.0);
  f.compromise(1, {9999, 9999});
  EXPECT_TRUE(f[1].compromised);
  EXPECT_EQ(f[1].declared_position, (Vec2{9999, 9999}));
  EXPECT_EQ(f[1].true_position, (Vec2{300, 100}));
  // Radio reach is unchanged.
  const auto heard = f.heard_at({300, 100});
  EXPECT_NE(std::find(heard.begin(), heard.end(), 1u), heard.end());
  f.reset_compromises();
  EXPECT_FALSE(f[1].compromised);
  EXPECT_EQ(f[1].declared_position, f[1].true_position);
}

TEST(BeaconField, InvalidConstruction) {
  Rng rng(1);
  EXPECT_THROW(BeaconField::grid(Aabb::square(1.0), 0, 1, 1.0), AssertionError);
  EXPECT_THROW(BeaconField::grid(Aabb::square(1.0), 1, 1, 0.0), AssertionError);
  EXPECT_THROW(BeaconField::random(Aabb::square(1.0), 0, 1.0, rng),
               AssertionError);
  BeaconField f = BeaconField::grid(Aabb::square(1.0), 1, 1, 1.0);
  EXPECT_THROW(f.compromise(5, {0, 0}), AssertionError);
}

}  // namespace
}  // namespace lad
