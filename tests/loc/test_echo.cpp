#include "loc/echo.h"

#include <gtest/gtest.h>

#include "geom/aabb.h"
#include "util/assert.h"

namespace lad {
namespace {

EchoProtocol single_verifier() {
  return EchoProtocol({{{500, 500}, 300.0}}, 1e-4);
}

TEST(Echo, HonestProverAtClaimedLocationAccepted) {
  const EchoProtocol echo = single_verifier();
  EXPECT_EQ(echo.verify({600, 500}, {600, 500}), +1);
}

TEST(Echo, ClaimingCloserThanActualIsRejected) {
  // The prover is 250 m from the verifier but claims 100 m: its echo is
  // ~0.44 s too slow, far beyond the processing slack.
  const EchoProtocol echo = single_verifier();
  EXPECT_EQ(echo.verify(/*claimed=*/{600, 500}, /*actual=*/{750, 500}), -1);
}

TEST(Echo, ClaimingFartherThanActualIsAcceptedTheKnownLimitation) {
  // The asymmetry Section 2.2 alludes to: the prover is 100 m away but
  // claims 250 m; its early echo still meets the (longer) deadline, so
  // Echo accepts.  LAD's observation-consistency check has no such
  // directional blind spot.
  const EchoProtocol echo = single_verifier();
  EXPECT_EQ(echo.verify(/*claimed=*/{750, 500}, /*actual=*/{600, 500}), +1);
}

TEST(Echo, DelayingTheEchoFakesDistanceButOnlyOutward) {
  const EchoProtocol echo = single_verifier();
  // Prover at 100 m delays its reply to look like 250 m: accepted (the
  // deadline for 250 m is long enough).
  const double fake_extra = 150.0 / kUltrasoundSpeed;
  EXPECT_EQ(echo.verify({750, 500}, {600, 500}, fake_extra), +1);
  // No (non-negative) delay lets a far prover look close.
  EXPECT_EQ(echo.verify({600, 500}, {750, 500}, 0.0), -1);
}

TEST(Echo, OutOfRangeClaimIsUnverifiable) {
  const EchoProtocol echo = single_verifier();
  EXPECT_EQ(echo.verify({990, 990}, {990, 990}), 0);
}

TEST(Echo, GridCoverage) {
  const Aabb field = Aabb::square(1000.0);
  const EchoProtocol dense = EchoProtocol::grid(field, 4, 4, 200.0);
  const EchoProtocol sparse = EchoProtocol::grid(field, 2, 2, 200.0);
  EXPECT_GT(dense.coverage(field), sparse.coverage(field));
  EXPECT_GT(dense.coverage(field), 0.8);
  // Full coverage with generous range.
  const EchoProtocol full = EchoProtocol::grid(field, 4, 4, 400.0);
  EXPECT_DOUBLE_EQ(full.coverage(field), 1.0);
}

TEST(Echo, AnyCoveringVerifierSuffices) {
  // Two verifiers; the prover is honest and in range of only one.
  const EchoProtocol echo({{{100, 100}, 150.0}, {{900, 900}, 150.0}}, 1e-4);
  EXPECT_EQ(echo.verify({150, 100}, {150, 100}), +1);
}

TEST(Echo, InvalidConstructionAndArguments) {
  EXPECT_THROW(EchoProtocol({}, 1e-4), AssertionError);
  EXPECT_THROW(EchoProtocol({{{0, 0}, 0.0}}, 1e-4), AssertionError);
  EXPECT_THROW(EchoProtocol({{{0, 0}, 10.0}}, -1.0), AssertionError);
  const EchoProtocol echo = single_verifier();
  EXPECT_THROW(echo.verify({0, 0}, {0, 0}, -1.0), AssertionError);
}

}  // namespace
}  // namespace lad
