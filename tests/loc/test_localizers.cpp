#include <gtest/gtest.h>

#include "util/assert.h"

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "loc/amorphous.h"
#include "loc/apit.h"
#include "loc/beacons.h"
#include "loc/centroid.h"
#include "loc/dvhop.h"
#include "loc/localizer.h"
#include "loc/truth_noise.h"
#include "loc/weighted_centroid.h"
#include "rng/rng.h"
#include "stats/running_stats.h"

namespace lad {
namespace {

DeploymentConfig test_config() {
  DeploymentConfig cfg;
  cfg.field_side = 600.0;
  cfg.grid_nx = 6;
  cfg.grid_ny = 6;
  cfg.nodes_per_group = 60;
  cfg.sigma = 30.0;
  cfg.radio_range = 50.0;
  return cfg;
}

class LocalizersTest : public ::testing::Test {
 protected:
  LocalizersTest() : cfg_(test_config()), model_(cfg_), rng_(55),
                     net_(model_, rng_) {}

  double mean_error(Localizer& loc, int samples = 40) {
    loc.prepare(net_);
    Rng rng(99);
    RunningStats err;
    for (int i = 0; i < samples; ++i) {
      const std::size_t node = static_cast<std::size_t>(
          rng.uniform_int(std::uint64_t(net_.num_nodes())));
      err.add(distance(loc.localize(net_, node), net_.position(node)));
    }
    return err.mean();
  }

  DeploymentConfig cfg_;
  DeploymentModel model_;
  Rng rng_;
  Network net_;
};

TEST_F(LocalizersTest, TruthNoiseHasTheConfiguredError) {
  TruthNoiseLocalizer exact(0.0, 1);
  EXPECT_DOUBLE_EQ(mean_error(exact), 0.0);
  TruthNoiseLocalizer noisy(10.0, 1);
  const double err = mean_error(noisy, 200);
  // Mean of a 2-D Gaussian radius with sigma=10 is sigma * sqrt(pi/2) ~ 12.5.
  EXPECT_NEAR(err, 12.5, 3.0);
  EXPECT_EQ(noisy.name(), "truth+noise");
}

TEST_F(LocalizersTest, WeightedCentroidIsReasonable) {
  WeightedCentroidLocalizer wc(model_);
  const double err = mean_error(wc);
  EXPECT_LT(err, 80.0);  // coarse but sane for 100 m cells
  EXPECT_EQ(wc.name(), "weighted-centroid");
}

TEST_F(LocalizersTest, WeightedCentroidEmptyObservationFallsBack) {
  const Observation empty(static_cast<std::size_t>(model_.num_groups()));
  EXPECT_EQ(weighted_centroid_estimate(model_, empty), cfg_.field().center());
}

TEST_F(LocalizersTest, CentroidErrorBoundedByBeaconRange) {
  const BeaconField beacons =
      BeaconField::grid(cfg_.field(), 4, 4, 200.0);
  CentroidLocalizer centroid(beacons);
  centroid.prepare(net_);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const std::size_t node = static_cast<std::size_t>(
        rng.uniform_int(std::uint64_t(net_.num_nodes())));
    const Vec2 le = centroid.localize(net_, node);
    // The centroid of heard beacons is within the beacon range of the node
    // (all heard beacons are within range, and the centroid is in their
    // convex hull).
    EXPECT_LE(distance(le, net_.position(node)), 200.0 + 1e-9);
  }
  EXPECT_EQ(centroid.name(), "centroid");
}

TEST_F(LocalizersTest, CentroidCompromisedBeaconShiftsEstimate) {
  BeaconField beacons = BeaconField::grid(cfg_.field(), 4, 4, 200.0);
  CentroidLocalizer centroid(beacons);
  const Vec2 honest = centroid.estimate_at({300, 300});
  const auto heard = beacons.heard_at({300, 300});
  ASSERT_FALSE(heard.empty());
  beacons.compromise(heard[0], {30000, 30000});
  const Vec2 attacked = centroid.estimate_at({300, 300});
  EXPECT_GT(distance(attacked, honest), 500.0);
}

TEST_F(LocalizersTest, DvHopBeatsGridCellScale) {
  DvHopLocalizer dvhop(4, 4);
  const double err = mean_error(dvhop);
  // DV-Hop with 16 anchors on this dense strip localizes to well under a
  // couple of hop lengths.
  EXPECT_LT(err, 2.5 * cfg_.radio_range);
  EXPECT_GE(dvhop.anchor_nodes().size(), 3u);
  EXPECT_GT(dvhop.avg_hop_distance(), 0.0);
  EXPECT_LE(dvhop.avg_hop_distance(), cfg_.radio_range);
  EXPECT_EQ(dvhop.name(), "dv-hop");
}

TEST_F(LocalizersTest, DvHopCompromisedAnchorDegradesAccuracy) {
  DvHopLocalizer dvhop(3, 3);
  const double honest_err = mean_error(dvhop);
  // The anchor lies by 2 km.
  dvhop.compromise_anchor(0, {2000, 2000});
  Rng rng(99);
  RunningStats attacked;
  for (int i = 0; i < 40; ++i) {
    const std::size_t node = static_cast<std::size_t>(
        rng.uniform_int(std::uint64_t(net_.num_nodes())));
    attacked.add(distance(dvhop.localize(net_, node), net_.position(node)));
  }
  EXPECT_GT(attacked.mean(), honest_err);
}

TEST_F(LocalizersTest, AmorphousComparableToDvHop) {
  AmorphousLocalizer amorphous(4, 4);
  const double err = mean_error(amorphous);
  EXPECT_LT(err, 3.0 * cfg_.radio_range);
  EXPECT_GT(amorphous.hop_distance(), 0.0);
  EXPECT_LE(amorphous.hop_distance(), cfg_.radio_range);
  EXPECT_EQ(amorphous.name(), "amorphous");
}

TEST_F(LocalizersTest, KleinrockSilvesterFormulaSane) {
  const double R = 50.0;
  // Denser networks cover more distance per hop, approaching R.
  const double sparse = kleinrock_silvester_hop_distance(5.0, R);
  const double dense = kleinrock_silvester_hop_distance(40.0, R);
  EXPECT_GT(dense, sparse);
  EXPECT_LE(dense, R);
  EXPECT_GT(sparse, 0.0);
  EXPECT_THROW(kleinrock_silvester_hop_distance(0.0, R), AssertionError);
}

TEST_F(LocalizersTest, ApitLocalizesWithinBeaconSpacing) {
  const BeaconField beacons = BeaconField::grid(cfg_.field(), 4, 4, 250.0);
  ApitLocalizer apit(beacons, 60, 40);
  const double err = mean_error(apit, 25);
  // APIT is the coarsest scheme here (center-of-gravity of surviving grid
  // cells); it must land within ~1.5x the beacon spacing (150 m pitch).
  EXPECT_LT(err, 230.0);
  EXPECT_EQ(apit.name(), "apit");
}

TEST_F(LocalizersTest, ApitPitTestAcceptsDeepInteriorPoint) {
  const BeaconField beacons = BeaconField::grid(cfg_.field(), 4, 4, 1000.0);
  ApitLocalizer apit(beacons, 40, 10);
  // Pick the node closest to the field center: it lies inside the triangle
  // of three spread-out anchors.
  std::size_t center_node = 0;
  for (std::size_t i = 0; i < net_.num_nodes(); ++i) {
    if (distance(net_.position(i), {300, 300}) <
        distance(net_.position(center_node), {300, 300})) {
      center_node = i;
    }
  }
  EXPECT_TRUE(apit.approximate_point_in_triangle(net_, center_node, {75, 75},
                                                 {525, 75}, {300, 525}));
}

}  // namespace
}  // namespace lad
