#include "loc/mmse.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

TEST(Mmse, ExactOnNoiselessRanges) {
  const Vec2 truth{37.0, 81.0};
  const std::vector<Vec2> refs = {{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  std::vector<double> dists;
  for (const Vec2& r : refs) dists.push_back(distance(truth, r));
  const auto res = mmse_multilaterate(refs, dists);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->position.x, truth.x, 1e-6);
  EXPECT_NEAR(res->position.y, truth.y, 1e-6);
  EXPECT_NEAR(res->residual_rms, 0.0, 1e-6);
}

TEST(Mmse, RobustToModerateNoise) {
  Rng rng(3);
  const Vec2 truth{420.0, 333.0};
  std::vector<Vec2> refs;
  std::vector<double> dists;
  for (int i = 0; i < 8; ++i) {
    const Vec2 r{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    refs.push_back(r);
    dists.push_back(distance(truth, r) + rng.normal(0.0, 5.0));
  }
  const auto res = mmse_multilaterate(refs, dists);
  ASSERT_TRUE(res.has_value());
  EXPECT_LT(distance(res->position, truth), 15.0);
}

TEST(Mmse, SingleLyingReferenceSkewsTheEstimate) {
  // Section 6.3's vulnerability: one compromised anchor with a large lie
  // drags the MMSE estimate far from the truth.
  const Vec2 truth{500.0, 500.0};
  std::vector<Vec2> refs = {{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}};
  std::vector<double> dists;
  for (const Vec2& r : refs) dists.push_back(distance(truth, r));
  // The last anchor lies about its position by 800 m.
  refs[3] = {1800.0, 1000.0};
  const auto res = mmse_multilaterate(refs, dists);
  ASSERT_TRUE(res.has_value());
  EXPECT_GT(distance(res->position, truth), 50.0);
}

TEST(Mmse, RejectsDegenerateInputs) {
  EXPECT_FALSE(mmse_multilaterate({{0, 0}, {1, 1}}, {1.0, 1.0}).has_value());
  // Collinear references cannot fix a 2-D position.
  const std::vector<Vec2> collinear = {{0, 0}, {10, 0}, {20, 0}};
  const auto res = mmse_multilaterate(collinear, {5.0, 5.0, 15.0});
  EXPECT_FALSE(res.has_value());
}

TEST(Mmse, MismatchedSizesThrow) {
  EXPECT_THROW(mmse_multilaterate({{0, 0}}, {1.0, 2.0}), AssertionError);
}

TEST(Mmse, GaussNewtonImprovesOverLinearizationWithNoise) {
  Rng rng(9);
  const Vec2 truth{100.0, 700.0};
  std::vector<Vec2> refs;
  std::vector<double> dists;
  for (int i = 0; i < 6; ++i) {
    const Vec2 r{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    refs.push_back(r);
    dists.push_back(distance(truth, r) * rng.uniform(0.95, 1.05));
  }
  const auto raw = mmse_multilaterate(refs, dists, 0);
  const auto refined = mmse_multilaterate(refs, dists, 10);
  ASSERT_TRUE(raw.has_value());
  ASSERT_TRUE(refined.has_value());
  EXPECT_LE(refined->residual_rms, raw->residual_rms + 1e-9);
}

}  // namespace
}  // namespace lad
