#include "net/broadcast.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

DeploymentConfig tiny_config() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 2;
  cfg.grid_ny = 2;
  cfg.nodes_per_group = 40;
  cfg.sigma = 30.0;
  cfg.radio_range = 60.0;
  return cfg;
}

class BroadcastTest : public ::testing::Test {
 protected:
  BroadcastTest() : model_(tiny_config()), rng_(11), net_(model_, rng_) {}
  DeploymentModel model_;
  Rng rng_;
  Network net_;
};

TEST_F(BroadcastTest, HonestRoundEqualsDirectObservation) {
  const BroadcastSim sim(net_);
  for (std::size_t node = 0; node < net_.num_nodes(); node += 23) {
    EXPECT_EQ(sim.observe(node), net_.observe(node));
  }
}

TEST_F(BroadcastTest, SilenceAttackRemovesOneCount) {
  BroadcastSim sim(net_);
  const auto neighbors = net_.neighbors_of(5);
  ASSERT_FALSE(neighbors.empty());
  const std::size_t quiet = neighbors.front();
  NodeBehavior b;
  b.silent = true;
  sim.set_behavior(quiet, b);
  const Observation base = net_.observe(5);
  const Observation got = sim.observe(5);
  const std::size_t g = static_cast<std::size_t>(net_.group_of(quiet));
  EXPECT_EQ(got.counts[g] + 1, base.counts[g]);
  EXPECT_EQ(got.total() + 1, base.total());
}

TEST_F(BroadcastTest, ImpersonationMovesOneCount) {
  BroadcastSim sim(net_);
  const auto neighbors = net_.neighbors_of(5);
  ASSERT_FALSE(neighbors.empty());
  const std::size_t liar = neighbors.front();
  const int true_g = net_.group_of(liar);
  const int fake_g = (true_g + 1) % net_.num_groups();
  NodeBehavior b;
  b.impersonate_group = fake_g;
  sim.set_behavior(liar, b);
  const Observation base = net_.observe(5);
  const Observation got = sim.observe(5);
  EXPECT_EQ(got.counts[static_cast<std::size_t>(true_g)] + 1,
            base.counts[static_cast<std::size_t>(true_g)]);
  EXPECT_EQ(got.counts[static_cast<std::size_t>(fake_g)],
            base.counts[static_cast<std::size_t>(fake_g)] + 1);
  EXPECT_EQ(got.total(), base.total());
}

TEST_F(BroadcastTest, MultiImpersonationInflatesArbitrarily) {
  BroadcastSim sim(net_);
  const auto neighbors = net_.neighbors_of(5);
  ASSERT_FALSE(neighbors.empty());
  NodeBehavior b;
  b.extra_claims = {{0, 17}, {3, 4}};
  sim.set_behavior(neighbors.front(), b);
  const Observation base = net_.observe(5);
  const Observation got = sim.observe(5);
  EXPECT_EQ(got.counts[0], base.counts[0] + 17);
  EXPECT_EQ(got.counts[3], base.counts[3] + 4);
}

TEST_F(BroadcastTest, AuthenticationBlocksForgedClaims) {
  BroadcastSim sim(net_);
  sim.set_defenses({.authentication = true, .wormhole_detection = false});
  const auto neighbors = net_.neighbors_of(5);
  ASSERT_FALSE(neighbors.empty());
  const std::size_t liar = neighbors.front();
  const int true_g = net_.group_of(liar);
  const int fake_g = (true_g + 1) % net_.num_groups();
  const int claim_g = (true_g + 2) % net_.num_groups();
  NodeBehavior b;
  b.impersonate_group = fake_g;
  b.extra_claims = {{claim_g, 50}};
  sim.set_behavior(liar, b);
  const Observation base = net_.observe(5);
  const Observation got = sim.observe(5);
  // The forged primary claim and the extra claims are all dropped; the
  // liar's true announcement is suppressed too (it claimed a false group),
  // so the net effect equals a silence attack.
  EXPECT_EQ(got.counts[static_cast<std::size_t>(true_g)] + 1,
            base.counts[static_cast<std::size_t>(true_g)]);
  EXPECT_EQ(got.counts[static_cast<std::size_t>(fake_g)],
            base.counts[static_cast<std::size_t>(fake_g)]);
  EXPECT_EQ(got.counts[static_cast<std::size_t>(claim_g)],
            base.counts[static_cast<std::size_t>(claim_g)]);
}

TEST_F(BroadcastTest, AuthenticationStillAllowsSilence) {
  // Dec-Only world: silence is the only attack that works.
  BroadcastSim sim(net_);
  sim.set_defenses({.authentication = true, .wormhole_detection = true});
  const auto neighbors = net_.neighbors_of(9);
  ASSERT_FALSE(neighbors.empty());
  NodeBehavior b;
  b.silent = true;
  sim.set_behavior(neighbors.front(), b);
  EXPECT_EQ(sim.observe(9).total() + 1, net_.observe(9).total());
}

TEST_F(BroadcastTest, BehaviorsCanBeOverwrittenAndCleared) {
  BroadcastSim sim(net_);
  const auto neighbors = net_.neighbors_of(5);
  ASSERT_FALSE(neighbors.empty());
  NodeBehavior b;
  b.silent = true;
  sim.set_behavior(neighbors.front(), b);
  b.silent = false;
  sim.set_behavior(neighbors.front(), b);  // overwrite with honest
  EXPECT_EQ(sim.observe(5), net_.observe(5));
  b.silent = true;
  sim.set_behavior(neighbors.front(), b);
  sim.clear_behaviors();
  EXPECT_EQ(sim.observe(5), net_.observe(5));
}

TEST_F(BroadcastTest, WormholeReplaysRemoteSenders) {
  BroadcastSim sim(net_);
  const std::size_t victim = 0;
  const Vec2 vp = net_.position(victim);
  const Vec2 remote{350, 350};
  sim.add_wormhole({remote, vp, 30.0, true});
  const Observation base = net_.observe(victim);
  const Observation got = sim.observe(victim);
  // Count distinct non-neighbor nodes in the capture zone.
  std::size_t expect_extra = 0;
  const auto direct = net_.neighbors_of(victim);
  for (std::size_t i : net_.nodes_within(remote, 30.0, victim)) {
    if (std::find(direct.begin(), direct.end(), i) == direct.end()) ++expect_extra;
  }
  EXPECT_GT(expect_extra, 0u);  // sanity: the zone is populated
  EXPECT_EQ(static_cast<std::size_t>(got.total()),
            static_cast<std::size_t>(base.total()) + expect_extra);
}

TEST_F(BroadcastTest, WormholeDetectionDropsReplays) {
  BroadcastSim sim(net_);
  sim.set_defenses({.authentication = false, .wormhole_detection = true});
  sim.add_wormhole({{350, 350}, net_.position(0), 30.0, true});
  EXPECT_EQ(sim.observe(0), net_.observe(0));
}

TEST_F(BroadcastTest, HeardCountCountsTransmittersNotMessages) {
  BroadcastSim sim(net_);
  const auto neighbors = net_.neighbors_of(5);
  ASSERT_FALSE(neighbors.empty());
  NodeBehavior b;
  b.extra_claims = {{0, 100}};
  sim.set_behavior(neighbors.front(), b);
  EXPECT_EQ(sim.heard_count(5), neighbors.size());
}

}  // namespace
}  // namespace lad
