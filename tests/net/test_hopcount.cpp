#include "net/hopcount.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "geom/vec2.h"
#include "rng/rng.h"

namespace lad {
namespace {

DeploymentConfig line_config() {
  // Narrow strip so the network is effectively a 1-D chain of clusters.
  DeploymentConfig cfg;
  cfg.field_side = 500.0;
  cfg.grid_nx = 5;
  cfg.grid_ny = 1;
  cfg.nodes_per_group = 30;
  cfg.sigma = 20.0;
  cfg.radio_range = 60.0;
  return cfg;
}

class HopCountTest : public ::testing::Test {
 protected:
  HopCountTest() : model_(line_config()), rng_(21), net_(model_, rng_) {}
  DeploymentModel model_;
  Rng rng_;
  Network net_;
};

TEST_F(HopCountTest, SourceIsZeroHops) {
  const auto hops = hop_counts_from(net_, 0);
  EXPECT_EQ(hops[0], 0);
}

TEST_F(HopCountTest, DirectNeighborsAreOneHop) {
  const auto hops = hop_counts_from(net_, 0);
  for (std::size_t nb : net_.neighbors_of(0)) {
    EXPECT_EQ(hops[nb], 1) << "neighbor " << nb;
  }
}

TEST_F(HopCountTest, TriangleInequalityOnHops) {
  // hops(u) <= hops(neighbor of u) + 1 for every edge.
  const auto hops = hop_counts_from(net_, 0);
  for (std::size_t u = 0; u < net_.num_nodes(); ++u) {
    if (hops[u] == kUnreachableHops) continue;
    for (std::size_t v : net_.neighbors_of(u)) {
      if (hops[v] == kUnreachableHops) continue;
      EXPECT_LE(hops[u], hops[v] + 1);
    }
  }
}

TEST_F(HopCountTest, HopsGrowWithDistanceAcrossTheStrip) {
  // A node near x=0 needs strictly more hops to x=450 clusters than to
  // nearby ones, and at least ceil(distance / R).
  std::size_t left = 0, right = 0;
  for (std::size_t i = 0; i < net_.num_nodes(); ++i) {
    if (net_.position(i).x < net_.position(left).x) left = i;
    if (net_.position(i).x > net_.position(right).x) right = i;
  }
  const auto hops = hop_counts_from(net_, left);
  if (hops[right] != kUnreachableHops) {
    const double d = distance(net_.position(left), net_.position(right));
    EXPECT_GE(hops[right],
              static_cast<std::uint16_t>(std::ceil(d / net_.radio_range())));
  }
}

TEST_F(HopCountTest, MultiSourceMatchesSingleSource) {
  const std::vector<std::size_t> sources = {0, 50, 100};
  const auto all = hop_counts_from_all(net_, sources);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    EXPECT_EQ(all[s], hop_counts_from(net_, sources[s]));
  }
}

TEST_F(HopCountTest, AverageHopDistanceIsPlausible) {
  const std::vector<std::size_t> sources = {0, 40, 80, 120};
  const auto hops = hop_counts_from_all(net_, sources);
  const double ahd = average_hop_distance(net_, sources, hops);
  if (ahd > 0) {
    // A hop can never cover more than R, and in a connected strip it
    // should cover a decent fraction of R.
    EXPECT_LE(ahd, net_.radio_range());
    EXPECT_GT(ahd, net_.radio_range() * 0.2);
  }
}

TEST(HopCountIsolated, DisconnectedNodesAreUnreachable) {
  DeploymentConfig cfg;
  cfg.field_side = 1000.0;
  cfg.grid_nx = 2;
  cfg.grid_ny = 1;
  cfg.nodes_per_group = 10;
  cfg.sigma = 5.0;      // two tight clusters 500 m apart
  cfg.radio_range = 30.0;
  const DeploymentModel model(cfg);
  Rng rng(5);
  const Network net(model, rng);
  const auto hops = hop_counts_from(net, 0);
  // Some node of the far cluster must be unreachable.
  bool any_unreachable = false;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (hops[i] == kUnreachableHops) any_unreachable = true;
  }
  EXPECT_TRUE(any_unreachable);
}

}  // namespace
}  // namespace lad
