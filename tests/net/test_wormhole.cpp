#include "net/wormhole.h"

#include <gtest/gtest.h>

namespace lad {
namespace {

TEST(Wormhole, ForwardDelivery) {
  const Wormhole w{{0, 0}, {100, 100}, 10.0, false};
  EXPECT_TRUE(wormhole_delivers(w, {5, 0}, {100, 105}));
  EXPECT_FALSE(wormhole_delivers(w, {5, 0}, {50, 50}));   // receiver far
  EXPECT_FALSE(wormhole_delivers(w, {20, 0}, {100, 100})); // sender far
}

TEST(Wormhole, UnidirectionalRejectsReverse) {
  const Wormhole w{{0, 0}, {100, 100}, 10.0, false};
  EXPECT_FALSE(wormhole_delivers(w, {100, 100}, {0, 0}));
}

TEST(Wormhole, BidirectionalAllowsBothWays) {
  const Wormhole w{{0, 0}, {100, 100}, 10.0, true};
  EXPECT_TRUE(wormhole_delivers(w, {0, 5}, {95, 100}));
  EXPECT_TRUE(wormhole_delivers(w, {95, 100}, {0, 5}));
}

TEST(Wormhole, RadiusBoundaryIsInclusive) {
  const Wormhole w{{0, 0}, {100, 0}, 10.0, true};
  EXPECT_TRUE(wormhole_delivers(w, {10, 0}, {110, 0}));
  EXPECT_FALSE(wormhole_delivers(w, {10.001, 0}, {110, 0}));
}

}  // namespace
}  // namespace lad
