#include "rng/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lad {
namespace {

TEST(RngUniform01, InUnitIntervalAndRoughlyUniform) {
  Rng rng(1);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngUniformRange, RespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(RngUniformInt, CoversAllValuesWithoutBias) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_int(std::uint64_t{10})];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(RngUniformInt, InclusiveRange) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const long long v = rng.uniform_int(-2ll, 2ll);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngUniformInt, ZeroRangeThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), AssertionError);
}

TEST(RngNormal, MomentsMatch) {
  Rng rng(6);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngNormal, ScaledMomentsMatch) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngExponential, MeanMatchesRate) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngBinomial, EdgeCases) {
  Rng rng(9);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(10, 0.0), 0);
  EXPECT_EQ(rng.binomial(10, 1.0), 10);
}

TEST(RngBinomial, MomentsMatch) {
  Rng rng(10);
  const int n = 300;
  const double p = 0.13;
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const int v = rng.binomial(n, p);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, n);
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, n * p, 0.2);
  EXPECT_NEAR(var, n * p * (1 - p), 1.5);
}

TEST(RngBinomial, SymmetryBranch) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.binomial(100, 0.9);
  EXPECT_NEAR(sum / kN, 90.0, 0.5);
}

TEST(RngPoisson, MeanMatches) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.poisson(4.2);
  EXPECT_NEAR(sum / kN, 4.2, 0.1);
}

TEST(RngDiscrete, FollowsWeights) {
  Rng rng(13);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.discrete(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(RngDiscrete, InvalidWeightsThrow) {
  Rng rng(14);
  EXPECT_THROW(rng.discrete({}), AssertionError);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), AssertionError);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), AssertionError);
}

TEST(RngShuffle, IsAPermutation) {
  Rng rng(15);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(RngSampleWithoutReplacement, DistinctAndInRange) {
  Rng rng(16);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::vector<std::size_t> sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (std::size_t i : s) EXPECT_LT(i, 50u);
}

TEST(RngSampleWithoutReplacement, FullAndEmpty) {
  Rng rng(17);
  EXPECT_EQ(rng.sample_without_replacement(5, 5).size(), 5u);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
  EXPECT_THROW(rng.sample_without_replacement(3, 4), AssertionError);
}

TEST(RngStream, IndependentAndDeterministic) {
  Rng a = Rng::stream(99, 0);
  Rng b = Rng::stream(99, 0);
  Rng c = Rng::stream(99, 1);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.bits();
    EXPECT_EQ(va, b.bits());
    if (va != c.bits()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace lad
