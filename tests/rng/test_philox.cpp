#include "rng/philox.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace lad {
namespace {

// Known-answer vectors for Philox4x32-10 from the Random123 distribution
// (kat_vectors): counter/key all zeros, all ones, and the pi-digits vector.
TEST(Philox, KnownAnswerZeros) {
  const Philox4x32::Counter out =
      Philox4x32::block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerOnes) {
  const Philox4x32::Counter out = Philox4x32::block(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, KnownAnswerPiDigits) {
  const Philox4x32::Counter out = Philox4x32::block(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out[0], 0xd16cfe09u);
  EXPECT_EQ(out[1], 0x94fdccebu);
  EXPECT_EQ(out[2], 0x5001e420u);
  EXPECT_EQ(out[3], 0x24126ea1u);
}

TEST(Philox, StreamsAreDeterministic) {
  Philox4x32 a(123, 456), b(123, 456);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Philox, DistinctStreamsDiffer) {
  Philox4x32 a(123, 0), b(123, 1);
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Philox, DistinctKeysDiffer) {
  Philox4x32 a(1, 0), b(2, 0);
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Philox, CounterWalksThroughManyBlocks) {
  // Consuming > 2 words per block forces several refills; all outputs must
  // be distinct with overwhelming probability.
  Philox4x32 rng(7, 7);
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.push_back(rng.next());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace lad
