// Deterministic replay: the guarantee the whole Monte-Carlo engine rests
// on.  The same seed must reproduce bit-identical draws from every engine
// (Xoshiro, Philox, the Rng distribution layer) and, end to end,
// bit-identical Observation streams from a deployed network.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "deploy/observation.h"
#include "rng/philox.h"
#include "rng/rng.h"
#include "rng/xoshiro.h"
#include "support/scoped_rng.h"
#include "support/tiny_network.h"

namespace lad {
namespace {

// Walks `engine` to pick nodes of a freshly deployed network and records
// their observations.  Everything downstream of the seed: deployment
// scatter, node choice, and the observation counts themselves.
template <typename Engine>
std::vector<Observation> observation_stream(const DeploymentModel& model,
                                            std::uint64_t deploy_seed,
                                            Engine engine, int draws) {
  Rng deploy_rng(deploy_seed);
  const Network net(model, deploy_rng);
  std::vector<Observation> stream;
  stream.reserve(static_cast<std::size_t>(draws));
  for (int i = 0; i < draws; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(engine() % net.num_nodes());
    stream.push_back(net.observe(node));
  }
  return stream;
}

TEST(Replay, XoshiroSameSeedBitIdentical) {
  Xoshiro256StarStar a(0xdecafbadULL), b(0xdecafbadULL);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(Replay, XoshiroDifferentSeedsDiverge) {
  Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Replay, PhiloxSameKeyStreamBitIdentical) {
  Philox4x32 a(2005, 7), b(2005, 7);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(Replay, PhiloxStreamsAreIndependent) {
  Philox4x32 a(2005, 7), b(2005, 8);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Replay, RngDistributionLayerSameSeedBitIdentical) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.bits(), b.bits());
    // double == double is intentional: replay must be bit-exact.
    ASSERT_EQ(a.uniform01(), b.uniform01());
    ASSERT_EQ(a.normal(), b.normal());
    ASSERT_EQ(a.uniform_int(97u), b.uniform_int(97u));
  }
}

TEST(Replay, RngSubStreamsReplayAndNeverAlias) {
  Rng a = Rng::stream(123, 5);
  Rng b = Rng::stream(123, 5);
  Rng other = Rng::stream(123, 6);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.bits();
    ASSERT_EQ(va, b.bits());
    diverged = diverged || (va != other.bits());
  }
  EXPECT_TRUE(diverged);
}

TEST(Replay, ObservationStreamsBitIdenticalAcrossEngines) {
  const DeploymentModel model(test::tiny_config());
  constexpr std::uint64_t kSeed = 77;
  constexpr int kDraws = 50;

  const auto via_rng =
      observation_stream(model, kSeed, Rng(kSeed), kDraws);
  const auto via_xoshiro =
      observation_stream(model, kSeed, Xoshiro256StarStar(kSeed), kDraws);
  const auto via_philox =
      observation_stream(model, kSeed, Philox4x32(kSeed, 0), kDraws);

  // Each engine replays itself bit-identically...
  EXPECT_EQ(via_rng, observation_stream(model, kSeed, Rng(kSeed), kDraws));
  EXPECT_EQ(via_xoshiro,
            observation_stream(model, kSeed, Xoshiro256StarStar(kSeed), kDraws));
  EXPECT_EQ(via_philox,
            observation_stream(model, kSeed, Philox4x32(kSeed, 0), kDraws));

  // ...and Rng is by construction the same stream as its Xoshiro engine.
  EXPECT_EQ(via_rng, via_xoshiro);
}

TEST(Replay, ScopedTestRngReplaysWithinATest) {
  test::ScopedTestRng a, b;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.bits(), b.bits());
  // Salted streams are independent of the unsalted one.
  test::ScopedTestRng base, salted(1);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) diverged = diverged || (base.bits() != salted.bits());
  EXPECT_TRUE(diverged);
}

TEST(Replay, StableSeedIsPlatformIndependent) {
  // FNV-1a of a fixed tag must never drift: golden value computed once.
  EXPECT_EQ(test::stable_seed("Replay.Pinned"), 0xf9585a289a32b8d6ULL);
}

TEST(Replay, NetworkDeploymentReplays) {
  const DeploymentModel model(test::tiny_config());
  const Network a = test::make_network(model, 99);
  const Network b = test::make_network(model, 99);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    ASSERT_EQ(a.position(i), b.position(i)) << "node " << i;
    ASSERT_EQ(a.group_of(i), b.group_of(i)) << "node " << i;
  }
}

}  // namespace
}  // namespace lad
