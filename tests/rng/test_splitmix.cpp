#include "rng/splitmix.h"

#include <gtest/gtest.h>

namespace lad {
namespace {

// Reference values for SplitMix64 with seed 1234567, from the public-domain
// reference implementation by Sebastiano Vigna.
TEST(SplitMix64, MatchesReferenceSequence) {
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, ZeroSeedProducesNonzeroOutput) {
  SplitMix64 sm(0);
  EXPECT_NE(sm.next(), 0ULL);
}

TEST(Mix64, IsDeterministicAndSensitiveToBothInputs) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_NE(mix64(1, 2), mix64(2, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

TEST(Mix64, AdjacentStreamsDecorrelate) {
  // The low bits of consecutive stream ids must not produce consecutive
  // mixed values (weak check of avalanche).
  const std::uint64_t a = mix64(99, 0);
  const std::uint64_t b = mix64(99, 1);
  EXPECT_GT(__builtin_popcountll(a ^ b), 10);
}

}  // namespace
}  // namespace lad
