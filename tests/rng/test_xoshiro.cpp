#include "rng/xoshiro.h"

#include <gtest/gtest.h>

namespace lad {
namespace {

// Reference: first outputs of xoshiro256** 1.0 with state {1, 2, 3, 4},
// from the authors' reference implementation (Blackman & Vigna).
TEST(Xoshiro, MatchesReferenceSequenceFromExplicitState) {
  Xoshiro256StarStar rng(1, 2, 3, 4);
  EXPECT_EQ(rng.next(), 11520ULL);
  EXPECT_EQ(rng.next(), 0ULL);
  EXPECT_EQ(rng.next(), 1509978240ULL);
  EXPECT_EQ(rng.next(), 1215971899390074240ULL);
}

TEST(Xoshiro, SeededConstructorIsDeterministic) {
  Xoshiro256StarStar a(777), b(777);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsProduceDifferentStreams) {
  Xoshiro256StarStar a(1), b(2);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);  // collisions are astronomically unlikely
}

TEST(Xoshiro, BitsLookUniformCoarsely) {
  Xoshiro256StarStar rng(2024);
  int ones = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) ones += __builtin_popcountll(rng.next());
  const double mean_bits = static_cast<double>(ones) / kDraws;
  EXPECT_NEAR(mean_bits, 32.0, 0.5);
}

}  // namespace
}  // namespace lad
