// Parameterized end-to-end property sweep: for EVERY (metric, attack
// class) combination the trained detector must (a) keep its training FP,
// (b) detect essentially all high-damage attacks, and (c) degrade
// monotonically as the compromise budget grows.  This is the paper's
// qualitative contract, checked across the full metric/adversary matrix
// rather than only the configurations the figures show.
#include <gtest/gtest.h>

#include "attack/adversary.h"
#include "core/metric.h"
#include "core/trainer.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"

namespace lad {
namespace {

PipelineConfig sweep_config() {
  PipelineConfig cfg;
  cfg.deploy.field_side = 800.0;
  cfg.deploy.grid_nx = 8;
  cfg.deploy.grid_ny = 8;
  cfg.deploy.nodes_per_group = 60;
  cfg.deploy.sigma = 40.0;
  cfg.deploy.radio_range = 50.0;
  cfg.networks = 3;
  cfg.victims_per_network = 80;
  cfg.seed = 4242;
  return cfg;
}

class DetectionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static Pipeline& pipeline() {
    static Pipeline p(sweep_config());
    return p;
  }
  static const std::map<MetricKind, std::vector<double>>& benign() {
    static const auto scores = pipeline().benign_scores(
        beaconless_mle_factory(pipeline().model(), pipeline().gz()),
        {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb});
    return scores;
  }
  MetricKind metric() const {
    return static_cast<MetricKind>(std::get<0>(GetParam()));
  }
  AttackClass cls() const {
    return static_cast<AttackClass>(std::get<1>(GetParam()));
  }
};

TEST_P(DetectionPropertyTest, TrainedThresholdHoldsItsFalsePositiveRate) {
  const auto& scores = benign().at(metric());
  const TrainingResult r = train_threshold(metric(), scores, 0.99);
  EXPECT_NEAR(fraction_above(scores, r.threshold), 0.01, 0.008);
}

TEST_P(DetectionPropertyTest, HighDamageAttacksAreCaught) {
  const auto& scores = benign().at(metric());
  const double threshold = train_threshold(metric(), scores, 0.99).threshold;
  AttackSpec spec;
  spec.metric = metric();
  spec.attack_class = cls();
  spec.damage = 280.0;
  spec.compromised_frac = 0.10;
  const double dr =
      fraction_above(pipeline().attack_scores(spec), threshold);
  EXPECT_GT(dr, 0.95) << metric_name(metric()) << " / "
                      << attack_class_name(cls());
}

TEST_P(DetectionPropertyTest, DetectionDegradesMonotonicallyWithBudget) {
  const auto& scores = benign().at(metric());
  const double threshold = train_threshold(metric(), scores, 0.99).threshold;
  double prev = 1.1;
  for (double x : {0.0, 0.2, 0.5}) {
    AttackSpec spec;
    spec.metric = metric();
    spec.attack_class = cls();
    spec.damage = 120.0;
    spec.compromised_frac = x;
    const double dr =
        fraction_above(pipeline().attack_scores(spec), threshold);
    EXPECT_LE(dr, prev + 0.05) << "x=" << x;
    prev = dr;
  }
}

TEST_P(DetectionPropertyTest, DecOnlyNeverBeatsDecBoundedEvasion) {
  // Regardless of the metric, the Dec-Bounded attacker achieves scores
  // <= the Dec-Only attacker on the same victims.
  AttackSpec spec;
  spec.metric = metric();
  spec.damage = 100.0;
  spec.compromised_frac = 0.15;
  spec.attack_class = AttackClass::kDecBounded;
  const auto bounded = pipeline().attack_scores(spec);
  spec.attack_class = AttackClass::kDecOnly;
  const auto only = pipeline().attack_scores(spec);
  ASSERT_EQ(bounded.size(), only.size());
  for (std::size_t i = 0; i < bounded.size(); ++i) {
    ASSERT_LE(bounded[i], only[i] + 1e-9) << "victim " << i;
  }
}

std::string matrix_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* metric_names[] = {"Diff", "AddAll", "Prob"};
  static const char* class_names[] = {"DecBounded", "DecOnly"};
  return std::string(metric_names[std::get<0>(info.param)]) +
         class_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    MetricAttackMatrix, DetectionPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1)),
    matrix_case_name);

}  // namespace
}  // namespace lad
