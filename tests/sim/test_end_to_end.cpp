// Integration tests exercising the full LAD pipeline the way a deployment
// would: train thresholds on benign deployments, then detect planted
// anomalies - including the paper's headline qualitative claims.
#include <gtest/gtest.h>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"
#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"

namespace lad {
namespace {

PipelineConfig e2e_config() {
  PipelineConfig cfg;
  cfg.deploy.field_side = 800.0;
  cfg.deploy.grid_nx = 8;
  cfg.deploy.grid_ny = 8;
  cfg.deploy.nodes_per_group = 50;
  cfg.deploy.sigma = 40.0;
  cfg.deploy.radio_range = 50.0;
  cfg.networks = 4;
  cfg.victims_per_network = 75;
  cfg.seed = 777;
  return cfg;
}

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest()
      : pipeline_(e2e_config()),
        factory_(beaconless_mle_factory(pipeline_.model(), pipeline_.gz())) {}
  Pipeline pipeline_;
  LocalizerFactory factory_;
};

TEST_F(EndToEndTest, TrainedDetectorFlagsLargeAnomaliesAndPassesBenign) {
  // Train the Diff threshold at tau = 0.99.
  auto benign = pipeline_.benign_scores(factory_, {MetricKind::kDiff});
  const TrainingResult trained =
      train_threshold(MetricKind::kDiff, benign.at(MetricKind::kDiff), 0.99);

  Detector detector(pipeline_.model(), pipeline_.gz(), MetricKind::kDiff,
                    trained.threshold);

  // Benign pass: verdicts on fresh nodes should rarely alarm.
  const Network& net = *pipeline_.networks()[0];
  BeaconlessMleLocalizer mle(pipeline_.model(), pipeline_.gz());
  Rng rng(5);
  int benign_alarms = 0;
  constexpr int kBenignTrials = 120;
  for (int i = 0; i < kBenignTrials; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation obs = net.observe(node);
    if (detector.check(obs, mle.estimate(obs)).anomaly) ++benign_alarms;
  }
  EXPECT_LT(benign_alarms, kBenignTrials / 10);  // well under 10%

  // Attack pass: D = 200 with 10% compromise must be detected nearly always.
  int detected = 0;
  constexpr int kAttackTrials = 120;
  for (int i = 0; i < kAttackTrials; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    const Observation a = net.observe(node);
    const Vec2 le = displaced_location(
        net.position(node), 200.0, pipeline_.config().deploy.field(), rng);
    const ExpectedObservation mu =
        pipeline_.model().expected_observation(le, pipeline_.gz());
    const TaintResult taint = greedy_taint(
        a, mu, pipeline_.config().deploy.nodes_per_group, MetricKind::kDiff,
        AttackClass::kDecBounded, static_cast<int>(0.1 * a.total()));
    if (detector.check(taint.tainted, le).anomaly) ++detected;
  }
  EXPECT_GT(detected, kAttackTrials * 9 / 10);
}

TEST_F(EndToEndTest, PaperClaim_DetectionImprovesWithDamage) {
  const auto points =
      run_dr_sweep(pipeline_, factory_, MetricKind::kDiff,
                   AttackClass::kDecBounded,
                   {40.0, 80.0, 120.0, 160.0, 240.0}, {0.1}, 0.01);
  ASSERT_EQ(points.size(), 5u);
  // Monotone non-decreasing (within Monte-Carlo slack) and saturating.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].detection_rate, points[i - 1].detection_rate - 0.07)
        << "D = " << points[i].damage;
  }
  // The test deployment is sparse (~40 neighbors/node), so saturation is a
  // little below the paper's 30k-node setting; 0.9 still demonstrates it.
  EXPECT_GT(points.back().detection_rate, 0.9);
}

TEST_F(EndToEndTest, PaperClaim_DiffMetricCompetitiveOnLargeD) {
  // Fig. 4's conclusion: "in general, the Diff metric performs the best".
  // At least it must not be dominated at high damage.
  const auto results = run_roc_experiment(
      pipeline_, factory_,
      {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb},
      {AttackClass::kDecBounded}, {160.0}, 0.1);
  ASSERT_EQ(results.size(), 3u);
  const double diff_auc = results[0].curve.auc();
  EXPECT_GT(diff_auc, 0.9);
}

TEST_F(EndToEndTest, PaperClaim_DecBoundedHarderThanDecOnlyAtSmallD) {
  const auto results = run_roc_experiment(
      pipeline_, factory_, {MetricKind::kDiff},
      {AttackClass::kDecBounded, AttackClass::kDecOnly}, {40.0}, 0.1);
  ASSERT_EQ(results.size(), 2u);
  // Fig. 5: at D = 40 the Dec-Bounded attack is clearly harder to detect.
  EXPECT_LT(results[0].curve.auc(), results[1].curve.auc() + 0.02);
}

TEST_F(EndToEndTest, ThresholdRobustness) {
  // Section 5.5's property: for large D, detection stays high and FP low
  // even when the threshold is off its optimal value.
  auto benign = pipeline_.benign_scores(factory_, {MetricKind::kDiff});
  const std::vector<double>& scores = benign.at(MetricKind::kDiff);
  const double t99 = quantile(scores, 0.99);

  AttackSpec spec;
  spec.metric = MetricKind::kDiff;
  spec.attack_class = AttackClass::kDecBounded;
  spec.damage = 240.0;
  spec.compromised_frac = 0.1;
  const auto attack = pipeline_.attack_scores(spec);

  for (double fudge : {0.8, 1.0, 1.25}) {
    const double threshold = t99 * fudge;
    EXPECT_GT(fraction_above(attack, threshold), 0.9)
        << "threshold fudge " << fudge;
  }
}

}  // namespace
}  // namespace lad
