#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "util/assert.h"

#include "attack/adversary.h"
#include "core/metric.h"
#include "loc/truth_noise.h"
#include "sim/pipeline.h"

namespace lad {
namespace {

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.deploy.field_side = 600.0;
  cfg.deploy.grid_nx = 6;
  cfg.deploy.grid_ny = 6;
  cfg.deploy.nodes_per_group = 40;
  cfg.deploy.sigma = 30.0;
  cfg.deploy.radio_range = 50.0;
  cfg.networks = 4;
  cfg.victims_per_network = 60;
  cfg.seed = 31337;
  return cfg;
}

LocalizerFactory tn_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<TruthNoiseLocalizer>(8.0, seed);
  };
}

TEST(RocExperiment, ProducesOneCurvePerCombination) {
  Pipeline p(small_config());
  const auto results = run_roc_experiment(
      p, tn_factory(), {MetricKind::kDiff, MetricKind::kProb},
      {AttackClass::kDecBounded}, {60.0, 150.0}, 0.1);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_GT(r.curve.auc(), 0.4);
    EXPECT_DOUBLE_EQ(r.compromised_frac, 0.1);
  }
}

TEST(RocExperiment, AucGrowsWithDamage) {
  Pipeline p(small_config());
  const auto results =
      run_roc_experiment(p, tn_factory(), {MetricKind::kDiff},
                         {AttackClass::kDecBounded}, {40.0, 200.0}, 0.1);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].curve.auc(), results[1].curve.auc());
  EXPECT_GT(results[1].curve.auc(), 0.9);
}

TEST(RocExperiment, DecOnlyIsEasierToDetectThanDecBounded) {
  Pipeline p(small_config());
  const auto results = run_roc_experiment(
      p, tn_factory(), {MetricKind::kDiff},
      {AttackClass::kDecBounded, AttackClass::kDecOnly}, {80.0}, 0.15);
  ASSERT_EQ(results.size(), 2u);
  // results[0] = Dec-Bounded, results[1] = Dec-Only.
  EXPECT_LE(results[0].curve.auc(), results[1].curve.auc() + 0.02);
}

TEST(DrSweep, DetectionRateIncreasesWithDamage) {
  Pipeline p(small_config());
  const auto points =
      run_dr_sweep(p, tn_factory(), MetricKind::kDiff,
                   AttackClass::kDecBounded, {40.0, 100.0, 200.0}, {0.1}, 0.01);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LE(points[0].detection_rate, points[1].detection_rate + 0.05);
  EXPECT_LE(points[1].detection_rate, points[2].detection_rate + 0.05);
  EXPECT_GT(points[2].detection_rate, 0.8);
  for (const auto& pt : points) {
    EXPECT_NEAR(pt.trained_fp, 0.01, 0.01);
  }
}

TEST(DrSweep, DetectionRateDecreasesWithCompromise) {
  Pipeline p(small_config());
  const auto points = run_dr_sweep(p, tn_factory(), MetricKind::kDiff,
                                   AttackClass::kDecBounded, {100.0},
                                   {0.0, 0.3, 0.6}, 0.01);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GE(points[0].detection_rate, points[1].detection_rate - 0.05);
  EXPECT_GE(points[1].detection_rate, points[2].detection_rate - 0.05);
}

TEST(DrSweep, RejectsBadFpBudget) {
  Pipeline p(small_config());
  EXPECT_THROW(run_dr_sweep(p, tn_factory(), MetricKind::kDiff,
                            AttackClass::kDecBounded, {100.0}, {0.1}, 0.0),
               AssertionError);
}

TEST(DensitySweep, ProducesPointsPerDensityAndError) {
  PipelineConfig cfg = small_config();
  cfg.networks = 2;
  cfg.victims_per_network = 40;
  const auto points = run_density_sweep(cfg, {30, 80}, MetricKind::kDiff,
                                        AttackClass::kDecBounded, {120.0},
                                        {0.1}, 0.01);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].nodes_per_group, 30);
  EXPECT_EQ(points[1].nodes_per_group, 80);
  // The localization scheme (MLE) improves with density - the paper's
  // Fig. 9 mechanism.
  EXPECT_GT(points[0].mean_loc_error, points[1].mean_loc_error);
}

}  // namespace
}  // namespace lad
