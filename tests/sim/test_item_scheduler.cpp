// ItemScheduler splice-order and error-parking contract, and the
// LatchedCache exception semantics the concurrent work items rely on.
#include "sim/item_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/latched_cache.h"
#include "sim/scenario.h"
#include "util/assert.h"
#include "util/csv.h"

namespace lad {
namespace {

ScenarioResult two_table_result() {
  ScenarioResult result{"sched_test", {}};
  result.tables.push_back({"a", Table({"item", "v"}), {}});
  result.tables.push_back({"b", Table({"item", "w"}), {}});
  return result;
}

std::vector<std::string> column(const Table& t, std::size_t col) {
  std::vector<std::string> out;
  for (std::size_t r = 0; r < t.num_rows(); ++r) out.push_back(t.row(r)[col]);
  return out;
}

TEST(ItemScheduler, SplicesInScheduleOrderWithMoreJobsThanItems) {
  // jobs far above the item count: every item gets its own slot at once,
  // so completion order is arbitrary - rows must still land in schedule
  // order, byte-identical to the jobs=1 run.
  for (int jobs : {1, 8}) {
    ScenarioResult result = two_table_result();
    ItemScheduler sched(result, jobs);
    for (long long item : {0, 1, 2}) {
      sched.add(item, [item](ItemSink& sink) {
        // Built with += rather than `"a" + std::to_string(...)`: GCC 12's
        // -Wrestrict false-fires on char* + std::string&& chains inlined
        // into string::insert (PR105651), and the tree builds -Werror.
        std::string a = "a";
        a += std::to_string(item);
        std::string b = "b";
        b += std::to_string(item);
        sink.row(0).add(item).add(a);
        sink.row(1).add(item).add(b);
      });
    }
    sched.run();
    EXPECT_EQ(column(result.tables[0].table, 1),
              (std::vector<std::string>{"a0", "a1", "a2"}))
        << "jobs=" << jobs;
    EXPECT_EQ(column(result.tables[1].table, 1),
              (std::vector<std::string>{"b0", "b1", "b2"}))
        << "jobs=" << jobs;
    EXPECT_EQ(result.tables[0].row_items, (std::vector<long long>{0, 1, 2}));
    EXPECT_EQ(result.tables[1].row_items, (std::vector<long long>{0, 1, 2}));
  }
}

TEST(ItemScheduler, ThrowingItemParksErrorAndKeepsCompletedRows) {
  for (int jobs : {1, 4}) {
    ScenarioResult result = two_table_result();
    ItemScheduler sched(result, jobs);
    sched.add(0, [](ItemSink& sink) { sink.row(0).add(0).add("ok0"); });
    sched.add(1, [](ItemSink& sink) {
      // Throws mid-fragment: a row already started must not leak into the
      // shared tables.
      sink.row(0).add(1);
      throw std::runtime_error("item 1 exploded");
    });
    sched.add(2, [](ItemSink& sink) { sink.row(0).add(2).add("ok2"); });

    try {
      sched.run();
      FAIL() << "expected the parked error to be rethrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 1 exploded");
    }
    // Items 0 and 2 completed; their rows land in schedule order, the
    // failed item contributes nothing.
    EXPECT_EQ(column(result.tables[0].table, 1),
              (std::vector<std::string>{"ok0", "ok2"}))
        << "jobs=" << jobs;
    EXPECT_EQ(result.tables[0].row_items, (std::vector<long long>{0, 2}));
  }
}

TEST(ItemScheduler, FirstErrorByScheduleOrderWinsRegardlessOfTiming) {
  ScenarioResult result = two_table_result();
  ItemScheduler sched(result, 4);
  // Item 2's failure is the one that must surface even if item 5 fails
  // first on the wall clock (deterministic at any jobs count).
  for (long long item : {0, 1, 2, 3, 4, 5}) {
    sched.add(item, [item](ItemSink& sink) {
      if (item == 2) throw std::runtime_error("first");
      if (item == 5) throw std::runtime_error("later");
      sink.row(0).add(item).add("ok");
    });
  }
  try {
    sched.run();
    FAIL() << "expected an error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(result.tables[0].row_items, (std::vector<long long>{0, 1, 3, 4}));
}

TEST(LatchedCache, BuildsOncePerKey) {
  LatchedCache<int> cache;
  std::atomic<int> builds{0};
  for (int i = 0; i < 3; ++i) {
    const int& v = cache.get("k", [&] {
      ++builds;
      return std::make_unique<int>(42);
    });
    EXPECT_EQ(v, 42);
  }
  EXPECT_EQ(builds.load(), 1);
}

TEST(LatchedCache, ThrowingBuilderRethrowsToEveryWaiterAndRebuilds) {
  LatchedCache<int> cache;
  std::atomic<int> builds{0};
  std::atomic<int> failures{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        cache.get("k", [&]() -> std::unique_ptr<int> {
          ++builds;
          throw std::runtime_error("builder failed");
        });
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "builder failed");
        ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Every caller saw the failure - whether it waited on the in-flight
  // builder's latch or re-ran the builder after the entry was unpublished.
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_GE(builds.load(), 1);

  // The key is rebuildable: the failure did not poison it.
  const int before = builds.load();
  const int& v = cache.get("k", [&] {
    ++builds;
    return std::make_unique<int>(7);
  });
  EXPECT_EQ(v, 7);
  EXPECT_EQ(builds.load(), before + 1);

  // And a success is still cached as usual.
  const int& again = cache.get("k", [&]() -> std::unique_ptr<int> {
    ADD_FAILURE() << "builder must not re-run after a success";
    return nullptr;
  });
  EXPECT_EQ(again, 7);
}

TEST(LatchedCache, WaitersBlockedOnThrowingBuilderAllRethrow) {
  // Deterministic version of the race: the builder holds the latch until
  // every waiter has queued up, then throws - all of them must rethrow.
  LatchedCache<int> cache;
  std::atomic<int> waiting{0};
  std::atomic<int> failures{0};
  constexpr int kWaiters = 3;

  std::thread builder([&] {
    try {
      cache.get("k", [&]() -> std::unique_ptr<int> {
        while (waiting.load() < kWaiters) std::this_thread::yield();
        throw AssertionError("deterministic failure");
      });
    } catch (const AssertionError&) {
      ++failures;
    }
  });
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      // Spin until this thread is inside get() is not observable from
      // outside, so approximate: announce, then call (the builder only
      // needs all announcements to have happened before it throws;
      // stragglers re-run the builder and succeed instead).
      ++waiting;
      try {
        const int& v = cache.get("k", [] { return std::make_unique<int>(9); });
        EXPECT_EQ(v, 9);
      } catch (const AssertionError&) {
        ++failures;
      }
    });
  }
  builder.join();
  for (std::thread& th : waiters) th.join();
  EXPECT_GE(failures.load(), 1);  // the builder itself always rethrows
  // Whatever mix of rethrow/rebuild the race produced, the key must end
  // in a usable state.
  const int& v = cache.get("k", [] { return std::make_unique<int>(11); });
  EXPECT_TRUE(v == 9 || v == 11);
}

}  // namespace
}  // namespace lad
