// Tests for the Section-8 deployment-knowledge-mismatch support in the
// pipeline: deploying with a different sigma / jittered points than the
// knowledge model, and the alternative deployment layouts.
#include <gtest/gtest.h>

#include "core/metric.h"
#include "deploy/deployment_model.h"
#include "geom/vec2.h"
#include "loc/truth_noise.h"
#include "sim/pipeline.h"
#include "stats/quantile.h"

namespace lad {
namespace {

PipelineConfig base_config() {
  PipelineConfig cfg;
  cfg.deploy.field_side = 600.0;
  cfg.deploy.grid_nx = 6;
  cfg.deploy.grid_ny = 6;
  cfg.deploy.nodes_per_group = 40;
  cfg.deploy.sigma = 30.0;
  cfg.deploy.radio_range = 50.0;
  cfg.networks = 3;
  cfg.victims_per_network = 60;
  cfg.seed = 99;
  return cfg;
}

LocalizerFactory tn_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<TruthNoiseLocalizer>(5.0, seed);
  };
}

TEST(PipelineMismatch, NoMismatchMeansIdenticalModels) {
  Pipeline p(base_config());
  EXPECT_EQ(p.model().deployment_points(),
            p.actual_model().deployment_points());
  EXPECT_DOUBLE_EQ(p.model().config().sigma, p.actual_model().config().sigma);
}

TEST(PipelineMismatch, ActualSigmaChangesDeploymentOnly) {
  PipelineConfig cfg = base_config();
  cfg.actual_sigma = 60.0;
  Pipeline p(cfg);
  EXPECT_DOUBLE_EQ(p.model().config().sigma, 30.0);       // knowledge
  EXPECT_DOUBLE_EQ(p.actual_model().config().sigma, 60.0);  // reality
  // Wider actual scatter => nodes land farther from deployment points.
  Pipeline matched(base_config());
  double spread_mismatched = 0.0, spread_matched = 0.0;
  for (std::size_t i = 0; i < p.networks()[0]->num_nodes(); ++i) {
    spread_mismatched += distance(
        p.networks()[0]->position(i),
        p.model().deployment_point(p.networks()[0]->group_of(i)));
    spread_matched += distance(
        matched.networks()[0]->position(i),
        matched.model().deployment_point(matched.networks()[0]->group_of(i)));
  }
  EXPECT_GT(spread_mismatched, spread_matched * 1.5);
}

TEST(PipelineMismatch, SigmaMismatchInflatesBenignScores) {
  PipelineConfig cfg = base_config();
  Pipeline matched(cfg);
  cfg.actual_sigma = 60.0;
  Pipeline mismatched(cfg);
  const auto s_matched =
      matched.benign_scores(tn_factory(), {MetricKind::kDiff});
  const auto s_mismatched =
      mismatched.benign_scores(tn_factory(), {MetricKind::kDiff});
  // The knowledge model mispredicts the observation distribution, so the
  // Diff scores of honest sensors grow (the paper's predicted FP error).
  EXPECT_GT(quantile(s_mismatched.at(MetricKind::kDiff), 0.5),
            quantile(s_matched.at(MetricKind::kDiff), 0.5));
}

TEST(PipelineMismatch, JitterMovesActualDeploymentPoints) {
  PipelineConfig cfg = base_config();
  cfg.deployment_jitter = 25.0;
  Pipeline p(cfg);
  const auto& knowledge = p.model().deployment_points();
  const auto& actual = p.actual_model().deployment_points();
  ASSERT_EQ(knowledge.size(), actual.size());
  double total_offset = 0.0;
  for (std::size_t g = 0; g < knowledge.size(); ++g) {
    total_offset += distance(knowledge[g], actual[g]);
  }
  const double mean_offset = total_offset / static_cast<double>(knowledge.size());
  // Mean radial offset of a 2-D Gaussian with sigma=25 is ~31.
  EXPECT_GT(mean_offset, 15.0);
  EXPECT_LT(mean_offset, 50.0);
}

TEST(PipelineShapes, HexAndRandomPipelinesRun) {
  for (DeploymentShape shape : {DeploymentShape::kHex, DeploymentShape::kRandom}) {
    PipelineConfig cfg = base_config();
    cfg.shape = shape;
    Pipeline p(cfg);
    EXPECT_GT(p.model().num_groups(), 0);
    const auto scores = p.benign_scores(tn_factory(), {MetricKind::kDiff});
    EXPECT_EQ(scores.at(MetricKind::kDiff).size(), 180u);
    AttackSpec spec;
    spec.damage = 120.0;
    spec.compromised_frac = 0.1;
    const auto attack = p.attack_scores(spec);
    // Attacks must still separate from benign under non-grid layouts.
    EXPECT_GT(quantile(attack, 0.5),
              quantile(scores.at(MetricKind::kDiff), 0.5));
  }
}

}  // namespace
}  // namespace lad
