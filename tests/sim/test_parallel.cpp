#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lad {
namespace {

TEST(ParallelForItems, RunsEachItemOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for_items(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForItems, EmptyIsNoop) {
  bool called = false;
  parallel_for_items(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForItems, SerialModeMatchesParallelResults) {
  // Items write into independent slots; the final state must be identical
  // regardless of thread count (this is the determinism contract).
  auto run = [](int threads) {
    std::vector<double> out(200);
    parallel_for_items(
        out.size(),
        [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(2), run(0));
}

TEST(ParallelForItems, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_items(64,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ParallelForItems, DefaultParallelismPositive) {
  EXPECT_GE(default_parallelism(), 1);
}

}  // namespace
}  // namespace lad
