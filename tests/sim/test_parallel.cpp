#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.h"

namespace lad {
namespace {

TEST(ParallelForItems, RunsEachItemOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for_items(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForItems, EmptyIsNoop) {
  bool called = false;
  parallel_for_items(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForItems, SerialModeMatchesParallelResults) {
  // Items write into independent slots; the final state must be identical
  // regardless of thread count (this is the determinism contract).
  auto run = [](int threads) {
    std::vector<double> out(200);
    parallel_for_items(
        out.size(),
        [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(2), run(0));
}

TEST(ParallelForItems, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_items(64,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ParallelForItems, DefaultParallelismPositive) {
  EXPECT_GE(default_parallelism(), 1);
}

TEST(ParallelForItems, NegativeMaxThreadsIsANamedError) {
  // A negative count used to silently mean "use all cores"; it must be
  // rejected by name so thread-math bugs in callers surface immediately.
  bool called = false;
  EXPECT_THROW(
      parallel_for_items(8, [&](std::size_t) { called = true; }, -1),
      AssertionError);
  EXPECT_THROW(
      parallel_for_items(8, [&](std::size_t) { called = true; }, -128),
      AssertionError);
  EXPECT_FALSE(called);
}

class LadThreadsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // lad-lint: allow(raw-getenv) -- save/restore must see the raw value
    const char* old = std::getenv("LAD_THREADS");
    if (old != nullptr) saved_ = old;
  }
  void TearDown() override {
    if (saved_.empty()) {
      unsetenv("LAD_THREADS");
    } else {
      setenv("LAD_THREADS", saved_.c_str(), 1);
    }
  }
  std::string saved_;
};

TEST_F(LadThreadsEnvTest, PinOverridesDefaultParallelism) {
  setenv("LAD_THREADS", "3", 1);
  EXPECT_EQ(default_parallelism(), 3);
  setenv("LAD_THREADS", "1", 1);
  EXPECT_EQ(default_parallelism(), 1);
}

TEST_F(LadThreadsEnvTest, EmptyPinFallsBackToHardware) {
  setenv("LAD_THREADS", "", 1);
  EXPECT_GE(default_parallelism(), 1);
}

TEST_F(LadThreadsEnvTest, GarbagePinIsANamedErrorNotAllCores) {
  for (const char* bad : {"0", "-2", "four", "2x", "1e9", "99999999"}) {
    setenv("LAD_THREADS", bad, 1);
    EXPECT_THROW(default_parallelism(), AssertionError) << bad;
  }
}

TEST_F(LadThreadsEnvTest, PinnedRunMatchesUnpinnedResults) {
  auto run = [] {
    std::vector<double> out(64);
    parallel_for_items(out.size(),
                       [&](std::size_t i) { out[i] = static_cast<double>(i); });
    return out;
  };
  setenv("LAD_THREADS", "2", 1);
  const std::vector<double> pinned = run();
  unsetenv("LAD_THREADS");
  EXPECT_EQ(pinned, run());
}

}  // namespace
}  // namespace lad
