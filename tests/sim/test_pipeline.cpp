#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "util/assert.h"
#include <cmath>
#include <sstream>

#include "attack/adversary.h"
#include "core/metric.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "deploy/observe_kernel.h"
#include "loc/truth_noise.h"
#include "stats/quantile.h"

namespace lad {
namespace {

PipelineConfig small_pipeline_config() {
  PipelineConfig cfg;
  cfg.deploy.field_side = 600.0;
  cfg.deploy.grid_nx = 6;
  cfg.deploy.grid_ny = 6;
  cfg.deploy.nodes_per_group = 40;
  cfg.deploy.sigma = 30.0;
  cfg.deploy.radio_range = 50.0;
  cfg.networks = 4;
  cfg.victims_per_network = 50;
  cfg.seed = 2024;
  return cfg;
}

LocalizerFactory truth_noise_factory(double sigma_err) {
  return [sigma_err](std::uint64_t seed) {
    return std::make_unique<TruthNoiseLocalizer>(sigma_err, seed);
  };
}

TEST(Pipeline, GeneratesRequestedNetworks) {
  const Pipeline p(small_pipeline_config());
  EXPECT_EQ(p.networks().size(), 4u);
  for (const auto& net : p.networks()) {
    EXPECT_EQ(net->num_nodes(), 36u * 40u);
  }
}

TEST(Pipeline, NetworksAreDeterministicInSeed) {
  const Pipeline a(small_pipeline_config());
  const Pipeline b(small_pipeline_config());
  for (std::size_t n = 0; n < a.networks().size(); ++n) {
    for (std::size_t i = 0; i < a.networks()[n]->num_nodes(); i += 97) {
      EXPECT_EQ(a.networks()[n]->position(i), b.networks()[n]->position(i));
    }
  }
}

TEST(Pipeline, DifferentSeedsGiveDifferentNetworks) {
  PipelineConfig cfg = small_pipeline_config();
  const Pipeline a(cfg);
  cfg.seed = 999;
  const Pipeline b(cfg);
  EXPECT_NE(a.networks()[0]->position(0), b.networks()[0]->position(0));
}

TEST(Pipeline, BenignScoresDeterministicAcrossThreadCounts) {
  PipelineConfig cfg = small_pipeline_config();
  cfg.threads = 1;
  Pipeline serial(cfg);
  cfg.threads = 4;
  Pipeline parallel(cfg);
  const auto factory = truth_noise_factory(5.0);
  const auto s1 = serial.benign_scores(factory, {MetricKind::kDiff});
  const auto s4 = parallel.benign_scores(factory, {MetricKind::kDiff});
  EXPECT_EQ(s1.at(MetricKind::kDiff), s4.at(MetricKind::kDiff));
}

TEST(Pipeline, BenignScoresSaneForAllMetrics) {
  Pipeline p(small_pipeline_config());
  const auto scores = p.benign_scores(
      truth_noise_factory(5.0),
      {MetricKind::kDiff, MetricKind::kAddAll, MetricKind::kProb});
  ASSERT_EQ(scores.size(), 3u);
  for (const auto& [kind, vec] : scores) {
    ASSERT_EQ(vec.size(), 200u) << metric_name(kind);
    for (double s : vec) {
      EXPECT_TRUE(std::isfinite(s)) << metric_name(kind);
      EXPECT_GE(s, 0.0) << metric_name(kind);
    }
  }
}

TEST(Pipeline, AttackScoresShiftUpWithDamage) {
  Pipeline p(small_pipeline_config());
  AttackSpec weak;
  weak.damage = 30.0;
  weak.compromised_frac = 0.1;
  AttackSpec strong = weak;
  strong.damage = 250.0;
  const auto weak_scores = p.attack_scores(weak);
  const auto strong_scores = p.attack_scores(strong);
  EXPECT_GT(quantile(strong_scores, 0.5), quantile(weak_scores, 0.5));
}

TEST(Pipeline, MoreCompromiseLowersAttackScores) {
  Pipeline p(small_pipeline_config());
  AttackSpec clean;
  clean.damage = 120.0;
  clean.compromised_frac = 0.0;
  AttackSpec dirty = clean;
  dirty.compromised_frac = 0.4;
  EXPECT_GT(quantile(p.attack_scores(clean), 0.5),
            quantile(p.attack_scores(dirty), 0.5));
}

TEST(Pipeline, DecOnlyAttackScoresAtLeastDecBounded) {
  // Dec-Bounded is the stronger adversary: its minimized scores are <=
  // Dec-Only's, pointwise (same victims via shared streams).
  Pipeline p(small_pipeline_config());
  AttackSpec bounded;
  bounded.damage = 100.0;
  bounded.compromised_frac = 0.1;
  bounded.attack_class = AttackClass::kDecBounded;
  AttackSpec only = bounded;
  only.attack_class = AttackClass::kDecOnly;
  const auto sb = p.attack_scores(bounded);
  const auto so = p.attack_scores(only);
  ASSERT_EQ(sb.size(), so.size());
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_LE(sb[i], so[i] + 1e-9) << "victim " << i;
  }
}

TEST(Pipeline, MeanLocalizationErrorTracksConfiguredNoise) {
  Pipeline p(small_pipeline_config());
  const double small_err = p.mean_localization_error(truth_noise_factory(2.0));
  const double large_err = p.mean_localization_error(truth_noise_factory(30.0));
  EXPECT_LT(small_err, large_err);
  EXPECT_NEAR(small_err, 2.0 * std::sqrt(M_PI / 2), 1.0);
}

TEST(Pipeline, MleFactoryProducesWorkingLocalizer) {
  Pipeline p(small_pipeline_config());
  const auto factory = beaconless_mle_factory(p.model(), p.gz());
  const double err = p.mean_localization_error(factory);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 60.0);
}

TEST(Pipeline, RejectsBadConfigs) {
  PipelineConfig cfg = small_pipeline_config();
  cfg.networks = 0;
  EXPECT_THROW(Pipeline{cfg}, AssertionError);
  cfg = small_pipeline_config();
  cfg.victims_per_network = 0;
  EXPECT_THROW(Pipeline{cfg}, AssertionError);
  Pipeline ok(small_pipeline_config());
  AttackSpec bad;
  bad.compromised_frac = 1.5;
  EXPECT_THROW(ok.attack_scores(bad), AssertionError);
  bad.compromised_frac = 0.1;
  bad.damage = -5.0;
  EXPECT_THROW(ok.attack_scores(bad), AssertionError);
}

TEST(Pipeline, VictimGroupsAlignWithScoresAndNeverPerturbThem) {
  Pipeline p(small_pipeline_config());
  const LocalizerFactory factory = truth_noise_factory(5.0);
  const auto plain = p.benign_scores(factory, {MetricKind::kDiff});
  std::vector<int> groups;
  const auto with_groups =
      p.benign_scores(factory, {MetricKind::kDiff}, &groups);
  EXPECT_EQ(plain.at(MetricKind::kDiff), with_groups.at(MetricKind::kDiff));
  ASSERT_EQ(groups.size(), with_groups.at(MetricKind::kDiff).size());
  for (int g : groups) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, p.model().num_groups());
  }

  AttackSpec attack;
  std::vector<int> attack_groups;
  const auto scores_plain = p.attack_scores(attack);
  const auto scores_grouped = p.attack_scores(attack, &attack_groups);
  EXPECT_EQ(scores_plain, scores_grouped);
  ASSERT_EQ(attack_groups.size(), scores_grouped.size());
}

TEST(Pipeline, TrainBundlePerGroupEmitsBoundaryOverrideRows) {
  PipelineConfig cfg = small_pipeline_config();
  cfg.victims_per_network = 150;  // enough per-group benign samples
  Pipeline p(cfg);
  const LocalizerFactory factory = truth_noise_factory(5.0);
  GroupTrainingSpec grouped;
  grouped.per_group = true;
  grouped.min_samples = 5;
  const DetectorBundle bundle =
      p.train_bundle(factory, {MetricKind::kDiff}, {}, 0.95, grouped);
  const std::vector<int> boundary = boundary_groups(p.model());
  ASSERT_FALSE(boundary.empty());
  const DetectorSpec& spec = bundle.primary();
  // Exactly one override row per boundary group, in ascending order, each
  // carrying trained-or-fallback provenance; interior groups get none.
  ASSERT_EQ(spec.group_overrides.size(), boundary.size());
  std::size_t trained = 0;
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const GroupThreshold& g = spec.group_overrides[i];
    EXPECT_EQ(g.group, boundary[i]);
    EXPECT_NE(g.source, GroupOverrideSource::kManual);
    if (g.source == GroupOverrideSource::kTrained) {
      ++trained;
      EXPECT_GE(g.samples, 5u);
      EXPECT_NE(g.threshold, spec.threshold);
    } else {
      EXPECT_EQ(g.threshold, spec.threshold);
      EXPECT_LT(g.samples, 5u);
    }
  }
  EXPECT_GT(trained, 0u);
  // The run is recorded in the section's extension tail.
  ASSERT_EQ(spec.extensions.size(), 1u);
  EXPECT_EQ(spec.extensions[0].first, "group-training");
  EXPECT_NE(spec.extensions[0].second.find("min_samples=5"),
            std::string::npos);
}

TEST(Pipeline, TrainBundlePerGroupKeepsGlobalSectionsIdentical) {
  PipelineConfig cfg = small_pipeline_config();
  cfg.victims_per_network = 100;
  const LocalizerFactory factory = truth_noise_factory(5.0);
  Pipeline a(cfg);
  const DetectorBundle plain =
      a.train_bundle(factory, {MetricKind::kDiff, MetricKind::kProb}, {0.9},
                     0.95);
  Pipeline b(cfg);
  GroupTrainingSpec grouped;
  grouped.per_group = true;
  grouped.min_samples = 8;
  const DetectorBundle with_groups =
      b.train_bundle(factory, {MetricKind::kDiff, MetricKind::kProb}, {0.9},
                     0.95, grouped);
  // Per-group mode adds rows, never changes the pooled training.
  ASSERT_EQ(plain.detectors.size(), with_groups.detectors.size());
  for (std::size_t i = 0; i < plain.detectors.size(); ++i) {
    EXPECT_EQ(plain.detectors[i].threshold, with_groups.detectors[i].threshold);
    EXPECT_EQ(plain.detectors[i].taus, with_groups.detectors[i].taus);
    EXPECT_TRUE(plain.detectors[i].group_overrides.empty());
    EXPECT_FALSE(with_groups.detectors[i].group_overrides.empty());
  }
  // Deterministic: training again reproduces the same bundle.
  Pipeline c(cfg);
  EXPECT_EQ(with_groups,
            c.train_bundle(factory, {MetricKind::kDiff, MetricKind::kProb},
                           {0.9}, 0.95, grouped));
}

TEST(Pipeline, PassesBitIdenticalAcrossThreadsAndKernels) {
  // The determinism contract of the per-victim fan-out: every scoring
  // pass and the trained bundle are bit-identical at any thread count,
  // under every compiled-in observe kernel this CPU can run.
  struct KernelGuard {
    ~KernelGuard() { force_observe_kernel(nullptr); }
  } guard;

  const std::vector<MetricKind> metrics = {MetricKind::kDiff,
                                           MetricKind::kProb};
  AttackSpec attack;
  attack.damage = 120.0;
  attack.compromised_frac = 0.2;

  ASSERT_TRUE(force_observe_kernel("scalar"));
  PipelineConfig cfg = small_pipeline_config();
  cfg.threads = 1;
  Pipeline baseline(cfg);
  const LocalizerFactory base_factory =
      beaconless_mle_factory(baseline.model(), baseline.gz());
  const auto base_benign = baseline.benign_scores(base_factory, metrics);
  const auto base_attack = baseline.attack_scores(attack);
  const auto base_cross = baseline.attack_scores_cross(attack, metrics);
  std::ostringstream base_bundle;
  save_bundle(base_bundle, baseline.train_bundle(base_factory, metrics,
                                                 {0.95, 0.99}, 0.99));

  for (const ObserveKernelInfo& kernel : observe_kernels()) {
    if (!kernel.runtime_ok) continue;
    for (int threads : {1, 2, 7}) {
      SCOPED_TRACE(std::string(kernel.name) + " threads=" +
                   std::to_string(threads));
      ASSERT_TRUE(force_observe_kernel(kernel.name));
      cfg.threads = threads;
      Pipeline p(cfg);
      const LocalizerFactory factory =
          beaconless_mle_factory(p.model(), p.gz());
      EXPECT_TRUE(p.benign_scores(factory, metrics) == base_benign);
      EXPECT_TRUE(p.attack_scores(attack) == base_attack);
      EXPECT_TRUE(p.attack_scores_cross(attack, metrics) == base_cross);
      std::ostringstream bundle;
      save_bundle(bundle,
                  p.train_bundle(factory, metrics, {0.95, 0.99}, 0.99));
      EXPECT_EQ(bundle.str(), base_bundle.str());
    }
  }
}

TEST(Pipeline, StatefulLocalizerFallsBackDeterministically) {
  // truth-noise draws from internal call-order-dependent state, so the
  // benign pass must take the per-network fallback instead of the flat
  // per-victim fan-out - and still match the serial run exactly.
  PipelineConfig cfg = small_pipeline_config();
  cfg.threads = 1;
  Pipeline serial(cfg);
  cfg.threads = 7;
  Pipeline wide(cfg);
  const auto factory = truth_noise_factory(5.0);
  EXPECT_TRUE(serial.benign_scores(factory, {MetricKind::kDiff}) ==
              wide.benign_scores(factory, {MetricKind::kDiff}));
}

TEST(Pipeline, TrainBundleRejectsBadGroupSpec) {
  Pipeline p(small_pipeline_config());
  const LocalizerFactory factory = truth_noise_factory(5.0);
  GroupTrainingSpec grouped;
  grouped.per_group = true;
  grouped.min_samples = 0;
  EXPECT_THROW(
      p.train_bundle(factory, {MetricKind::kDiff}, {}, 0.95, grouped),
      AssertionError);
}

}  // namespace
}  // namespace lad
