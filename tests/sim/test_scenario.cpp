#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "attack/adversary.h"
#include "core/metric.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "util/assert.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/kvconfig.h"
#include "util/string_util.h"

namespace lad {
namespace {

// A dr-sweep small enough for unit tests (2 networks x 30 victims on a
// 6x6 grid of 25-node groups).
constexpr const char* kTinySpec = R"([scenario]
name = tiny
experiment = dr-sweep

[pipeline]
seed = 7
m = 25
networks = 2
victims = 30
sigma = 30
r = 50
field = 600
grid_nx = 6
grid_ny = 6

[sweep]
damages = 60, 120
compromised = 0.10, 0.20

[detector]
fp_budget = 0.01
)";

ScenarioSpec tiny_spec() {
  return ScenarioSpec::from_config(KvConfig::parse_string(kTinySpec));
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// --- spec parsing ------------------------------------------------------

TEST(ScenarioSpec, ParsesTheTinySpec) {
  const ScenarioSpec spec = tiny_spec();
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.title, "tiny");  // defaults to the name
  EXPECT_EQ(spec.kind, ExperimentKind::kDrSweep);
  EXPECT_EQ(spec.pipeline.seed, 7u);
  EXPECT_EQ(spec.pipeline.deploy.nodes_per_group, 25);
  EXPECT_EQ(spec.damages, (std::vector<double>{60, 120}));
  EXPECT_EQ(spec.compromised, (std::vector<double>{0.10, 0.20}));
  EXPECT_EQ(spec.metrics, (std::vector<MetricKind>{MetricKind::kDiff}));
  EXPECT_EQ(spec.localizers, (std::vector<std::string>{"beaconless-mle"}));
}

TEST(ScenarioSpec, NameAndExperimentAreRequired) {
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nexperiment = roc\n")),
               AssertionError);
  EXPECT_THROW(ScenarioSpec::from_config(
                   KvConfig::parse_string("[scenario]\nname = x\n")),
               AssertionError);
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string("")),
               AssertionError);
}

TEST(ScenarioSpec, UnknownExperimentKindIsRejected) {
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = x\nexperiment = frobnicate\n")),
               AssertionError);
}

TEST(ScenarioSpec, UnknownSectionIsRejected) {
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = x\nexperiment = roc\n"
                   "[sweeep]\ndamages = 10\n")),
               AssertionError);
}

TEST(ScenarioSpec, UnknownKeyIsRejectedWithItsName) {
  try {
    ScenarioSpec::from_config(KvConfig::parse_string(
        "[scenario]\nname = x\nexperiment = roc\n"
        "[sweep]\ndammages = 10\n"));
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("sweep.dammages"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpec, DuplicateSectionIsRejected) {
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = x\nexperiment = roc\n"
                   "[sweep]\ndamages = 10\n[sweep]\ndamages = 20\n")),
               AssertionError);
}

TEST(ScenarioSpec, BadEnumValuesAreRejected) {
  const auto parse = [](const std::string& sweep_line) {
    return ScenarioSpec::from_config(KvConfig::parse_string(
        "[scenario]\nname = x\nexperiment = roc\n[sweep]\n" + sweep_line +
        "\n"));
  };
  EXPECT_THROW(parse("metrics = banana"), AssertionError);
  EXPECT_THROW(parse("attacks = nuke"), AssertionError);
  EXPECT_THROW(parse("shapes = pentagon"), AssertionError);
  EXPECT_THROW(parse("localizers = gps"), AssertionError);
  EXPECT_THROW(parse("mismatch_coupling = sideways"), AssertionError);
}

TEST(ScenarioSpec, EmptySweepListsAreRejected) {
  const auto parse = [](const std::string& body) {
    return ScenarioSpec::from_config(KvConfig::parse_string(
        "[scenario]\nname = x\nexperiment = dr-sweep\n" + body));
  };
  EXPECT_THROW(parse("[sweep]\ndamages =\n"), AssertionError);
  EXPECT_THROW(parse("[sweep]\nmetrics =\n"), AssertionError);
  // density-sweep without a density list cannot expand.
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = x\nexperiment = density-sweep\n")),
               AssertionError);
}

TEST(ScenarioSpec, RangeSyntaxRoundTripsThroughSweeps) {
  const ScenarioSpec spec = ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = x\nexperiment = dr-sweep\n"
      "[sweep]\ndamages = 40:160:40\n"));
  EXPECT_EQ(spec.damages, (std::vector<double>{40, 80, 120, 160}));

  const ScenarioSpec again = ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = x\nexperiment = dr-sweep\n"
      "[sweep]\ndamages = " + render_list(spec.damages) + "\n"));
  EXPECT_EQ(again.damages, spec.damages);
}

TEST(ScenarioSpec, BadDetectorSettingsAreRejected) {
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = x\nexperiment = roc\n"
                   "[detector]\nfp_budget = 1.5\n")),
               AssertionError);
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = x\nexperiment = roc\n"
                   "[detector]\ntau = 0\n")),
               AssertionError);
}

TEST(ScenarioSpec, UnsweptMultiValuedAxesAreRejected) {
  const auto parse = [](const std::string& kind, const std::string& body) {
    return ScenarioSpec::from_config(KvConfig::parse_string(
        "[scenario]\nname = x\nexperiment = " + kind + "\n" + body));
  };
  // roc expands metrics/attacks/damages/compromised, nothing else.
  EXPECT_THROW(parse("roc", "[sweep]\nlocalizers = beaconless-mle, dv-hop\n"),
               AssertionError);
  EXPECT_THROW(parse("roc", "[sweep]\nshapes = grid, hex\n"), AssertionError);
  EXPECT_THROW(parse("roc", "[sweep]\ndensities = 100, 300\n"),
               AssertionError);
  // metric-fusion commits to one damage / compromise level.
  EXPECT_THROW(parse("metric-fusion", "[sweep]\ndamages = 80, 160\n"),
               AssertionError);
  EXPECT_THROW(parse("echo-comparison", "[sweep]\ncompromised = 0.1, 0.2\n"),
               AssertionError);
  // dr-sweep legitimately expands all of these.
  EXPECT_NO_THROW(parse("dr-sweep",
                        "[sweep]\nshapes = grid, hex\n"
                        "localizers = beaconless-mle, dv-hop\n"
                        "damages = 80, 160\ncompromised = 0.1, 0.2\n"));
}

TEST(ScenarioSpec, ForeignKindSectionsAreRejected) {
  try {
    ScenarioSpec::from_config(KvConfig::parse_string(
        "[scenario]\nname = x\nexperiment = dr-sweep\n[gz]\nomegas = 8\n"));
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("only valid for experiment = "
                                         "gz-accuracy"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpec, QuickOverridesApply) {
  ScenarioSpec spec = ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = x\nexperiment = density-sweep\n"
      "[quick]\nnetworks = 2\nvictims = 20\ndensities = 50\n"
      "[sweep]\ndensities = 100, 300\n"));
  ScenarioOverrides o;
  o.quick = true;
  spec = apply_overrides(spec, o);
  EXPECT_EQ(spec.pipeline.networks, 2);
  EXPECT_EQ(spec.pipeline.victims_per_network, 20);
  EXPECT_EQ(spec.densities, (std::vector<int>{50}));
}

TEST(ScenarioSpec, QuickNeverInflatesASmallSpec) {
  // tiny has no [quick] section and is already below the 3x60 fallback in
  // networks; quick mode must not grow the run.
  ScenarioOverrides o;
  o.quick = true;
  const ScenarioSpec spec = apply_overrides(tiny_spec(), o);
  EXPECT_EQ(spec.pipeline.networks, 2);            // unchanged (< 3)
  EXPECT_EQ(spec.pipeline.victims_per_network, 30);  // unchanged (< 60)
}

TEST(ScenarioSpec, ExplicitOverridesBeatQuick) {
  ScenarioOverrides o;
  o.quick = true;
  o.networks = 5;
  o.seed = 99;
  const ScenarioSpec spec = apply_overrides(tiny_spec(), o);
  EXPECT_EQ(spec.pipeline.networks, 5);
  EXPECT_EQ(spec.pipeline.seed, 99u);
}

// --- shard syntax ------------------------------------------------------

TEST(ParseShard, AcceptsValidRanges) {
  EXPECT_EQ(parse_shard("0/1").index, 0);
  EXPECT_EQ(parse_shard("0/1").count, 1);
  EXPECT_EQ(parse_shard("3/8").index, 3);
  EXPECT_EQ(parse_shard("3/8").count, 8);
}

TEST(ParseShard, RejectsMalformedSyntax) {
  EXPECT_THROW(parse_shard("0/0"), AssertionError);
  EXPECT_THROW(parse_shard("banana"), AssertionError);
  EXPECT_THROW(parse_shard("1"), AssertionError);
  EXPECT_THROW(parse_shard("1/2/3"), AssertionError);
  EXPECT_THROW(parse_shard("2/2"), AssertionError);
  EXPECT_THROW(parse_shard("-1/2"), AssertionError);
  EXPECT_THROW(parse_shard("a/b"), AssertionError);
  EXPECT_THROW(parse_shard(""), AssertionError);
}

// --- runner ------------------------------------------------------------

TEST(ScenarioRunner, NumItemsMatchesTheCartesianProduct) {
  EXPECT_EQ(ScenarioRunner(tiny_spec()).num_items(), 4);  // 2 D x 2 x

  const ScenarioSpec roc = ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = r\nexperiment = roc\n"
      "[sweep]\nmetrics = diff, prob\nattacks = dec-bounded, dec-only\n"
      "damages = 40, 80, 120\n"));
  EXPECT_EQ(ScenarioRunner(roc).num_items(), 12);  // 2 metrics x 2 x 3 D
}

TEST(ScenarioRunner, DrSweepMatchesTheDirectEntryPoint) {
  const ScenarioSpec spec = tiny_spec();
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.tables.size(), 1u);
  const Table& table = result.tables[0].table;
  ASSERT_EQ(table.num_rows(), 4u);
  EXPECT_EQ(table.columns(),
            (std::vector<std::string>{"x", "D", "DR", "trained_FP",
                                      "threshold"}));

  Pipeline pipeline(spec.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const auto points =
      run_dr_sweep(pipeline, factory, MetricKind::kDiff,
                   AttackClass::kDecBounded, spec.damages, spec.compromised,
                   spec.fp_budget);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(table.cell(i, 2), format_double(points[i].detection_rate, 4));
    EXPECT_EQ(table.cell(i, 4), format_double(points[i].threshold, 2));
  }
}

TEST(ScenarioRunner, ShardsPartitionTheItems) {
  ScenarioRunner runner(tiny_spec());
  const ScenarioResult full = runner.run();

  std::vector<long long> seen;
  for (int i = 0; i < 3; ++i) {
    ScenarioRunner shard_runner(tiny_spec());
    const ScenarioResult part = shard_runner.run(ShardRange{i, 3});
    for (long long item : part.tables[0].row_items) seen.push_back(item);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, full.tables[0].row_items);  // full run is 0,1,2,3
}

TEST(ScenarioRunner, MergedShardCsvsAreByteIdenticalToTheFullRun) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_shard_test";
  fs::remove_all(base);

  {
    ScenarioRunner runner(tiny_spec());
    write_result_csvs(runner.run(), (base / "full").string());
  }
  std::vector<std::string> shard_dirs;
  for (int i = 0; i < 2; ++i) {
    ScenarioRunner runner(tiny_spec());
    const std::string dir = (base / ("shard" + std::to_string(i))).string();
    write_result_csvs(runner.run(ShardRange{i, 2}), dir);
    shard_dirs.push_back(dir);
  }
  merge_result_csvs(shard_dirs, (base / "merged").string());

  const std::string full = read_file(base / "full" / "tiny.dr.csv");
  const std::string merged = read_file(base / "merged" / "tiny.dr.csv");
  EXPECT_FALSE(full.empty());
  EXPECT_EQ(full, merged);
  fs::remove_all(base);
}

TEST(ScenarioSpec, JobsParsesAppliesAndRejectsBadValues) {
  ScenarioSpec spec = tiny_spec();
  EXPECT_EQ(spec.jobs, 1);  // default: sequential

  const ScenarioSpec with_run = ScenarioSpec::from_config(
      KvConfig::parse_string(std::string(kTinySpec) + "\n[run]\njobs = 3\n"));
  EXPECT_EQ(with_run.jobs, 3);

  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   std::string(kTinySpec) + "\n[run]\njobs = 0\n")),
               AssertionError);

  ScenarioOverrides o;
  o.jobs = 4;
  EXPECT_EQ(apply_overrides(tiny_spec(), o).jobs, 4);
}

TEST(ScenarioOverrides, JobsFlagRejectsZeroAndNegativeByName) {
  auto flags_for = [](const char* jobs) {
    std::vector<const char*> argv = {"prog", "--jobs", jobs};
    return Flags::parse(static_cast<int>(argv.size()), argv.data());
  };
  EXPECT_EQ(overrides_from_flags(flags_for("4")).jobs, 4);
  for (const char* bad : {"0", "-2"}) {
    const Flags flags = flags_for(bad);
    try {
      overrides_from_flags(flags);
      FAIL() << "--jobs " << bad << " accepted";
    } catch (const AssertionError& e) {
      EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
    }
  }
}

TEST(ScenarioRunner, ConcurrentJobsMatchSequentialByteForByte) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_jobs_test";
  fs::remove_all(base);

  ScenarioSpec spec = tiny_spec();
  spec.jobs = 1;
  {
    ScenarioRunner runner(spec);
    write_result_csvs(runner.run(), (base / "j1").string());
  }
  spec.jobs = 4;
  {
    ScenarioRunner runner(spec);
    write_result_csvs(runner.run(), (base / "j4").string());
  }
  const std::string sequential = read_file(base / "j1" / "tiny.dr.csv");
  const std::string concurrent = read_file(base / "j4" / "tiny.dr.csv");
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, concurrent);
  fs::remove_all(base);
}

TEST(ScenarioRunner, MergeRejectsOverlappingShards) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_overlap_test";
  fs::remove_all(base);

  ScenarioRunner runner(tiny_spec());
  const std::string dir = (base / "shard0").string();
  write_result_csvs(runner.run(ShardRange{0, 2}), dir);
  // The same shard dir twice duplicates every item tag.
  EXPECT_THROW(merge_result_csvs({dir, dir}, (base / "merged").string()),
               AssertionError);
  fs::remove_all(base);
}

TEST(ScenarioRunner, MergeRejectsIncompleteShardSetsUnlessPartial) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_partial_test";
  fs::remove_all(base);

  // Only shard 1 of 2: items 1 and 3 exist, 0 and 2 are missing.
  ScenarioRunner runner(tiny_spec());
  const std::string dir = (base / "shard1").string();
  write_result_csvs(runner.run(ShardRange{1, 2}), dir);
  EXPECT_THROW(merge_result_csvs({dir}, (base / "merged").string()),
               AssertionError);
  EXPECT_NO_THROW(merge_result_csvs({dir}, (base / "merged").string(),
                                    /*require_complete=*/false));
  fs::remove_all(base);
}

// --- per-group threshold axis ------------------------------------------

TEST(ScenarioSpec, GroupThresholdsAxisParsesAndDefaults) {
  EXPECT_EQ(tiny_spec().group_threshold_modes,
            std::vector<GroupThresholdMode>{GroupThresholdMode::kGlobal});
  EXPECT_EQ(tiny_spec().group_min_samples, 100);

  ScenarioSpec spec = ScenarioSpec::from_config(KvConfig::parse_string(
      std::string(kTinySpec).replace(
          std::string(kTinySpec).find("[sweep]"), 7,
          "[sweep]\ngroup_thresholds = global, per_group")));
  EXPECT_EQ(spec.group_threshold_modes,
            (std::vector<GroupThresholdMode>{GroupThresholdMode::kGlobal,
                                             GroupThresholdMode::kPerGroup}));

  EXPECT_THROW(
      ScenarioSpec::from_config(KvConfig::parse_string(
          std::string(kTinySpec).replace(
              std::string(kTinySpec).find("[sweep]"), 7,
              "[sweep]\ngroup_thresholds = per_node"))),
      AssertionError);
}

TEST(ScenarioSpec, GroupThresholdKeysRejectedOutsideDrSweep) {
  // The axis (and its floor) are dr-sweep-only: anywhere else they would
  // be dead configuration.
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = r\nexperiment = roc\n"
                   "[sweep]\ngroup_thresholds = global\n")),
               AssertionError);
  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = r\nexperiment = roc\n"
                   "[detector]\ngroup_min_samples = 10\n")),
               AssertionError);
  EXPECT_NO_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = d\nexperiment = dr-sweep\n"
      "[sweep]\ngroup_thresholds = per_group\n"
      "[detector]\ngroup_min_samples = 10\n")));
}

constexpr const char* kGroupedSpec = R"([scenario]
name = grouped
experiment = dr-sweep

[pipeline]
seed = 7
m = 25
networks = 2
victims = 200
sigma = 30
r = 50
field = 600
grid_nx = 6
grid_ny = 6

[sweep]
group_thresholds = global, per_group
damages = 60, 120
compromised = 0.10

[detector]
fp_budget = 0.05
group_min_samples = 5
)";

TEST(ScenarioRunner, PerGroupModeChangesBoundaryButNotInteriorColumns) {
  const ScenarioSpec spec =
      ScenarioSpec::from_config(KvConfig::parse_string(kGroupedSpec));
  ScenarioRunner runner(spec);
  EXPECT_EQ(runner.num_items(), 4);  // 2 modes x 2 damages
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.tables.size(), 1u);
  const Table& t = result.tables[0].table;
  EXPECT_EQ(t.columns(),
            (std::vector<std::string>{"group_mode", "x", "D", "DR",
                                      "trained_FP", "threshold",
                                      "DR_interior", "DR_boundary",
                                      "FP_interior", "FP_boundary"}));
  ASSERT_EQ(t.num_rows(), 4u);
  const auto col = [&](const std::string& name) {
    const auto& cols = t.columns();
    return static_cast<std::size_t>(
        std::find(cols.begin(), cols.end(), name) - cols.begin());
  };
  bool boundary_changed = false;
  for (std::size_t d = 0; d < 2; ++d) {
    const std::size_t global_row = d, per_group_row = 2 + d;
    EXPECT_EQ(t.cell(global_row, col("group_mode")), "global");
    EXPECT_EQ(t.cell(per_group_row, col("group_mode")), "per_group");
    EXPECT_EQ(t.cell(global_row, col("D")), t.cell(per_group_row, col("D")));
    // Interior groups always keep the pooled threshold: byte-identical.
    for (const char* c : {"DR_interior", "FP_interior", "threshold"}) {
      EXPECT_EQ(t.cell(global_row, col(c)), t.cell(per_group_row, col(c)))
          << c << " differs at D row " << d;
    }
    for (const char* c : {"DR_boundary", "FP_boundary"}) {
      if (t.cell(global_row, col(c)) != t.cell(per_group_row, col(c))) {
        boundary_changed = true;
      }
    }
  }
  EXPECT_TRUE(boundary_changed)
      << "per_group mode should move at least one boundary column";
}

TEST(ScenarioRunner, GlobalOnlySpecKeepsTheHistoricalColumns) {
  // No per_group in the axis -> no mode column, no split columns, and item
  // ids identical to a spec that never mentions the axis.
  ScenarioRunner runner(tiny_spec());
  const ScenarioResult result = runner.run();
  EXPECT_EQ(result.tables[0].table.columns(),
            (std::vector<std::string>{"x", "D", "DR", "trained_FP",
                                      "threshold"}));
}

// --- resume completeness ------------------------------------------------

TEST(ScenarioRunner, OutputCompleteRequiresRowsNotJustFiles) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_resume_test";
  fs::remove_all(base);
  const std::string dir = (base / "out").string();

  ScenarioRunner runner(tiny_spec());
  write_result_csvs(runner.run(), dir);
  std::string reason;
  EXPECT_TRUE(runner.output_complete(dir, ShardRange{}, &reason)) << reason;

  // A header-only CSV (run killed between header write and first row)
  // must read as incomplete even though the file exists.
  const fs::path csv = fs::path(dir) / "tiny.dr.csv";
  std::string header;
  {
    std::ifstream is(csv);
    ASSERT_TRUE(std::getline(is, header));
  }
  {
    std::ofstream os(csv, std::ios::trunc);
    os << header << "\n";
  }
  EXPECT_FALSE(runner.output_complete(dir, ShardRange{}, &reason));
  EXPECT_NE(reason.find("work item"), std::string::npos) << reason;

  // A missing file is incomplete with a reason naming it.
  fs::remove(csv);
  EXPECT_FALSE(runner.output_complete(dir, ShardRange{}, &reason));
  EXPECT_NE(reason.find("missing"), std::string::npos) << reason;
  fs::remove_all(base);
}

TEST(ScenarioRunner, OutputCompleteIsShardAware) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_resume_shard_test";
  fs::remove_all(base);
  const std::string dir = (base / "s0").string();

  ScenarioRunner runner(tiny_spec());
  write_result_csvs(runner.run(ShardRange{0, 2}), dir);
  std::string reason;
  // Complete for the shard that wrote it...
  EXPECT_TRUE(runner.output_complete(dir, ShardRange{0, 2}, &reason))
      << reason;
  // ...but not for the other shard (its items are absent), nor for a
  // different split (the present items are not owned).
  EXPECT_FALSE(runner.output_complete(dir, ShardRange{1, 2}, &reason));
  EXPECT_NE(reason.find("not own"), std::string::npos) << reason;
  fs::remove_all(base);
}

TEST(ScenarioSpec, BundleKeyOnlyValidForMetricFusion) {
  const ScenarioSpec fusion = ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = f\nexperiment = metric-fusion\n"
      "[detector]\nbundle = some/path.lad\n"));
  EXPECT_EQ(fusion.bundle, "some/path.lad");

  EXPECT_THROW(ScenarioSpec::from_config(KvConfig::parse_string(
                   "[scenario]\nname = d\nexperiment = dr-sweep\n"
                   "[detector]\nbundle = some/path.lad\n")),
               AssertionError);
}

// A tiny metric-fusion spec (same deployment as kTinySpec).
constexpr const char* kTinyFusionSpec = R"([scenario]
name = tinyfusion
experiment = metric-fusion

[pipeline]
seed = 7
m = 25
networks = 2
victims = 30
sigma = 30
r = 50
field = 600
grid_nx = 6
grid_ny = 6

[sweep]
metrics = diff, add-all, prob
damages = 100
compromised = 0.10

[detector]
tau = 0.99
)";

TEST(ScenarioRunner, TableIdsMatchTheEmittedTables) {
  const auto ids_of = [](const ScenarioResult& result) {
    std::vector<std::string> ids;
    for (const ResultTable& t : result.tables) ids.push_back(t.id);
    return ids;
  };
  // One spec per cheap kind; the expensive kinds share the same
  // table-construction pattern (ids built before any item runs).
  const std::vector<std::string> specs = {
      kTinySpec,
      kTinyFusionSpec,
      "[scenario]\nname = p\nexperiment = deployment-pdf\n[pdf]\ngrid = 3\n",
      "[scenario]\nname = g\nexperiment = gz-accuracy\n[gz]\nomegas = 8\n",
      "[scenario]\nname = r\nexperiment = roc\n"
      "[pipeline]\nnetworks = 1\nvictims = 5\nm = 25\nsigma = 30\n"
      "field = 600\ngrid_nx = 6\ngrid_ny = 6\n"
      "[output]\ncurve_points = 0\n",
      "[scenario]\nname = e\nexperiment = time-evolving\n"
      "[pipeline]\nm = 25\nsigma = 30\nfield = 600\ngrid_nx = 6\n"
      "grid_ny = 6\n"
      "[evolve]\ntrials = 4\nrounds = 2\ntrain_samples = 40\n",
      "[scenario]\nname = n\nexperiment = in-network\n"
      "[pipeline]\nm = 25\nsigma = 30\nfield = 600\ngrid_nx = 6\n"
      "grid_ny = 6\n"
      "[coop]\ntrials = 4\ntrain_samples = 40\n",
  };
  for (const std::string& text : specs) {
    const ScenarioSpec spec =
        ScenarioSpec::from_config(KvConfig::parse_string(text));
    SCOPED_TRACE(spec.name);
    ScenarioRunner runner(spec);
    EXPECT_EQ(runner.table_ids(), ids_of(runner.run()));
  }
}

TEST(ScenarioRunner, FusionThroughSavedBundleMatchesInlineTraining) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::path(testing::TempDir()) / "lad_scenario_bundle_test";
  fs::remove_all(base);
  fs::create_directories(base);

  ScenarioSpec spec =
      ScenarioSpec::from_config(KvConfig::parse_string(kTinyFusionSpec));
  const ScenarioResult inline_result = ScenarioRunner(spec).run();

  // Train the same thresholds the inline path trains, ship them through a
  // saved v2 bundle, and point the spec at the artifact.
  Pipeline pipeline(spec.pipeline);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const auto benign = pipeline.benign_scores(factory, spec.metrics);
  std::vector<DetectorSpec> sections;
  for (MetricKind k : spec.metrics) {
    sections.push_back(detector_spec_from_training(
        {train_threshold(k, benign.at(k), spec.tau)}, spec.tau));
  }
  const fs::path bundle_path = base / "fusion.lad";
  {
    std::ofstream os(bundle_path);
    save_bundle(os, make_bundle(pipeline.model(),
                                spec.pipeline.gz_omega, sections));
  }
  spec.bundle = bundle_path.string();
  const ScenarioResult bundle_result = ScenarioRunner(spec).run();

  ASSERT_EQ(bundle_result.tables.size(), inline_result.tables.size());
  for (std::size_t t = 0; t < inline_result.tables.size(); ++t) {
    const Table& a = inline_result.tables[t].table;
    const Table& b = bundle_result.tables[t].table;
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      for (std::size_t c = 0; c < a.num_cols(); ++c) {
        EXPECT_EQ(a.cell(r, c), b.cell(r, c))
            << inline_result.tables[t].id << " row " << r << " col " << c;
      }
    }
  }

  // A bundle missing one of the spec's metrics is rejected, not silently
  // retrained.
  ScenarioSpec partial =
      ScenarioSpec::from_config(KvConfig::parse_string(kTinyFusionSpec));
  const fs::path partial_path = base / "partial.lad";
  {
    std::ofstream os(partial_path);
    save_bundle(os, make_bundle(pipeline.model(), spec.pipeline.gz_omega,
                                {sections.front()}));
  }
  partial.bundle = partial_path.string();
  EXPECT_THROW(ScenarioRunner(partial).run(), AssertionError);

  // A bundle trained on a different deployment (here: another g(z)
  // resolution) is rejected, not silently applied.
  ScenarioSpec mismatched =
      ScenarioSpec::from_config(KvConfig::parse_string(kTinyFusionSpec));
  const fs::path mismatched_path = base / "mismatched.lad";
  {
    std::ofstream os(mismatched_path);
    save_bundle(os, make_bundle(pipeline.model(), 999, sections));
  }
  mismatched.bundle = mismatched_path.string();
  EXPECT_THROW(ScenarioRunner(mismatched).run(), AssertionError);
  fs::remove_all(base);
}

TEST(ScenarioRunner, RocEmitsSummaryAndCurves) {
  const ScenarioSpec spec = ScenarioSpec::from_config(KvConfig::parse_string(
      "[scenario]\nname = r\nexperiment = roc\n"
      "[pipeline]\nseed = 7\nm = 25\nnetworks = 2\nvictims = 30\n"
      "sigma = 30\nfield = 600\ngrid_nx = 6\ngrid_ny = 6\n"
      "[sweep]\ndamages = 120\n"
      "[output]\nfp_grid = 0.01, 0.1\ncurve_points = 10\n"));
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.tables.size(), 2u);
  EXPECT_EQ(result.tables[0].id, "summary");
  EXPECT_EQ(result.tables[0].table.columns(),
            (std::vector<std::string>{"D", "AUC", "DR@1%", "DR@10%"}));
  ASSERT_EQ(result.tables[0].table.num_rows(), 1u);
  EXPECT_EQ(result.tables[1].id, "curves");
  EXPECT_GT(result.tables[1].table.num_rows(), 0u);
}

// Every checked-in spec must parse and expand (guards the .scn files the
// bench wrappers and docs reference).
TEST(ScenarioSpecFiles, AllCheckedInSpecsParse) {
#ifndef LAD_SCENARIO_DIR
  GTEST_SKIP() << "LAD_SCENARIO_DIR not configured";
#else
  namespace fs = std::filesystem;
  int count = 0;
  for (const auto& entry : fs::directory_iterator(LAD_SCENARIO_DIR)) {
    if (entry.path().extension() != ".scn") continue;
    SCOPED_TRACE(entry.path().string());
    const ScenarioSpec spec = ScenarioSpec::load(entry.path().string());
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(ScenarioRunner(spec).num_items(), 0);
    ++count;
  }
  EXPECT_GE(count, 20);  // 19 figure/table specs + quickstart
#endif
}

}  // namespace
}  // namespace lad
