#include "sim/scenario_fuzz.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The same (seed, stream) pair must always emit the same spec text:
// every fuzz failure reproduces from its iteration index alone.
TEST(ScenarioFuzz, GenerationIsDeterministicPerStream) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  const std::string first = generate_valid_scn(a);
  const std::string second = generate_valid_scn(b);
  EXPECT_EQ(first, second);

  Rng c = Rng::stream(42, 8);
  EXPECT_NE(first, generate_valid_scn(c));
}

// Every generated spec must survive the full parse + expand oracle.
TEST(ScenarioFuzz, GeneratedSpecsAreAccepted) {
  for (std::uint64_t item = 0; item < 64; ++item) {
    Rng rng = Rng::stream(9001, item);
    const std::string text = generate_valid_scn(rng);
    EXPECT_NO_THROW(check_scn_accepted(text))
        << "stream " << item << " generated a rejected spec:\n"
        << text;
  }
}

// The checked-in scenario specs pass the same oracle the fuzzer uses,
// so a green fuzz run vouches for the real specs' schema too.
TEST(ScenarioFuzz, OracleAcceptsCheckedInSpecs) {
  const std::filesystem::path dir = LAD_SCENARIO_DIR;
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    EXPECT_NO_THROW(check_scn_accepted(read_file(entry.path())))
        << entry.path();
    ++count;
  }
  EXPECT_GE(count, 20);  // 19 figure/table specs + quickstart
}

// Each mutation class must turn an accepted spec into one rejected by a
// named AssertionError that carries both the class's needle token and
// file:line context -- never a crash or silent acceptance.
TEST(ScenarioFuzz, EveryMutationClassIsRejectedWithItsNeedle) {
  const std::vector<std::string>& classes = scn_mutation_classes();
  ASSERT_GE(classes.size(), 10u);
  for (const std::string& klass : classes) {
    for (std::uint64_t item = 0; item < 8; ++item) {
      Rng rng = Rng::stream(77, item);
      const std::string valid = generate_valid_scn(rng);
      const ScnMutation mut = mutate_scn(valid, rng, klass);
      EXPECT_EQ(mut.klass, klass);
      EXPECT_NE(mut.text, valid) << klass << " produced no edit";
      try {
        check_scn_accepted(mut.text);
        FAIL() << klass << " (stream " << item
               << ") was silently accepted:\n"
               << mut.text;
      } catch (const AssertionError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(mut.needle), std::string::npos)
            << klass << ": '" << what << "' lacks needle '" << mut.needle
            << "'";
        EXPECT_NE(what.find(':'), std::string::npos)
            << klass << ": no file:line context in '" << what << "'";
      }
    }
  }
}

// Greedy shrinking keeps the failure alive while stripping everything
// irrelevant, down to a local fixpoint.
TEST(ScenarioFuzz, ShrinkFindsAMinimalReproducer) {
  Rng rng = Rng::stream(5, 0);
  const std::string valid = generate_valid_scn(rng);
  const ScnMutation mut = mutate_scn(valid, rng, "unknown-key");

  const auto still_fails = [&](const std::string& text) {
    try {
      check_scn_accepted(text);
      return false;
    } catch (const AssertionError& e) {
      return std::string(e.what()).find(mut.needle) != std::string::npos;
    } catch (...) {
      return false;
    }
  };
  ASSERT_TRUE(still_fails(mut.text));

  const std::string minimal = shrink_scn(mut.text, still_fails);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_LT(minimal.size(), mut.text.size());

  // The reproducer must keep the planted key but shed the noise: at the
  // fixpoint no unrelated sweep/detector/output lines survive.
  EXPECT_NE(minimal.find(mut.needle), std::string::npos);
  const long long lines =
      std::count(minimal.begin(), minimal.end(), '\n');
  EXPECT_LE(lines, 12) << "shrink left too much behind:\n" << minimal;
}

// The checked-in minimal reproducers under tests/data/fuzz/ must stay
// rejected -- a regression that starts accepting one is a schema hole.
TEST(ScenarioFuzz, CorpusReproducersStayRejected) {
  const std::filesystem::path dir =
      std::filesystem::path(LAD_TEST_DATA_DIR) / "fuzz";
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    EXPECT_THROW(check_scn_accepted(read_file(entry.path())),
                 AssertionError)
        << entry.path() << " is no longer rejected";
    ++count;
  }
  EXPECT_GE(count, 3);
}

// The library-level loop: a short run must be clean and (in invalid
// mode) cover every mutation class via the forced round-robin prefix.
TEST(ScenarioFuzz, ShortFuzzRunsAreCleanAndCoverEveryClass) {
  FuzzOptions valid_opts;
  valid_opts.seed = 3;
  valid_opts.iters = 20;
  const FuzzReport valid_report = fuzz_scn(valid_opts);
  EXPECT_TRUE(valid_report.ok());
  EXPECT_EQ(valid_report.iterations, 20);

  FuzzOptions invalid_opts;
  invalid_opts.seed = 3;
  invalid_opts.iters = 20;
  invalid_opts.invalid = true;
  const FuzzReport invalid_report = fuzz_scn(invalid_opts);
  EXPECT_TRUE(invalid_report.ok());
  EXPECT_EQ(invalid_report.classes_seen.size(),
            scn_mutation_classes().size());
}

}  // namespace
}  // namespace lad
