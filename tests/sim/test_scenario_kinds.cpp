// The two adversarial/cooperative experiment kinds (time-evolving,
// in-network): spec validation, item accounting, run semantics, and the
// golden CSVs for their checked-in specs (quick mode).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "support/golden.h"
#include "util/assert.h"
#include "util/csv.h"
#include "util/kvconfig.h"

namespace lad {
namespace {

// Small deployment shared by the inline specs (900 nodes, cheap to
// observe); the new kinds ignore networks/victims, so only the field
// matters.
constexpr const char* kPipeline = R"(
[pipeline]
seed = 5
m = 25
sigma = 30
r = 50
field = 600
grid_nx = 6
grid_ny = 6
)";

ScenarioSpec parse(const std::string& text) {
  return ScenarioSpec::from_config(KvConfig::parse_string(text));
}

std::string evolve_spec(const std::string& kind_section) {
  return "[scenario]\nname = e\nexperiment = time-evolving\n" +
         std::string(kPipeline) + kind_section;
}

std::string coop_spec(const std::string& kind_section) {
  return "[scenario]\nname = c\nexperiment = in-network\n" +
         std::string(kPipeline) + kind_section;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// --- spec parsing ------------------------------------------------------

TEST(ScenarioSpecKinds, EvolveSectionParsesWithDefaults) {
  const ScenarioSpec defaults = parse(evolve_spec(""));
  EXPECT_EQ(defaults.kind, ExperimentKind::kTimeEvolving);
  EXPECT_EQ(defaults.evolve_rounds, 8);
  EXPECT_EQ(defaults.evolve_step, 2);
  EXPECT_EQ(defaults.evolve_initial, 0);
  EXPECT_EQ(defaults.evolve_train_samples, 400);

  const ScenarioSpec spec = parse(evolve_spec(
      "[evolve]\ntrials = 9\nrounds = 3\nstep = 5\ninitial = 2\n"
      "train_samples = 50\n"));
  EXPECT_EQ(spec.trials, 9);
  EXPECT_EQ(spec.evolve_rounds, 3);
  EXPECT_EQ(spec.evolve_step, 5);
  EXPECT_EQ(spec.evolve_initial, 2);
  EXPECT_EQ(spec.evolve_train_samples, 50);
}

TEST(ScenarioSpecKinds, CoopSectionParsesWithDefaults) {
  const ScenarioSpec defaults = parse(coop_spec(""));
  EXPECT_EQ(defaults.kind, ExperimentKind::kInNetwork);
  EXPECT_EQ(defaults.coop_radius, 150.0);
  EXPECT_EQ(defaults.coop_majority, 0.5);
  EXPECT_EQ(defaults.coop_train_samples, 400);

  const ScenarioSpec spec = parse(coop_spec(
      "[coop]\ntrials = 7\nradius = 99\nmajority = 0.75\n"
      "train_samples = 60\n"));
  EXPECT_EQ(spec.trials, 7);
  EXPECT_EQ(spec.coop_radius, 99.0);
  EXPECT_EQ(spec.coop_majority, 0.75);
  EXPECT_EQ(spec.coop_train_samples, 60);
}

TEST(ScenarioSpecKinds, BadEvolveValuesAreRejectedByName) {
  EXPECT_THROW(parse(evolve_spec("[evolve]\nrounds = 0\n")), AssertionError);
  EXPECT_THROW(parse(evolve_spec("[evolve]\nstep = 0\n")), AssertionError);
  EXPECT_THROW(parse(evolve_spec("[evolve]\ntrials = -1\n")), AssertionError);
  EXPECT_THROW(parse(evolve_spec("[evolve]\ntrain_samples = 0\n")),
               AssertionError);
  try {
    parse(evolve_spec("[evolve]\ninitial = -3\n"));
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("initial must be >= 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpecKinds, BadCoopValuesAreRejectedByName) {
  EXPECT_THROW(parse(coop_spec("[coop]\nradius = 0\n")), AssertionError);
  EXPECT_THROW(parse(coop_spec("[coop]\nradius = -10\n")), AssertionError);
  EXPECT_THROW(parse(coop_spec("[coop]\nmajority = 0\n")), AssertionError);
  EXPECT_THROW(parse(coop_spec("[coop]\ntrials = 0\n")), AssertionError);
  try {
    parse(coop_spec("[coop]\nmajority = 1.5\n"));
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("majority must be in (0,1]"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpecKinds, KindSectionsAreRejectedOnForeignKinds) {
  // [evolve] on in-network, [coop] on time-evolving, and either on a
  // plain dr-sweep: all dead configuration, all fail-fast by name.
  EXPECT_THROW(parse(coop_spec("[evolve]\nrounds = 2\n")), AssertionError);
  EXPECT_THROW(parse(evolve_spec("[coop]\nradius = 100\n")), AssertionError);
  try {
    parse("[scenario]\nname = d\nexperiment = dr-sweep\n"
          "[evolve]\nrounds = 2\n");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("only valid for experiment = "
                                         "time-evolving"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpecKinds, SweepAxesMatchWhatTheKindsExpand) {
  // time-evolving expands attacks x damages; in-network expands damages
  // only.  Anything else multi-valued is rejected.
  EXPECT_NO_THROW(parse(evolve_spec(
      "[sweep]\nattacks = dec-bounded, dec-only\ndamages = 60, 120\n")));
  EXPECT_THROW(parse(evolve_spec("[sweep]\ncompromised = 0.1, 0.2\n")),
               AssertionError);
  EXPECT_NO_THROW(parse(coop_spec("[sweep]\ndamages = 60, 120, 240\n")));
  EXPECT_THROW(parse(coop_spec("[sweep]\nattacks = dec-bounded, dec-only\n")),
               AssertionError);
  EXPECT_THROW(parse(coop_spec("[sweep]\nmetrics = diff, prob\n")),
               AssertionError);
}

// --- item accounting and run semantics ---------------------------------

TEST(ScenarioRunnerKinds, NumItemsCountsTheMetaRowAndTheGrid) {
  const ScenarioSpec evolve = parse(evolve_spec(
      "[sweep]\nattacks = dec-bounded, dec-only\ndamages = 60, 120\n"));
  EXPECT_EQ(ScenarioRunner(evolve).num_items(), 5);  // meta + 2 x 2

  const ScenarioSpec coop =
      parse(coop_spec("[sweep]\ndamages = 60, 120, 240\n"));
  EXPECT_EQ(ScenarioRunner(coop).num_items(), 4);  // benign fp + 3 D
}

TEST(ScenarioRunnerKinds, EvolveEmitsOneRowPerRoundWithTheBudgetSchedule) {
  const ScenarioSpec spec = parse(evolve_spec(
      "[sweep]\nattacks = dec-bounded\ndamages = 120\n"
      "[evolve]\ntrials = 6\nrounds = 3\nstep = 4\ninitial = 1\n"
      "train_samples = 50\n"));
  const ScenarioResult result = ScenarioRunner(spec).run();
  ASSERT_EQ(result.tables.size(), 2u);
  EXPECT_EQ(result.tables[0].id, "meta");
  EXPECT_EQ(result.tables[1].id, "evolve");
  const Table& evolve = result.tables[1].table;
  EXPECT_EQ(evolve.columns(),
            (std::vector<std::string>{"attack", "D", "round", "corrupted",
                                      "DR"}));
  ASSERT_EQ(evolve.num_rows(), 3u);  // one per round
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(evolve.cell(r, 2), std::to_string(r));
    // Budget schedule: initial + round * step = 1, 5, 9.
    EXPECT_EQ(evolve.cell(r, 3), std::to_string(1 + 4 * r));
  }
}

TEST(ScenarioRunnerKinds, CoopEmitsBenignFpRowAndPerDamageRows) {
  const ScenarioSpec spec = parse(coop_spec(
      "[sweep]\ndamages = 60, 240\ncompromised = 0.10\n"
      "[coop]\ntrials = 20\nradius = 120\ntrain_samples = 50\n"));
  const ScenarioResult result = ScenarioRunner(spec).run();
  ASSERT_EQ(result.tables.size(), 2u);
  EXPECT_EQ(result.tables[0].id, "fp");
  EXPECT_EQ(result.tables[1].id, "coop");
  EXPECT_EQ(result.tables[0].table.columns(),
            (std::vector<std::string>{"solo_FP", "node_FP", "coop_FP",
                                      "mean_voters"}));
  EXPECT_EQ(result.tables[1].table.columns(),
            (std::vector<std::string>{"D", "solo_DR", "node_DR", "coop_DR",
                                      "mean_voters"}));
  EXPECT_EQ(result.tables[0].table.num_rows(), 1u);
  ASSERT_EQ(result.tables[1].table.num_rows(), 2u);

  // A benign claim sits at the node's true position, so every voter in
  // radius can hear it: the vote-level FP rate is exactly 0.  A 240-unit
  // displacement plants the claim among voters with no radio evidence,
  // so the per-vote anomaly rate should clear the benign rate.
  const double node_fp = std::stod(result.tables[0].table.cell(0, 1));
  EXPECT_EQ(node_fp, 0.0);
  const double node_dr_far = std::stod(result.tables[1].table.cell(1, 2));
  EXPECT_GT(node_dr_far, node_fp);
}

TEST(ScenarioRunnerKinds, ShardsPartitionTheNewKinds) {
  for (const std::string& text :
       {evolve_spec("[sweep]\nattacks = dec-bounded, dec-only\n"
                    "damages = 60, 120\n"
                    "[evolve]\ntrials = 4\nrounds = 2\ntrain_samples = 40\n"),
        coop_spec("[sweep]\ndamages = 60, 120, 240\n"
                  "[coop]\ntrials = 4\ntrain_samples = 40\n")}) {
    const ScenarioSpec spec = parse(text);
    SCOPED_TRACE(spec.name);
    const ScenarioResult full = ScenarioRunner(spec).run();
    std::vector<long long> seen;
    for (int i = 0; i < 2; ++i) {
      const ScenarioResult part = ScenarioRunner(spec).run(ShardRange{i, 2});
      for (const ResultTable& t : part.tables) {
        seen.insert(seen.end(), t.row_items.begin(), t.row_items.end());
      }
    }
    std::vector<long long> all;
    for (const ResultTable& t : full.tables) {
      all.insert(all.end(), t.row_items.begin(), t.row_items.end());
    }
    std::sort(seen.begin(), seen.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(seen, all);
  }
}

// --- golden CSVs for the checked-in specs ------------------------------

#ifdef LAD_SCENARIO_DIR

// Runs a checked-in spec in quick mode at the given jobs count and
// returns the emitted CSV bodies keyed by file name.
std::vector<std::pair<std::string, std::string>> run_quick(
    const std::string& scn, int jobs) {
  namespace fs = std::filesystem;
  ScenarioSpec spec =
      ScenarioSpec::load(std::string(LAD_SCENARIO_DIR) + "/" + scn);
  ScenarioOverrides o;
  o.quick = true;
  spec = apply_overrides(spec, o);
  spec.jobs = jobs;

  const fs::path dir = fs::path(testing::TempDir()) /
                       ("lad_golden_" + spec.name + "_j" +
                        std::to_string(jobs));
  fs::remove_all(dir);
  write_result_csvs(ScenarioRunner(spec).run(), dir.string());

  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    out.emplace_back(entry.path().filename().string(),
                     read_file(entry.path()));
  }
  std::sort(out.begin(), out.end());
  fs::remove_all(dir);
  return out;
}

// The checked-in specs for the new kinds are pinned by goldens: quick
// mode must reproduce tests/data/scenario_goldens/ byte for byte, and a
// concurrent run must match the sequential one exactly (the acceptance
// bar shared by every scenario kind).
class ScenarioGoldens : public testing::TestWithParam<const char*> {};

TEST_P(ScenarioGoldens, QuickModeMatchesTheGoldenAcrossJobs) {
  const auto sequential = run_quick(GetParam(), 1);
  ASSERT_EQ(sequential.size(), 2u);  // every new kind emits two tables
  for (const auto& [name, body] : sequential) {
    EXPECT_FALSE(body.empty()) << name;
    test::expect_matches_golden(body, "scenario_goldens/" + name);
  }
  const auto concurrent = run_quick(GetParam(), 4);
  EXPECT_EQ(sequential, concurrent);
}

INSTANTIATE_TEST_SUITE_P(NewKinds, ScenarioGoldens,
                         testing::Values("tab_time_evolving.scn",
                                         "tab_in_network.scn"));

#endif  // LAD_SCENARIO_DIR

}  // namespace
}  // namespace lad
