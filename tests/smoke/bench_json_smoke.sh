#!/usr/bin/env bash
# Smoke test for the machine-readable bench surface: scale_observe --quick
# must emit a BENCH_*.json that tools/bench_json_check accepts, with the
# rows the bench promises.  This is the CI gate that keeps every bench's
# JSON output conforming to the lad-bench-1 schema.
set -u

bench="$1"
checker="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "bench_json_smoke FAIL: $*" >&2
  exit 1
}

# Pin to one thread so the smoke run is scheduling-independent.
LAD_THREADS=1 "$bench" --quick --out "$workdir" \
  || fail "scale_observe --quick exited $?"
json="$workdir/BENCH_scale_observe.json"
[ -s "$json" ] || fail "missing or empty $json"

echo "--- $json ---"
cat "$json"

out="$("$checker" "$json" 2>&1)" || fail "bench_json_check rejected: $out"
echo "$out"

grep -q '"schema": "lad-bench-1"' "$json" || fail "wrong schema tag"
grep -q '"name": "scale_observe"' "$json" || fail "wrong bench name"
grep -q 'observe_many/' "$json" || fail "no observe_many result rows"
grep -q 'grid_build' "$json" || fail "no grid_build result row"

# The checker must also reject a corrupted document (smoke the negative
# path so CI notices if the checker degrades into a yes-machine).
head -c 40 "$json" >"$workdir/truncated.json"
if "$checker" "$workdir/truncated.json" >/dev/null 2>&1; then
  fail "bench_json_check accepted a truncated document"
fi

echo "bench_json_smoke OK"
