#!/usr/bin/env bash
# End-to-end smoke test for the v2 detector-bundle lifecycle:
#   train --fusion --taus  ->  inspect  ->  check  ->  simulate
#   upgrade (v1 golden -> v2)  ->  inspect  ->  check  ->  idempotence
# Checks exit codes and the key output lines of every step.
set -u

cli="$1"
v1_golden="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "bundle_smoke FAIL: $*" >&2
  exit 1
}

run() {
  # run <name> <expected-rc> <cmd...>; captures stdout+stderr in $output.
  local name="$1" want_rc="$2"
  shift 2
  output="$("$@" 2>&1)"
  local rc=$?
  echo "--- $name (rc=$rc) ---"
  echo "$output"
  [ "$rc" -eq "$want_rc" ] || fail "$name exited $rc, expected $want_rc"
}

small_flags=(--m 40 --r 45 --sigma 25 --networks 2 --victims 40 --seed 1)

# --- train a fused bundle with a multi-tau table -------------------------
run train_fusion 0 "$cli" train --out "$workdir/fused.lad" --fusion \
  --taus 0.95,0.99,0.999 "${small_flags[@]}"
for m in diff add-all prob; do
  grep -q "trained $m threshold" <<<"$output" \
    || fail "train --fusion: missing $m threshold line"
done
grep -q "^lad-detector v2$" "$workdir/fused.lad" \
  || fail "train --fusion: bundle is not v2"

run inspect_fusion 0 "$cli" inspect --detector "$workdir/fused.lad"
grep -q "format:       lad-detector v2" <<<"$output" || fail "inspect: wrong format line"
grep -q "detectors:    3 (fusion" <<<"$output" || fail "inspect: missing fusion line"
grep -q "\[detector.add-all\]" <<<"$output" || fail "inspect: missing add-all section"
grep -cq "tau 0.95 -> threshold" <<<"$output" || fail "inspect: missing tau table"

# An all-zero observation from the field center must be flagged (exit 3),
# and the verdict must come from the fused detector.
run check_fusion 3 "$cli" check --detector "$workdir/fused.lad" \
  --le-x 500 --le-y 500
grep -q "detector: fusion of 3 metrics" <<<"$output" || fail "check: not fused"
grep -q "ANOMALY" <<<"$output" || fail "check: all-zero observation not flagged"

run simulate_fusion 0 "$cli" simulate --detector "$workdir/fused.lad" \
  --d 120 --x 0.1 --trials 20 --seed 7 --target add-all
grep -q "benign false positives:" <<<"$output" || fail "simulate: missing benign line"
grep -q "attacks detected (D=120, x=10%, dec-bounded vs add-all)" <<<"$output" \
  || fail "simulate: missing detection line"

# --- per-group threshold training ----------------------------------------
run train_per_group 0 "$cli" train --out "$workdir/grouped.lad" --per-group \
  --min-group-samples 3 --m 40 --r 45 --sigma 25 --networks 2 --victims 200 \
  --seed 1
grep -q "per-group: .* boundary group(s) trained" <<<"$output" \
  || fail "train --per-group: missing per-group summary line"
grep -Eq "^group [0-9]+ [0-9.e+-]+ [0-9]+ [0-9.e+-]+ [0-9.e+-]+ trained$" \
  "$workdir/grouped.lad" || fail "train --per-group: no trained group rows"

run inspect_grouped 0 "$cli" inspect --detector "$workdir/grouped.lad"
grep -Eq "group [0-9]+ -> threshold .*\(trained, .* samples" <<<"$output" \
  || fail "inspect: trained group provenance not printed"

# check --group consumes the override; an unknown group id is a named
# error (exit 1), never a silent fall-through to the global threshold.
"$cli" check --detector "$workdir/grouped.lad" --le-x 50 --le-y 50 \
  --obs 0:5,1:3 --group 0 >/dev/null 2>&1
rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || fail "check --group 0 exited $rc"
run check_unknown_group 1 "$cli" check --detector "$workdir/grouped.lad" \
  --le-x 50 --le-y 50 --obs 0:5 --group 100
grep -q "unknown group 100" <<<"$output" \
  || fail "check: out-of-range group not a named error"

# A per-group bundle round-trips: upgrade is byte-idempotent on it.
run upgrade_grouped 0 "$cli" upgrade --in "$workdir/grouped.lad" \
  --out "$workdir/grouped2.lad"
cmp "$workdir/grouped.lad" "$workdir/grouped2.lad" \
  || fail "upgrade: per-group bundle bytes changed"

run simulate_grouped 0 "$cli" simulate --detector "$workdir/grouped.lad" \
  --d 120 --x 0.1 --trials 20 --seed 7 --per-group
grep -q "(per-group thresholds)" <<<"$output" \
  || fail "simulate --per-group: detector line does not say per-group"

# --- migrate the checked-in v1 golden ------------------------------------
run inspect_v1 0 "$cli" inspect --detector "$v1_golden"
grep -q "format:       lad-detector v1 (migrates to v2 in memory)" <<<"$output" \
  || fail "inspect: v1 golden not reported as v1"

run upgrade 0 "$cli" upgrade --in "$v1_golden" --out "$workdir/upgraded.lad"
grep -q "upgraded v1 -> v2" <<<"$output" || fail "upgrade: missing upgrade line"
grep -q "^lad-detector v2$" "$workdir/upgraded.lad" || fail "upgrade: output is not v2"

run inspect_upgraded 0 "$cli" inspect --detector "$workdir/upgraded.lad"
grep -q "format:       lad-detector v2" <<<"$output" || fail "inspect: upgraded not v2"
grep -q "metric:       prob" <<<"$output" || fail "inspect: upgraded lost the metric"

# The upgraded bundle still answers checks (verdict may be either way for
# this observation; anything but 0/3 is a failure).
"$cli" check --detector "$workdir/upgraded.lad" --le-x 200 --le-y 200 \
  --obs 0:5,1:3,2:1 >/dev/null 2>&1
rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || fail "check on upgraded bundle exited $rc"

# Upgrading is idempotent: a second pass re-emits identical bytes.
run upgrade_again 0 "$cli" upgrade --in "$workdir/upgraded.lad" \
  --out "$workdir/upgraded2.lad"
grep -q "rewrote v2 canonically" <<<"$output" || fail "upgrade: v2 input not recognized"
cmp "$workdir/upgraded.lad" "$workdir/upgraded2.lad" \
  || fail "upgrade: second pass changed the bytes"

# --- a malformed bundle fails loudly with context ------------------------
printf 'lad-detector v2\n[deployment]\nfield_side oops\n' > "$workdir/bad.lad"
run check_bad 1 "$cli" check --detector "$workdir/bad.lad" --le-x 0 --le-y 0
grep -q "bad.lad" <<<"$output" || fail "malformed bundle: error does not name the file"
grep -q "line" <<<"$output" || fail "malformed bundle: error has no line context"

echo "bundle_smoke OK"
