#!/usr/bin/env bash
# End-to-end smoke test for tools/lad_cli: train -> inspect -> check ->
# simulate on a deliberately small deployment.  Checks exit codes and the
# key output lines of every subcommand.
set -u

cli="$1"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "cli_smoke FAIL: $*" >&2
  exit 1
}

run() {
  # run <name> <expected-rc> <cmd...>; captures stdout+stderr in $output.
  local name="$1" want_rc="$2"
  shift 2
  output="$("$@" 2>&1)"
  local rc=$?
  echo "--- $name (rc=$rc) ---"
  echo "$output"
  [ "$rc" -eq "$want_rc" ] || fail "$name exited $rc, expected $want_rc"
}

small_flags=(--m 40 --r 45 --sigma 25 --networks 2 --victims 40 --seed 1)

run train 0 "$cli" train --out "$workdir/detector.lad" "${small_flags[@]}"
grep -q "trained diff threshold" <<<"$output" || fail "train: missing threshold line"
grep -q "wrote $workdir/detector.lad" <<<"$output" || fail "train: missing wrote line"
[ -s "$workdir/detector.lad" ] || fail "train: bundle file is empty"

run inspect 0 "$cli" inspect --detector "$workdir/detector.lad"
grep -q "metric:       diff" <<<"$output" || fail "inspect: missing metric line"
grep -q "groups:       100 (m = 40 nodes each)" <<<"$output" || fail "inspect: wrong groups line"

# An all-zero observation from the field center must be flagged (exit 3).
run check 3 "$cli" check --detector "$workdir/detector.lad" --le-x 500 --le-y 500
grep -q "ANOMALY" <<<"$output" || fail "check: all-zero observation not flagged"

run simulate 0 "$cli" simulate --detector "$workdir/detector.lad" \
  --d 120 --x 0.1 --trials 20 --seed 7
grep -q "benign false positives:" <<<"$output" || fail "simulate: missing benign line"
grep -q "attacks detected (D=120" <<<"$output" || fail "simulate: missing detection line"

echo "cli_smoke OK"
