#!/usr/bin/env bash
# Exit-code and output contract of lad_lint, driven black-box against the
# checked-in fixture trees:
#
#   0  clean tree (including findings downgraded by --warn-only)
#   1  at least one enforced finding
#   2  broken invocation (unknown flag/rule, unreadable root)
#
# CI's lint job and scripts branch on the 1-vs-2 split, so it is pinned
# here, not just documented.
set -u

lint="$1"      # path to the lad_lint binary
fixtures="$2"  # path to tests/data/lint

fails=0
expect() {
  local want="$1"; shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: expected exit $want, got $got: $*" >&2
    fails=$((fails + 1))
  fi
}

pass="$fixtures/hygiene_pass"
fail="$fixtures/hygiene_fail"

# 0: clean tree (allowlist satisfies the one dead-public candidate).
expect 0 "$lint" --root "$pass" --layers "$pass/layers.txt" \
  --allowlist "$pass/public_api.allow"

# 1: findings (same tree, allowlist withheld -> SpareApi is dead-public).
expect 1 "$lint" --root "$pass" --layers "$pass/layers.txt"

# 1: the hygiene fail tree fires all four tree rules.
expect 1 "$lint" --root "$fail" --layers "$fail/layers.txt"

# 0: --warn-only downgrades the only finding class to a warning.
expect 0 "$lint" --root "$pass" --layers "$pass/layers.txt" \
  --warn-only dead-public

# 2: broken invocations, each with a named message on stderr.
expect 2 "$lint" --no-such-flag
expect 2 "$lint" --root /nonexistent/lad-lint-root
expect 2 "$lint" --root "$pass" --layers "$pass/layers.txt" \
  --warn-only no-such-rule
expect 2 "$lint" --root "$pass" --layers /nonexistent/layers.txt
expect 2 "$lint" --root "$pass" --layers "$pass/layers.txt" \
  --allowlist /nonexistent/public_api.allow
expect 2 "$lint" --root "$pass" --layers "$pass/layers.txt" --format bogus

# --format=github rewrites findings as workflow annotations.
github=$("$lint" --root "$fail" --layers "$fail/layers.txt" \
  --format=github 2>&1)
if ! grep -q '^::error file=src/core/unused_inc.cpp,line=1::' <<<"$github"; then
  echo "FAIL: github format missing ::error annotation:" >&2
  echo "$github" >&2
  fails=$((fails + 1))
fi

if [[ "$fails" != 0 ]]; then
  echo "lint_smoke: $fails contract violation(s)" >&2
  exit 1
fi
echo "lint_smoke: ok"
