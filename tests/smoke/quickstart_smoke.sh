#!/usr/bin/env bash
# Smoke test for examples/quickstart: must exit 0 and print the trained
# threshold plus a verdict line for the benign and the attacked sensor.
set -u

bin="$1"
output="$("$bin" 2>&1)"
rc=$?
echo "$output"

fail() {
  echo "quickstart_smoke FAIL: $*" >&2
  exit 1
}

[ "$rc" -eq 0 ] || fail "exited $rc, expected 0"
grep -q "trained Diff threshold (tau = 99%):" <<<"$output" || fail "missing training line"
grep -q "benign sensor:" <<<"$output" || fail "missing benign verdict line"
grep -q "attacked sensor (D = 150 m, 10% compromised):" <<<"$output" || fail "missing attacked verdict line"

echo "quickstart_smoke OK"
