#!/usr/bin/env bash
# End-to-end smoke test for the scenario engine CLI surface:
# `lad_cli run --scenario` (full + sharded) and `lad_cli merge`, checking
# the tagged-CSV header, the error paths for malformed --shard, and that
# merged shard output is byte-identical to the unsharded run.
set -u

cli="$1"
scn="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "scenario_smoke FAIL: $*" >&2
  exit 1
}

run() {
  # run <name> <expected-rc> <cmd...>; captures stdout+stderr in $output.
  local name="$1" want_rc="$2"
  shift 2
  output="$("$@" 2>&1)"
  local rc=$?
  echo "--- $name (rc=$rc) ---"
  echo "$output"
  [ "$rc" -eq "$want_rc" ] || fail "$name exited $rc, expected $want_rc"
}

# Full run writes one tagged CSV per result table.
run full 0 "$cli" run --scenario "$scn" --out "$workdir/full"
csv="$workdir/full/quickstart.dr.csv"
[ -s "$csv" ] || fail "full run did not write $csv"
head -1 "$csv" | grep -q '^item,x,D,DR,trained_FP,threshold$' \
  || fail "unexpected merged CSV header: $(head -1 "$csv")"

# Sharded runs partition the work items; merge restores the full CSV.
run shard0 0 "$cli" run --scenario "$scn" --shard 0/2 --out "$workdir/s0"
run shard1 0 "$cli" run --scenario "$scn" --shard 1/2 --out "$workdir/s1"
run merge 0 "$cli" merge --out "$workdir/merged" "$workdir/s0" "$workdir/s1"
cmp "$csv" "$workdir/merged/quickstart.dr.csv" \
  || fail "merged CSV differs from the unsharded run"

# Stdout mode prints the result tables.
run stdout 0 "$cli" run --scenario "$scn"
grep -q "== dr ==" <<<"$output" || fail "stdout run missing the dr table"

# Malformed shard syntax fails cleanly (exit 2, named message, no crash).
run shard_zero 2 "$cli" run --scenario "$scn" --shard 0/0
grep -qi "shard" <<<"$output" || fail "0/0: error does not mention shard"
run shard_garbage 2 "$cli" run --scenario "$scn" --shard banana
grep -qi "shard" <<<"$output" || fail "banana: error does not mention shard"
run shard_oob 2 "$cli" run --scenario "$scn" --shard 5/2
grep -qi "shard" <<<"$output" || fail "5/2: error does not mention shard"

# A shard slice with no work items (more shards than items: quickstart
# expands to 6, so shard 7/8 owns nothing) must exit 2 with a named
# message, not exit 0 with no output.
run shard_empty 2 "$cli" run --scenario "$scn" --shard 7/8
grep -q "no work items" <<<"$output" || fail "empty shard: no 'no work items' message"

# A typo'd flag must fail fast, not silently run all work items.
run shard_typo 2 "$cli" run --scenario "$scn" --sahrd 0/2
grep -q "unknown flag" <<<"$output" || fail "typo'd flag not rejected"

# Merging overlapping shards (same dir twice) must fail, not duplicate rows.
run merge_overlap 1 "$cli" merge --out "$workdir/dup" "$workdir/s0" "$workdir/s0"
grep -qi "overlapping" <<<"$output" || fail "overlapping merge not rejected"

# An incomplete shard set is rejected unless --partial opts in.
run merge_incomplete 1 "$cli" merge --out "$workdir/half" "$workdir/s1"
grep -qi "incomplete" <<<"$output" || fail "incomplete merge not rejected"
run merge_partial 0 "$cli" merge --out "$workdir/half" --partial "$workdir/s1"

# --- resume --------------------------------------------------------------
# A completed shard dir is skipped wholesale.
run resume_done 0 "$cli" run --scenario "$scn" --shard 0/2 --out "$workdir/s0" --resume
grep -q "skipping" <<<"$output" || fail "--resume did not skip a completed shard"

# Simulate a killed shard: its CSV is gone (atomic rename means a killed
# run leaves at most a stale .tmp, never a truncated .csv).  --resume must
# recompute it and reproduce the original bytes.
mkdir -p "$workdir/s1_killed"
touch "$workdir/s1_killed/quickstart.dr.csv.tmp"
run resume_rerun 0 "$cli" run --scenario "$scn" --shard 1/2 \
  --out "$workdir/s1_killed" --resume
grep -q "running" <<<"$output" || fail "--resume skipped an incomplete shard"
cmp "$workdir/s1/quickstart.dr.csv" "$workdir/s1_killed/quickstart.dr.csv" \
  || fail "--resume rerun differs from the original shard"
run merge_resumed 0 "$cli" merge --out "$workdir/merged2" "$workdir/s0" "$workdir/s1_killed"
cmp "$csv" "$workdir/merged2/quickstart.dr.csv" \
  || fail "merged resumed shards differ from the unsharded run"

# A shard killed right after the header flush leaves a header-only CSV.
# Presence is not completeness: --resume must detect the missing rows,
# re-run, and reproduce the original bytes.
mkdir -p "$workdir/s1_headeronly"
head -1 "$workdir/s1/quickstart.dr.csv" > "$workdir/s1_headeronly/quickstart.dr.csv"
run resume_headeronly 0 "$cli" run --scenario "$scn" --shard 1/2 \
  --out "$workdir/s1_headeronly" --resume
grep -q "running" <<<"$output" || fail "--resume skipped a header-only shard CSV"
grep -q "work item" <<<"$output" || fail "--resume did not say which items were missing"
cmp "$workdir/s1/quickstart.dr.csv" "$workdir/s1_headeronly/quickstart.dr.csv" \
  || fail "--resume rerun of header-only shard differs from the original"

# --resume without --out is a usage error.
run resume_no_out 2 "$cli" run --scenario "$scn" --resume
grep -q "resume" <<<"$output" || fail "--resume without --out: error does not say why"

# Missing scenario file is a named error, not a crash.
run missing_spec 1 "$cli" run --scenario "$workdir/nope.scn"
grep -q "nope.scn" <<<"$output" || fail "missing spec: error does not name it"

echo "scenario_smoke OK"
