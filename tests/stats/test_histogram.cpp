#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace lad {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeSaturatesEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // hi boundary goes to the top bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 2u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 15.0);
}

TEST(Histogram, CdfInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one per bin
  EXPECT_DOUBLE_EQ(h.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_NEAR(h.cdf(5.0), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(2.5), 0.25, 1e-12);
}

TEST(Histogram, CdfOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(1.0);
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(b), AssertionError);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), AssertionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), AssertionError);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), AssertionError);
}

}  // namespace
}  // namespace lad
