#include "stats/integrate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.h"

namespace lad {
namespace {

TEST(AdaptiveSimpson, PolynomialIsExact) {
  // Simpson is exact for cubics.
  const double got = integrate_adaptive_simpson(
      [](double x) { return x * x * x - 2 * x + 1; }, -1.0, 3.0);
  // Antiderivative: x^4/4 - x^2 + x evaluated on [-1, 3]: (81/4-9+3)-(1/4-1-1)
  EXPECT_NEAR(got, 16.0, 1e-10);
}

TEST(AdaptiveSimpson, TranscendentalFunctions) {
  EXPECT_NEAR(integrate_adaptive_simpson([](double x) { return std::sin(x); },
                                         0.0, M_PI),
              2.0, 1e-9);
  EXPECT_NEAR(integrate_adaptive_simpson([](double x) { return std::exp(-x); },
                                         0.0, 20.0),
              1.0, 1e-8);
}

TEST(AdaptiveSimpson, GaussianIntegral) {
  // int_{-8}^{8} exp(-x^2/2)/sqrt(2 pi) dx ~= 1.
  const double got = integrate_adaptive_simpson(
      [](double x) { return std::exp(-x * x / 2) / std::sqrt(2 * M_PI); },
      -8.0, 8.0, 1e-12);
  EXPECT_NEAR(got, 1.0, 1e-9);
}

TEST(AdaptiveSimpson, HandlesEndpointKink) {
  // sqrt has unbounded derivative at 0; the adaptive rule must still hit
  // the analytic value 2/3.
  const double got = integrate_adaptive_simpson(
      [](double x) { return std::sqrt(x); }, 0.0, 1.0, 1e-10);
  EXPECT_NEAR(got, 2.0 / 3.0, 1e-7);
}

TEST(AdaptiveSimpson, EmptyAndReversedIntervals) {
  auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(integrate_adaptive_simpson(f, 2.0, 2.0), 0.0);
  EXPECT_NEAR(integrate_adaptive_simpson(f, 1.0, 0.0), -0.5, 1e-12);
}

TEST(AdaptiveSimpson, RejectsNonPositiveTolerance) {
  EXPECT_THROW(
      integrate_adaptive_simpson([](double x) { return x; }, 0, 1, 0.0),
      AssertionError);
}

TEST(GaussLegendre, PolynomialExactness) {
  // Order-2n GL is exact for polynomials of degree 2n-1; order 4 handles x^7.
  const double got = integrate_gauss_legendre(
      [](double x) { return std::pow(x, 7.0); }, 0.0, 1.0, 4, 1);
  EXPECT_NEAR(got, 1.0 / 8.0, 1e-12);
}

TEST(GaussLegendre, AllOrdersAgreeOnSmoothIntegrand) {
  auto f = [](double x) { return std::cos(x); };
  const double want = std::sin(2.0) - std::sin(-1.0);
  for (int order : {4, 8, 16, 32, 64}) {
    EXPECT_NEAR(integrate_gauss_legendre(f, -1.0, 2.0, order, 4), want, 1e-9)
        << "order " << order;
  }
}

TEST(GaussLegendre, PanelsImproveRoughIntegrands) {
  auto f = [](double x) { return std::abs(x); };  // kink at 0
  const double one_panel = integrate_gauss_legendre(f, -1.0, 1.0, 8, 1);
  const double many_panels = integrate_gauss_legendre(f, -1.0, 1.0, 8, 64);
  EXPECT_LT(std::abs(many_panels - 1.0), std::abs(one_panel - 1.0) + 1e-15);
  EXPECT_NEAR(many_panels, 1.0, 1e-4);
}

TEST(GaussLegendre, RejectsUnsupportedOrder) {
  EXPECT_THROW(
      integrate_gauss_legendre([](double x) { return x; }, 0, 1, 5, 1),
      AssertionError);
  EXPECT_THROW(
      integrate_gauss_legendre([](double x) { return x; }, 0, 1, 8, 0),
      AssertionError);
}

TEST(Quadrature, SimpsonAndGaussLegendreAgree) {
  auto f = [](double x) { return std::log1p(x * x) * std::sin(3 * x); };
  const double a = integrate_adaptive_simpson(f, 0.0, 4.0, 1e-11);
  const double b = integrate_gauss_legendre(f, 0.0, 4.0, 64, 16);
  EXPECT_NEAR(a, b, 1e-8);
}

}  // namespace
}  // namespace lad
