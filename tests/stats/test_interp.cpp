#include "stats/interp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.h"

namespace lad {
namespace {

TEST(InterpTable, ExactAtSamplePoints) {
  auto f = [](double x) { return x * x; };
  const InterpTable t(f, 0.0, 10.0, 10);
  for (int i = 0; i <= 10; ++i) {
    EXPECT_DOUBLE_EQ(t(static_cast<double>(i)), f(i));
  }
}

TEST(InterpTable, LinearBetweenSamples) {
  auto f = [](double x) { return x * x; };
  const InterpTable t(f, 0.0, 10.0, 10);
  // Between 2 and 3 the table stores 4 and 9: midpoint is 6.5, not 6.25.
  EXPECT_DOUBLE_EQ(t(2.5), 6.5);
}

TEST(InterpTable, ClampsOutsideRange) {
  auto f = [](double x) { return 3 * x; };
  const InterpTable t(f, 1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(t(0.0), 3.0);
  EXPECT_DOUBLE_EQ(t(5.0), 6.0);
}

TEST(InterpTable, LinearFunctionIsReproducedExactly) {
  auto f = [](double x) { return 2.5 * x - 1.0; };
  const InterpTable t(f, -3.0, 7.0, 16);
  for (double x = -3.0; x <= 7.0; x += 0.37) {
    EXPECT_NEAR(t(x), f(x), 1e-12);
  }
}

TEST(InterpTable, ErrorShrinksWithResolution) {
  auto f = [](double x) { return std::sin(x); };
  const InterpTable coarse(f, 0.0, M_PI, 8);
  const InterpTable fine(f, 0.0, M_PI, 256);
  const double ce = coarse.max_abs_error(f, 500);
  const double fe = fine.max_abs_error(f, 500);
  EXPECT_LT(fe, ce / 100.0);  // linear interpolation error is O(h^2)
  EXPECT_LT(fe, 1e-4);
}

TEST(InterpTable, FromPrecomputedValues) {
  const InterpTable t(std::vector<double>{0.0, 1.0, 4.0}, 0.0, 2.0);
  EXPECT_EQ(t.omega(), 2);
  EXPECT_DOUBLE_EQ(t(0.5), 0.5);
  EXPECT_DOUBLE_EQ(t(1.5), 2.5);
}

TEST(InterpTable, RejectsBadConstruction) {
  auto f = [](double x) { return x; };
  EXPECT_THROW(InterpTable(f, 1.0, 1.0, 4), AssertionError);
  EXPECT_THROW(InterpTable(f, 0.0, 1.0, 0), AssertionError);
  EXPECT_THROW(InterpTable(std::vector<double>{1.0}, 0.0, 1.0), AssertionError);
}

}  // namespace
}  // namespace lad
