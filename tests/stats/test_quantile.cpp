#include "stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(Quantile, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({4, 1, 2, 3}, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v = {5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, LinearInterpolationType7) {
  // v sorted: {10, 20, 30, 40}; q=0.25 -> h = 0.75 -> 10 + 0.75*10 = 17.5.
  EXPECT_DOUBLE_EQ(quantile({40, 10, 30, 20}, 0.25), 17.5);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, ErrorsOnBadInput) {
  EXPECT_THROW(quantile({}, 0.5), AssertionError);
  EXPECT_THROW(quantile({1.0}, -0.1), AssertionError);
  EXPECT_THROW(quantile({1.0}, 1.1), AssertionError);
}

TEST(Quantiles, MatchesSingleQuantileCalls) {
  Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal());
  const std::vector<double> qs = {0.0, 0.25, 0.5, 0.9, 0.99, 1.0};
  const std::vector<double> batch = quantiles(v, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(v, qs[i])) << "q=" << qs[i];
  }
}

TEST(QuantileInplace, AgreesWithSortBasedAnswer) {
  Rng rng(12);
  std::vector<double> v;
  for (int i = 0; i < 999; ++i) v.push_back(rng.uniform(0, 100));
  std::vector<double> copy = v;
  const double got = quantile_inplace(copy, 0.99);
  std::sort(v.begin(), v.end());
  const double h = 0.99 * 998;
  const std::size_t lo = static_cast<std::size_t>(h);
  const double want = v[lo] + (h - lo) * (v[lo + 1] - v[lo]);
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(FractionAbove, CountsStrictlyGreater) {
  const std::vector<double> v = {1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(fraction_above(v, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(fraction_above(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_above(v, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above({}, 1.0), 0.0);
}

}  // namespace
}  // namespace lad
