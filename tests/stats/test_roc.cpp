#include "stats/roc.h"

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "util/assert.h"

namespace lad {
namespace {

TEST(Roc, PerfectSeparationHasAucOne) {
  const RocCurve roc({1, 2, 3}, {10, 11, 12});
  EXPECT_NEAR(roc.auc(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(roc.detection_rate_at_fp(0.0), 1.0);
  EXPECT_DOUBLE_EQ(roc.fp_at_detection_rate(1.0), 0.0);
}

TEST(Roc, IdenticalDistributionsNearChance) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 4000; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  const RocCurve roc(a, b);
  EXPECT_NEAR(roc.auc(), 0.5, 0.03);
}

TEST(Roc, CurveIsMonotoneInFp) {
  Rng rng(4);
  std::vector<double> benign, attack;
  for (int i = 0; i < 500; ++i) {
    benign.push_back(rng.normal(0, 1));
    attack.push_back(rng.normal(1.5, 1));
  }
  const RocCurve roc(benign, attack);
  const auto& pts = roc.points();
  ASSERT_GE(pts.size(), 2u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].false_positive_rate, pts[i].false_positive_rate);
  }
  // Endpoints span the square.
  EXPECT_DOUBLE_EQ(pts.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().detection_rate, 1.0);
}

TEST(Roc, DetectionRateAtFpBudget) {
  // benign: {1, 2, 3, 4}; attack: {2.5, 3.5, 4.5, 5.5}.
  const RocCurve roc({1, 2, 3, 4}, {2.5, 3.5, 4.5, 5.5});
  // Threshold 4: FP = 0, DR = 0.5 (4.5 and 5.5 above).
  EXPECT_DOUBLE_EQ(roc.detection_rate_at_fp(0.0), 0.5);
  // Allowing FP 0.25 admits threshold 3: DR = 0.75.
  EXPECT_DOUBLE_EQ(roc.detection_rate_at_fp(0.25), 0.75);
  // FP 1.0 admits any threshold: DR = 1.
  EXPECT_DOUBLE_EQ(roc.detection_rate_at_fp(1.0), 1.0);
}

TEST(Roc, FpAtDetectionRateFloor) {
  const RocCurve roc({1, 2, 3, 4}, {2.5, 3.5, 4.5, 5.5});
  EXPECT_DOUBLE_EQ(roc.fp_at_detection_rate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(roc.fp_at_detection_rate(1.0), 0.5);
}

TEST(Roc, AucBetterWhenSeparationGrows) {
  Rng rng(5);
  std::vector<double> benign, weak, strong;
  for (int i = 0; i < 2000; ++i) {
    benign.push_back(rng.normal(0, 1));
    weak.push_back(rng.normal(0.5, 1));
    strong.push_back(rng.normal(3.0, 1));
  }
  EXPECT_LT(RocCurve(benign, weak).auc(), RocCurve(benign, strong).auc());
  EXPECT_GT(RocCurve(benign, strong).auc(), 0.97);
}

TEST(Roc, RejectsEmptyInputs) {
  EXPECT_THROW(RocCurve({}, {1.0}), AssertionError);
  EXPECT_THROW(RocCurve({1.0}, {}), AssertionError);
  const RocCurve roc({1.0}, {2.0});
  EXPECT_THROW(roc.detection_rate_at_fp(-0.1), AssertionError);
}

}  // namespace
}  // namespace lad
