#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.h"

namespace lad {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole, part1, part2;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i < 400 ? part1 : part2).add(v);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(KahanSum, CompensatesSmallAdditions) {
  KahanSum ks;
  ks.add(1.0);
  for (int i = 0; i < 1000000; ++i) ks.add(1e-16);
  // Naive summation would lose all the tiny terms entirely.
  EXPECT_NEAR(ks.value(), 1.0 + 1e-10, 1e-14);
}

}  // namespace
}  // namespace lad
