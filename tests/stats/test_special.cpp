#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.h"

namespace lad {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-10);
  EXPECT_THROW(log_factorial(-1), AssertionError);
}

TEST(LogBinomialCoefficient, KnownValues) {
  EXPECT_NEAR(log_binomial_coefficient(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_binomial_coefficient(10, 5), std::log(252.0), 1e-10);
  EXPECT_DOUBLE_EQ(log_binomial_coefficient(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial_coefficient(7, 7), 0.0);
  EXPECT_THROW(log_binomial_coefficient(3, 4), AssertionError);
  EXPECT_THROW(log_binomial_coefficient(3, -1), AssertionError);
}

TEST(BinomialPmf, MatchesDirectComputation) {
  // Binom(2; 4, 0.5) = 6/16.
  EXPECT_NEAR(binomial_pmf(2, 4, 0.5), 0.375, 1e-12);
  // Binom(0; 3, 0.2) = 0.8^3.
  EXPECT_NEAR(binomial_pmf(0, 3, 0.2), 0.512, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(-1, 3, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 3, 0.2), 0.0);
}

TEST(BinomialPmf, BoundaryProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(1, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 5, 1.0), 0.0);
  EXPECT_TRUE(std::isinf(log_binomial_pmf(1, 5, 0.0)));
  EXPECT_DOUBLE_EQ(log_binomial_pmf(0, 5, 0.0), 0.0);
}

TEST(BinomialPmf, SumsToOne) {
  for (double p : {0.1, 0.37, 0.9}) {
    double total = 0.0;
    for (int k = 0; k <= 30; ++k) total += binomial_pmf(k, 30, p);
    EXPECT_NEAR(total, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(BinomialPmf, LargeNDoesNotUnderflowInLogSpace) {
  // m = 1000, p = 0.3, k = 999: linear pmf underflows to ~1e-520, the log
  // form must stay finite and sane.
  const double lp = log_binomial_pmf(999, 1000, 0.3);
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, -1000.0);
}

TEST(BinomialCdf, MatchesPmfSums) {
  double acc = 0.0;
  for (int k = 0; k <= 7; ++k) {
    acc += binomial_pmf(k, 20, 0.35);
    EXPECT_NEAR(binomial_cdf(k, 20, 0.35), acc, 1e-12);
  }
  EXPECT_DOUBLE_EQ(binomial_cdf(-1, 20, 0.35), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(20, 20, 0.35), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(25, 20, 0.35), 1.0);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(8.0), 1.0, 1e-12);
}

TEST(NormalPdf, SymmetricAndPeaked) {
  EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2 * M_PI), 1e-12);
  EXPECT_DOUBLE_EQ(normal_pdf(1.3), normal_pdf(-1.3));
}

TEST(Gaussian2dPdfRadial, MatchesPaperFormula) {
  const double sigma = 50.0;
  // At r = 0 the density is 1 / (2 pi sigma^2).
  EXPECT_NEAR(gaussian2d_pdf_radial(0.0, sigma), 1.0 / (2 * M_PI * 2500.0),
              1e-15);
  // Figure 2's peak value is ~6.4e-5 for sigma = 50.
  EXPECT_NEAR(gaussian2d_pdf_radial(0.0, sigma), 6.366e-5, 1e-7);
  EXPECT_THROW(gaussian2d_pdf_radial(1.0, 0.0), AssertionError);
}

TEST(RayleighCdf, KnownValuesAndMonotonicity) {
  const double sigma = 50.0;
  EXPECT_DOUBLE_EQ(rayleigh_cdf(0.0, sigma), 0.0);
  EXPECT_DOUBLE_EQ(rayleigh_cdf(-3.0, sigma), 0.0);
  // P(|X| <= sigma) = 1 - e^{-1/2}.
  EXPECT_NEAR(rayleigh_cdf(sigma, sigma), 1.0 - std::exp(-0.5), 1e-12);
  double prev = 0.0;
  for (double r = 0.0; r < 300.0; r += 10.0) {
    const double c = rayleigh_cdf(r, sigma);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(rayleigh_cdf(1000.0, sigma), 1.0, 1e-12);
}

TEST(RayleighCdf, IsTheGaussian2dDiskIntegral) {
  // Cross-check: integrating the radial 2-D Gaussian over a disk of radius
  // r0 equals the Rayleigh CDF at r0.
  const double sigma = 13.0, r0 = 20.0;
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double r = (i + 0.5) * r0 / n;
    sum += gaussian2d_pdf_radial(r, sigma) * 2 * M_PI * r * (r0 / n);
  }
  EXPECT_NEAR(sum, rayleigh_cdf(r0, sigma), 1e-6);
}

}  // namespace
}  // namespace lad
