// Relative-tolerance comparison for EXPECT_PRED_FORMAT3, complementing
// gtest's absolute EXPECT_NEAR:
//
//   EXPECT_PRED_FORMAT3(lad::test::ApproxRel, got, want, 1e-6);
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace lad::test {

inline testing::AssertionResult ApproxRel(const char* a_expr,
                                          const char* b_expr,
                                          const char* rel_expr, double a,
                                          double b, double rel) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  if (std::abs(a - b) <= rel * scale) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << a_expr << " = " << a << " and " << b_expr << " = " << b
         << " differ by " << std::abs(a - b) << ", more than " << rel_expr
         << " (" << rel << ") relative to scale " << scale;
}

}  // namespace lad::test
