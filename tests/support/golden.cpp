#include "support/golden.h"

#include <gtest/gtest.h>

#include "support/approx.h"
#include "util/env.h"
#include "util/string_util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace lad::test {
namespace {

#ifndef LAD_TEST_DATA_DIR
#error "LAD_TEST_DATA_DIR must be defined by the build"
#endif

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

bool parse_number(const std::string& cell, double* out) {
  char* end = nullptr;
  *out = std::strtod(cell.c_str(), &end);
  return end != cell.c_str() && *end == '\0';
}

}  // namespace

std::string golden_path(const std::string& name) {
  return std::string(LAD_TEST_DATA_DIR) + "/" + name;
}

std::string read_golden(const std::string& name) {
  std::ifstream is(golden_path(name), std::ios::binary);
  if (!is) {
    ADD_FAILURE() << "golden file missing: " << golden_path(name)
                  << " (run with LAD_REGOLD=1 to create it)";
    return {};
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  if (env_flag("LAD_REGOLD")) {
    std::ofstream os(golden_path(name), std::ios::binary);
    ASSERT_TRUE(os) << "cannot write golden file " << golden_path(name);
    os << actual;
    GTEST_LOG_(INFO) << "regenerated golden file " << golden_path(name);
    return;
  }
  const std::string expected = read_golden(name);
  if (actual == expected) return;
  const auto got = split_lines(actual);
  const auto want = split_lines(expected);
  const std::size_t n = std::min(got.size(), want.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (got[i] != want[i]) {
      ADD_FAILURE() << name << ": first difference at line " << (i + 1)
                    << "\n  golden: " << want[i] << "\n  actual: " << got[i];
      return;
    }
  }
  if (got.size() != want.size()) {
    ADD_FAILURE() << name << ": line count differs (golden " << want.size()
                  << ", actual " << got.size() << ")";
    return;
  }
  // Same lines but unequal bytes: only trailing newlines/whitespace differ.
  ADD_FAILURE() << name << ": contents differ only in trailing newlines"
                << " (golden " << expected.size() << " bytes, actual "
                << actual.size() << " bytes)";
}

void expect_csv_near(const std::string& actual, const std::string& expected,
                     double rel) {
  const auto got = split_lines(actual);
  const auto want = split_lines(expected);
  ASSERT_EQ(got.size(), want.size()) << "CSV line counts differ";
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto got_cells = split(got[i], ',');
    const auto want_cells = split(want[i], ',');
    ASSERT_EQ(got_cells.size(), want_cells.size())
        << "cell counts differ at line " << (i + 1);
    for (std::size_t j = 0; j < got_cells.size(); ++j) {
      if (got_cells[j] == want_cells[j]) continue;  // also covers nan/inf
      double a = 0.0, b = 0.0;
      if (parse_number(got_cells[j], &a) && parse_number(want_cells[j], &b)) {
        EXPECT_PRED_FORMAT3(ApproxRel, a, b, rel)
            << "numeric cell (" << (i + 1) << "," << (j + 1) << ")";
      } else {
        EXPECT_EQ(got_cells[j], want_cells[j])
            << "text cell (" << (i + 1) << "," << (j + 1) << ")";
      }
    }
  }
}

}  // namespace lad::test
