// Golden-file helpers.  Golden files live in tests/data/ (the build
// injects the absolute path as LAD_TEST_DATA_DIR).  To regenerate after an
// intentional format change:
//
//   LAD_REGOLD=1 ctest --test-dir build -R <test>
//
// then review the diff like any other code change.
#pragma once

#include <string>

namespace lad::test {

/// Absolute path of a file under tests/data/.
std::string golden_path(const std::string& name);

/// Whole-file read; fails the current test (ADD_FAILURE) if missing.
std::string read_golden(const std::string& name);

/// Compares `actual` against golden file `name` line by line with a
/// readable first-difference report.  With LAD_REGOLD=1 in the
/// environment, rewrites the golden file instead and reports success.
void expect_matches_golden(const std::string& actual, const std::string& name);

/// Compares two CSV bodies cell by cell; numeric cells compare with
/// relative tolerance `rel`, everything else exactly.
void expect_csv_near(const std::string& actual, const std::string& expected,
                     double rel);

}  // namespace lad::test
