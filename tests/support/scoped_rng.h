// Seeded-RNG scoping for tests.
//
// A bare `Rng rng(42)` in two suites silently couples them: both consume
// the same stream, and adding a draw to a shared helper reshuffles every
// downstream expectation.  ScopedTestRng derives a stable seed from the
// *current test's* full name instead, so each test gets its own
// reproducible stream and never aliases another test's.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "rng/rng.h"

namespace lad::test {

/// FNV-1a, fixed here (not std::hash) so seeds are stable across platforms.
inline std::uint64_t stable_seed(const std::string& tag) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// An Rng seeded from "SuiteName.TestName" (plus an optional salt for
/// tests that need several independent streams).
class ScopedTestRng : public Rng {
 public:
  explicit ScopedTestRng(std::uint64_t salt = 0)
      : Rng(stable_seed(current_test_tag()) ^ salt) {}

 private:
  static std::string current_test_tag() {
    const testing::TestInfo* info =
        testing::UnitTest::GetInstance()->current_test_info();
    if (info == nullptr) return "no-test";
    return std::string(info->test_suite_name()) + "." + info->name();
  }
};

}  // namespace lad::test
