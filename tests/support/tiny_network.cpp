#include "support/tiny_network.h"

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"
#include "rng/rng.h"

namespace lad::test {

DeploymentConfig tiny_config() {
  DeploymentConfig cfg;
  cfg.field_side = 400.0;
  cfg.grid_nx = 4;
  cfg.grid_ny = 4;
  cfg.nodes_per_group = 30;
  cfg.sigma = 25.0;
  cfg.radio_range = 45.0;
  return cfg;
}

DeploymentConfig micro_config() {
  DeploymentConfig cfg = tiny_config();
  cfg.field_side = 200.0;
  cfg.grid_nx = 2;
  cfg.grid_ny = 2;
  cfg.nodes_per_group = 12;
  return cfg;
}

Network make_network(const DeploymentModel& model, std::uint64_t seed) {
  Rng rng(seed);
  return Network(model, rng);
}

}  // namespace lad::test
