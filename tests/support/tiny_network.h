// Shared tiny-network fixtures: every suite that needs "a small but real
// deployment" builds it from here instead of re-declaring an ad-hoc config,
// so test networks stay consistent (and cheap) across layers.
#pragma once

#include "deploy/config.h"
#include "deploy/deployment_model.h"
#include "deploy/network.h"

namespace lad::test {

/// A 400m x 400m field with a 4x4 grid of deployment points, m = 30 nodes
/// per group, sigma = 25 m, R = 45 m.  Small enough that a Network deploys
/// in microseconds, dense enough that every node has neighbors.
DeploymentConfig tiny_config();

/// tiny_config() scaled down further: 2x2 grid, m = 12.  For tests that
/// iterate over every node pair.
DeploymentConfig micro_config();

/// Deploys a Network from `cfg` with a deterministic seed.
Network make_network(const DeploymentModel& model, std::uint64_t seed = 2005);

}  // namespace lad::test
