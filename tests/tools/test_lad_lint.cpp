// lad_lint engine tests: the fixture trees under tests/data/lint/ pin
// every rule's behavior — each fail file must fire with the exact rule
// name and file:line, the pass tree must be silent, and the justified
// allow hatch must suppress exactly one line.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_core.h"
#include "support/golden.h"

namespace lad::lint {
namespace {

Config fixture_config(const std::string& tree) {
  Config cfg;
  cfg.root = lad::test::golden_path("lint/" + tree);
  const std::string err = load_layer_rules(cfg.root + "/layers.txt", cfg);
  EXPECT_EQ(err, "");
  return cfg;
}

std::vector<std::string> formatted(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(format_finding(f));
  return out;
}

bool has(const std::vector<Finding>& findings, const std::string& file,
         int line, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.file == file && f.line == line && f.rule == rule;
  });
}

TEST(LadLint, PassTreeIsSilent) {
  const Config cfg = fixture_config("pass");
  const std::vector<Finding> findings = lint_tree(cfg);
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(LadLint, FailTreeFiresEveryRuleWithFileAndLine) {
  const Config cfg = fixture_config("fail");
  const std::vector<Finding> findings = lint_tree(cfg);
  const auto dump = [&] {
    std::string all;
    for (const std::string& s : formatted(findings)) all += s + "\n";
    return all;
  };

  // One (file, line, rule) pin per rule; bad_allow.cpp additionally
  // proves a malformed suppression does NOT silence the underlying ban.
  EXPECT_TRUE(has(findings, "src/geom/bad_include.cpp", 4, "layer-dag"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/uses_rand.cpp", 3, "ban-rand"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/uses_time.cpp", 3, "ban-time"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/uses_clock.cpp", 5, "ban-clock-now"))
      << dump();
  EXPECT_TRUE(has(findings, "src/stats/uses_lgamma.cpp", 4, "ban-lgamma"))
      << dump();
  EXPECT_TRUE(has(findings, "src/core/unordered_out.cpp", 3,
                  "unordered-output"))
      << dump();
  EXPECT_TRUE(has(findings, "src/core/unordered_out.cpp", 5,
                  "unordered-output"))
      << dump();
  EXPECT_TRUE(has(findings, "src/core/constructs_rng.cpp", 5, "rng-construct"))
      << dump();
  EXPECT_TRUE(has(findings, "src/sim/uses_getenv.cpp", 4, "raw-getenv"))
      << dump();
  EXPECT_TRUE(
      has(findings, "src/deploy/observe_kernel_fma.cpp", 6, "kernel-no-fma"))
      << dump();
  EXPECT_TRUE(has(findings, "src/deploy/observe_kernel_cmp.cpp", 5,
                  "kernel-cmp-ordered"))
      << dump();
  EXPECT_TRUE(has(findings, "src/deploy/CMakeLists.txt", 3, "fast-math"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/bad_allow.cpp", 4, "allow-syntax"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/bad_allow.cpp", 5, "allow-syntax"))
      << dump();
  // The malformed suppressions must not eat the ban-rand findings.
  EXPECT_TRUE(has(findings, "src/util/bad_allow.cpp", 4, "ban-rand"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/bad_allow.cpp", 5, "ban-rand"))
      << dump();
  // Exactly the pins above — a new stray finding in the fixtures is a
  // behavior change and must be reviewed here.
  EXPECT_EQ(findings.size(), 16u) << dump();
}

TEST(LadLint, DiagnosticFormatIsFileLineRuleMessage) {
  const Config cfg = fixture_config("fail");
  const std::vector<Finding> findings = lint_tree(cfg);
  ASSERT_FALSE(findings.empty());
  bool saw = false;
  for (const std::string& s : formatted(findings)) {
    if (s.rfind("src/geom/bad_include.cpp:4: layer-dag: ", 0) == 0) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(LadLint, SameLineAllowSuppressesOnlyThatLine) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "long a() { return time(nullptr); }  "
      "// lad-lint: allow(ban-time) -- pinned fixture\n"
      "long b() { return time(nullptr); }\n";
  const std::vector<Finding> findings =
      lint_file(cfg, "src/util/t.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "ban-time");
}

TEST(LadLint, CommentLineAllowCoversTheNextLine) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "// lad-lint: allow(ban-time) -- pinned fixture\n"
      "long a() { return time(nullptr); }\n"
      "long b() { return time(nullptr); }\n";
  const std::vector<Finding> findings =
      lint_file(cfg, "src/util/t.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LadLint, BannedTokensInsideStringsAndCommentsDoNotFire) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "// calls std::rand() and time() all day\n"
      "const char* kDoc = \"std::rand() time( lgamma( getenv\";\n"
      "/* std::random_device everywhere */\n";
  EXPECT_TRUE(lint_file(cfg, "src/util/t.cpp", body).empty());
}

// ---- whole-tree hygiene rules (PR 10) ---------------------------------

TEST(LadLint, HygieneFailTreeFiresEachTreeRule) {
  const Config cfg = fixture_config("hygiene_fail");
  const std::vector<Finding> findings = lint_tree(cfg);
  const auto dump = [&] {
    std::string all;
    for (const std::string& s : formatted(findings)) all += s + "\n";
    return all;
  };
  EXPECT_TRUE(has(findings, "src/core/unused_inc.cpp", 1, "include-unused"))
      << dump();
  EXPECT_TRUE(
      has(findings, "src/core/uses_transitive.cpp", 5, "include-transitive"))
      << dump();
  EXPECT_TRUE(has(findings, "src/util/cyc_b.h", 3, "include-cycle")) << dump();
  EXPECT_TRUE(has(findings, "src/util/dead.h", 4, "dead-public")) << dump();
  EXPECT_EQ(findings.size(), 4u) << dump();
}

TEST(LadLint, HygienePassTreeIsSilentWithAllowlist) {
  Config cfg = fixture_config("hygiene_pass");
  const std::string err =
      load_public_allowlist(cfg.root + "/public_api.allow", cfg);
  ASSERT_EQ(err, "");
  const std::vector<Finding> findings = lint_tree(cfg);
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(LadLint, AllowlistIsWhatKeepsSpareApiAlive) {
  // Without the allowlist the pass tree has exactly one finding: the
  // deliberately-dead SpareApi.  This pins that the allowlist entry is
  // load-bearing, not redundant.
  const Config cfg = fixture_config("hygiene_pass");
  const std::vector<Finding> findings = lint_tree(cfg);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/util/spare.h");
  EXPECT_EQ(findings[0].rule, "dead-public");
  EXPECT_NE(findings[0].message.find("SpareApi"), std::string::npos);
}

TEST(LadLint, WarnOnlyDowngradesExactlyThatRule) {
  Config cfg = fixture_config("hygiene_fail");
  cfg.warn_only.insert("dead-public");
  const std::vector<Finding> findings = lint_tree(cfg);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.warning, f.rule == "dead-public") << format_finding(f);
  }
}

TEST(LadLint, IncludeReportListsHeadersByTransitiveWeight) {
  const Config cfg = fixture_config("hygiene_fail");
  std::string report;
  (void)lint_tree(cfg, &report);
  EXPECT_NE(report.find("src/util/thing.h"), std::string::npos) << report;
  EXPECT_NE(report.find("fan-in"), std::string::npos) << report;
}

// ---- scanner near-misses: block comments, raw strings, allows ---------

TEST(LadLint, BlockCommentSpanningLinesHidesNothingAndFakesNothing) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "/* a comment that opens here and keeps going\n"
      "   time(nullptr) std::rand() getenv(\"HOME\")\n"
      "*/ long a() { return time(nullptr); }\n";
  const std::vector<Finding> findings = lint_file(cfg, "src/util/t.cpp", body);
  // Banned tokens inside the comment are inert; the live call on the
  // closing line still fires, at the closing line.
  ASSERT_EQ(findings.size(), 1u) << format_finding(findings.front());
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].rule, "ban-time");
}

TEST(LadLint, RawStringLiteralContentIsInert) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "const char* kDoc = R\"(std::rand() time(nullptr) getenv)\";\n"
      "const char* kTwo = R\"x(lgamma( rand() )\" still raw )x\";\n"
      "long b() { return time(nullptr); }\n";
  const std::vector<Finding> findings = lint_file(cfg, "src/util/t.cpp", body);
  ASSERT_EQ(findings.size(), 1u) << format_finding(findings.front());
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].rule, "ban-time");
}

TEST(LadLint, MultiLineRawStringDoesNotSwallowFollowingCode) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "const char* kBlob = R\"(first line\n"
      "  time(nullptr) inside the raw string\n"
      "  #include \"util/fake.h\"\n"
      ")\";\n"
      "long c() { return time(nullptr); }\n";
  const std::vector<Finding> findings = lint_file(cfg, "src/util/t.cpp", body);
  ASSERT_EQ(findings.size(), 1u) << format_finding(findings.front());
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[0].rule, "ban-time");
}

TEST(LadLint, AllowInsideBlockCommentStillAttaches) {
  Config cfg;
  cfg.layer_deps = {{"util", {}}};
  const std::string body =
      "/* lad-lint: allow(ban-time) -- block-comment hatch */\n"
      "long a() { return time(nullptr); }\n"
      "long b() { return time(nullptr); }\n";
  const std::vector<Finding> findings = lint_file(cfg, "src/util/t.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LadLint, LayerRulesRejectUndeclaredDependency) {
  Config cfg;
  const std::string path =
      lad::test::golden_path("lint/bad_layers.txt");
  const std::string err = load_layer_rules(path, cfg);
  EXPECT_NE(err.find("undeclared layer"), std::string::npos) << err;
}

TEST(LadLint, RuleNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names = rule_names();
  EXPECT_FALSE(names.empty());
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
}

}  // namespace
}  // namespace lad::lint
