#include "util/assert.h"

#include <gtest/gtest.h>

namespace lad {
namespace {

TEST(Assert, RequirePassesOnTrue) {
  EXPECT_NO_THROW(LAD_REQUIRE(1 + 1 == 2));
}

TEST(Assert, RequireThrowsOnFalse) {
  EXPECT_THROW(LAD_REQUIRE(1 + 1 == 3), AssertionError);
}

TEST(Assert, RequireMessageIncludesExpressionAndLocation) {
  try {
    LAD_REQUIRE(2 < 1);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos);
  }
}

TEST(Assert, RequireMsgCarriesCustomMessage) {
  try {
    LAD_REQUIRE_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Assert, RequireEvaluatesExpressionOnce) {
  int calls = 0;
  auto f = [&calls] {
    ++calls;
    return true;
  };
  LAD_REQUIRE(f());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace lad
