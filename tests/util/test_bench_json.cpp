#include "util/bench_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/assert.h"

namespace lad {
namespace {

BenchReport sample_report() {
  BenchReport r;
  r.name = "unit_bench";
  r.threads = 2;
  r.git_rev = "abc1234";
  r.host = "test host / 1 core(s)";
  r.date = "2026-08-07";
  r.results.push_back({"observe_many/scalar", 30000, 1624.5, 20000});
  r.results.push_back({"observe_many/avx2", 30000, 1198.0, 20000});
  return r;
}

TEST(BenchJson, WriterOutputPassesTheValidator) {
  const std::string text = bench_json(sample_report());
  EXPECT_EQ(validate_bench_json(text), "") << text;
}

TEST(BenchJson, EmptyResultsStillValid) {
  BenchReport r = sample_report();
  r.results.clear();
  EXPECT_EQ(validate_bench_json(bench_json(r)), "");
}

TEST(BenchJson, SerializedFieldsRoundTripVerbatim) {
  const std::string text = bench_json(sample_report());
  EXPECT_NE(text.find("\"schema\": \"lad-bench-1\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"unit_bench\""), std::string::npos);
  EXPECT_NE(text.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"git_rev\": \"abc1234\""), std::string::npos);
  EXPECT_NE(text.find("observe_many/avx2"), std::string::npos);
  EXPECT_NE(text.find("\"nodes\": 30000"), std::string::npos);
}

TEST(BenchJson, EscapesSpecialCharactersInStrings) {
  BenchReport r = sample_report();
  r.host = "quote \" backslash \\ newline \n tab \t";
  const std::string text = bench_json(r);
  EXPECT_EQ(validate_bench_json(text), "") << text;
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\\\"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
}

TEST(BenchJson, WriteBenchJsonRoundTripsThroughDisk) {
  const std::string path = write_bench_json(sample_report(), "/tmp");
  EXPECT_EQ(path, "/tmp/BENCH_unit_bench.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(validate_bench_json(buf.str()), "");
  std::remove(path.c_str());
}

TEST(BenchJson, WriteRejectsEmptyName) {
  BenchReport r = sample_report();
  r.name.clear();
  EXPECT_THROW(write_bench_json(r, "/tmp"), AssertionError);
}

TEST(BenchJson, FillBenchEnvironmentPopulatesProvenance) {
  BenchReport r;
  r.name = "env_probe";
  fill_bench_environment(r);
  EXPECT_FALSE(r.git_rev.empty());
  EXPECT_FALSE(r.host.empty());
  // UTC date is YYYY-MM-DD.
  ASSERT_EQ(r.date.size(), 10u);
  EXPECT_EQ(r.date[4], '-');
  EXPECT_EQ(r.date[7], '-');
}

// ---- validator rejection paths ----------------------------------------

std::string valid_text() { return bench_json(sample_report()); }

TEST(BenchJsonValidate, RejectsTruncatedDocument) {
  const std::string text = valid_text();
  for (const std::size_t cut : {text.size() / 4, text.size() / 2,
                                text.size() - 2, std::size_t{1}}) {
    EXPECT_NE(validate_bench_json(text.substr(0, cut)), "") << "cut=" << cut;
  }
}

TEST(BenchJsonValidate, RejectsTrailingGarbage) {
  EXPECT_NE(validate_bench_json(valid_text() + "garbage"), "");
  EXPECT_NE(validate_bench_json(valid_text() + "{}"), "");
}

TEST(BenchJsonValidate, RejectsNonObjectTopLevel) {
  EXPECT_NE(validate_bench_json("[]"), "");
  EXPECT_NE(validate_bench_json("\"lad-bench-1\""), "");
  EXPECT_NE(validate_bench_json(""), "");
  EXPECT_NE(validate_bench_json("   "), "");
}

TEST(BenchJsonValidate, RejectsWrongSchemaTag) {
  std::string text = valid_text();
  const std::string from = "\"lad-bench-1\"";
  text.replace(text.find(from), from.size(), "\"lad-bench-2\"");
  EXPECT_NE(validate_bench_json(text), "");
}

TEST(BenchJsonValidate, RejectsEachMissingRequiredKey) {
  // Drop one required top-level key at a time by renaming it: the renamed
  // key becomes an (allowed) extra key, so the only failure is the gap.
  for (const char* key :
       {"\"schema\"", "\"name\"", "\"threads\"", "\"git_rev\"", "\"host\"",
        "\"results\""}) {
    std::string text = valid_text();
    const std::size_t at = text.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    text.replace(at, 2, "\"x");
    EXPECT_NE(validate_bench_json(text), "") << "dropped " << key;
  }
}

TEST(BenchJsonValidate, RejectsWrongTypes) {
  {
    std::string text = valid_text();
    const std::string from = "\"threads\": 2";
    text.replace(text.find(from), from.size(), "\"threads\": \"2\"");
    EXPECT_NE(validate_bench_json(text), "");
  }
  {
    std::string text = valid_text();
    const std::string from = "\"threads\": 2";
    text.replace(text.find(from), from.size(), "\"threads\": 2.5");
    EXPECT_NE(validate_bench_json(text), "");
  }
  {
    std::string text = valid_text();
    const std::string from = "\"nodes\": 30000";
    text.replace(text.find(from), from.size(), "\"nodes\": \"30000\"");
    EXPECT_NE(validate_bench_json(text), "");
  }
}

TEST(BenchJsonValidate, RejectsNonPositiveThreads) {
  std::string text = valid_text();
  const std::string from = "\"threads\": 2";
  text.replace(text.find(from), from.size(), "\"threads\": 0");
  EXPECT_NE(validate_bench_json(text), "");
}

TEST(BenchJsonValidate, RejectsDuplicateKeys) {
  EXPECT_NE(
      validate_bench_json(
          "{\"schema\": \"lad-bench-1\", \"schema\": \"lad-bench-1\", "
          "\"name\": \"x\", \"threads\": 1, \"git_rev\": \"r\", "
          "\"host\": \"h\", \"results\": []}"),
      "");
}

TEST(BenchJsonValidate, RejectsBadResultRows) {
  // A row missing ns_per_op.
  EXPECT_NE(
      validate_bench_json(
          "{\"schema\": \"lad-bench-1\", \"name\": \"x\", \"threads\": 1, "
          "\"git_rev\": \"r\", \"host\": \"h\", \"results\": "
          "[{\"name\": \"a\", \"nodes\": 10, \"ops\": 5}]}"),
      "");
  // A row that is not an object.
  EXPECT_NE(
      validate_bench_json(
          "{\"schema\": \"lad-bench-1\", \"name\": \"x\", \"threads\": 1, "
          "\"git_rev\": \"r\", \"host\": \"h\", \"results\": [42]}"),
      "");
}

TEST(BenchJsonValidate, AcceptsExtraKeysForForwardCompatibility) {
  EXPECT_EQ(
      validate_bench_json(
          "{\"schema\": \"lad-bench-1\", \"name\": \"x\", \"threads\": 1, "
          "\"git_rev\": \"r\", \"host\": \"h\", \"date\": \"2026-08-07\", "
          "\"future_key\": [1, 2, {\"deep\": true}], \"results\": "
          "[{\"name\": \"a\", \"nodes\": 10, \"ns_per_op\": 1.5, "
          "\"ops\": 5, \"stddev\": 0.1}]}"),
      "");
}

TEST(BenchJsonValidate, HandlesJsonEdgeCases) {
  // Escaped characters, nested containers, negative/exponent numbers in
  // extra keys must all parse without tripping the validator.
  EXPECT_EQ(
      validate_bench_json(
          "{\"schema\": \"lad-bench-1\", \"name\": \"x\\n\\t\\\"y\\\"\", "
          "\"threads\": 1, \"git_rev\": \"r\", \"host\": \"h\", "
          "\"extras\": {\"neg\": -1.5e-3, \"null\": null, \"t\": true}, "
          "\"results\": []}"),
      "");
  // Unterminated string.
  EXPECT_NE(validate_bench_json("{\"schema\": \"lad-bench-1"), "");
}

}  // namespace
}  // namespace lad
