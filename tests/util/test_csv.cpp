#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.h"

namespace lad {
namespace {

TEST(Table, BuildsAndReadsCells) {
  Table t({"a", "b"});
  t.new_row().add(1).add(2.5, 1);
  t.new_row().add("x").add(3ll);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "1");
  EXPECT_EQ(t.cell(0, 1), "2.5");
  EXPECT_EQ(t.cell(1, 0), "x");
  EXPECT_EQ(t.cell(1, 1), "3");
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.new_row().add(1).add("a");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,a\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"v"});
  t.new_row().add("a,b");
  t.new_row().add("q\"q");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n\"a,b\"\n\"q\"\"q\"\n");
}

TEST(Table, AlignedPrintContainsHeaderRuleAndData) {
  Table t({"col"});
  t.new_row().add(12345);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(Table, RejectsAddWithoutRow) {
  Table t({"a"});
  EXPECT_THROW(t.add(1), AssertionError);
}

TEST(Table, RejectsIncompleteRowOnNewRow) {
  Table t({"a", "b"});
  t.new_row().add(1);
  EXPECT_THROW(t.new_row(), AssertionError);
}

TEST(Table, RejectsEmptyColumnSet) {
  EXPECT_THROW(Table({}), AssertionError);
}

TEST(Table, CellBoundsChecked) {
  Table t({"a"});
  t.new_row().add(1);
  EXPECT_THROW(t.cell(1, 0), AssertionError);
  EXPECT_THROW(t.cell(0, 1), AssertionError);
}

}  // namespace
}  // namespace lad
