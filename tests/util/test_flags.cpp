#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace lad {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make({"--d=120", "--metric=diff"});
  EXPECT_EQ(f.get_int("d", 0), 120);
  EXPECT_EQ(f.get_string("metric", ""), "diff");
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make({"--d", "120"});
  EXPECT_EQ(f.get_int("d", 0), 120);
}

TEST(Flags, BareBoolean) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=YES"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=Off"}).get_bool("x", true));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", true), AssertionError);
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(f.has("missing2"));
}

TEST(Flags, ListParsing) {
  const Flags f = make({"--d=80,120,160", "--m=100,300"});
  EXPECT_EQ(f.get_double_list("d", {}), (std::vector<double>{80, 120, 160}));
  EXPECT_EQ(f.get_int_list("m", {}), (std::vector<long long>{100, 300}));
}

TEST(Flags, ListDefault) {
  const Flags f = make({});
  EXPECT_EQ(f.get_double_list("d", {1.5}), (std::vector<double>{1.5}));
}

TEST(Flags, PositionalArguments) {
  const Flags f = make({"pos1", "--k=1", "pos2"});
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Flags, NextFlagIsNotConsumedAsValue) {
  const Flags f = make({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

TEST(Flags, UnusedDetection) {
  const Flags f = make({"--used=1", "--typo=2"});
  EXPECT_EQ(f.get_int("used", 0), 1);
  EXPECT_EQ(f.unused(), (std::vector<std::string>{"typo"}));
}

TEST(Flags, TypeErrorsThrow) {
  const Flags f = make({"--d=abc"});
  EXPECT_THROW(f.get_int("d", 0), AssertionError);
  EXPECT_THROW(f.get_double("d", 0), AssertionError);
}

}  // namespace
}  // namespace lad
